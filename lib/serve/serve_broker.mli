(** Socket-free request dispatch for the QoS-broker daemon.

    A broker owns one {!Drcomm} service plus the integer↔handle table
    the wire protocol needs ({!Drcomm.channel_id} is abstract; the wire
    speaks [Channel_id.to_int] integers).  {!dispatch} maps every
    {!Serve_proto.request} the codec can produce onto the service —
    connection-level requests ([subscribe], [shutdown]) come back as
    [Error_reply]; the server intercepts them before dispatch.

    Pure with respect to I/O: {!Serve_server} frames it over a socket,
    the tests drive it directly. *)

type t

val create : ?config:Drcomm.Config.t -> ?obs:Obs.t -> Net_state.t -> t
(** [obs] (default {!Obs.default} at creation time) receives the
    service's instrumentation; give it a live metrics registry to make
    the [metrics] request meaningful and a live tracer to stream events
    to subscribers. *)

val service : t -> Drcomm.t
val obs : t -> Obs.t

val requests : t -> int
(** Requests dispatched so far (all kinds).  Doubles as the broker's
    event axis: trace timestamps and snapshot [sim_time] read it. *)

val dispatch : t -> Serve_proto.request -> Serve_proto.response
(** Apply one request.  Never raises on wire-expressible failures —
    unknown channels, out-of-range nodes/edges and rejected admissions
    come back as [Error_reply] / [Admit_rejected] / [accepted = false]. *)

val dispatch_timed :
  t -> Serve_proto.request -> Serve_proto.response * float * float
(** {!dispatch} plus the stage split for request tracing:
    [(response, service_s, redistribute_s)] where [redistribute_s] is
    the water-filling slice of the dispatch (differenced off the
    service's redistribution accumulator) and [service_s] the
    remainder.  Both non-negative; their sum is the dispatch's wall
    time on the monotonic clock. *)

val set_slo_source : t -> (unit -> int * int) -> unit
(** Point the snapshot source's [slo] accessor at the server's request
    tracer ({!Reqtrace.slo_counts}); defaults to [(0, 0)]. *)

val live_channels : t -> int list
(** Sorted wire ids of the live connections (for {!Serve_proto.request_of_op}). *)

val failed_edges : t -> int list
(** Sorted failed edge ids (for {!Serve_proto.request_of_op}). *)

val snapshot_source : t -> Snapshot.source
(** Accessors for a {!Snapshot} emitter over broker state: [sim_time]
    and [events] count dispatched requests, levels come from the
    service's maintained histogram, counters from the obs registry. *)
