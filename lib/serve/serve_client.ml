type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  pushed : Jsonx.t Queue.t;
  mutable next_id : int;
  mutable closed : bool;
}

let sockaddr_of (addr : Serve_server.address) =
  match addr with
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
    let ip =
      if host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let connect ?(retries = 0) ?(retry_delay = 0.05) addr =
  let domain, sa = sockaddr_of addr in
  let rec dial attempt =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> fd
    | exception Unix.Unix_error (_, _, _) when attempt < retries ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ());
      Unix.sleepf retry_delay;
      dial (attempt + 1)
    | exception e ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ());
      raise e
  in
  let fd = dial 0 in
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    pushed = Queue.create ();
    next_id = 1;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Closing the fd closes both wrapped channels. *)
    match Unix.close t.fd with
    | () -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  end

let request ?trace t req =
  if t.closed then failwith "Serve_client.request: connection closed";
  let id = t.next_id in
  t.next_id <- id + 1;
  output_string t.oc
    (Jsonx.to_string (Serve_proto.request_to_json ?trace ~id req));
  output_char t.oc '\n';
  flush t.oc;
  let rec await () =
    let line =
      match input_line t.ic with
      | line -> line
      | exception End_of_file ->
        close t;
        failwith "Serve_client.request: connection closed before reply"
    in
    if String.trim line = "" then await ()
    else
      let doc =
        match Jsonx.of_string line with
        | doc -> doc
        | exception Jsonx.Parse_error msg ->
          failwith ("Serve_client.request: undecodable line: " ^ msg)
      in
      if Serve_proto.is_push doc then begin
        Queue.add doc t.pushed;
        await ()
      end
      else
        match Serve_proto.response_of_json doc with
        | Error msg -> failwith ("Serve_client.request: bad reply: " ^ msg)
        | Ok (reply_id, resp) ->
          if reply_id <> id && reply_id <> 0 then
            failwith
              (Printf.sprintf "Serve_client.request: reply id %d, expected %d"
                 reply_id id);
          resp
  in
  await ()

let pushes t =
  let out = List.of_seq (Queue.to_seq t.pushed) in
  Queue.clear t.pushed;
  out
