(** Synchronous client for the QoS-broker daemon.

    One connection, one outstanding request at a time: {!request} sends
    a line and blocks until the matching reply arrives.  Pushed stream
    lines (trace events, heartbeats — see {!Serve_proto.is_push})
    received while waiting are queued and drained with {!pushes}.

    The load generator opens one client per worker domain; a client
    value must not be shared across domains. *)

type t

val connect :
  ?retries:int -> ?retry_delay:float -> Serve_server.address -> t
(** Connect to a daemon.  [retries] (default 0) extra attempts spaced
    [retry_delay] (default 0.05 s) apart cover the race of dialing a
    daemon that is still binding its socket.  Raises [Unix.Unix_error]
    when every attempt fails. *)

val request : ?trace:Reqtrace.ctx -> t -> Serve_proto.request -> Serve_proto.response
(** Send one request and wait for its reply.  [?trace] stamps the line
    with a request-tracing context (see {!Serve_proto.request_to_json})
    so the server's stage records join this client's latency record by
    rid.  Raises [Failure] on a closed or protocol-violating connection
    (EOF before the reply, reply id mismatch, undecodable line). *)

val pushes : t -> Jsonx.t list
(** Drain the queued pushed lines, oldest first. *)

val close : t -> unit
(** Idempotent. *)
