type request =
  | Admit of { src : int; dst : int; qos : Qos.t }
  | Teardown of { channel : int }
  | Change_qos of { channel : int; qos : Qos.t }
  | Fail of { edge : int }
  | Repair of { edge : int }
  | Set_auto of bool
  | Redistribute
  | Stats
  | Snapshot
  | Metrics
  | Subscribe of [ `Trace | `Heartbeat ]
  | Ping
  | Shutdown

type recovery_wire = {
  rw_channel : int;
  rw_outcome : [ `Switched | `Dropped | `Restored | `Backup_lost ];
  rw_reprotected : bool;
}

type response =
  | Admitted of { channel : int; level : int }
  | Admit_rejected of { reason : string }
  | Torn_down of { channel : int }
  | Qos_changed of { channel : int; accepted : bool }
  | Edge_failed of { edge : int; fresh : bool; recoveries : recovery_wire list }
  | Edge_repaired of { edge : int; was_failed : bool }
  | Auto_set of { on : bool }
  | Redistributed
  | Stats_reply of {
      live : int;
      total_reserved : int;
      average_kbps : float;
      dropped : int;
      failed_edges : int;
      requests : int;
    }
  | Snapshot_reply of Jsonx.t
  | Metrics_reply of Jsonx.t
  | Subscribed of { stream : string }
  | Pong
  | Shutting_down
  | Error_reply of { message : string }

(* The broker's level histogram is sized to this; a wire spec with more
   elastic levels is rejected at the codec. *)
let max_levels = 64

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)

let qos_to_json (q : Qos.t) =
  Jsonx.Obj
    [
      ("b_min", Jsonx.Int q.Qos.b_min);
      ("b_max", Jsonx.Int q.Qos.b_max);
      ("increment", Jsonx.Int q.Qos.increment);
      ("utility", Jsonx.Float q.Qos.utility);
    ]

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let int_field doc key =
  match Option.bind (Jsonx.member key doc) Jsonx.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer %S" key)

let float_field ~default doc key =
  match Jsonx.member key doc with
  | None -> Ok default
  | Some v -> (
    match Jsonx.to_float v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "non-numeric %S" key))

let str_field doc key =
  match Option.bind (Jsonx.member key doc) Jsonx.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" key)

let bool_field doc key =
  match Jsonx.member key doc with
  | Some (Jsonx.Bool b) -> Ok b
  | Some _ | None -> Error (Printf.sprintf "missing or non-boolean %S" key)

let qos_of_json doc =
  match Jsonx.member "qos" doc with
  | None -> Error "missing \"qos\""
  | Some q ->
    let* b_min = int_field q "b_min" in
    let* b_max = int_field q "b_max" in
    let* increment = int_field q "increment" in
    let* utility = float_field ~default:1.0 q "utility" in
    (match Qos.make ~utility ~b_min ~b_max ~increment () with
    | qos when Qos.levels qos > max_levels ->
      Error
        (Printf.sprintf "qos has %d levels; the broker accepts at most %d"
           (Qos.levels qos) max_levels)
    | qos -> Ok qos
    | exception Invalid_argument msg -> Error ("invalid qos: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_verb = function
  | Admit _ -> "admit"
  | Teardown _ -> "teardown"
  | Change_qos _ -> "chqos"
  | Fail _ -> "fail"
  | Repair _ -> "repair"
  | Set_auto _ -> "auto"
  | Redistribute -> "redistribute"
  | Stats -> "stats"
  | Snapshot -> "snapshot"
  | Metrics -> "metrics"
  | Subscribe _ -> "subscribe"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* A small-int key per verb, for the [req.slow_verbs] heavy-hitter
   sketch (its keys are ints).  Order matches the [request] type. *)
let request_index = function
  | Admit _ -> 0
  | Teardown _ -> 1
  | Change_qos _ -> 2
  | Fail _ -> 3
  | Repair _ -> 4
  | Set_auto _ -> 5
  | Redistribute -> 6
  | Stats -> 7
  | Snapshot -> 8
  | Metrics -> 9
  | Subscribe _ -> 10
  | Ping -> 11
  | Shutdown -> 12

let verb_of_index = function
  | 0 -> "admit"
  | 1 -> "teardown"
  | 2 -> "chqos"
  | 3 -> "fail"
  | 4 -> "repair"
  | 5 -> "auto"
  | 6 -> "redistribute"
  | 7 -> "stats"
  | 8 -> "snapshot"
  | 9 -> "metrics"
  | 10 -> "subscribe"
  | 11 -> "ping"
  | 12 -> "shutdown"
  | 13 -> "undecodable"
  | i -> Printf.sprintf "verb#%d" i

let undecodable_index = 13

let request_to_json ?trace ~id req =
  let fields =
    match req with
    | Admit { src; dst; qos } ->
      [ ("src", Jsonx.Int src); ("dst", Jsonx.Int dst); ("qos", qos_to_json qos) ]
    | Teardown { channel } -> [ ("channel", Jsonx.Int channel) ]
    | Change_qos { channel; qos } ->
      [ ("channel", Jsonx.Int channel); ("qos", qos_to_json qos) ]
    | Fail { edge } | Repair { edge } -> [ ("edge", Jsonx.Int edge) ]
    | Set_auto on -> [ ("on", Jsonx.Bool on) ]
    | Subscribe `Trace -> [ ("stream", Jsonx.String "trace") ]
    | Subscribe `Heartbeat -> [ ("stream", Jsonx.String "heartbeat") ]
    | Redistribute | Stats | Snapshot | Metrics | Ping | Shutdown -> []
  in
  let fields =
    match trace with
    | None -> fields
    | Some { Reqtrace.rid; t_sched } ->
      fields
      @ [
          ( "trace",
            Jsonx.Obj
              [ ("rid", Jsonx.Int rid); ("t_sched", Jsonx.Float t_sched) ] );
        ]
  in
  Jsonx.Obj
    (("id", Jsonx.Int id) :: ("req", Jsonx.String (request_verb req)) :: fields)

(* Separate from {!request_of_json} so the request codec's signature
   (and every exhaustive test over it) is untouched: old clients simply
   never send the field, old servers ignore it. *)
let trace_ctx_of_json doc =
  match Jsonx.member "trace" doc with
  | None -> None
  | Some tr -> (
    match
      ( Option.bind (Jsonx.member "rid" tr) Jsonx.to_int,
        Option.bind (Jsonx.member "t_sched" tr) Jsonx.to_float )
    with
    | Some rid, Some t_sched when rid >= 0 -> Some { Reqtrace.rid; t_sched }
    | _ -> None)

let request_of_json doc =
  let* id = int_field doc "id" in
  let* verb = str_field doc "req" in
  let* req =
    match verb with
    | "admit" ->
      let* src = int_field doc "src" in
      let* dst = int_field doc "dst" in
      let* qos = qos_of_json doc in
      Ok (Admit { src; dst; qos })
    | "teardown" ->
      let* channel = int_field doc "channel" in
      Ok (Teardown { channel })
    | "chqos" ->
      let* channel = int_field doc "channel" in
      let* qos = qos_of_json doc in
      Ok (Change_qos { channel; qos })
    | "fail" ->
      let* edge = int_field doc "edge" in
      Ok (Fail { edge })
    | "repair" ->
      let* edge = int_field doc "edge" in
      Ok (Repair { edge })
    | "auto" ->
      let* on = bool_field doc "on" in
      Ok (Set_auto on)
    | "redistribute" -> Ok Redistribute
    | "stats" -> Ok Stats
    | "snapshot" -> Ok Snapshot
    | "metrics" -> Ok Metrics
    | "subscribe" -> (
      let* stream = str_field doc "stream" in
      match stream with
      | "trace" -> Ok (Subscribe `Trace)
      | "heartbeat" -> Ok (Subscribe `Heartbeat)
      | s -> Error (Printf.sprintf "unknown stream %S" s))
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | v -> Error (Printf.sprintf "unknown request %S" v)
  in
  Ok (id, req)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let outcome_to_string = function
  | `Switched -> "switched_to_backup"
  | `Dropped -> "dropped"
  | `Restored -> "restored"
  | `Backup_lost -> "backup_lost"

let outcome_of_string = function
  | "switched_to_backup" -> Ok `Switched
  | "dropped" -> Ok `Dropped
  | "restored" -> Ok `Restored
  | "backup_lost" -> Ok `Backup_lost
  | s -> Error (Printf.sprintf "unknown recovery outcome %S" s)

let recovery_to_json r =
  Jsonx.Obj
    [
      ("channel", Jsonx.Int r.rw_channel);
      ("outcome", Jsonx.String (outcome_to_string r.rw_outcome));
      ("reprotected", Jsonx.Bool r.rw_reprotected);
    ]

let recovery_of_json doc =
  let* rw_channel = int_field doc "channel" in
  let* outcome = str_field doc "outcome" in
  let* rw_outcome = outcome_of_string outcome in
  let* rw_reprotected = bool_field doc "reprotected" in
  Ok { rw_channel; rw_outcome; rw_reprotected }

let response_kind = function
  | Admitted _ -> "admitted"
  | Admit_rejected _ -> "rejected"
  | Torn_down _ -> "torn_down"
  | Qos_changed _ -> "qos_changed"
  | Edge_failed _ -> "edge_failed"
  | Edge_repaired _ -> "edge_repaired"
  | Auto_set _ -> "auto"
  | Redistributed -> "redistributed"
  | Stats_reply _ -> "stats"
  | Snapshot_reply _ -> "snapshot"
  | Metrics_reply _ -> "metrics"
  | Subscribed _ -> "subscribed"
  | Pong -> "pong"
  | Shutting_down -> "shutting_down"
  | Error_reply _ -> "error"

let response_to_json ~id resp =
  match resp with
  | Error_reply { message } ->
    Jsonx.Obj
      [
        ("id", Jsonx.Int id);
        ("ok", Jsonx.Bool false);
        ("error", Jsonx.String message);
      ]
  | _ ->
    let fields =
      match resp with
      | Admitted { channel; level } ->
        [ ("channel", Jsonx.Int channel); ("level", Jsonx.Int level) ]
      | Admit_rejected { reason } -> [ ("reason", Jsonx.String reason) ]
      | Torn_down { channel } -> [ ("channel", Jsonx.Int channel) ]
      | Qos_changed { channel; accepted } ->
        [ ("channel", Jsonx.Int channel); ("accepted", Jsonx.Bool accepted) ]
      | Edge_failed { edge; fresh; recoveries } ->
        [
          ("edge", Jsonx.Int edge);
          ("fresh", Jsonx.Bool fresh);
          ("recoveries", Jsonx.List (List.map recovery_to_json recoveries));
        ]
      | Edge_repaired { edge; was_failed } ->
        [ ("edge", Jsonx.Int edge); ("was_failed", Jsonx.Bool was_failed) ]
      | Auto_set { on } -> [ ("on", Jsonx.Bool on) ]
      | Stats_reply { live; total_reserved; average_kbps; dropped; failed_edges; requests }
        ->
        [
          ("live", Jsonx.Int live);
          ("total_reserved_kbps", Jsonx.Int total_reserved);
          ("average_kbps", Jsonx.Float average_kbps);
          ("dropped", Jsonx.Int dropped);
          ("failed_edges", Jsonx.Int failed_edges);
          ("requests", Jsonx.Int requests);
        ]
      | Snapshot_reply doc | Metrics_reply doc -> [ ("data", doc) ]
      | Subscribed { stream } -> [ ("stream", Jsonx.String stream) ]
      | Redistributed | Pong | Shutting_down -> []
      | Error_reply _ -> []
    in
    Jsonx.Obj
      (("id", Jsonx.Int id)
      :: ("ok", Jsonx.Bool true)
      :: ("re", Jsonx.String (response_kind resp))
      :: fields)

let list_field doc key =
  match Jsonx.member key doc with
  | Some (Jsonx.List l) -> Ok l
  | Some _ | None -> Error (Printf.sprintf "missing or non-list %S" key)

let data_field doc =
  match Jsonx.member "data" doc with
  | Some d -> Ok d
  | None -> Error "missing \"data\""

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let response_of_json doc =
  let* id = int_field doc "id" in
  let* ok = bool_field doc "ok" in
  if not ok then
    let* message = str_field doc "error" in
    Ok (id, Error_reply { message })
  else
    let* kind = str_field doc "re" in
    let* resp =
      match kind with
      | "admitted" ->
        let* channel = int_field doc "channel" in
        let* level = int_field doc "level" in
        Ok (Admitted { channel; level })
      | "rejected" ->
        let* reason = str_field doc "reason" in
        Ok (Admit_rejected { reason })
      | "torn_down" ->
        let* channel = int_field doc "channel" in
        Ok (Torn_down { channel })
      | "qos_changed" ->
        let* channel = int_field doc "channel" in
        let* accepted = bool_field doc "accepted" in
        Ok (Qos_changed { channel; accepted })
      | "edge_failed" ->
        let* edge = int_field doc "edge" in
        let* fresh = bool_field doc "fresh" in
        let* l = list_field doc "recoveries" in
        let* recoveries = map_result recovery_of_json l in
        Ok (Edge_failed { edge; fresh; recoveries })
      | "edge_repaired" ->
        let* edge = int_field doc "edge" in
        let* was_failed = bool_field doc "was_failed" in
        Ok (Edge_repaired { edge; was_failed })
      | "auto" ->
        let* on = bool_field doc "on" in
        Ok (Auto_set { on })
      | "redistributed" -> Ok Redistributed
      | "stats" ->
        let* live = int_field doc "live" in
        let* total_reserved = int_field doc "total_reserved_kbps" in
        let* average_kbps = float_field ~default:0. doc "average_kbps" in
        let* dropped = int_field doc "dropped" in
        let* failed_edges = int_field doc "failed_edges" in
        let* requests = int_field doc "requests" in
        Ok
          (Stats_reply
             { live; total_reserved; average_kbps; dropped; failed_edges; requests })
      | "snapshot" ->
        let* d = data_field doc in
        Ok (Snapshot_reply d)
      | "metrics" ->
        let* d = data_field doc in
        Ok (Metrics_reply d)
      | "subscribed" ->
        let* stream = str_field doc "stream" in
        Ok (Subscribed { stream })
      | "pong" -> Ok Pong
      | "shutting_down" -> Ok Shutting_down
      | k -> Error (Printf.sprintf "unknown response kind %S" k)
    in
    Ok (id, resp)

let is_push doc =
  Jsonx.member "id" doc = None && Jsonx.member "ev" doc <> None

(* ------------------------------------------------------------------ *)
(* Fuzz-op bridge                                                      *)

(* Mirrors the modular reduction in [Fuzz.replay] exactly, against the
   state the caller reads off the live service ([live] sorted channel
   ids, [failed] sorted failed edges). *)
let request_of_op ~nodes ~edges ~live ~failed op =
  let palette = Fuzz.qos_palette in
  let nth_live k =
    match live with
    | [] -> None
    | _ -> List.nth_opt live (k mod List.length live)
  in
  match op with
  | Op.Admit { src; dst; qos } ->
    if nodes <= 1 then None
    else
      let src = src mod nodes in
      let dst = (src + 1 + (dst mod (nodes - 1))) mod nodes in
      let qos = palette.(qos mod Array.length palette) in
      Some (Admit { src; dst; qos })
  | Op.Terminate k ->
    Option.map (fun channel -> Teardown { channel }) (nth_live k)
  | Op.Change_qos (k, q) ->
    Option.map
      (fun channel ->
        Change_qos { channel; qos = palette.(q mod Array.length palette) })
      (nth_live k)
  | Op.Fail k -> if edges <= 0 then None else Some (Fail { edge = k mod edges })
  | Op.Repair k ->
    if edges <= 0 then None
    else
      let edge =
        match failed with
        | [] -> k mod edges
        | l -> (
          match List.nth_opt l (k mod List.length l) with
          | Some e -> e
          | None -> k mod edges)
      in
      Some (Repair { edge })
  | Op.Set_auto b -> Some (Set_auto b)
  | Op.Redistribute_all -> Some Redistribute

let palette_index qos =
  let n = Array.length Fuzz.qos_palette in
  let rec go i =
    if i >= n then None
    else if Fuzz.qos_palette.(i) = qos then Some i
    else go (i + 1)
  in
  go 0

let op_of_request ~nodes = function
  | Admit { src; dst; qos } ->
    if nodes <= 1 || src < 0 || src >= nodes || dst < 0 || dst >= nodes
       || src = dst
    then None
    else
      (* Invert the dst skew: the executor computes
         [(src + 1 + (d mod (nodes - 1))) mod nodes], and for
         [d = (dst - src - 1) mod nodes] (in [0, nodes - 2] whenever
         [dst <> src]) the inner [mod] is the identity. *)
      let d = ((dst - src - 1) mod nodes + nodes) mod nodes in
      Option.map (fun q -> Op.Admit { src; dst = d; qos = q }) (palette_index qos)
  | Teardown { channel } -> Some (Op.Terminate channel)
  | Change_qos { channel; qos } ->
    Option.map (fun q -> Op.Change_qos (channel, q)) (palette_index qos)
  | Fail { edge } -> Some (Op.Fail edge)
  | Repair { edge } -> Some (Op.Repair edge)
  | Set_auto b -> Some (Op.Set_auto b)
  | Redistribute -> Some Op.Redistribute_all
  | Stats | Snapshot | Metrics | Subscribe _ | Ping | Shutdown -> None
