(** The QoS-broker wire protocol: newline-delimited JSON over a stream
    socket (DESIGN.md §14).

    Every request is one JSONL line [{"id":N,"req":"<verb>",...}]; every
    reply is one line [{"id":N,"ok":true,"re":"<kind>",...}] (or
    [{"id":N,"ok":false,"error":"..."}]).  Subscribed connections
    additionally receive {e pushed} lines — trace events and wall
    heartbeats in the {!Trace} JSONL dialect — which carry an ["ev"] key
    and never an ["id"], so a client can always tell a reply from a
    push.

    The codec is pure (no sockets, no channels): {!Serve_server} and
    {!Serve_client} frame the lines, this module only converts.  QoS
    specs are validated here, at the protocol boundary ({!Qos.make}
    rules plus a level cap), so a broker never sees a malformed
    contract.

    {b Fuzz bridge.}  {!request_of_op} maps the fuzzer's closed op
    language ({!Op.t}) onto live requests with exactly the modular
    reduction [Fuzz.replay] applies, so a recorded fuzz script replays
    over the socket against the same state trajectory; {!op_of_request}
    prints a request back into the op language where possible. *)

type request =
  | Admit of { src : int; dst : int; qos : Qos.t }
  | Teardown of { channel : int }
  | Change_qos of { channel : int; qos : Qos.t }
  | Fail of { edge : int }
  | Repair of { edge : int }
  | Set_auto of bool
  | Redistribute
  | Stats
  | Snapshot
  | Metrics
  | Subscribe of [ `Trace | `Heartbeat ]
  | Ping
  | Shutdown

(** Per-victim outcome of an edge failure, mirrored onto the wire so a
    replaying client can maintain its view of the live set. *)
type recovery_wire = {
  rw_channel : int;
  rw_outcome : [ `Switched | `Dropped | `Restored | `Backup_lost ];
  rw_reprotected : bool;  (** a new backup was re-established. *)
}

type response =
  | Admitted of { channel : int; level : int }
  | Admit_rejected of { reason : string }
      (** an admission rejection is a valid outcome ([ok:true]), not a
          protocol error. *)
  | Torn_down of { channel : int }
  | Qos_changed of { channel : int; accepted : bool }
  | Edge_failed of { edge : int; fresh : bool; recoveries : recovery_wire list }
  | Edge_repaired of { edge : int; was_failed : bool }
  | Auto_set of { on : bool }
  | Redistributed
  | Stats_reply of {
      live : int;
      total_reserved : int;  (** Kbps. *)
      average_kbps : float;
      dropped : int;
      failed_edges : int;
      requests : int;  (** requests dispatched by the broker so far. *)
    }
  | Snapshot_reply of Jsonx.t  (** one {!Trace.Snapshot} document. *)
  | Metrics_reply of Jsonx.t  (** the {!Metrics.snapshot} document. *)
  | Subscribed of { stream : string }
  | Pong
  | Shutting_down
  | Error_reply of { message : string }

val max_levels : int
(** Upper bound on [Qos.levels] accepted from the wire (the broker's
    level histogram is sized to it). *)

val request_to_json : ?trace:Reqtrace.ctx -> id:int -> request -> Jsonx.t
(** [?trace] appends the optional request-tracing context as a
    [{"trace":{"rid":N,"t_sched":S}}] field — backward compatible: old
    servers ignore unknown fields, old clients never send it. *)

val request_of_json : Jsonx.t -> (int * request, string) result

val trace_ctx_of_json : Jsonx.t -> Reqtrace.ctx option
(** The request line's tracing context, if it carries a well-formed one
    ([rid] must be a non-negative integer — negative rids are the
    server's own namespace).  Malformed [trace] fields read as [None]
    rather than poisoning the request: tracing is best-effort metadata,
    never a reason to reject a decodable request. *)

val request_verb : request -> string
(** The wire verb of a request — the same string its JSONL line's
    ["req"] field carries. *)

val request_index : request -> int
(** A dense small-int key per verb (order of the [request] type), for
    int-keyed sketches; {!undecodable_index} extends it with the
    pseudo-verb for undecodable lines. *)

val verb_of_index : int -> string
(** Inverse of {!request_index} ∪ {!undecodable_index}; out-of-range
    indices print as ["verb#N"]. *)

val undecodable_index : int
(** The pseudo-verb index the server charges undecodable lines to. *)

val response_to_json : id:int -> response -> Jsonx.t
val response_of_json : Jsonx.t -> (int * response, string) result

val is_push : Jsonx.t -> bool
(** [true] for pushed stream lines (["ev"] present, no ["id"]) — see the
    framing rule above. *)

val request_of_op :
  nodes:int ->
  edges:int ->
  live:int list ->
  failed:int list ->
  Op.t ->
  request option
(** Reduce a fuzz op to a live request against the current service
    state, with [Fuzz.replay]'s exact semantics: [live] is the sorted
    live channel-id list, [failed] the sorted failed-edge list.  [None]
    when the op is a no-op there (terminate/chqos on an empty live set,
    fail/repair with no edges, admit on a sub-2-node network). *)

val op_of_request : nodes:int -> request -> Op.t option
(** Print a request back into the closed op language — the inverse of
    {!request_of_op} up to re-reduction: reducing the returned op on the
    same state yields the original request.  [nodes] inverts the admit
    dst skew.  [None] for requests outside the language (stats,
    subscribe, …), QoS specs not in [Fuzz.qos_palette], and admits whose
    endpoints are not wire-valid for [nodes]. *)
