type address = [ `Unix of string | `Tcp of string * int ]

(* One client connection: partial-line input buffer, the pending output
   queue, and the stream subscriptions this connection asked for. *)
type conn = {
  fd : Unix.file_descr;  (* non-blocking from accept onwards *)
  inbuf : Buffer.t;
  (* Framed lines waiting for the socket: the dispatch path only ever
     enqueues here; the select loop performs the actual writes when the
     fd is ready.  [out_off] is the already-written prefix of the queue
     head, [out_bytes] the total backlog. *)
  outq : string Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  max_pending : int;
  peer : string;
  mutable want_trace : bool;
  mutable want_heartbeat : bool;
  mutable alive : bool;
  (* When [select] marked this fd readable: the start of the queue
     stage.  Lines drained later out of the same chunk correctly charge
     the earlier lines' processing time to their queue wait. *)
  mutable ready_at : float;
}

type state = {
  listen_fd : Unix.file_descr;
  broker : Serve_broker.t;
  reqtrace : Reqtrace.t;
  c_reaped : Metrics.counter;
  c_undecodable : Metrics.counter;
  max_pending : int;  (* per-connection output backlog cap, bytes *)
  mutable anon_rids : int; (* server-assigned rids for untraced requests *)
  mutable conns : conn list;
  mutable running : bool;
  log : string -> unit;
}

let unlink_quietly path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let bind_listener ?(backlog = 64) (addr : address) =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    unlink_quietly path;
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd backlog;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let ip =
      if host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd backlog;
    fd

(* Queue one framed line for [conn].  The dispatch path never touches
   the socket — the select loop owns the writes — so one stuck peer can
   stall only its own stream, never the daemon.  A subscriber whose
   backlog exceeds [max_pending] bytes is cut loose instead of holding
   the daemon's memory hostage; the loop reaps it. *)
let send conn line =
  if conn.alive then begin
    let data = line ^ "\n" in
    Queue.add data conn.outq;
    conn.out_bytes <- conn.out_bytes + String.length data;
    if conn.out_bytes > conn.max_pending then conn.alive <- false
  end

let send_json conn doc = send conn (Jsonx.to_string doc)

let pending conn = not (Queue.is_empty conn.outq)

(* Write as much queued output as the socket accepts right now.  The fd
   is non-blocking: a full socket buffer ends the drain until select
   reports the fd writable again.  A peer that vanished mid-write
   (EPIPE with SIGPIPE ignored, reset, …) just marks the connection
   dead. *)
let try_flush conn =
  let rec go () =
    match Queue.peek_opt conn.outq with
    | None -> ()
    | Some data -> (
      let len = String.length data - conn.out_off in
      match Unix.write_substring conn.fd data conn.out_off len with
      | n ->
        conn.out_bytes <- conn.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop conn.outq);
          conn.out_off <- 0;
          go ()
        end
        else conn.out_off <- conn.out_off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (_, _, _) -> conn.alive <- false)
  in
  if conn.alive then go ()

(* Bounded final drain, for shutdown: give queued replies (the
   Shutting_down acknowledgement in particular) a moment to reach their
   peers before the fd closes.  Bounded, so a stuck peer cannot wedge
   shutdown. *)
let drain_conn ?(timeout = 1.0) conn =
  let deadline = Clock.now () +. timeout in
  let rec go () =
    if conn.alive && pending conn && Clock.now () < deadline then begin
      (match Unix.select [] [ conn.fd ] [] 0.05 with
      | _, _ :: _, _ -> try_flush conn
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let broadcast t pred line =
  List.iter (fun c -> if pred c then send c line) t.conns

let close_conn t conn =
  if conn.alive then conn.alive <- false;
  (match Unix.close conn.fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  t.log (Printf.sprintf "serve: %s disconnected" conn.peer)

(* Subscribe and shutdown are connection-level — everything else goes
   through the broker. *)
let connection_response t conn (req : Serve_proto.request) =
  match req with
  | Serve_proto.Subscribe stream ->
    let name =
      match stream with
      | `Trace ->
        conn.want_trace <- true;
        "trace"
      | `Heartbeat ->
        conn.want_heartbeat <- true;
        "heartbeat"
    in
    Some (Serve_proto.Subscribed { stream = name })
  | Serve_proto.Shutdown ->
    t.running <- false;
    Some Serve_proto.Shutting_down
  | Serve_proto.Admit _ | Serve_proto.Teardown _ | Serve_proto.Change_qos _
  | Serve_proto.Fail _ | Serve_proto.Repair _ | Serve_proto.Set_auto _
  | Serve_proto.Redistribute | Serve_proto.Stats | Serve_proto.Snapshot
  | Serve_proto.Metrics | Serve_proto.Ping ->
    None

let record_request t ~ctx ~verb ~verb_index ~ok ~queue_s ~parse_s ~service_s
    ~redist_s ~write_s =
  let rid =
    match ctx with
    | Some { Reqtrace.rid; _ } -> rid
    | None ->
      (* Untraced requests get server-assigned rids in the negative
         namespace, so they never collide with client-assigned ones. *)
      t.anon_rids <- t.anon_rids + 1;
      -t.anon_rids
  in
  let stages =
    [
      (Reqtrace.Queue, queue_s);
      (Reqtrace.Parse, parse_s);
      (Reqtrace.Service, service_s);
      (Reqtrace.Redistribute, redist_s);
      (Reqtrace.Write, write_s);
    ]
  in
  let total_s = queue_s +. parse_s +. service_s +. redist_s +. write_s in
  Reqtrace.observe t.reqtrace ~rid ~verb ~verb_index ~ok ~stages ~total_s

(* One request line, decomposed into the five-stage anatomy on the
   monotonic clock: queue (readable -> here), parse, service (broker
   dispatch minus redistribution), redistribute, write (reply framing
   and enqueue — the socket write itself belongs to the select loop).
   Undecodable lines get the full treatment too — the protocol reserves
   reply id 0 for them, and they are charged to the [undecodable]
   pseudo-verb so a misbehaving client shows up in the anatomy. *)
let handle_line t conn line =
  if String.trim line <> "" then begin
    let t_start = Clock.now () in
    let queue_s = Float.max 0. (t_start -. conn.ready_at) in
    let decoded =
      match Jsonx.of_string line with
      | exception Jsonx.Parse_error msg -> Error ("parse error: " ^ msg)
      | doc -> (
        match Serve_proto.request_of_json doc with
        | Error msg -> Error msg
        | Ok (id, req) -> Ok (id, req, Serve_proto.trace_ctx_of_json doc))
    in
    let parse_s = Float.max 0. (Clock.now () -. t_start) in
    match decoded with
    | Error message ->
      Metrics.incr t.c_undecodable;
      let t_w0 = Clock.now () in
      send_json conn
        (Serve_proto.response_to_json ~id:0 (Serve_proto.Error_reply { message }));
      let write_s = Float.max 0. (Clock.now () -. t_w0) in
      record_request t ~ctx:None ~verb:"undecodable"
        ~verb_index:Serve_proto.undecodable_index ~ok:false ~queue_s ~parse_s
        ~service_s:0. ~redist_s:0. ~write_s
    | Ok (id, req, ctx) ->
      let resp, service_s, redist_s =
        match connection_response t conn req with
        | Some resp -> (resp, 0., 0.)
        | None -> Serve_broker.dispatch_timed t.broker req
      in
      let ok =
        match resp with Serve_proto.Error_reply _ -> false | _ -> true
      in
      let t_w0 = Clock.now () in
      send_json conn (Serve_proto.response_to_json ~id resp);
      let write_s = Float.max 0. (Clock.now () -. t_w0) in
      record_request t ~ctx ~verb:(Serve_proto.request_verb req)
        ~verb_index:(Serve_proto.request_index req) ~ok ~queue_s ~parse_s
        ~service_s ~redist_s ~write_s
  end

(* Drain every complete line out of the connection's input buffer. *)
let drain_lines t conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length data in
  let start = ref 0 in
  (try
     for i = 0 to n - 1 do
       if data.[i] = '\n' then begin
         handle_line t conn (String.sub data !start (i - !start));
         start := i + 1;
         if not t.running then raise Exit
       end
     done
   with Exit -> ());
  if !start < n then Buffer.add_substring conn.inbuf data !start (n - !start)

let read_chunk t conn scratch =
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> conn.alive <- false
  | n ->
    Buffer.add_subbytes conn.inbuf scratch 0 n;
    drain_lines t conn
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ()
  | exception Unix.Unix_error (_, _, _) -> conn.alive <- false

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix client"
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | exception Unix.Unix_error (_, _, _) -> "client"

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    let conn =
      {
        fd;
        inbuf = Buffer.create 256;
        outq = Queue.create ();
        out_off = 0;
        out_bytes = 0;
        max_pending = t.max_pending;
        peer = peer_name fd;
        want_trace = false;
        want_heartbeat = false;
        alive = true;
        ready_at = Clock.now ();
      }
    in
    t.conns <- conn :: t.conns;
    t.log (Printf.sprintf "serve: accepted %s" conn.peer)
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ()

let run ?config ?(wall_every = 1.0) ?backlog ?slo ?trace_file ?slow_dir
    ?(max_pending_bytes = 4 * 1024 * 1024) ?(log = ignore) (addr : address) net
    =
  if max_pending_bytes <= 0 then
    invalid_arg "Serve_server.run: max_pending_bytes <= 0";
  if wall_every <= 0. then invalid_arg "Serve_server.run: wall_every <= 0";
  (* A subscriber that disappears mid-broadcast must not kill the
     daemon with SIGPIPE; [send] handles the EPIPE instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listener ?backlog addr in
  (* The server owns its observability context: the tracer's sink
     broadcasts events to subscribed connections as they happen (and
     tees to [trace_file] when given), the metrics registry backs the
     [metrics] request. *)
  let t_ref = ref None in
  let trace_oc = Option.map open_out trace_file in
  let trace_sink =
    {
      Trace.emit =
        (fun time ev ->
          let line = Jsonx.to_string (Trace.to_json ~time ev) in
          (match trace_oc with
          | Some oc ->
            output_string oc line;
            output_char oc '\n'
          | None -> ());
          match !t_ref with
          | None -> ()
          | Some t -> broadcast t (fun c -> c.want_trace) line);
      close = (fun () -> Option.iter close_out trace_oc);
    }
  in
  (* A flight ring rides along when slow-request dumps are wanted: each
     exemplar dump then carries the events preceding the slow request,
     not just its own breakdown. *)
  let flight =
    match slow_dir with None -> None | Some _ -> Some (Flight.create ())
  in
  let obs =
    Obs.create ~metrics:(Metrics.create ())
      ~trace:(Trace.create trace_sink) ?flight ()
  in
  let broker = Serve_broker.create ?config ~obs net in
  (match slow_dir with
  | None -> ()
  | Some dir -> (
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  (* Slow-request exemplars: the breakdown lands in the trace as a
     [slow_request] note; the first few also dump the flight ring so
     the events leading up to the miss are preserved. *)
  let slow_dumped = ref 0 in
  let on_exemplar ex =
    Obs.event obs (Reqtrace.exemplar_note ex);
    match slow_dir with
    | Some dir when !slow_dumped < 8 ->
      incr slow_dumped;
      let path =
        Filename.concat dir
          (Printf.sprintf "slow_%d.jsonl" (abs ex.Reqtrace.ex_rid))
      in
      Flight.dump_to_file (Obs.flight obs) path
    | Some _ | None -> ()
  in
  let reqtrace = Reqtrace.create ?slo ~on_exemplar obs in
  Serve_broker.set_slo_source broker (fun () -> Reqtrace.slo_counts reqtrace);
  let t =
    {
      listen_fd;
      broker;
      reqtrace;
      c_reaped = Obs.counter obs "serve.reaped";
      c_undecodable = Obs.counter obs "serve.undecodable";
      max_pending = max_pending_bytes;
      anon_rids = 0;
      conns = [];
      running = true;
      log;
    }
  in
  t_ref := Some t;
  (* Wall heartbeats: the Snapshot emitter pushes Trace.Heartbeat lines
     to subscribed connections on a monotonic cadence. *)
  let hb =
    Snapshot.create ~wall_every
      ~sink:(fun line -> broadcast t (fun c -> c.want_heartbeat) line)
      ()
  in
  Snapshot.start hb (Serve_broker.snapshot_source broker);
  (match addr with
  | `Unix path -> log (Printf.sprintf "serve: listening on %s" path)
  | `Tcp (host, port) -> log (Printf.sprintf "serve: listening on %s:%d" host port));
  let scratch = Bytes.create 65536 in
  let hb_last = ref (Clock.now ()) in
  while t.running do
    let now = Clock.now () in
    if now -. !hb_last >= wall_every then begin
      Snapshot.wall_tick hb;
      hb_last := now
    end;
    let timeout = Float.max 0.01 (wall_every -. (now -. !hb_last)) in
    let fds = listen_fd :: List.map (fun c -> c.fd) t.conns in
    (* Only fds with a backlog enter the write set: an always-writable
       idle socket would turn every select into a busy spin. *)
    let wfds =
      List.filter_map
        (fun c -> if c.alive && pending c then Some c.fd else None)
        t.conns
    in
    (match Unix.select fds wfds [] timeout with
    | readable, writable, _ ->
      List.iter
        (fun conn ->
          if conn.alive && List.memq conn.fd writable then try_flush conn)
        t.conns;
      if List.mem listen_fd readable then accept_conn t;
      let became_ready = Clock.now () in
      List.iter
        (fun conn ->
          if t.running && conn.alive && List.memq conn.fd readable then begin
            conn.ready_at <- became_ready;
            read_chunk t conn scratch
          end)
        t.conns;
      (* Replies generated this iteration go out now when the socket has
         room; anything left waits for write-readiness above. *)
      List.iter
        (fun conn -> if conn.alive && pending conn then try_flush conn)
        t.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let dead, live = List.partition (fun c -> not c.alive) t.conns in
    t.conns <- live;
    List.iter
      (fun c ->
        Metrics.incr t.c_reaped;
        close_conn t c)
      dead
  done;
  List.iter
    (fun c ->
      drain_conn c;
      close_conn t c)
    t.conns;
  t.conns <- [];
  (match Unix.close listen_fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  (match addr with `Unix path -> unlink_quietly path | `Tcp _ -> ());
  (* Flush the trace tee (the tracer's close is idempotent). *)
  Obs.close obs;
  log (Printf.sprintf "serve: shut down after %d requests"
         (Serve_broker.requests broker));
  Serve_broker.requests broker
