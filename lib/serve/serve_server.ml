type address = [ `Unix of string | `Tcp of string * int ]

(* One client connection: partial-line input buffer plus the stream
   subscriptions this connection asked for. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  peer : string;
  mutable want_trace : bool;
  mutable want_heartbeat : bool;
  mutable alive : bool;
}

type state = {
  listen_fd : Unix.file_descr;
  broker : Serve_broker.t;
  mutable conns : conn list;
  mutable running : bool;
  log : string -> unit;
}

let unlink_quietly path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let bind_listener ?(backlog = 64) (addr : address) =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    unlink_quietly path;
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd backlog;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let ip =
      if host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd backlog;
    fd

(* Blocking full write of one framed line.  A peer that vanished
   mid-write (EPIPE with SIGPIPE ignored, reset, …) just marks the
   connection dead; the loop reaps it. *)
let send conn line =
  if conn.alive then begin
    let data = line ^ "\n" in
    let len = String.length data in
    let rec go off =
      if off < len then
        match Unix.write_substring conn.fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) -> conn.alive <- false
    in
    go 0
  end

let send_json conn doc = send conn (Jsonx.to_string doc)

let broadcast t pred line =
  List.iter (fun c -> if pred c then send c line) t.conns

let close_conn t conn =
  if conn.alive then conn.alive <- false;
  (match Unix.close conn.fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  t.log (Printf.sprintf "serve: %s disconnected" conn.peer)

(* One parsed request line.  Subscribe and shutdown are connection-level
   — everything else goes through the broker. *)
let handle_request t conn id (req : Serve_proto.request) =
  match req with
  | Serve_proto.Subscribe stream ->
    let name =
      match stream with
      | `Trace ->
        conn.want_trace <- true;
        "trace"
      | `Heartbeat ->
        conn.want_heartbeat <- true;
        "heartbeat"
    in
    send_json conn
      (Serve_proto.response_to_json ~id (Serve_proto.Subscribed { stream = name }))
  | Serve_proto.Shutdown ->
    send_json conn (Serve_proto.response_to_json ~id Serve_proto.Shutting_down);
    t.running <- false
  | _ ->
    let resp = Serve_broker.dispatch t.broker req in
    send_json conn (Serve_proto.response_to_json ~id resp)

let handle_line t conn line =
  if String.trim line <> "" then
    match Jsonx.of_string line with
    | exception Jsonx.Parse_error msg ->
      (* No id to echo — the protocol reserves 0 for undecodable lines. *)
      send_json conn
        (Serve_proto.response_to_json ~id:0
           (Serve_proto.Error_reply { message = "parse error: " ^ msg }))
    | doc -> (
      match Serve_proto.request_of_json doc with
      | Error msg ->
        send_json conn
          (Serve_proto.response_to_json ~id:0
             (Serve_proto.Error_reply { message = msg }))
      | Ok (id, req) -> handle_request t conn id req)

(* Drain every complete line out of the connection's input buffer. *)
let drain_lines t conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length data in
  let start = ref 0 in
  (try
     for i = 0 to n - 1 do
       if data.[i] = '\n' then begin
         handle_line t conn (String.sub data !start (i - !start));
         start := i + 1;
         if not t.running then raise Exit
       end
     done
   with Exit -> ());
  if !start < n then Buffer.add_substring conn.inbuf data !start (n - !start)

let read_chunk t conn scratch =
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> conn.alive <- false
  | n ->
    Buffer.add_subbytes conn.inbuf scratch 0 n;
    drain_lines t conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> conn.alive <- false

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix client"
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | exception Unix.Unix_error (_, _, _) -> "client"

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    let conn =
      {
        fd;
        inbuf = Buffer.create 256;
        peer = peer_name fd;
        want_trace = false;
        want_heartbeat = false;
        alive = true;
      }
    in
    t.conns <- conn :: t.conns;
    t.log (Printf.sprintf "serve: accepted %s" conn.peer)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run ?config ?(wall_every = 1.0) ?backlog ?(log = ignore) (addr : address) net
    =
  if wall_every <= 0. then invalid_arg "Serve_server.run: wall_every <= 0";
  (* A subscriber that disappears mid-broadcast must not kill the
     daemon with SIGPIPE; [send] handles the EPIPE instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listener ?backlog addr in
  (* The server owns its observability context: the tracer's sink
     broadcasts events to subscribed connections as they happen, the
     metrics registry backs the [metrics] request. *)
  let t_ref = ref None in
  let trace_sink =
    {
      Trace.emit =
        (fun time ev ->
          match !t_ref with
          | None -> ()
          | Some t ->
            let line = Jsonx.to_string (Trace.to_json ~time ev) in
            broadcast t (fun c -> c.want_trace) line);
      close = (fun () -> ());
    }
  in
  let obs =
    Obs.create ~metrics:(Metrics.create ()) ~trace:(Trace.create trace_sink) ()
  in
  let broker = Serve_broker.create ?config ~obs net in
  let t = { listen_fd; broker; conns = []; running = true; log } in
  t_ref := Some t;
  (* Wall heartbeats: the Snapshot emitter pushes Trace.Heartbeat lines
     to subscribed connections on a monotonic cadence. *)
  let hb =
    Snapshot.create ~wall_every
      ~sink:(fun line -> broadcast t (fun c -> c.want_heartbeat) line)
      ()
  in
  Snapshot.start hb (Serve_broker.snapshot_source broker);
  (match addr with
  | `Unix path -> log (Printf.sprintf "serve: listening on %s" path)
  | `Tcp (host, port) -> log (Printf.sprintf "serve: listening on %s:%d" host port));
  let scratch = Bytes.create 65536 in
  let hb_last = ref (Clock.now ()) in
  while t.running do
    let now = Clock.now () in
    if now -. !hb_last >= wall_every then begin
      Snapshot.wall_tick hb;
      hb_last := now
    end;
    let timeout = Float.max 0.01 (wall_every -. (now -. !hb_last)) in
    let fds = listen_fd :: List.map (fun c -> c.fd) t.conns in
    (match Unix.select fds [] [] timeout with
    | readable, _, _ ->
      if List.mem listen_fd readable then accept_conn t;
      List.iter
        (fun conn ->
          if t.running && conn.alive && List.memq conn.fd readable then
            read_chunk t conn scratch)
        t.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let dead, live = List.partition (fun c -> not c.alive) t.conns in
    t.conns <- live;
    List.iter (close_conn t) dead
  done;
  List.iter (close_conn t) t.conns;
  t.conns <- [];
  (match Unix.close listen_fd with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  (match addr with `Unix path -> unlink_quietly path | `Tcp _ -> ());
  log (Printf.sprintf "serve: shut down after %d requests"
         (Serve_broker.requests broker));
  Serve_broker.requests broker
