(** The QoS-broker daemon: a single-threaded event loop framing
    {!Serve_broker} over a stream socket.

    One process, one {!Drcomm} service, many clients.  Requests are
    JSONL lines ({!Serve_proto}); the loop multiplexes connections with
    [select], so a request is dispatched atomically with respect to
    every other — clients never observe a half-applied operation.

    Connection-level requests are handled here rather than in the
    broker: [subscribe] flags the connection to receive pushed trace
    events and/or wall heartbeats (broadcast as they happen, interleaved
    between replies); [shutdown] answers [shutting_down], then closes
    every connection and returns from {!run}.

    All sockets are non-blocking and every reply or broadcast line is
    queued per connection; the select loop writes queues out as fds
    become writable.  The dispatch path therefore never blocks on a
    peer — a subscriber that stops reading stalls only its own stream,
    and is reaped once its backlog passes [max_pending_bytes].

    The server builds its own observability context: a live metrics
    registry (served by the [metrics] request) and a tracer whose sink
    broadcasts to subscribed connections.  Wall heartbeats ride the
    {!Snapshot} emitter on a monotonic {!Clock} cadence. *)

type address = [ `Unix of string | `Tcp of string * int ]
(** [`Unix path] is unlinked (if stale) before binding and again on
    shutdown.  [`Tcp (host, port)] binds with [SO_REUSEADDR]. *)

val run :
  ?config:Drcomm.Config.t ->
  ?wall_every:float ->
  ?backlog:int ->
  ?slo:float ->
  ?trace_file:string ->
  ?slow_dir:string ->
  ?max_pending_bytes:int ->
  ?log:(string -> unit) ->
  address ->
  Net_state.t ->
  int
(** Serve until a client sends [shutdown]; returns the number of
    requests dispatched.  [wall_every] (default 1.0 s, monotonic) is the
    heartbeat cadence for subscribed connections.  [max_pending_bytes]
    (default 4 MiB, must be positive) caps one connection's queued
    output; a slower-than-its-stream subscriber is disconnected at the
    cap rather than allowed to grow the queue without bound.  [log]
    (default silent) receives one human-readable line per lifecycle
    event — binds, accepts, disconnects; the server never writes to
    stdout itself.  Raises [Unix.Unix_error] when the socket cannot be
    bound.

    {b Request tracing} (DESIGN.md §15).  Every request — decodable or
    not — is decomposed into queue/parse/service/redistribute/write
    stage durations on the monotonic clock and fed to a {!Reqtrace}
    recorder: per-stage [req.*] timers in the metrics registry, the
    [req.slow_verbs] sketch, and [Req_begin]/[Req_stage]/[Req_end]
    trace events for subscribers.  [trace_file] tees the full trace
    stream to a JSONL file (closed on shutdown).  [slo] (seconds) arms
    SLO counting — good/bad totals and a rolling burn rate ride the
    snapshot heartbeats — and emits a [slow_request] note per miss;
    with [slow_dir] (created if missing) the first few misses also dump
    a flight-recorder ring of the events preceding them to
    [slow_<rid>.jsonl] files there. *)
