type t = {
  service : Drcomm.t;
  net : Net_state.t;
  obs : Obs.t;
  (* wire id (Channel_id.to_int) -> live handle.  Entries leave on
     teardown and when a failure drops the connection. *)
  channels : (int, Drcomm.channel_id) Hashtbl.t;
  mutable requests : int;
  req_counter : Metrics.counter;
  err_counter : Metrics.counter;
  mutable snap : Snapshot.t;
  mutable snap_last : string option;
  (* The server's request tracer owns the SLO counts; the broker only
     forwards them into its snapshot source.  Default: no SLO. *)
  mutable slo_fn : unit -> int * int;
}

let create ?config ?obs net =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let service = Drcomm.create ?config ~obs net in
  let t =
    {
      service;
      net;
      obs;
      channels = Hashtbl.create 1024;
      requests = 0;
      req_counter = Obs.counter obs "serve.requests";
      err_counter = Obs.counter obs "serve.errors";
      snap = Snapshot.create ~sink:ignore ();
      snap_last = None;
      slo_fn = (fun () -> (0, 0));
    }
  in
  (* Trace timestamps and snapshot sim_time advance with the request
     stream: byte-reproducible for equal request sequences, unlike a
     wall clock. *)
  Obs.set_clock obs (fun () -> float_of_int t.requests);
  (* Request tracing wants the redistribution slice of each dispatch;
     two clock reads per churn event are noise next to socket I/O. *)
  Drcomm.set_time_redistribution service true;
  t

let service t = t.service
let obs t = t.obs
let requests t = t.requests

let live_channels t =
  List.sort compare
    (List.map Drcomm.Channel_id.to_int (Drcomm.active_channels t.service))

let failed_edges t = List.sort compare (Net_state.failed_edges t.net)

let snapshot_source t =
  {
    Snapshot.sim_time = (fun () -> float_of_int t.requests);
    events = (fun () -> t.requests);
    live_by_level =
      (fun () ->
        Drcomm.level_histogram t.service ~max_levels:Serve_proto.max_levels);
    queue_size = (fun () -> 0);
    queue_footprint = (fun () -> 0);
    hot = (fun () -> Drcomm.hot_links t.service ~k:5);
    counters = (fun () -> Metrics.counter_values (Obs.metrics t.obs));
    slo = (fun () -> t.slo_fn ());
  }

let set_slo_source t fn = t.slo_fn <- fn

let node_count t = Graph.node_count (Net_state.graph t.net)
let edge_count t = Graph.edge_count (Net_state.graph t.net)

let error fmt = Printf.ksprintf (fun message -> Serve_proto.Error_reply { message }) fmt

let lookup t channel k =
  match Hashtbl.find_opt t.channels channel with
  | Some id when Drcomm.mem t.service id -> k id
  | Some _ | None -> error "unknown channel %d" channel

let reject_reason = function
  | Drcomm.No_primary_route -> "no_primary_route"
  | Drcomm.No_backup_route -> "no_backup_route"

let apply t (req : Serve_proto.request) : Serve_proto.response =
  match req with
  | Serve_proto.Admit { src; dst; qos } ->
    let n = node_count t in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      error "node out of range [0, %d): src=%d dst=%d" n src dst
    else if src = dst then error "src = dst (%d)" src
    else (
      match
        Drcomm.admit ~want_indirect:false ~want_report:false t.service ~src ~dst
          ~qos
      with
      | Drcomm.Admitted (id, _) ->
        let channel = Drcomm.Channel_id.to_int id in
        Hashtbl.replace t.channels channel id;
        Serve_proto.Admitted { channel; level = Drcomm.level t.service id }
      | Drcomm.Rejected reason ->
        Serve_proto.Admit_rejected { reason = reject_reason reason })
  | Serve_proto.Teardown { channel } ->
    lookup t channel (fun id ->
        ignore (Drcomm.terminate ~report:false t.service id);
        Hashtbl.remove t.channels channel;
        Serve_proto.Torn_down { channel })
  | Serve_proto.Change_qos { channel; qos } ->
    lookup t channel (fun id ->
        let accepted =
          match Drcomm.change_qos t.service id qos with
          | `Changed -> true
          | `Rejected -> false
        in
        Serve_proto.Qos_changed { channel; accepted })
  | Serve_proto.Fail { edge } ->
    let ec = edge_count t in
    if edge < 0 || edge >= ec then error "edge out of range [0, %d): %d" ec edge
    else begin
      let fresh = not (Net_state.edge_failed t.net edge) in
      let r = Drcomm.fail_edge t.service edge in
      let recoveries =
        List.map
          (fun { Drcomm.victim; outcome } ->
            let channel = Drcomm.Channel_id.to_int victim in
            let rw_outcome, rw_reprotected =
              match outcome with
              | `Switched_to_backup b -> (`Switched, b)
              | `Dropped -> (`Dropped, false)
              | `Restored b -> (`Restored, b)
              | `Backup_lost b -> (`Backup_lost, b)
            in
            (* A victim the service no longer carries leaves the wire
               table too (drops, and restorations that re-admitted the
               connection under a fresh handle). *)
            if not (Drcomm.mem t.service victim) then
              Hashtbl.remove t.channels channel;
            { Serve_proto.rw_channel = channel; rw_outcome; rw_reprotected })
          r.Drcomm.recoveries
      in
      Serve_proto.Edge_failed { edge; fresh; recoveries }
    end
  | Serve_proto.Repair { edge } ->
    let ec = edge_count t in
    if edge < 0 || edge >= ec then error "edge out of range [0, %d): %d" ec edge
    else begin
      let was_failed = Net_state.edge_failed t.net edge in
      Drcomm.repair_edge t.service edge;
      Serve_proto.Edge_repaired { edge; was_failed }
    end
  | Serve_proto.Set_auto on ->
    let was = Drcomm.auto_redistribute t.service in
    Drcomm.set_auto_redistribute t.service on;
    (* Same contract as the fuzzer's replay: switching redistribution
       back on re-establishes the water-filling fixed point, so a fuzz
       script replayed over the wire walks the same state trajectory. *)
    if on && not was then Drcomm.redistribute_all t.service;
    Serve_proto.Auto_set { on }
  | Serve_proto.Redistribute ->
    Drcomm.redistribute_all t.service;
    Serve_proto.Redistributed
  | Serve_proto.Stats ->
    Serve_proto.Stats_reply
      {
        live = Drcomm.count t.service;
        total_reserved = Drcomm.total_reserved t.service;
        average_kbps = Drcomm.average_bandwidth t.service;
        dropped = Drcomm.dropped_connections t.service;
        failed_edges = Net_state.failed_count t.net;
        requests = t.requests;
      }
  | Serve_proto.Snapshot -> (
    t.snap_last <- None;
    Snapshot.tick t.snap;
    match t.snap_last with
    | Some line -> (
      match Jsonx.of_string line with
      | doc -> Serve_proto.Snapshot_reply doc
      | exception Jsonx.Parse_error msg -> error "snapshot serialisation: %s" msg)
    | None -> error "snapshot emitter produced no line")
  | Serve_proto.Metrics -> Serve_proto.Metrics_reply (Obs.metrics_json t.obs)
  | Serve_proto.Ping -> Serve_proto.Pong
  | Serve_proto.Subscribe _ -> error "subscribe is a connection-level request"
  | Serve_proto.Shutdown -> error "shutdown is a connection-level request"

let dispatch t req =
  t.requests <- t.requests + 1;
  Metrics.incr t.req_counter;
  let resp =
    (* The service validates aggressively ([Invalid_argument],
       [Not_found], invariant [Failure]); a daemon must turn all of
       those into error replies, not die mid-connection. *)
    match apply t req with
    | resp -> resp
    | exception Invalid_argument msg -> error "invalid request: %s" msg
    | exception Not_found -> error "unknown channel"
    | exception Failure msg -> error "request failed: %s" msg
  in
  (match resp with
  | Serve_proto.Error_reply _ -> Metrics.incr t.err_counter
  | _ -> ());
  resp

(* Dispatch plus the stage split request tracing needs: total dispatch
   time, the redistribution slice inside it (differenced off the
   service's armed accumulator), and the remainder as pure service
   time.  Clamped — the accumulator and the outer clock are read at
   slightly different instants. *)
let dispatch_timed t req =
  let r0 = Drcomm.redistribution_seconds t.service in
  let t0 = Clock.now () in
  let resp = dispatch t req in
  let total = Clock.now () -. t0 in
  let redist_s =
    Float.max 0. (Float.min total (Drcomm.redistribution_seconds t.service -. r0))
  in
  (resp, Float.max 0. (total -. redist_s), redist_s)

(* The snapshot emitter's sink writes [snap_last], which needs the
   record — finish initialisation here, in place (the sink and clock
   closures hold this exact record). *)
let create ?config ?obs net =
  let t = create ?config ?obs net in
  t.snap <- Snapshot.create ~sink:(fun line -> t.snap_last <- Some line) ();
  Snapshot.start t.snap (snapshot_source t);
  t
