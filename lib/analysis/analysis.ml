type rates = {
  lambda : float;
  mu : float;
  gamma : float;
  p_f : float;
  p_s : float;
  arrivals : int;
  chain_samples : int;
}

type failure_window = {
  fail_time : float;
  retreats : int;
  upgrades : int;
  activations : int;
  drops : int;
  first_activation_dt : float option;
}

type audit = {
  levels : int;
  rates_used : rates;
  empirical : float array;
  analytic : float array;
  linf : float;
  l1 : float;
}

type span_agg = {
  span_name : string;
  span_count : int;
  span_total_s : float;
  span_self_s : float;
  span_minor_words : float;
  span_major_words : float;
}

type snapshot_point = {
  sn_time : float;
  sn_seq : int;
  sn_events : int;
  sn_d_events : int;
  sn_live : int;
  sn_live_by_level : int list;
  sn_queue : int;
  sn_footprint : int;
  sn_peak_live : int;
  sn_peak_queue : int;
  sn_hot : (int * int) list;
  sn_counters : (string * int) list;
  sn_slo_good : int;
  sn_slo_bad : int;
  sn_slo_burn : float;
}

type heartbeat_point = {
  hb_time : float;
  hb_seq : int;
  hb_wall_s : float;
  hb_d_events : int;
  hb_ops_per_s : float;
  hb_minor_words : float;
  hb_major_words : float;
  hb_heap_words : int;
}

type request_record = {
  rq_rid : int;
  rq_verb : string;
  rq_ok : bool;
  rq_total_s : float;
  rq_stages : (string * float) list;
  rq_has_begin : bool;
  rq_complete : bool;
  rq_client : (string * float * float) option;
}

type stage_stat = {
  st_stage : string;
  st_count : int;
  st_total_s : float;
  st_p50_s : float;
  st_p95_s : float;
  st_p99_s : float;
  st_tail_share : float;
}

(* One channel's replayed belief: current level, when it got there, and
   the full step history (newest first). *)
type chan = {
  mutable c_level : int;
  mutable c_since : float;
  mutable c_steps : (float * int) list;
  mutable c_open : bool;
}

type t = {
  events : (float * Trace.event) array;
  horizon : float;
  chans : (int, chan) Hashtbl.t;
  residence : float array; (* seconds of channel-time at each level *)
  counts : (string * int) list;
  rejects : (string * int) list;
  r : rates;
  fails : float list; (* each in trace order *)
  retreat_ts : float list;
  upgrade_ts : float list;
  activation_ts : float list;
  drop_ts : float list;
  spans : span_agg list;
  max_depth : int;
  snaps : snapshot_point list; (* in trace order *)
  hbs : heartbeat_point list;
  reqs : (int, req_cell) Hashtbl.t;
}

(* One request's replayed belief, keyed by rid; server-side records
   ([Req_begin]/[Req_stage]/[Req_end]) and the client-side [Req_client]
   line land in the same cell, joining the two traces. *)
and req_cell = {
  mutable q_verb : string;
  mutable q_ok : bool;
  mutable q_total : float;
  mutable q_stages : (string * float) list; (* reversed *)
  mutable q_begin : bool;
  mutable q_end : bool;
  mutable q_ends : int;
  mutable q_client : (string * float * float) option;
}

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type span_cell = {
  mutable s_count : int;
  mutable s_total : float;
  mutable s_self : float;
  mutable s_minor : float;
  mutable s_major : float;
}

let of_events evs =
  let events = Array.of_list evs in
  let horizon = Array.fold_left (fun acc (tm, _) -> Float.max acc tm) 0. events in
  let chans = Hashtbl.create 64 in
  let residence = ref (Array.make 16 0.) in
  let max_level = ref (-1) in
  let live = ref 0 in
  let accrue level dt =
    if level > !max_level then max_level := level;
    if level >= Array.length !residence then begin
      let a = Array.make (max (level + 1) (2 * Array.length !residence)) 0. in
      Array.blit !residence 0 a 0 (Array.length !residence);
      residence := a
    end;
    !residence.(level) <- !residence.(level) +. dt
  in
  (* Admission emits the water-filling upgrades for the new channel
     before its own [admit] record, so an unknown channel can first
     appear through a level change: create it at that event's
     [from_level] and let the later [admit] find it already live. *)
  let ensure id ~level ~time =
    match Hashtbl.find_opt chans id with
    | Some c -> c
    | None ->
      accrue level 0.;
      let c = { c_level = level; c_since = time; c_steps = [ (time, level) ]; c_open = true } in
      Hashtbl.replace chans id c;
      incr live;
      c
  in
  let set_level id ~from_level ~to_level ~time =
    let c = ensure id ~level:from_level ~time in
    if c.c_open then begin
      accrue c.c_level (time -. c.c_since);
      c.c_level <- to_level;
      c.c_since <- time;
      c.c_steps <- (time, to_level) :: c.c_steps;
      accrue to_level 0.
    end
  in
  let close id ~time =
    match Hashtbl.find_opt chans id with
    | Some c when c.c_open ->
      accrue c.c_level (time -. c.c_since);
      c.c_open <- false;
      decr live
    | _ -> ()
  in
  let counts = Hashtbl.create 32 in
  let rejects = Hashtbl.create 8 in
  let arrivals = ref 0 in
  let terminations = ref 0 in
  let failures = ref 0 in
  let direct_sum = ref 0 in
  let indirect_sum = ref 0 in
  let chain_samples = ref 0 in
  let fails = ref [] in
  let retreat_ts = ref [] in
  let upgrade_ts = ref [] in
  let activation_ts = ref [] in
  let drop_ts = ref [] in
  let span_cells : (string, span_cell) Hashtbl.t = Hashtbl.create 16 in
  let depth = ref 0 in
  let max_depth = ref 0 in
  let snaps = ref [] in
  let hbs = ref [] in
  let reqs : (int, req_cell) Hashtbl.t = Hashtbl.create 256 in
  let req_cell rid =
    match Hashtbl.find_opt reqs rid with
    | Some c -> c
    | None ->
      let c =
        {
          q_verb = "";
          q_ok = false;
          q_total = 0.;
          q_stages = [];
          q_begin = false;
          q_end = false;
          q_ends = 0;
          q_client = None;
        }
      in
      Hashtbl.replace reqs rid c;
      c
  in
  Array.iter
    (fun (time, ev) ->
      bump counts (Trace.kind ev);
      match ev with
      | Trace.Admit { channel; direct; indirect } ->
        let known =
          match Hashtbl.find_opt chans channel with Some c -> c.c_open | None -> false
        in
        let existing = if known then !live - 1 else !live in
        ignore (ensure channel ~level:0 ~time);
        if time > 0. then begin
          incr arrivals;
          if existing > 0 then begin
            direct_sum := !direct_sum + direct;
            indirect_sum := !indirect_sum + indirect;
            chain_samples := !chain_samples + existing
          end
        end
      | Reject { reason } ->
        bump rejects reason;
        if time > 0. then incr arrivals
      | Terminate { channel } ->
        close channel ~time;
        if time > 0. then incr terminations
      | Upgrade { channel; from_level; to_level } ->
        set_level channel ~from_level ~to_level ~time;
        upgrade_ts := time :: !upgrade_ts
      | Retreat { channel; from_level; to_level } ->
        set_level channel ~from_level ~to_level ~time;
        retreat_ts := time :: !retreat_ts
      | Link_fail _ ->
        incr failures;
        fails := time :: !fails
      | Link_repair _ -> ()
      | Backup_activate _ -> activation_ts := time :: !activation_ts
      | Backup_lost _ -> ()
      | Drop { channel } ->
        close channel ~time;
        drop_ts := time :: !drop_ts
      | Restore _ ->
        (* The channel survives re-establishment; its level history
           continues through the upgrade/retreat events around it. *)
        ()
      | Solve _ -> ()
      | Req_begin { rid; verb } ->
        let c = req_cell rid in
        c.q_begin <- true;
        if c.q_verb = "" then c.q_verb <- verb
      | Req_stage { rid; stage; seconds } ->
        let c = req_cell rid in
        c.q_stages <- (stage, seconds) :: c.q_stages
      | Req_end { rid; verb; ok; total_s } ->
        let c = req_cell rid in
        c.q_verb <- verb;
        c.q_ok <- ok;
        c.q_total <- total_s;
        c.q_end <- true;
        c.q_ends <- c.q_ends + 1
      | Req_client { rid; verb; sched_s; latency_s } ->
        let c = req_cell rid in
        c.q_client <- Some (verb, sched_s, latency_s)
      | Phase_begin _ | Phase_end _ | Note _ -> ()
      | Span_begin _ ->
        incr depth;
        if !depth > !max_depth then max_depth := !depth
      | Span_end { name; total_s; self_s; minor_words; major_words; _ } ->
        if !depth > 0 then decr depth;
        let c =
          match Hashtbl.find_opt span_cells name with
          | Some c -> c
          | None ->
            let c = { s_count = 0; s_total = 0.; s_self = 0.; s_minor = 0.; s_major = 0. } in
            Hashtbl.replace span_cells name c;
            c
        in
        c.s_count <- c.s_count + 1;
        c.s_total <- c.s_total +. total_s;
        c.s_self <- c.s_self +. self_s;
        c.s_minor <- c.s_minor +. minor_words;
        c.s_major <- c.s_major +. major_words
      | Snapshot
          {
            seq;
            events = sn_events;
            d_events;
            live;
            live_by_level;
            queue;
            footprint;
            peak_live;
            peak_queue;
            hot;
            counters;
            slo_good;
            slo_bad;
            slo_burn;
          } ->
        snaps :=
          {
            sn_time = time;
            sn_seq = seq;
            sn_events;
            sn_d_events = d_events;
            sn_live = live;
            sn_live_by_level = live_by_level;
            sn_queue = queue;
            sn_footprint = footprint;
            sn_peak_live = peak_live;
            sn_peak_queue = peak_queue;
            sn_hot = hot;
            sn_counters = counters;
            sn_slo_good = slo_good;
            sn_slo_bad = slo_bad;
            sn_slo_burn = slo_burn;
          }
          :: !snaps
      | Heartbeat { seq; wall_s; d_events; ops_per_s; minor_words; major_words; heap_words }
        ->
        hbs :=
          {
            hb_time = time;
            hb_seq = seq;
            hb_wall_s = wall_s;
            hb_d_events = d_events;
            hb_ops_per_s = ops_per_s;
            hb_minor_words = minor_words;
            hb_major_words = major_words;
            hb_heap_words = heap_words;
          }
          :: !hbs)
    events;
  (* Channels still live at the end of the trace accrue to the horizon. *)
  Hashtbl.iter (fun _ c -> if c.c_open then accrue c.c_level (horizon -. c.c_since)) chans;
  let r =
    let per_time n = if horizon > 0. then float_of_int n /. horizon else 0. in
    let ratio num den = if den > 0 then float_of_int num /. float_of_int den else 0. in
    {
      lambda = per_time !arrivals;
      mu = per_time !terminations;
      gamma = per_time !failures;
      p_f = ratio !direct_sum !chain_samples;
      p_s = ratio !indirect_sum !chain_samples;
      arrivals = !arrivals;
      chain_samples = !chain_samples;
    }
  in
  let spans =
    Hashtbl.fold
      (fun name c acc ->
        {
          span_name = name;
          span_count = c.s_count;
          span_total_s = c.s_total;
          span_self_s = c.s_self;
          span_minor_words = c.s_minor;
          span_major_words = c.s_major;
        }
        :: acc)
      span_cells []
    |> List.sort (fun a b ->
           match Float.compare b.span_self_s a.span_self_s with
           | 0 -> compare a.span_name b.span_name
           | c -> c)
  in
  {
    events;
    horizon;
    chans;
    residence = Array.sub !residence 0 (max 0 (!max_level + 1));
    counts = sorted_counts counts;
    rejects = sorted_counts rejects;
    r;
    fails = List.rev !fails;
    retreat_ts = List.rev !retreat_ts;
    upgrade_ts = List.rev !upgrade_ts;
    activation_ts = List.rev !activation_ts;
    drop_ts = List.rev !drop_ts;
    spans;
    max_depth = !max_depth;
    snaps = List.rev !snaps;
    hbs = List.rev !hbs;
    reqs;
  }

let of_channel ic =
  let evs =
    Jsonx.fold_lines ic ~init:[] ~f:(fun acc ~line doc ->
        match Trace.of_json doc with
        | Ok te -> te :: acc
        | Error message -> raise (Jsonx.Line_error { line; message }))
  in
  of_events (List.rev evs)

let of_file path = In_channel.with_open_text path of_channel

(* ------------------------------------------------------------------ *)
(* Views                                                               *)

let event_count t = Array.length t.events
let horizon t = t.horizon
let event_counts t = t.counts
let rejections t = t.rejects

let channels t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.chans [] |> List.sort compare

let timeline t id =
  match Hashtbl.find_opt t.chans id with
  | None -> []
  | Some c -> List.rev c.c_steps

let residency ?(levels = 0) t =
  let n = max levels (Array.length t.residence) in
  let out = Array.make n 0. in
  Array.blit t.residence 0 out 0 (Array.length t.residence);
  let total = Array.fold_left ( +. ) 0. out in
  if total > 0. then Array.map (fun x -> x /. total) out else out

let estimate_rates t = t.r

let failure_windows ?(window = 10.) t =
  let in_window tf ts = List.filter (fun tv -> tv >= tf && tv <= tf +. window) ts in
  List.map
    (fun tf ->
      let acts = in_window tf t.activation_ts in
      {
        fail_time = tf;
        retreats = List.length (in_window tf t.retreat_ts);
        upgrades = List.length (in_window tf t.upgrade_ts);
        activations = List.length acts;
        drops = List.length (in_window tf t.drop_ts);
        first_activation_dt =
          (match acts with [] -> None | _ -> Some (List.fold_left Float.min infinity acts -. tf));
      })
    t.fails

let audit ?levels ?lambda ?mu ?gamma ?p_f ?p_s t =
  let est = t.r in
  let pick opt v = Option.value ~default:v opt in
  let n = max (Option.value ~default:0 levels) (max 1 (Array.length t.residence)) in
  let rates_used =
    {
      est with
      lambda = pick lambda est.lambda;
      mu = pick mu est.mu;
      gamma = pick gamma est.gamma;
      p_f = pick p_f est.p_f;
      p_s = pick p_s est.p_s;
    }
  in
  let p =
    Model.synthetic ~lambda:rates_used.lambda ~mu:rates_used.mu ~gamma:rates_used.gamma
      ~p_f:rates_used.p_f ~p_s:rates_used.p_s ~levels:n
  in
  let analytic = Ctmc.stationary (Model.build_regularized p) in
  let empirical = residency ~levels:n t in
  let linf = ref 0. and l1 = ref 0. in
  Array.iteri
    (fun i e ->
      let d = Float.abs (e -. analytic.(i)) in
      if d > !linf then linf := d;
      l1 := !l1 +. d)
    empirical;
  { levels = n; rates_used; empirical; analytic; linf = !linf; l1 = !l1 }

let top_spans ?limit t =
  match limit with
  | None -> t.spans
  | Some n -> List.filteri (fun i _ -> i < n) t.spans

let max_span_depth t = t.max_depth

(* ------------------------------------------------------------------ *)
(* Telemetry views                                                     *)

let snapshots t = t.snaps
let heartbeats t = t.hbs

(* Event-dispatch rate between successive snapshots of the same stream:
   streams restart their sequence at 0 per run (a concatenated sweep
   file contains several), so only consecutive points with increasing
   seq and time form an interval. *)
let ops_series t =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let dt = b.sn_time -. a.sn_time in
      let acc =
        if b.sn_seq > a.sn_seq && dt > 0. then
          (b.sn_time, float_of_int (b.sn_events - a.sn_events) /. dt) :: acc
        else acc
      in
      go acc rest
    | _ -> List.rev acc
  in
  go [] t.snaps

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    a.(Array.length a / 2)

let stalls ?(factor = 3.) ?expected t =
  if factor <= 0. then invalid_arg "Analysis.stalls: factor must be positive";
  let rec gaps acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if b.hb_seq > a.hb_seq then (b.hb_wall_s, b.hb_wall_s -. a.hb_wall_s) :: acc
        else acc
      in
      gaps acc rest
    | _ -> List.rev acc
  in
  let gaps = gaps [] t.hbs in
  let expected =
    match expected with Some e -> e | None -> median (List.map snd gaps)
  in
  if expected <= 0. then []
  else List.filter (fun (_, gap) -> gap > factor *. expected) gaps

(* ------------------------------------------------------------------ *)
(* Request anatomy                                                     *)

let requests t =
  Hashtbl.fold (fun rid c acc -> (rid, c) :: acc) t.reqs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (rid, c) ->
         {
           rq_rid = rid;
           rq_verb = c.q_verb;
           rq_ok = c.q_ok;
           rq_total_s = c.q_total;
           rq_stages = List.rev c.q_stages;
           rq_has_begin = c.q_begin;
           rq_complete = c.q_end;
           rq_client = c.q_client;
         })

let request_check t =
  Hashtbl.fold (fun rid c acc -> (rid, c) :: acc) t.reqs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.concat_map (fun (rid, c) ->
         let v = [] in
         let v =
           if c.q_end && not c.q_begin then
             Printf.sprintf "rid %d: req_end without req_begin" rid :: v
           else v
         in
         let v =
           if c.q_ends > 1 then
             Printf.sprintf "rid %d: %d req_end records (rid collision?)" rid
               c.q_ends
             :: v
           else v
         in
         let v =
           List.fold_left
             (fun v (stage, s) ->
               if s < 0. then
                 Printf.sprintf "rid %d: negative %s stage (%g s)" rid stage s
                 :: v
               else v)
             v c.q_stages
         in
         let v =
           if c.q_end && c.q_total < 0. then
             Printf.sprintf "rid %d: negative total (%g s)" rid c.q_total :: v
           else v
         in
         List.rev v)

(* Canonical stage order first ({!Reqtrace.all_stages} is the pipeline
   order), then any stage name the trace invented, by appearance. *)
let stage_order recs =
  let canon = List.map Reqtrace.stage_name Reqtrace.all_stages in
  let extra = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (st, _) ->
          if (not (List.mem st canon)) && not (List.mem st !extra) then
            extra := st :: !extra)
        r.rq_stages)
    recs;
  canon @ List.rev !extra

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let stage_anatomy t =
  let recs = List.filter (fun r -> r.rq_complete) (requests t) in
  match recs with
  | [] -> []
  | recs ->
    let totals =
      Array.of_list (List.map (fun r -> r.rq_total_s) recs)
    in
    Array.sort Float.compare totals;
    let tail_cut = exact_quantile totals 0.99 in
    let tail = List.filter (fun r -> r.rq_total_s >= tail_cut) recs in
    let tail_total =
      List.fold_left (fun acc r -> acc +. r.rq_total_s) 0. tail
    in
    List.filter_map
      (fun stage ->
        let samples =
          List.filter_map (fun r -> List.assoc_opt stage r.rq_stages) recs
        in
        match samples with
        | [] -> None
        | samples ->
          let a = Array.of_list samples in
          Array.sort Float.compare a;
          let tail_stage =
            List.fold_left
              (fun acc r ->
                acc +. Option.value ~default:0. (List.assoc_opt stage r.rq_stages))
              0. tail
          in
          Some
            {
              st_stage = stage;
              st_count = Array.length a;
              st_total_s = Array.fold_left ( +. ) 0. a;
              st_p50_s = exact_quantile a 0.5;
              st_p95_s = exact_quantile a 0.95;
              st_p99_s = exact_quantile a 0.99;
              st_tail_share =
                (if tail_total > 0. then tail_stage /. tail_total else 0.);
            })
      (stage_order recs)

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)

(* Two tracks under one pid: tid 1 carries the profiler spans on their
   wall-time axis, tid 2 carries the simulation (phases as spans, every
   other event as an instant) on simulation time.  The two axes are
   unrelated; the export keeps them on separate tracks precisely so the
   viewer never mixes them.  Timestamps are clamped non-decreasing per
   track so the file loads whatever the trace contains. *)
let to_perfetto t =
  let out = ref [] in
  let push ev = out := ev :: !out in
  let meta ~tid name =
    Jsonx.Obj
      [
        ("name", Jsonx.String (if tid = 0 then "process_name" else "thread_name"));
        ("ph", Jsonx.String "M");
        ("pid", Jsonx.Int 1);
        ("tid", Jsonx.Int tid);
        ("args", Jsonx.Obj [ ("name", Jsonx.String name) ]);
      ]
  in
  push (meta ~tid:0 "drqos trace");
  push (meta ~tid:1 "profiler (wall time)");
  push (meta ~tid:2 "simulation (sim time)");
  let last = [| 0.; 0. |] in
  (* track index 0 = tid 1, 1 = tid 2 *)
  let clamp track ts =
    let ts = if ts < last.(track) then last.(track) else ts in
    last.(track) <- ts;
    ts
  in
  let us x = x *. 1e6 in
  let entry ~name ~ph ~tid ~ts args =
    Jsonx.Obj
      ([
         ("name", Jsonx.String name);
         ("ph", Jsonx.String ph);
         ("pid", Jsonx.Int 1);
         ("tid", Jsonx.Int tid);
         ("ts", Jsonx.Float ts);
       ]
      @ args)
  in
  (* Event fields become Perfetto args; drop the envelope keys. *)
  let args_of ~time ev =
    match Trace.to_json ~time ev with
    | Jsonx.Obj fields ->
      let payload = List.filter (fun (k, _) -> k <> "t" && k <> "ev") fields in
      if payload = [] then [] else [ ("args", Jsonx.Obj payload) ]
    | _ -> []
  in
  Array.iter
    (fun (time, ev) ->
      match ev with
      | Trace.Span_begin { name; wall_s } ->
        push (entry ~name ~ph:"B" ~tid:1 ~ts:(clamp 0 (us wall_s)) [])
      | Span_end { name; wall_s; total_s; self_s; minor_words; major_words } ->
        push
          (entry ~name ~ph:"E" ~tid:1 ~ts:(clamp 0 (us wall_s))
             [
               ( "args",
                 Jsonx.Obj
                   [
                     ("total_s", Jsonx.Float total_s);
                     ("self_s", Jsonx.Float self_s);
                     ("minor_words", Jsonx.Float minor_words);
                     ("major_words", Jsonx.Float major_words);
                   ] );
             ])
      | Phase_begin { name } -> push (entry ~name ~ph:"B" ~tid:2 ~ts:(clamp 1 (us time)) [])
      | Phase_end { name; seconds } ->
        push
          (entry ~name ~ph:"E" ~tid:2 ~ts:(clamp 1 (us time))
             [ ("args", Jsonx.Obj [ ("seconds", Jsonx.Float seconds) ]) ])
      (* Telemetry snapshots render as Perfetto counter tracks, so the
         viewer plots live channels and queue depth as curves over
         simulation time. *)
      | Snapshot { live; queue; footprint; _ } ->
        push
          (entry ~name:"telemetry" ~ph:"C" ~tid:2 ~ts:(clamp 1 (us time))
             [
               ( "args",
                 Jsonx.Obj
                   [
                     ("live", Jsonx.Int live);
                     ("queue", Jsonx.Int queue);
                     ("footprint", Jsonx.Int footprint);
                   ] );
             ])
      (* Everything else renders as an instant event.  Spelled out (not
         [_]) so adding a Trace constructor forces a choice here. *)
      | Admit _ | Reject _ | Terminate _ | Upgrade _ | Retreat _ | Link_fail _
      | Link_repair _ | Backup_activate _ | Backup_lost _ | Drop _ | Restore _
      | Solve _ | Note _ | Heartbeat _ | Req_begin _ | Req_stage _ | Req_end _
      | Req_client _ ->
        push
          (entry ~name:(Trace.kind ev) ~ph:"i" ~tid:2 ~ts:(clamp 1 (us time))
             (("s", Jsonx.String "t") :: args_of ~time ev)))
    t.events;
  Jsonx.Obj [ ("traceEvents", Jsonx.List (List.rev !out)) ]

(* Tail-anatomy export: one thread per stage (pipeline order), requests
   laid end-to-end on a synthetic duration axis — request N starts where
   request N-1's total ended, each stage an "X" complete slice on its
   own track at its offset within the request.  Joined requests add the
   network+queue residual (client latency minus server stage sum) on a
   final track, so the viewer shows where each request's client-observed
   time went, stage by stage, without needing the two traces to share a
   clock origin. *)
let requests_to_perfetto t =
  let recs = List.filter (fun r -> r.rq_complete) (requests t) in
  let stages = stage_order recs in
  let out = ref [] in
  let push ev = out := ev :: !out in
  let meta ~tid name =
    Jsonx.Obj
      [
        ("name", Jsonx.String (if tid = 0 then "process_name" else "thread_name"));
        ("ph", Jsonx.String "M");
        ("pid", Jsonx.Int 1);
        ("tid", Jsonx.Int tid);
        ("args", Jsonx.Obj [ ("name", Jsonx.String name) ]);
      ]
  in
  push (meta ~tid:0 "drqos request anatomy");
  List.iteri (fun i st -> push (meta ~tid:(i + 1) ("stage: " ^ st))) stages;
  let residual_tid = List.length stages + 1 in
  push (meta ~tid:residual_tid "network+queue (client residual)");
  let tid_of st =
    let rec go i = function
      | [] -> residual_tid
      | s :: rest -> if s = st then i else go (i + 1) rest
    in
    go 1 stages
  in
  let us x = x *. 1e6 in
  let base = ref 0. in
  List.iter
    (fun r ->
      let name = if r.rq_verb = "" then "request" else r.rq_verb in
      let off = ref 0. in
      List.iter
        (fun (st, s) ->
          let s = Float.max 0. s in
          push
            (Jsonx.Obj
               [
                 ("name", Jsonx.String name);
                 ("ph", Jsonx.String "X");
                 ("pid", Jsonx.Int 1);
                 ("tid", Jsonx.Int (tid_of st));
                 ("ts", Jsonx.Float (us (!base +. !off)));
                 ("dur", Jsonx.Float (us s));
                 ( "args",
                   Jsonx.Obj
                     [ ("rid", Jsonx.Int r.rq_rid); ("ok", Jsonx.Bool r.rq_ok) ]
                 );
               ]);
          off := !off +. s)
        r.rq_stages;
      (match r.rq_client with
      | Some (_, _, latency_s) when latency_s > !off ->
        push
          (Jsonx.Obj
             [
               ("name", Jsonx.String name);
               ("ph", Jsonx.String "X");
               ("pid", Jsonx.Int 1);
               ("tid", Jsonx.Int residual_tid);
               ("ts", Jsonx.Float (us (!base +. !off)));
               ("dur", Jsonx.Float (us (latency_s -. !off)));
               ("args", Jsonx.Obj [ ("rid", Jsonx.Int r.rq_rid) ]);
             ])
      | Some _ | None -> ());
      let span =
        match r.rq_client with
        | Some (_, _, latency_s) -> Float.max latency_s !off
        | None -> !off
      in
      base := !base +. Float.max span 1e-9)
    recs;
  Jsonx.Obj [ ("traceEvents", Jsonx.List (List.rev !out)) ]
