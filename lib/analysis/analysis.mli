(** Offline analytics over recorded JSONL traces.

    A trace written by [--trace] is replayed event by event
    ({!Trace.of_json} over {!Jsonx.fold_lines}) into derived views the
    paper's evaluation reasons about:

    - per-channel bandwidth-level {e timelines} and the aggregate
      time-weighted {e residency} of channel-time in each level;
    - the rejection breakdown and per-kind event counts;
    - rate estimates [(λ, μ, γ, P_f, P_s)] measured from the trace
      itself;
    - causality {e windows} around each link failure (how many retreats,
      upgrades, backup activations and drops follow, and how fast the
      first activation lands);
    - an {e audit} comparing the empirical residency against the
      analytic stationary vector of the paper's chain
      ({!Model.synthetic} + {!Ctmc.stationary}) for the same rates;
    - profiler views: span aggregates from [Span_end] events and a
      Chrome/Perfetto trace-event export.

    Everything here is a pure function of the trace bytes, so analyses
    are reproducible: same file, same output. *)

type t
(** A replayed trace. *)

val of_events : (float * Trace.event) list -> t
(** Replay an in-memory event list (in trace order). *)

val of_channel : in_channel -> t
(** Stream a JSONL trace.  Raises {!Jsonx.Line_error} on a malformed
    line — both JSON syntax errors and well-formed lines that are not
    trace events ({!Trace.of_json} errors), with the 1-based line
    number. *)

val of_file : string -> t
(** {!of_channel} on a file ([Sys_error] if unreadable). *)

(** {1 Basic views} *)

val event_count : t -> int

val horizon : t -> float
(** Largest event timestamp; [0.] for an empty trace. *)

val event_counts : t -> (string * int) list
(** Events per {!Trace.kind}, name-sorted. *)

val rejections : t -> (string * int) list
(** Rejection count per reason, name-sorted. *)

val channels : t -> int list
(** Every channel id seen, ascending. *)

val timeline : t -> int -> (float * int) list
(** [(time, level)] steps of one channel in time order, starting at its
    first appearance; empty for unknown ids.  A channel first seen
    through a level-change event (admission emits the water-filling
    upgrades {e before} the [admit] record) starts at that event's
    [from_level]. *)

(** {1 Residency} *)

val residency : ?levels:int -> t -> float array
(** Fraction of total channel-time spent at each bandwidth level,
    time-weighted across all channels; live channels are closed at the
    trace horizon.  The array covers the highest level observed (or
    [levels] when larger); all zeros when no channel-time was
    accumulated. *)

(** {1 Rate estimation} *)

type rates = {
  lambda : float;  (** (admits + rejections) at [t > 0] per unit time. *)
  mu : float;  (** terminations at [t > 0] per unit time. *)
  gamma : float;  (** link failures per unit time. *)
  p_f : float;  (** mean fraction of existing channels directly chained. *)
  p_s : float;  (** mean fraction indirectly chained. *)
  arrivals : int;  (** admission attempts behind [lambda]. *)
  chain_samples : int;
      (** channel-pairs behind [p_f]/[p_s]: the sum over measured
          admissions of the live-channel count at that instant. *)
}

val estimate_rates : t -> rates
(** Measured from the trace: only events at [t > 0] count (the bulk
    load happens before the simulation clock starts), and [p_f]/[p_s]
    are ratios of chained-set sizes to the live-channel population at
    each admission.  Load-phase admissions skip the indirect set, so a
    trace dominated by them biases [p_s] low — override it in {!audit}
    when that matters.  All zeros when the trace spans no time. *)

(** {1 Failure causality} *)

type failure_window = {
  fail_time : float;
  retreats : int;
  upgrades : int;
  activations : int;
  drops : int;
  first_activation_dt : float option;
      (** Delay from the failure to the first backup activation inside
          the window; [None] if none landed. *)
}

val failure_windows : ?window:float -> t -> failure_window list
(** One record per [link_fail], counting the response events inside
    [[fail_time, fail_time + window]] (default 10 time units; failure
    handling is immediate in the simulator, so even [window = 0.] sees
    the synchronous response).  Windows of consecutive failures may
    overlap; each event then counts in every window containing it. *)

(** {1 Empirical-vs-analytic audit} *)

type audit = {
  levels : int;
  rates_used : rates;
  empirical : float array;  (** {!residency}, padded to [levels]. *)
  analytic : float array;
      (** stationary vector of the regularised synthetic chain. *)
  linf : float;  (** max_i |empirical_i - analytic_i|. *)
  l1 : float;  (** sum_i |empirical_i - analytic_i|. *)
}

val audit :
  ?levels:int ->
  ?lambda:float ->
  ?mu:float ->
  ?gamma:float ->
  ?p_f:float ->
  ?p_s:float ->
  t ->
  audit
(** Compare the trace's empirical level residency against the paper's
    chain solved for the same parameters: {!estimate_rates} supplies
    every rate not overridden, {!Model.synthetic} builds the chain, and
    {!Ctmc.stationary} on {!Model.build_regularized} solves it.  Raises
    [Invalid_argument] (via {!Model.validate}) if the resulting
    parameters are malformed, e.g. an overridden [p_f + p_s > 1]. *)

(** {1 Profiler views} *)

type span_agg = {
  span_name : string;
  span_count : int;
  span_total_s : float;
  span_self_s : float;
  span_minor_words : float;
  span_major_words : float;
}

val top_spans : ?limit:int -> t -> span_agg list
(** Aggregated [span_end] events, sorted by self time (descending; name
    breaks ties), truncated to [limit] (default all). *)

val max_span_depth : t -> int
(** Deepest [span_begin] nesting observed; [0] for a span-free trace. *)

(** {1 Telemetry views}

    Replayed {!Trace.Snapshot} / {!Trace.Heartbeat} streams (the
    heartbeat JSONL written by [--heartbeat] runs).  A concatenated
    sweep file carries one stream per point; streams are delimited by
    their sequence numbers restarting at 0. *)

type snapshot_point = {
  sn_time : float;  (** simulation time of the tick. *)
  sn_seq : int;
  sn_events : int;
  sn_d_events : int;
  sn_live : int;
  sn_live_by_level : int list;
  sn_queue : int;
  sn_footprint : int;
  sn_peak_live : int;
  sn_peak_queue : int;
  sn_hot : (int * int) list;
  sn_counters : (string * int) list;
  sn_slo_good : int;  (** cumulative in-SLO requests at the tick. *)
  sn_slo_bad : int;
  sn_slo_burn : float;  (** bad fraction over the preceding interval. *)
}

type heartbeat_point = {
  hb_time : float;
  hb_seq : int;
  hb_wall_s : float;
  hb_d_events : int;
  hb_ops_per_s : float;
  hb_minor_words : float;
  hb_major_words : float;
  hb_heap_words : int;
}

val snapshots : t -> snapshot_point list
(** Event-time snapshots in trace order. *)

val heartbeats : t -> heartbeat_point list
(** Wall-clock heartbeats in trace order. *)

val ops_series : t -> (float * float) list
(** Event-dispatch rate over simulation time: one [(time, d_events/dt)]
    point per consecutive snapshot pair of the same stream (sequence
    increasing, time strictly advancing — pairs across stream
    boundaries in a concatenated file are skipped). *)

val stalls : ?factor:float -> ?expected:float -> t -> (float * float) list
(** Wall-clock stalls in the heartbeat stream: [(wall_s, gap)] for every
    inter-heartbeat gap exceeding [factor] (default 3, must be positive)
    times the expected cadence ([expected] seconds; default: the median
    observed gap).  A gapped stream is how a hung or GC-thrashing run
    shows up while the simulation clock stands still.  Empty when fewer
    than two heartbeats of one stream exist. *)

(** {1 Request anatomy}

    Replayed request-tracing records (DESIGN.md §15): the server's
    [Req_begin]/[Req_stage]/[Req_end] trios and the load generator's
    [Req_client] lines join {e by rid} into one record per request, so
    a server trace and a client trace concatenated into one replay
    yield client-observed latency {e and} its server-side stage
    decomposition side by side. *)

type request_record = {
  rq_rid : int;
  rq_verb : string;
  rq_ok : bool;
  rq_total_s : float;  (** server-side stage sum (from [Req_end]). *)
  rq_stages : (string * float) list;  (** stage durations, trace order. *)
  rq_has_begin : bool;
  rq_complete : bool;  (** a [Req_end] was seen. *)
  rq_client : (string * float * float) option;
      (** [(verb, sched_s, latency_s)] from the joined [Req_client]
          line, when the client side of this rid is in the trace. *)
}

(** Per-stage latency anatomy over the completed requests. *)
type stage_stat = {
  st_stage : string;
  st_count : int;
  st_total_s : float;
  st_p50_s : float;  (** exact (sorted-sample) quantiles, not binned. *)
  st_p95_s : float;
  st_p99_s : float;
  st_tail_share : float;
      (** the stage's share of total server time across the {e tail}
          requests (total at or above the p99 of totals) — where the
          p99 mass actually goes. *)
}

val requests : t -> request_record list
(** One record per rid seen, rid-ascending. *)

val request_check : t -> string list
(** Consistency violations, rid-ascending: a [Req_end] without its
    [Req_begin], duplicate [Req_end]s on one rid, negative stage or
    total seconds.  Empty for a well-formed trace — the [latency
    --check] gate. *)

val stage_anatomy : t -> stage_stat list
(** Stats per stage name in pipeline order ({!Reqtrace.all_stages}
    first, unknown names after), over completed requests only; empty
    when the trace carries no [Req_end]. *)

val requests_to_perfetto : t -> Jsonx.t
(** The completed requests as a Chrome/Perfetto document with one
    thread per stage plus a [network+queue] residual track for joined
    requests.  Requests are laid end-to-end on a synthetic axis (each
    starts where the previous one's span ended), so slices show each
    request's anatomy without requiring a shared clock origin. *)

val to_perfetto : t -> Jsonx.t
(** The trace as a Chrome/Perfetto trace-event document
    ([{"traceEvents": [...]}], [ts] in microseconds): profiler spans as
    ["B"]/["E"] pairs on one track (wall time since the profiler epoch),
    simulation phases as ["B"]/["E"], telemetry snapshots as ["C"]
    counter samples (live channels, queue size, footprint) and every
    other event as an instant ["i"] on a second track (simulation time),
    with ["M"] metadata naming both.  Timestamps are clamped
    non-decreasing per track, so the file always loads. *)
