(* Space-saving (Metwally et al.) top-k summaries.  Capacities are small
   (tens of entries), so eviction scans the table instead of maintaining
   a secondary order structure: O(capacity) on a miss-when-full, O(1) on
   the hit path that dominates skewed streams. *)

type cell = { mutable cnt : int; mutable err : int }

type sketch = {
  s_reg : t option; (* enabled-ness follows the registry when present *)
  s_on : bool; (* standalone sketches carry their own flag *)
  cap : int;
  cells : (int, cell) Hashtbl.t;
  mutable total : int;
}

and t = { mutable on : bool; sketches : (string, sketch) Hashtbl.t }

let sketch_on s = match s.s_reg with Some r -> r.on | None -> s.s_on

let create ?(enabled = true) () = { on = enabled; sketches = Hashtbl.create 8 }

let disabled = create ~enabled:false ()

let enabled t = t.on

let default_capacity = 64

let make_sketch ?(capacity = default_capacity) ~reg ~on () =
  if capacity < 1 then invalid_arg "Heavy: capacity >= 1";
  { s_reg = reg; s_on = on; cap = capacity; cells = Hashtbl.create 16; total = 0 }

let sketch ?capacity t name =
  match Hashtbl.find_opt t.sketches name with
  | Some s -> s
  | None ->
    let s = make_sketch ?capacity ~reg:(Some t) ~on:false () in
    Hashtbl.replace t.sketches name s;
    s

let standalone ?capacity ~enabled () =
  make_sketch ?capacity ~reg:None ~on:enabled ()

let sketch_enabled = sketch_on

(* Deterministic victim: smallest count, smallest key within a tie —
   equal streams evict identically whatever the hash order is. *)
let min_cell s =
  Hashtbl.fold
    (fun key cell acc ->
      match acc with
      | Some (bk, bc) when bc.cnt < cell.cnt || (bc.cnt = cell.cnt && bk < key) ->
        acc
      | _ -> Some (key, cell))
    s.cells None

let insert_weighted s key ~cnt ~err =
  match Hashtbl.find_opt s.cells key with
  | Some c ->
    c.cnt <- c.cnt + cnt;
    c.err <- c.err + err
  | None ->
    if Hashtbl.length s.cells < s.cap then
      Hashtbl.replace s.cells key { cnt; err }
    else begin
      match min_cell s with
      | None -> Hashtbl.replace s.cells key { cnt; err }
      | Some (victim, vc) ->
        (* The evicted minimum bounds how often [key] may already have
           occurred unseen: inherit it as both count floor and error. *)
        Hashtbl.remove s.cells victim;
        Hashtbl.replace s.cells key { cnt = cnt + vc.cnt; err = err + vc.cnt }
    end

let offer ?(by = 1) s key =
  if sketch_on s then begin
    if by < 0 then invalid_arg "Heavy.offer: negative weight";
    if by > 0 then begin
      s.total <- s.total + by;
      insert_weighted s key ~cnt:by ~err:0
    end
  end

let total s = s.total
let tracked s = Hashtbl.length s.cells
let capacity s = s.cap

let estimate s key =
  Option.map (fun c -> (c.cnt, c.err)) (Hashtbl.find_opt s.cells key)

let top ?k s =
  let all =
    Hashtbl.fold (fun key c acc -> (key, c.cnt, c.err) :: acc) s.cells []
    |> List.sort (fun (ka, ca, _) (kb, cb, _) ->
           match compare cb ca with 0 -> compare ka kb | o -> o)
  in
  match k with
  | None -> all
  | Some k -> List.filteri (fun i _ -> i < k) all

let merge_sketch_into ~into src =
  if sketch_on into && into != src then begin
    into.total <- into.total + src.total;
    (* Largest first, so the keys most likely to survive claim slots
       before the tail starts evicting. *)
    List.iter
      (fun (key, cnt, err) -> insert_weighted into key ~cnt ~err)
      (top src)
  end

let merge_into ~into src =
  if into.on then begin
    if into == src then invalid_arg "Heavy.merge_into: registry merged into itself";
    Hashtbl.iter
      (fun name (s : sketch) ->
        merge_sketch_into ~into:(sketch ~capacity:s.cap into name) s)
      src.sketches
  end

let sketch_json s =
  Jsonx.Obj
    [
      ("total", Jsonx.Int s.total);
      ("tracked", Jsonx.Int (tracked s));
      ("capacity", Jsonx.Int s.cap);
      ( "top",
        Jsonx.List
          (List.map
             (fun (key, cnt, err) ->
               Jsonx.List [ Jsonx.Int key; Jsonx.Int cnt; Jsonx.Int err ])
             (top s)) );
    ]

let snapshot t =
  let sorted =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.sketches []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Jsonx.Obj
    [
      ("enabled", Jsonx.Bool t.on);
      ("sketches", Jsonx.Obj (List.map (fun (n, s) -> (n, sketch_json s)) sorted));
    ]
