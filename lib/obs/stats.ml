module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min_value t = t.lo
  let max_value t = t.hi

  let confidence_interval ?(z = 1.96) t =
    if t.n < 2 then (mean t, mean t)
    else begin
      let half = z *. stddev t /. sqrt (float_of_int t.n) in
      (t.mean -. half, t.mean +. half)
    end

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      { n; mean; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
    end
end

module Timed_average = struct
  type t = {
    start : float;
    mutable last_time : float;
    mutable current : float;
    mutable weighted_sum : float;
  }

  let create ~start ~value =
    { start; last_time = start; current = value; weighted_sum = 0. }

  let update t ~time ~value =
    if time < t.last_time then invalid_arg "Timed_average.update: time went backwards";
    t.weighted_sum <- t.weighted_sum +. (t.current *. (time -. t.last_time));
    t.last_time <- time;
    t.current <- value

  let value t = t.current

  let average t ~upto =
    if upto < t.last_time then invalid_arg "Timed_average.average: upto in the past";
    let span = upto -. t.start in
    if span <= 0. then t.current
    else (t.weighted_sum +. (t.current *. (upto -. t.last_time))) /. span

  let elapsed t ~upto = upto -. t.start
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    if buckets < 1 then invalid_arg "Histogram.create: need at least one bucket";
    if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let bucket_index t x =
    let b = Array.length t.counts in
    if x < t.lo then 0
    else if x >= t.hi then b - 1
    else
      let i = int_of_float (float_of_int b *. (x -. t.lo) /. (t.hi -. t.lo)) in
      min (b - 1) i

  let add t x =
    t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_counts t = Array.copy t.counts

  let bucket_bounds t i =
    let b = Array.length t.counts in
    if i < 0 || i >= b then invalid_arg "Histogram.bucket_bounds: out of range";
    let width = (t.hi -. t.lo) /. float_of_int b in
    (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

  let quantile t q =
    if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q in [0, 1]";
    if t.total = 0 then nan
    else begin
      let target = q *. float_of_int t.total in
      (* [acc' > 0] keeps [q = 0] (target 0) from stopping on empty
         leading buckets: the 0-quantile is the first {e populated}
         bucket, i.e. the minimum's bucket. *)
      let rec scan i acc =
        if i >= Array.length t.counts - 1 then i
        else
          let acc' = acc + t.counts.(i) in
          if acc' > 0 && float_of_int acc' >= target then i else scan (i + 1) acc'
      in
      let i = scan 0 0 in
      let lo, hi = bucket_bounds t i in
      (lo +. hi) /. 2.
    end

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun i c ->
        let lo, hi = bucket_bounds t i in
        Format.fprintf ppf "[%8.1f, %8.1f) %d@," lo hi c)
      t.counts;
    Format.fprintf ppf "@]"
end
