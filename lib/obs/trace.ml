type event =
  | Admit of { channel : int; direct : int; indirect : int }
  | Reject of { reason : string }
  | Terminate of { channel : int }
  | Upgrade of { channel : int; from_level : int; to_level : int }
  | Retreat of { channel : int; from_level : int; to_level : int }
  | Link_fail of { edge : int }
  | Link_repair of { edge : int }
  | Backup_activate of { channel : int; reprotected : bool }
  | Backup_lost of { channel : int; replaced : bool }
  | Drop of { channel : int }
  | Restore of { channel : int; with_backup : bool }
  | Solve of { what : string; states : int; seconds : float }
  | Phase_begin of { name : string }
  | Phase_end of { name : string; seconds : float }
  | Note of { name : string; fields : (string * Jsonx.t) list }

let kind = function
  | Admit _ -> "admit"
  | Reject _ -> "reject"
  | Terminate _ -> "terminate"
  | Upgrade _ -> "upgrade"
  | Retreat _ -> "retreat"
  | Link_fail _ -> "link_fail"
  | Link_repair _ -> "link_repair"
  | Backup_activate _ -> "backup_activate"
  | Backup_lost _ -> "backup_lost"
  | Drop _ -> "drop"
  | Restore _ -> "restore"
  | Solve _ -> "solve"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Note _ -> "note"

let fields = function
  | Admit { channel; direct; indirect } ->
    [
      ("channel", Jsonx.Int channel);
      ("direct", Jsonx.Int direct);
      ("indirect", Jsonx.Int indirect);
    ]
  | Reject { reason } -> [ ("reason", Jsonx.String reason) ]
  | Terminate { channel } -> [ ("channel", Jsonx.Int channel) ]
  | Upgrade { channel; from_level; to_level }
  | Retreat { channel; from_level; to_level } ->
    [
      ("channel", Jsonx.Int channel);
      ("from", Jsonx.Int from_level);
      ("to", Jsonx.Int to_level);
    ]
  | Link_fail { edge } | Link_repair { edge } -> [ ("edge", Jsonx.Int edge) ]
  | Backup_activate { channel; reprotected } ->
    [ ("channel", Jsonx.Int channel); ("reprotected", Jsonx.Bool reprotected) ]
  | Backup_lost { channel; replaced } ->
    [ ("channel", Jsonx.Int channel); ("replaced", Jsonx.Bool replaced) ]
  | Drop { channel } -> [ ("channel", Jsonx.Int channel) ]
  | Restore { channel; with_backup } ->
    [ ("channel", Jsonx.Int channel); ("with_backup", Jsonx.Bool with_backup) ]
  | Solve { what; states; seconds } ->
    [
      ("what", Jsonx.String what);
      ("states", Jsonx.Int states);
      ("seconds", Jsonx.Float seconds);
    ]
  | Phase_begin { name } -> [ ("name", Jsonx.String name) ]
  | Phase_end { name; seconds } ->
    [ ("name", Jsonx.String name); ("seconds", Jsonx.Float seconds) ]
  | Note { name; fields } -> ("name", Jsonx.String name) :: fields

let to_json ~time ev =
  Jsonx.Obj (("t", Jsonx.Float time) :: ("ev", Jsonx.String (kind ev)) :: fields ev)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = { emit : float -> event -> unit; close : unit -> unit }

let null_sink = { emit = (fun _ _ -> ()); close = (fun () -> ()) }

let jsonl_sink oc =
  {
    emit =
      (fun time ev ->
        Jsonx.output oc (to_json ~time ev);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let console_sink ?(oc = stdout) () =
  {
    emit =
      (fun time ev ->
        let detail =
          fields ev
          |> List.map (fun (k, v) ->
                 let s =
                   match v with
                   | Jsonx.String s -> s
                   | other -> Jsonx.to_string other
                 in
                 Printf.sprintf "%s=%s" k s)
          |> String.concat " "
        in
        Printf.fprintf oc "[%12.4f] %-16s %s\n" time (kind ev) detail);
    close = (fun () -> flush oc);
  }

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)

type t = { on : bool; sink : sink }

let disabled = { on = false; sink = null_sink }

let create sink = { on = true; sink }

let enabled t = t.on

let emit t ~time ev = if t.on then t.sink.emit time ev

let close t = t.sink.close ()
