type event =
  | Admit of { channel : int; direct : int; indirect : int }
  | Reject of { reason : string }
  | Terminate of { channel : int }
  | Upgrade of { channel : int; from_level : int; to_level : int }
  | Retreat of { channel : int; from_level : int; to_level : int }
  | Link_fail of { edge : int }
  | Link_repair of { edge : int }
  | Backup_activate of { channel : int; reprotected : bool }
  | Backup_lost of { channel : int; replaced : bool }
  | Drop of { channel : int }
  | Restore of { channel : int; with_backup : bool }
  | Solve of { what : string; states : int; seconds : float }
  | Phase_begin of { name : string }
  | Phase_end of { name : string; seconds : float }
  | Span_begin of { name : string; wall_s : float }
  | Span_end of {
      name : string;
      wall_s : float;
      total_s : float;
      self_s : float;
      minor_words : float;
      major_words : float;
    }
  | Note of { name : string; fields : (string * Jsonx.t) list }
  | Req_begin of { rid : int; verb : string }
  | Req_stage of { rid : int; stage : string; seconds : float }
  | Req_end of { rid : int; verb : string; ok : bool; total_s : float }
  | Req_client of {
      rid : int;
      verb : string;
      sched_s : float;
      latency_s : float;
    }
  | Snapshot of {
      seq : int;
      events : int;
      d_events : int;
      live : int;
      live_by_level : int list;
      queue : int;
      footprint : int;
      peak_live : int;
      peak_queue : int;
      hot : (int * int) list;
      counters : (string * int) list;
      slo_good : int;
      slo_bad : int;
      slo_burn : float;
    }
  | Heartbeat of {
      seq : int;
      wall_s : float;
      d_events : int;
      ops_per_s : float;
      minor_words : float;
      major_words : float;
      heap_words : int;
    }

let kind = function
  | Admit _ -> "admit"
  | Reject _ -> "reject"
  | Terminate _ -> "terminate"
  | Upgrade _ -> "upgrade"
  | Retreat _ -> "retreat"
  | Link_fail _ -> "link_fail"
  | Link_repair _ -> "link_repair"
  | Backup_activate _ -> "backup_activate"
  | Backup_lost _ -> "backup_lost"
  | Drop _ -> "drop"
  | Restore _ -> "restore"
  | Solve _ -> "solve"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Note _ -> "note"
  | Req_begin _ -> "req_begin"
  | Req_stage _ -> "req_stage"
  | Req_end _ -> "req_end"
  | Req_client _ -> "req_client"
  | Snapshot _ -> "snapshot"
  | Heartbeat _ -> "heartbeat"

let fields = function
  | Admit { channel; direct; indirect } ->
    [
      ("channel", Jsonx.Int channel);
      ("direct", Jsonx.Int direct);
      ("indirect", Jsonx.Int indirect);
    ]
  | Reject { reason } -> [ ("reason", Jsonx.String reason) ]
  | Terminate { channel } -> [ ("channel", Jsonx.Int channel) ]
  | Upgrade { channel; from_level; to_level }
  | Retreat { channel; from_level; to_level } ->
    [
      ("channel", Jsonx.Int channel);
      ("from", Jsonx.Int from_level);
      ("to", Jsonx.Int to_level);
    ]
  | Link_fail { edge } | Link_repair { edge } -> [ ("edge", Jsonx.Int edge) ]
  | Backup_activate { channel; reprotected } ->
    [ ("channel", Jsonx.Int channel); ("reprotected", Jsonx.Bool reprotected) ]
  | Backup_lost { channel; replaced } ->
    [ ("channel", Jsonx.Int channel); ("replaced", Jsonx.Bool replaced) ]
  | Drop { channel } -> [ ("channel", Jsonx.Int channel) ]
  | Restore { channel; with_backup } ->
    [ ("channel", Jsonx.Int channel); ("with_backup", Jsonx.Bool with_backup) ]
  | Solve { what; states; seconds } ->
    [
      ("what", Jsonx.String what);
      ("states", Jsonx.Int states);
      ("seconds", Jsonx.Float seconds);
    ]
  | Phase_begin { name } -> [ ("name", Jsonx.String name) ]
  | Phase_end { name; seconds } ->
    [ ("name", Jsonx.String name); ("seconds", Jsonx.Float seconds) ]
  | Span_begin { name; wall_s } ->
    [ ("name", Jsonx.String name); ("wall_s", Jsonx.Float wall_s) ]
  | Span_end { name; wall_s; total_s; self_s; minor_words; major_words } ->
    [
      ("name", Jsonx.String name);
      ("wall_s", Jsonx.Float wall_s);
      ("total_s", Jsonx.Float total_s);
      ("self_s", Jsonx.Float self_s);
      ("minor_words", Jsonx.Float minor_words);
      ("major_words", Jsonx.Float major_words);
    ]
  | Note { name; fields } -> ("name", Jsonx.String name) :: fields
  | Req_begin { rid; verb } ->
    [ ("rid", Jsonx.Int rid); ("verb", Jsonx.String verb) ]
  | Req_stage { rid; stage; seconds } ->
    [
      ("rid", Jsonx.Int rid);
      ("stage", Jsonx.String stage);
      ("seconds", Jsonx.Float seconds);
    ]
  | Req_end { rid; verb; ok; total_s } ->
    [
      ("rid", Jsonx.Int rid);
      ("verb", Jsonx.String verb);
      ("ok", Jsonx.Bool ok);
      ("total_s", Jsonx.Float total_s);
    ]
  | Req_client { rid; verb; sched_s; latency_s } ->
    [
      ("rid", Jsonx.Int rid);
      ("verb", Jsonx.String verb);
      ("sched_s", Jsonx.Float sched_s);
      ("latency_s", Jsonx.Float latency_s);
    ]
  | Snapshot
      {
        seq;
        events;
        d_events;
        live;
        live_by_level;
        queue;
        footprint;
        peak_live;
        peak_queue;
        hot;
        counters;
        slo_good;
        slo_bad;
        slo_burn;
      } ->
    [
      ("seq", Jsonx.Int seq);
      ("events", Jsonx.Int events);
      ("d_events", Jsonx.Int d_events);
      ("live", Jsonx.Int live);
      ("levels", Jsonx.List (List.map (fun n -> Jsonx.Int n) live_by_level));
      ("queue", Jsonx.Int queue);
      ("footprint", Jsonx.Int footprint);
      ("peak_live", Jsonx.Int peak_live);
      ("peak_queue", Jsonx.Int peak_queue);
      ( "hot",
        Jsonx.List
          (List.map
             (fun (key, cnt) -> Jsonx.List [ Jsonx.Int key; Jsonx.Int cnt ])
             hot) );
      ("counters", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) counters));
      ("slo_good", Jsonx.Int slo_good);
      ("slo_bad", Jsonx.Int slo_bad);
      ("slo_burn", Jsonx.Float slo_burn);
    ]
  | Heartbeat { seq; wall_s; d_events; ops_per_s; minor_words; major_words; heap_words }
    ->
    [
      ("seq", Jsonx.Int seq);
      ("wall_s", Jsonx.Float wall_s);
      ("d_events", Jsonx.Int d_events);
      ("ops_per_s", Jsonx.Float ops_per_s);
      ("minor_words", Jsonx.Float minor_words);
      ("major_words", Jsonx.Float major_words);
      ("heap_words", Jsonx.Int heap_words);
    ]

let to_json ~time ev =
  Jsonx.Obj (("t", Jsonx.Float time) :: ("ev", Jsonx.String (kind ev)) :: fields ev)

(* ------------------------------------------------------------------ *)
(* Parsing (the inverse of [to_json], consumed by lib/analysis)         *)

let of_json doc =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Jsonx.member name doc with
    | None -> Error (Printf.sprintf "missing field %S" name)
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))
  in
  let int name = field name Jsonx.to_int in
  let num name = field name Jsonx.to_float in
  let str name = field name Jsonx.to_str in
  let bool name =
    field name (function Jsonx.Bool b -> Some b | _ -> None)
  in
  let* time = num "t" in
  let* k = str "ev" in
  let* ev =
    match k with
    | "admit" ->
      let* channel = int "channel" in
      let* direct = int "direct" in
      let* indirect = int "indirect" in
      Ok (Admit { channel; direct; indirect })
    | "reject" ->
      let* reason = str "reason" in
      Ok (Reject { reason })
    | "terminate" ->
      let* channel = int "channel" in
      Ok (Terminate { channel })
    | "upgrade" | "retreat" ->
      let* channel = int "channel" in
      let* from_level = int "from" in
      let* to_level = int "to" in
      Ok
        (if k = "upgrade" then Upgrade { channel; from_level; to_level }
         else Retreat { channel; from_level; to_level })
    | "link_fail" | "link_repair" ->
      let* edge = int "edge" in
      Ok (if k = "link_fail" then Link_fail { edge } else Link_repair { edge })
    | "backup_activate" ->
      let* channel = int "channel" in
      let* reprotected = bool "reprotected" in
      Ok (Backup_activate { channel; reprotected })
    | "backup_lost" ->
      let* channel = int "channel" in
      let* replaced = bool "replaced" in
      Ok (Backup_lost { channel; replaced })
    | "drop" ->
      let* channel = int "channel" in
      Ok (Drop { channel })
    | "restore" ->
      let* channel = int "channel" in
      let* with_backup = bool "with_backup" in
      Ok (Restore { channel; with_backup })
    | "solve" ->
      let* what = str "what" in
      let* states = int "states" in
      let* seconds = num "seconds" in
      Ok (Solve { what; states; seconds })
    | "phase_begin" ->
      let* name = str "name" in
      Ok (Phase_begin { name })
    | "phase_end" ->
      let* name = str "name" in
      let* seconds = num "seconds" in
      Ok (Phase_end { name; seconds })
    | "span_begin" ->
      let* name = str "name" in
      let* wall_s = num "wall_s" in
      Ok (Span_begin { name; wall_s })
    | "span_end" ->
      let* name = str "name" in
      let* wall_s = num "wall_s" in
      let* total_s = num "total_s" in
      let* self_s = num "self_s" in
      let* minor_words = num "minor_words" in
      let* major_words = num "major_words" in
      Ok (Span_end { name; wall_s; total_s; self_s; minor_words; major_words })
    | "req_begin" ->
      let* rid = int "rid" in
      let* verb = str "verb" in
      Ok (Req_begin { rid; verb })
    | "req_stage" ->
      let* rid = int "rid" in
      let* stage = str "stage" in
      let* seconds = num "seconds" in
      Ok (Req_stage { rid; stage; seconds })
    | "req_end" ->
      let* rid = int "rid" in
      let* verb = str "verb" in
      let* ok = bool "ok" in
      let* total_s = num "total_s" in
      Ok (Req_end { rid; verb; ok; total_s })
    | "req_client" ->
      let* rid = int "rid" in
      let* verb = str "verb" in
      let* sched_s = num "sched_s" in
      let* latency_s = num "latency_s" in
      Ok (Req_client { rid; verb; sched_s; latency_s })
    | "snapshot" ->
      let int_list name =
        field name (function
          | Jsonx.List l ->
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | x :: rest -> (
                match Jsonx.to_int x with
                | Some n -> go (n :: acc) rest
                | None -> None)
            in
            go [] l
          | _ -> None)
      in
      let pair_list name =
        field name (function
          | Jsonx.List l ->
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | Jsonx.List [ a; b ] :: rest -> (
                match (Jsonx.to_int a, Jsonx.to_int b) with
                | Some x, Some y -> go ((x, y) :: acc) rest
                | _ -> None)
              | _ -> None
            in
            go [] l
          | _ -> None)
      in
      let counter_obj name =
        field name (function
          | Jsonx.Obj kvs ->
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | (k, v) :: rest -> (
                match Jsonx.to_int v with
                | Some n -> go ((k, n) :: acc) rest
                | None -> None)
            in
            go [] kvs
          | _ -> None)
      in
      let* seq = int "seq" in
      let* events = int "events" in
      let* d_events = int "d_events" in
      let* live = int "live" in
      let* live_by_level = int_list "levels" in
      let* queue = int "queue" in
      let* footprint = int "footprint" in
      let* peak_live = int "peak_live" in
      let* peak_queue = int "peak_queue" in
      let* hot = pair_list "hot" in
      let* counters = counter_obj "counters" in
      (* SLO fields arrived with request tracing (DESIGN.md §15); they
         default to zero so pre-tracing recorded streams still replay. *)
      let opt_or default read name =
        match Jsonx.member name doc with
        | None -> Ok default
        | Some _ -> read name
      in
      let* slo_good = opt_or 0 int "slo_good" in
      let* slo_bad = opt_or 0 int "slo_bad" in
      let* slo_burn = opt_or 0. num "slo_burn" in
      Ok
        (Snapshot
           {
             seq;
             events;
             d_events;
             live;
             live_by_level;
             queue;
             footprint;
             peak_live;
             peak_queue;
             hot;
             counters;
             slo_good;
             slo_bad;
             slo_burn;
           })
    | "heartbeat" ->
      let* seq = int "seq" in
      let* wall_s = num "wall_s" in
      let* d_events = int "d_events" in
      let* ops_per_s = num "ops_per_s" in
      let* minor_words = num "minor_words" in
      let* major_words = num "major_words" in
      let* heap_words = int "heap_words" in
      Ok
        (Heartbeat
           { seq; wall_s; d_events; ops_per_s; minor_words; major_words; heap_words })
    | "note" ->
      let* name = str "name" in
      let fields =
        match doc with
        | Jsonx.Obj fs ->
          List.filter (fun (key, _) -> key <> "t" && key <> "ev" && key <> "name") fs
        | _ -> []
      in
      Ok (Note { name; fields })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok (time, ev)

(* One sample per constructor.  Extend this list together with the type:
   the round-trip test in test_obs.ml iterates it, and [of_json] must
   parse every sample back field-by-field, so a constructor added
   without serialisation (or without a sample) fails CI. *)
let all_samples =
  [
    Admit { channel = 3; direct = 2; indirect = 5 };
    Reject { reason = "no_primary_route" };
    Terminate { channel = 3 };
    Upgrade { channel = 1; from_level = 0; to_level = 4 };
    Retreat { channel = 2; from_level = 7; to_level = 0 };
    Link_fail { edge = 17 };
    Link_repair { edge = 17 };
    Backup_activate { channel = 4; reprotected = false };
    Backup_lost { channel = 4; replaced = true };
    Drop { channel = 9 };
    Restore { channel = 9; with_backup = true };
    Solve { what = "ctmc.stationary"; states = 9; seconds = 0.125 };
    Phase_begin { name = "measure" };
    Phase_end { name = "measure"; seconds = 1.5 };
    Span_begin { name = "engine.run"; wall_s = 0.25 };
    Span_end
      {
        name = "engine.run";
        wall_s = 0.75;
        total_s = 0.5;
        self_s = 0.375;
        minor_words = 1024.;
        major_words = 128.;
      };
    Note { name = "custom"; fields = [ ("k", Jsonx.Int 7) ] };
    Req_begin { rid = 42; verb = "admit" };
    Req_stage { rid = 42; stage = "service"; seconds = 0.0025 };
    Req_end { rid = 42; verb = "admit"; ok = true; total_s = 0.004 };
    Req_client { rid = 42; verb = "admit"; sched_s = 1.25; latency_s = 0.006 };
    Snapshot
      {
        seq = 2;
        events = 1200;
        d_events = 300;
        live = 41;
        live_by_level = [ 5; 0; 36 ];
        queue = 7;
        footprint = 16;
        peak_live = 44;
        peak_queue = 12;
        hot = [ (17, 120); (3, 99) ];
        counters = [ ("drcomm.admits", 40); ("engine.events", 300) ];
        slo_good = 38;
        slo_bad = 2;
        slo_burn = 0.05;
      };
    Heartbeat
      {
        seq = 1;
        wall_s = 2.5;
        d_events = 5000;
        ops_per_s = 2000.;
        minor_words = 1.5e6;
        major_words = 4096.;
        heap_words = 262144;
      };
  ]

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = { emit : float -> event -> unit; close : unit -> unit }

let null_sink = { emit = (fun _ _ -> ()); close = (fun () -> ()) }

let jsonl_sink oc =
  {
    emit =
      (fun time ev ->
        Jsonx.output oc (to_json ~time ev);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let console_sink ?(oc = stdout) () =
  {
    emit =
      (fun time ev ->
        let detail =
          fields ev
          |> List.map (fun (k, v) ->
                 let s =
                   match v with
                   | Jsonx.String s -> s
                   | other -> Jsonx.to_string other
                 in
                 Printf.sprintf "%s=%s" k s)
          |> String.concat " "
        in
        Printf.fprintf oc "[%12.4f] %-16s %s\n" time (kind ev) detail);
    close = (fun () -> flush oc);
  }

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)

type t = { on : bool; sink : sink; mutable closed : bool }

let disabled = { on = false; sink = null_sink; closed = false }

let create sink = { on = true; sink; closed = false }

let enabled t = t.on

let emit t ~time ev = if t.on then t.sink.emit time ev

(* Idempotent: the CLI and bench harness guard sinks with both
   [Fun.protect] and [at_exit], so a normal path closes twice. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    t.sink.close ()
  end
