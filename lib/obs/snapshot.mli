(** Periodic run-telemetry heartbeats, streamed as trace JSONL.

    An emitter turns live simulation state (read through a {!source} of
    accessors) into {!Trace.Snapshot} lines on an event-time cadence
    and, optionally, {!Trace.Heartbeat} lines on a wall-clock cadence:

    - {e event-time snapshots} ([sim_every] simulation-time units,
      ticked by {!Engine}'s heartbeat hook) carry ops, live connections
      by QoS level, queue size/footprint, sampled high watermarks,
      hottest links, and counter deltas — all derived from simulation
      state only, so equal runs produce byte-identical streams whatever
      [--jobs] is;
    - {e wall heartbeats} ([wall_every] seconds) add real throughput and
      GC rate (minor/major allocation, heap size).  They carry
      wall-clock values and are excluded from determinism gates.

    The sink receives one serialised JSONL line per tick (no trailing
    newline); {!Analysis} and [drqos_cli top] replay the stream. *)

type source = {
  sim_time : unit -> float;
  events : unit -> int;  (** monotone dispatched-event count. *)
  live_by_level : unit -> int array;
  queue_size : unit -> int;
  queue_footprint : unit -> int;
  hot : unit -> (int * int) list;  (** hottest links, hottest first. *)
  counters : unit -> (string * int) list;
      (** name-sorted cumulative registry counters. *)
  slo : unit -> int * int;
      (** cumulative SLO [(good, bad)] request counts for this run.
          The emitter differences successive reads into the snapshot's
          rolling burn rate; counts must be per-run (not
          registry-cumulative) so the stream stays byte-identical
          across worker-pool widths.  [(0, 0)] when no SLO applies. *)
}

type t

val create : ?sim_every:float -> ?wall_every:float -> sink:(string -> unit) -> unit -> t
(** An emitter with the given cadences ([sim_every] in simulation time
    units, [wall_every] in seconds; each optional, raising
    [Invalid_argument] when non-positive).  Call {!start} before
    ticking. *)

val sim_every : t -> float option
val wall_every : t -> float option

val start : t -> source -> unit
(** Attach the accessors and reset deltas, peaks and sequence numbers;
    the first {!tick} reports deltas relative to this instant. *)

val tick : t -> unit
(** Emit one event-time {!Trace.Snapshot} line (no-op before
    {!start}). *)

val wall_tick : t -> unit
(** Emit one wall-clock {!Trace.Heartbeat} line (no-op before
    {!start}). *)

val emitted : t -> int
(** Total lines emitted (snapshots + heartbeats). *)
