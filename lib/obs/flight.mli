(** Crash flight recorder: a bounded ring of the most recent trace
    events.

    The recorder retains the last-N [(time, event)] pairs even when the
    trace sink is off — {!Obs.tracing} reports true whenever a recorder
    is attached, so instrumented call sites keep constructing events and
    {!Obs.event} routes them here.  Nothing is written anywhere until
    {!dump}: the black box only surfaces on a crash (the
    {!Obs.install}/[Fun.protect] path) or an invariant violation
    ([lib/check]).

    Dumps are plain trace JSONL (each retained event through
    {!Trace.to_json}, prefixed by one [note] line with the drop count),
    so [drqos_cli analyze] and {!Analysis.of_file} replay them
    directly. *)

type t

val disabled : t
(** The shared no-op recorder: {!enabled} is false, {!record} is one
    load and one branch. *)

val create : ?capacity:int -> unit -> t
(** A live recorder retaining the last [capacity] (default 1024)
    events. *)

val enabled : t -> bool

val record : t -> time:float -> Trace.event -> unit
(** Append one event, evicting the oldest when full. *)

val size : t -> int
(** Events currently retained ([<= capacity]). *)

val capacity : t -> int

val seen : t -> int
(** Total events ever recorded; [seen - size] were dropped. *)

val events : t -> (float * Trace.event) list
(** Retained events, oldest first. *)

val clear : t -> unit

val dump : t -> out_channel -> unit
(** Write the black box as trace JSONL: a [note] header line
    ([name = "flight_recorder"], retained/seen/dropped counts) followed
    by the retained events in order. *)

val dump_events : (float * Trace.event) list -> out_channel -> unit
(** {!dump} for an event list captured earlier (e.g. a fuzz failure's
    black box after further replays overwrote the recorder). *)

val dump_to_file : t -> string -> unit
(** {!dump} to a fresh file. *)
