type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  spans : Span.t;
  heavy : Heavy.t;
  flight : Flight.t;
  mutable flight_dump : string option;
  mutable flight_dumped : bool;
  mutable clock : unit -> float;
}

let zero_clock () = 0.

let null =
  {
    metrics = Metrics.disabled;
    trace = Trace.disabled;
    spans = Span.disabled;
    heavy = Heavy.disabled;
    flight = Flight.disabled;
    flight_dump = None;
    flight_dumped = false;
    clock = zero_clock;
  }

let create ?(metrics = Metrics.disabled) ?(trace = Trace.disabled)
    ?(spans = Span.disabled) ?(heavy = Heavy.disabled)
    ?(flight = Flight.disabled) () =
  {
    metrics;
    trace;
    spans;
    heavy;
    flight;
    flight_dump = None;
    flight_dumped = false;
    clock = zero_clock;
  }

let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans
let heavy t = t.heavy
let flight t = t.flight

let enabled t =
  Metrics.enabled t.metrics || Trace.enabled t.trace || Span.enabled t.spans
  || Heavy.enabled t.heavy || Flight.enabled t.flight

(* The flight recorder consumes the same events as the tracer, so call
   sites guarding event construction with [tracing] feed it even when
   the trace sink itself is off. *)
let tracing t = Trace.enabled t.trace || Flight.enabled t.flight
let profiling t = Span.enabled t.spans

let set_clock t f = if t != null then t.clock <- f
let now t = t.clock ()

(* Domain-local, so a worker domain installing its private context (see
   Sweep) never races the main domain's — deep call sites that read the
   default (Linsolve, Ctmc) stay single-domain by construction. *)
let default_key = Domain.DLS.new_key (fun () -> null)
let default () = Domain.DLS.get default_key
let set_default t = Domain.DLS.set default_key t

let fork t =
  let metrics =
    if Metrics.enabled t.metrics then Metrics.create () else Metrics.disabled
  in
  let spans = if Span.enabled t.spans then Span.create () else Span.disabled in
  let heavy = if Heavy.enabled t.heavy then Heavy.create () else Heavy.disabled in
  create ~metrics ~spans ~heavy ()

let absorb ~into worker =
  if worker != into then begin
    Metrics.merge_into ~into:into.metrics worker.metrics;
    Span.merge_into ~into:into.spans worker.spans;
    Heavy.merge_into ~into:into.heavy worker.heavy
  end

let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let timer t name = Metrics.timer t.metrics name
let heavy_sketch ?capacity t name = Heavy.sketch ?capacity t.heavy name

let event t ev =
  if Trace.enabled t.trace then Trace.emit t.trace ~time:(t.clock ()) ev;
  if Flight.enabled t.flight then Flight.record t.flight ~time:(t.clock ()) ev

(* ------------------------------------------------------------------ *)
(* Flight-recorder crash dump                                          *)

let set_flight_dump t path =
  if t != null then begin
    t.flight_dump <- Some path;
    t.flight_dumped <- false
  end

let cancel_flight_dump t = t.flight_dump <- None

let dump_flight t =
  match t.flight_dump with
  | Some path when (not t.flight_dumped) && Flight.size t.flight > 0 ->
    t.flight_dumped <- true;
    Flight.dump_to_file t.flight path;
    Some path
  | _ -> None

(* Spans are timed (metrics timer [phase.<name>]), profiled
   (hierarchical {!Span} record when a profiler is attached) and traced.
   With a profiler the trace carries [Span_begin]/[Span_end] (wall time,
   self time, GC deltas); without one it falls back to the flat
   [Phase_begin]/[Phase_end] pair at the simulation clock. *)
let span t name f =
  if not (enabled t) then f ()
  else begin
    let frame = Span.enter t.spans name in
    (match frame with
    | Some fr -> event t (Trace.Span_begin { name; wall_s = Span.frame_start fr })
    | None -> event t (Trace.Phase_begin { name }));
    let t0 = Clock.now () in
    let finally () =
      let dt = Clock.elapsed_since t0 in
      Metrics.observe (Metrics.timer t.metrics ("phase." ^ name)) dt;
      match frame with
      | Some fr -> (
        match Span.exit t.spans fr with
        | Some r ->
          event t
            (Trace.Span_end
               {
                 name;
                 wall_s = r.Span.start_s +. r.Span.total_s;
                 total_s = r.Span.total_s;
                 self_s = r.Span.self_s;
                 minor_words = r.Span.minor_words;
                 major_words = r.Span.major_words;
               })
        | None -> ())
      | None -> event t (Trace.Phase_end { name; seconds = dt })
    in
    Fun.protect ~finally f
  end

let metrics_json t = Metrics.snapshot t.metrics

let close t = Trace.close t.trace

let install t =
  set_default t;
  (* [Trace.close] is idempotent, so the at_exit hook is safe alongside
     an explicit close on the normal path; it exists for the abnormal
     ones — an uncaught exception or a mid-run [exit] must not lose the
     buffered JSONL tail.  The flight dump fires here too: an armed
     recorder writes its black box on any exit path that did not
     explicitly cancel it. *)
  at_exit (fun () ->
      (* A failing dump write at exit must not mask the original
         failure or block the trace flush below. *)
      (try ignore (dump_flight t) with Sys_error _ -> ());
      close t)
