type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  mutable clock : unit -> float;
}

let zero_clock () = 0.

let null = { metrics = Metrics.disabled; trace = Trace.disabled; clock = zero_clock }

let create ?(metrics = Metrics.disabled) ?(trace = Trace.disabled) () =
  { metrics; trace; clock = zero_clock }

let metrics t = t.metrics
let trace t = t.trace

let enabled t = Metrics.enabled t.metrics || Trace.enabled t.trace
let tracing t = Trace.enabled t.trace

let set_clock t f = if t != null then t.clock <- f
let now t = t.clock ()

(* Domain-local, so a worker domain installing its private context (see
   Sweep) never races the main domain's — deep call sites that read the
   default (Linsolve, Ctmc) stay single-domain by construction. *)
let default_key = Domain.DLS.new_key (fun () -> null)
let default () = Domain.DLS.get default_key
let set_default t = Domain.DLS.set default_key t

let fork t =
  let metrics =
    if Metrics.enabled t.metrics then Metrics.create () else Metrics.disabled
  in
  create ~metrics ()

let absorb ~into worker =
  if worker != into then Metrics.merge_into ~into:into.metrics worker.metrics

let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let timer t name = Metrics.timer t.metrics name

let event t ev = if Trace.enabled t.trace then Trace.emit t.trace ~time:(t.clock ()) ev

(* Phases are both timed (metrics timer [phase.<name>]) and traced
   (Phase_begin/Phase_end at the current sim clock). *)
let span t name f =
  if not (enabled t) then f ()
  else begin
    event t (Trace.Phase_begin { name });
    let t0 = Unix.gettimeofday () in
    let finally () =
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.observe (Metrics.timer t.metrics ("phase." ^ name)) dt;
      event t (Trace.Phase_end { name; seconds = dt })
    in
    Fun.protect ~finally f
  end

let metrics_json t = Metrics.snapshot t.metrics

let close t = Trace.close t.trace
