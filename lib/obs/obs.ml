type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  mutable clock : unit -> float;
}

let zero_clock () = 0.

let null = { metrics = Metrics.disabled; trace = Trace.disabled; clock = zero_clock }

let create ?(metrics = Metrics.disabled) ?(trace = Trace.disabled) () =
  { metrics; trace; clock = zero_clock }

let metrics t = t.metrics
let trace t = t.trace

let enabled t = Metrics.enabled t.metrics || Trace.enabled t.trace
let tracing t = Trace.enabled t.trace

let set_clock t f = if t != null then t.clock <- f
let now t = t.clock ()

let default_ref = ref null
let default () = !default_ref
let set_default t = default_ref := t

let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let timer t name = Metrics.timer t.metrics name

let event t ev = if Trace.enabled t.trace then Trace.emit t.trace ~time:(t.clock ()) ev

(* Phases are both timed (metrics timer [phase.<name>]) and traced
   (Phase_begin/Phase_end at the current sim clock). *)
let span t name f =
  if not (enabled t) then f ()
  else begin
    event t (Trace.Phase_begin { name });
    let t0 = Unix.gettimeofday () in
    let finally () =
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.observe (Metrics.timer t.metrics ("phase." ^ name)) dt;
      event t (Trace.Phase_end { name; seconds = dt })
    in
    Fun.protect ~finally f
  end

let metrics_json t = Metrics.snapshot t.metrics

let close t = Trace.close t.trace
