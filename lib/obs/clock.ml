external monotonic_ns : unit -> int64 = "drqos_clock_monotonic_ns"

(* Subtracting a per-process origin keeps readings small, so converting
   to float loses nothing for centuries of uptime (2^53 ns ~ 104 days
   would only matter if we kept the raw boot-relative count). *)
let origin_ns = monotonic_ns ()

let now_ns () = Int64.sub (monotonic_ns ()) origin_ns

let now () = Int64.to_float (now_ns ()) *. 1e-9

let elapsed_since t0 = Float.max 0. (now () -. t0)

let wall_s () = Unix.gettimeofday ()
