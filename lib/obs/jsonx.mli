(** Minimal JSON documents: construction, compact printing, and a small
    reader.

    Kept dependency-free on purpose (the container bakes no JSON
    library): {!Metrics} snapshots, {!Trace} sinks, and the bench
    manifests all build on this, and the tests round-trip through
    {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  NaN renders as [null], infinities
    as the out-of-range literals [1e999] / [-1e999] (which read back as
    infinities). *)

val output : out_channel -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Parses one JSON document; raises {!Parse_error} on malformed input or
    trailing garbage.  Numbers without [.], [e] or overflow come back as
    [Int], everything else as [Float]. *)

exception Line_error of { line : int; message : string }
(** A malformed line in a JSONL stream; [line] is 1-based. *)

val fold_lines : in_channel -> init:'a -> f:('a -> line:int -> t -> 'a) -> 'a
(** [fold_lines ic ~init ~f] parses the channel as JSON Lines, folding
    [f] over each document in order with its 1-based line number.
    Blank lines are skipped; a malformed line (including a truncated
    final one) raises {!Line_error} carrying its line number.  Streams:
    only one line is held in memory beyond what [f] retains. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key], [None] for
    non-objects and missing keys. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Float] and [Int]. *)

val to_str : t -> string option
