type t = {
  mutable on : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hwms : (string, hwm) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
}

and counter = { c_reg : t; mutable count : int }

and gauge = {
  g_reg : t;
  mutable last : float;
  mutable peak : float;
  mutable updates : int;
}

and hwm = { w_reg : t; mutable high : float; mutable w_updates : int }

and timer = { t_reg : t; mutable spans : Stats.Welford.t; buckets : int array }

(* Timer quantiles come from a fixed log-bucket histogram rather than a
   sampling reservoir: deterministic with no seed, O(1) update, and the
   ~12% relative resolution (20 buckets per decade over 1 ns .. 1000 s)
   is far below the run-to-run noise of wall-clock timings anyway. *)
let bucket_lo = 1e-9
let buckets_per_decade = 20
let bucket_count = 12 * buckets_per_decade (* up to 1e3 s *)

let bucket_index x =
  if x <= bucket_lo then 0
  else
    let i =
      int_of_float (Float.log10 (x /. bucket_lo) *. float_of_int buckets_per_decade)
    in
    if i >= bucket_count then bucket_count - 1 else i

(* Geometric midpoint of bucket [i]. *)
let bucket_mid i =
  bucket_lo *. (10. ** ((float_of_int i +. 0.5) /. float_of_int buckets_per_decade))

let create ?(enabled = true) () =
  {
    on = enabled;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hwms = Hashtbl.create 16;
    timers = Hashtbl.create 16;
  }

(* The shared no-op registry: instruments minted from it keep their
   [on = false] check forever (it is never enabled), so instrumented hot
   paths cost one load and one branch when observability is off. *)
let disabled = create ~enabled:false ()

let enabled t = t.on

let set_enabled t flag =
  if t == disabled then invalid_arg "Metrics.set_enabled: the shared disabled registry";
  t.on <- flag

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some x -> x
  | None ->
    let x = make () in
    Hashtbl.replace table name x;
    x

let counter t name = intern t.counters name (fun () -> { c_reg = t; count = 0 })

let incr c = if c.c_reg.on then c.count <- c.count + 1

let add c n = if c.c_reg.on then c.count <- c.count + n

let count c = c.count

let gauge t name =
  intern t.gauges name (fun () ->
      { g_reg = t; last = 0.; peak = neg_infinity; updates = 0 })

let set g v =
  if g.g_reg.on then begin
    g.last <- v;
    if v > g.peak then g.peak <- v;
    g.updates <- g.updates + 1
  end

let value g = g.last
let peak g = if g.updates = 0 then 0. else g.peak

let hwm t name =
  intern t.hwms name (fun () -> { w_reg = t; high = neg_infinity; w_updates = 0 })

let observe_hwm w v =
  if w.w_reg.on then begin
    if v > w.high then w.high <- v;
    w.w_updates <- w.w_updates + 1
  end

let hwm_value w = if w.w_updates = 0 then 0. else w.high

let timer t name =
  intern t.timers name (fun () ->
      { t_reg = t; spans = Stats.Welford.create (); buckets = Array.make bucket_count 0 })

let observe tm seconds =
  if tm.t_reg.on then begin
    Stats.Welford.add tm.spans seconds;
    let i = bucket_index seconds in
    tm.buckets.(i) <- tm.buckets.(i) + 1
  end

let time tm f =
  if tm.t_reg.on then begin
    let t0 = Clock.now () in
    let finally () = observe tm (Clock.elapsed_since t0) in
    Fun.protect ~finally f
  end
  else f ()

let timer_count tm = Stats.Welford.count tm.spans
let timer_total tm = Stats.Welford.mean tm.spans *. float_of_int (Stats.Welford.count tm.spans)

let timer_max tm =
  if Stats.Welford.count tm.spans = 0 then 0. else Stats.Welford.max_value tm.spans

let timer_quantile tm q =
  if q < 0. || q > 1. then invalid_arg "Metrics.timer_quantile: q in [0, 1]";
  let n = Array.fold_left ( + ) 0 tm.buckets in
  if n = 0 then 0.
  else begin
    let target = q *. float_of_int n in
    let rec scan i acc =
      if i >= bucket_count - 1 then i
      else
        let acc' = acc + tm.buckets.(i) in
        if acc' > 0 && float_of_int acc' >= target then i else scan (i + 1) acc'
    in
    bucket_mid (scan 0 0)
  end

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)

(* Counter and timer merges are exact sums, so a parallel sweep whose
   workers record into private registries snapshots the same counts as a
   sequential run (timer durations are wall-clock and vary run to run
   regardless).  A gauge's last value is taken from [src] only when [src]
   actually updated it — under dynamic work assignment which worker wrote
   last is scheduling-dependent, so gauges are best-effort. *)
let merge_into ~into src =
  (* Disabled target first: forks of a disabled context all share the
     [disabled] singleton, and merging nothing into nothing is fine. *)
  if into.on then begin
    if into == src then invalid_arg "Metrics.merge_into: registry merged into itself";
    Hashtbl.iter
      (fun name (c : counter) ->
        let d = counter into name in
        d.count <- d.count + c.count)
      src.counters;
    Hashtbl.iter
      (fun name (g : gauge) ->
        let d = gauge into name in
        if g.updates > 0 then begin
          d.last <- g.last;
          if g.peak > d.peak then d.peak <- g.peak;
          d.updates <- d.updates + g.updates
        end)
      src.gauges;
    (* High watermarks max-merge, so the combined value is the true peak
       across domains whatever order the workers are absorbed in. *)
    Hashtbl.iter
      (fun name (w : hwm) ->
        let d = hwm into name in
        if w.w_updates > 0 then begin
          if w.high > d.high then d.high <- w.high;
          d.w_updates <- d.w_updates + w.w_updates
        end)
      src.hwms;
    Hashtbl.iter
      (fun name (tm : timer) ->
        let d = timer into name in
        d.spans <- Stats.Welford.merge d.spans tm.spans;
        Array.iteri (fun i c -> d.buckets.(i) <- d.buckets.(i) + c) tm.buckets)
      src.timers
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_values t =
  if not t.on then []
  else List.map (fun (name, c) -> (name, c.count)) (sorted_bindings t.counters)

let snapshot t =
  let counters =
    List.map (fun (name, c) -> (name, Jsonx.Int c.count)) (sorted_bindings t.counters)
  in
  let hwms =
    List.map
      (fun (name, w) ->
        ( name,
          Jsonx.Obj
            [
              ("value", Jsonx.Float (hwm_value w));
              ("updates", Jsonx.Int w.w_updates);
            ] ))
      (sorted_bindings t.hwms)
  in
  let gauges =
    List.map
      (fun (name, g) ->
        ( name,
          Jsonx.Obj
            [
              ("value", Jsonx.Float g.last);
              ("peak", Jsonx.Float (peak g));
              ("updates", Jsonx.Int g.updates);
            ] ))
      (sorted_bindings t.gauges)
  in
  let timers =
    List.map
      (fun (name, tm) ->
        let w = tm.spans in
        let n = Stats.Welford.count w in
        ( name,
          Jsonx.Obj
            [
              ("count", Jsonx.Int n);
              ("total_s", Jsonx.Float (timer_total tm));
              ("mean_s", Jsonx.Float (Stats.Welford.mean w));
              ("min_s", Jsonx.Float (if n = 0 then 0. else Stats.Welford.min_value w));
              ("max_s", Jsonx.Float (if n = 0 then 0. else Stats.Welford.max_value w));
              ("p50_s", Jsonx.Float (timer_quantile tm 0.50));
              ("p95_s", Jsonx.Float (timer_quantile tm 0.95));
              ("p99_s", Jsonx.Float (timer_quantile tm 0.99));
            ] ))
      (sorted_bindings t.timers)
  in
  Jsonx.Obj
    [
      ("enabled", Jsonx.Bool t.on);
      ("counters", Jsonx.Obj counters);
      ("gauges", Jsonx.Obj gauges);
      ("hwm", Jsonx.Obj hwms);
      ("timers", Jsonx.Obj timers);
    ]
