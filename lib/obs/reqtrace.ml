type ctx = { rid : int; t_sched : float }

type stage = Queue | Parse | Service | Redistribute | Write

let all_stages = [ Queue; Parse; Service; Redistribute; Write ]

let stage_name = function
  | Queue -> "queue"
  | Parse -> "parse"
  | Service -> "service"
  | Redistribute -> "redistribute"
  | Write -> "write"

let stage_of_name = function
  | "queue" -> Some Queue
  | "parse" -> Some Parse
  | "service" -> Some Service
  | "redistribute" -> Some Redistribute
  | "write" -> Some Write
  | _ -> None

let stage_index = function
  | Queue -> 0
  | Parse -> 1
  | Service -> 2
  | Redistribute -> 3
  | Write -> 4

let timer_name st = "req." ^ stage_name st

type exemplar = {
  ex_rid : int;
  ex_verb : string;
  ex_ok : bool;
  ex_total_s : float;
  ex_stages : (stage * float) list;
}

let exemplar_note ex =
  Trace.Note
    {
      name = "slow_request";
      fields =
        [
          ("rid", Jsonx.Int ex.ex_rid);
          ("verb", Jsonx.String ex.ex_verb);
          ("ok", Jsonx.Bool ex.ex_ok);
          ("total_s", Jsonx.Float ex.ex_total_s);
        ]
        @ List.map
            (fun (st, s) -> (stage_name st, Jsonx.Float s))
            ex.ex_stages;
    }

type t = {
  obs : Obs.t;
  stage_timers : Metrics.timer array; (* indexed by stage_index *)
  total_timer : Metrics.timer;
  slow : Heavy.sketch;
  slo : float option;
  on_exemplar : exemplar -> unit;
  mutable good : int;
  mutable bad : int;
}

let create ?slo ?(on_exemplar = fun _ -> ()) obs =
  (match slo with
  | Some s when s <= 0. -> invalid_arg "Reqtrace.create: slo must be positive"
  | _ -> ());
  {
    obs;
    stage_timers =
      Array.of_list
        (List.map (fun st -> Obs.timer obs (timer_name st)) all_stages);
    total_timer = Obs.timer obs "req.total";
    slow = Obs.heavy_sketch obs "req.slow_verbs";
    slo;
    on_exemplar;
    good = 0;
    bad = 0;
  }

let slo_counts t = (t.good, t.bad)
let slo_threshold t = t.slo

(* One completed request: feed the mergeable per-stage log-bucket
   timers, the slowest-verb sketch (weighted by microseconds, so [top]
   ranks verbs by where the latency mass lives, not call counts), the
   SLO counters, and — when tracing — the [Req_begin]/[Req_stage]*/
   [Req_end] trio, emitted together at completion so one request's
   records never interleave with another connection's. *)
let observe t ~rid ~verb ~verb_index ~ok ~stages ~total_s =
  List.iter
    (fun (st, s) -> Metrics.observe t.stage_timers.(stage_index st) s)
    stages;
  Metrics.observe t.total_timer total_s;
  if Heavy.sketch_enabled t.slow then
    Heavy.offer ~by:(max 1 (int_of_float (total_s *. 1e6))) t.slow verb_index;
  if Obs.tracing t.obs then begin
    Obs.event t.obs (Trace.Req_begin { rid; verb });
    List.iter
      (fun (st, s) ->
        Obs.event t.obs
          (Trace.Req_stage { rid; stage = stage_name st; seconds = s }))
      stages;
    Obs.event t.obs (Trace.Req_end { rid; verb; ok; total_s })
  end;
  match t.slo with
  | None -> ()
  | Some slo ->
    if total_s <= slo then t.good <- t.good + 1
    else begin
      t.bad <- t.bad + 1;
      t.on_exemplar
        {
          ex_rid = rid;
          ex_verb = verb;
          ex_ok = ok;
          ex_total_s = total_s;
          ex_stages = stages;
        }
    end
