(** Process time sources, split by what they are safe for.

    Every duration in this repo — span totals, timer observations,
    heartbeat intervals, bench wall figures — must come from {!now},
    which reads [CLOCK_MONOTONIC] through a C stub: it never goes
    backwards and is immune to NTP steps and manual clock adjustments.
    [Unix.gettimeofday] is {e not} monotone; subtracting two readings of
    it can yield a negative "duration", which corrupts timer percentiles
    and span aggregates in any process that outlives a clock
    adjustment.  The only remaining legitimate use of the wall clock is
    labelling a moment in calendar time, and that is all {!wall_s}
    exposes.

    [scripts/verify.sh] greps [lib/] for [Unix.gettimeofday] outside
    this module, so the split is load-bearing, not advisory. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary origin fixed at module
    initialisation (so values stay small and subtract at full float
    precision).  Strictly non-decreasing within a process; meaningless
    across processes. *)

val now_ns : unit -> int64
(** {!now} in integer nanoseconds — for callers that want to defer the
    float conversion. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0], clamped to [0.] (belt and
    braces: the clamp only matters on platforms without a monotonic
    clock, where the stub falls back to the realtime source). *)

val wall_s : unit -> float
(** The wall clock (seconds since the Unix epoch) — for {e stamping}
    events in calendar time only, never for computing durations. *)
