type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Floats must stay valid JSON: no "nan"/"inf" literals, and a bare
   integer-looking float keeps a trailing ".0" marker via %.17g's
   shortest round-trippable form when needed. *)
let float_repr x =
  match Float.classify_float x with
  | FP_nan -> "null"
  | FP_infinite -> if x > 0. then "1e999" else "-1e999"
  | _ ->
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string shorter) x then shorter else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let output oc t = output_string oc (to_string t)

(* ------------------------------------------------------------------ *)
(* Parser: a small recursive-descent reader, enough to round-trip what
   this library writes (and standard JSON in general). *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
          let hex = String.sub cur.s cur.pos 4 in
          cur.pos <- cur.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail cur "bad \\u escape"
          in
          (* Only BMP code points below 0x80 map to one byte; others are
             emitted as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail cur "unknown escape");
        go ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek cur with
    | Some c when is_num_char c ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub cur.s start (cur.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> fail cur (Printf.sprintf "bad number %S" text))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' ->
    advance cur;
    String (parse_string_body cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ parse_value cur ] in
      let rec more () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items := parse_value cur :: !items;
          more ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      more ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        expect cur '"';
        let k = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        (k, parse_value cur)
      in
      let fields = ref [ field () ] in
      let rec more () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields := field () :: !fields;
          more ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      more ();
      Obj (List.rev !fields)
    end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number cur else fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Line-oriented streaming: one JSON document per line (JSONL).         *)

exception Line_error of { line : int; message : string }

let blank s = String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s

let fold_lines ic ~init ~f =
  let rec go acc line =
    match input_line ic with
    | exception End_of_file -> acc
    | text when blank text -> go acc (line + 1)
    | text ->
      let doc =
        try of_string text
        with Parse_error msg -> raise (Line_error { line; message = msg })
      in
      go (f acc ~line doc) (line + 1)
  in
  go init 1

(* ------------------------------------------------------------------ *)
(* Accessors used by tests and the bench harness. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
