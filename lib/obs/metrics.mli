(** Named counters, gauges, and latency timers.

    Instruments are interned by name in a registry and keep a pointer
    back to it, so a disabled registry reduces every record call to one
    load and one branch — no allocation, no hashing.  Hot paths mint
    their instruments once (at component creation) and call {!incr} /
    {!set} / {!observe} unconditionally.

    A snapshot serialises the whole registry to a {!Jsonx} document with
    deterministic (name-sorted) field order. *)

type t
type counter
type gauge
type hwm
type timer

val create : ?enabled:bool -> unit -> t
(** A fresh registry; [enabled] defaults to [true]. *)

val disabled : t
(** The shared always-off registry.  {!set_enabled} rejects it, so
    instruments minted from it are no-ops forever. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Raises [Invalid_argument] on {!disabled}. *)

val counter : t -> string -> counter
(** Interned by name: two calls with the same name return the same
    counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float
val peak : gauge -> float
(** Largest value ever {!set}; [0.] before the first update. *)

val hwm : t -> string -> hwm
(** A high-watermark gauge: records only the largest value observed.
    Unlike {!gauge}, whose last value is order-dependent under parallel
    merges, a watermark max-merges exactly — the combined value is the
    true peak across domains in any absorb order. *)

val observe_hwm : hwm -> float -> unit
val hwm_value : hwm -> float
(** Largest value ever observed; [0.] before the first update. *)

val timer : t -> string -> timer

val observe : timer -> float -> unit
(** Record one span of [seconds]. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall-clock duration (even on raise).
    When the registry is disabled the thunk runs without any clock
    reads. *)

val timer_count : timer -> int
val timer_total : timer -> float

val timer_max : timer -> float
(** Largest duration ever observed (exact, from the running stats, not
    the histogram); [0.] on an empty timer.  Max-merges exactly across
    {!merge_into}, so a parallel run's merged maximum is the true
    worst case. *)

val timer_quantile : timer -> float -> float
(** Approximate duration quantile from a fixed log-bucket histogram
    (20 buckets per decade over 1 ns .. 1000 s — ~12% relative
    resolution), deterministic with no sampling seed.  [q] in [0, 1];
    0 on an empty timer; raises [Invalid_argument] outside the range. *)

val counter_values : t -> (string * int) list
(** Cumulative counter values, name-sorted; [[]] on a disabled
    registry.  {!Snapshot} diffs successive calls into per-interval
    deltas. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s instruments into [into], interning by name: counters and
    timer observations add exactly (so a parallel sweep merging private
    worker registries counts the same as a sequential run); gauge peaks
    and high watermarks take the max (order-independent), gauge last
    values are best-effort (taken from the source when it recorded any
    update).  A no-op when [into] is disabled; raises [Invalid_argument]
    when both arguments are the same registry. *)

val snapshot : t -> Jsonx.t
(** [{"enabled": bool, "counters": {...}, "gauges": {name: {value, peak,
    updates}}, "hwm": {name: {value, updates}}, "timers": {name: {count,
    total_s, mean_s, min_s, max_s, p50_s, p95_s, p99_s}}}] — the
    percentile fields come from {!timer_quantile}'s log-bucket
    histogram. *)
