(** Typed trace events and pluggable sinks.

    Every event the paper's evaluation reasons about — admissions,
    rejections, elastic retreats/upgrades, failures, backup activations —
    has a dedicated constructor, so instrumented code cannot emit a
    malformed record.  Events are serialised on one JSONL line each:

    {v {"t": <sim time>, "ev": "<kind>", ...event fields} v}

    Emission through a disabled tracer is one load and one branch; call
    sites should still guard event {e construction} with {!enabled} so a
    disabled trace allocates nothing. *)

type event =
  | Admit of { channel : int; direct : int; indirect : int }
      (** Connection admitted; [direct]/[indirect] count the chained
          channels its arrival retreated (the paper's §3.1 sets). *)
  | Reject of { reason : string }
      (** ["no_primary_route"] or ["no_backup_route"]. *)
  | Terminate of { channel : int }
  | Upgrade of { channel : int; from_level : int; to_level : int }
      (** Elastic water-filling granted increments. *)
  | Retreat of { channel : int; from_level : int; to_level : int }
      (** Channel fell back toward its floor. *)
  | Link_fail of { edge : int }
  | Link_repair of { edge : int }
  | Backup_activate of { channel : int; reprotected : bool }
      (** A backup became the primary; [reprotected] is whether a new
          backup was found afterwards. *)
  | Backup_lost of { channel : int; replaced : bool }
  | Drop of { channel : int }
  | Restore of { channel : int; with_backup : bool }
      (** Reactive from-scratch re-establishment (ablation baseline). *)
  | Solve of { what : string; states : int; seconds : float }
  | Phase_begin of { name : string }
  | Phase_end of { name : string; seconds : float }
  | Span_begin of { name : string; wall_s : float }
      (** A profiler span opened; [wall_s] is wall time since the
          profiler's epoch (the ["t"] field stays simulation time). *)
  | Span_end of {
      name : string;
      wall_s : float;  (** wall time at close. *)
      total_s : float;
      self_s : float;  (** total minus direct children's totals. *)
      minor_words : float;  (** GC allocation over the span. *)
      major_words : float;
    }
  | Note of { name : string; fields : (string * Jsonx.t) list }
      (** Escape hatch for component-specific events. *)
  | Req_begin of { rid : int; verb : string }
      (** A served request entered dispatch.  [rid] is the propagated
          trace context id (client-assigned, non-negative) or a
          server-assigned negative id for untraced requests. *)
  | Req_stage of { rid : int; stage : string; seconds : float }
      (** One stage of a served request ({!Reqtrace.stage_name}:
          queue/parse/service/redistribute/write).  Durations, not
          timestamps, so records from different processes join. *)
  | Req_end of { rid : int; verb : string; ok : bool; total_s : float }
      (** Request completed; [total_s] is the sum of its stage
          durations, [ok] false for error replies. *)
  | Req_client of {
      rid : int;
      verb : string;
      sched_s : float;  (** scheduled due time within the replay. *)
      latency_s : float;
          (** scheduled-due → completion on the client's monotonic
              clock (coordinated-omission-safe). *)
    }
      (** The client-side record of one traced request; joins against
          the server's [Req_*] records on [rid] — the difference
          between [latency_s] and the server's stage sum is network +
          socket-queue time. *)
  | Snapshot of {
      seq : int;  (** per-emitter sequence number, from 0. *)
      events : int;  (** engine events dispatched so far. *)
      d_events : int;  (** events since the previous snapshot. *)
      live : int;  (** live connections. *)
      live_by_level : int list;  (** live connections per QoS level. *)
      queue : int;  (** event-queue size at the tick. *)
      footprint : int;  (** {!Event_queue.footprint} at the tick. *)
      peak_live : int;  (** high watermark of sampled [live]. *)
      peak_queue : int;  (** high watermark of sampled [queue]. *)
      hot : (int * int) list;
          (** hottest links as [(link, churn count)] from the service's
              heavy-hitter sketch, hottest first. *)
      counters : (string * int) list;
          (** metrics-registry counter deltas since the previous
              snapshot, name-sorted, zero deltas omitted. *)
      slo_good : int;  (** cumulative requests that met the SLO. *)
      slo_bad : int;  (** cumulative requests that missed it. *)
      slo_burn : float;
          (** bad fraction over the interval since the previous
              snapshot ([d_bad / (d_good + d_bad)]; 0 when idle) — the
              rolling burn rate. *)
    }
      (** Periodic event-time heartbeat ({!Snapshot} module).  Every
          field derives from simulation state only, so equal runs emit
          byte-identical snapshot streams whatever [--jobs] is. *)
  | Heartbeat of {
      seq : int;
      wall_s : float;  (** wall time since the emitter started. *)
      d_events : int;  (** events since the previous heartbeat. *)
      ops_per_s : float;  (** [d_events] over the wall interval. *)
      minor_words : float;  (** GC allocation since the previous beat. *)
      major_words : float;
      heap_words : int;  (** current major-heap size. *)
    }
      (** Periodic wall-clock heartbeat: real throughput and GC rate.
          Carries wall-clock values, so it is {e not} byte-reproducible —
          the deterministic stream gates exclude it. *)

val kind : event -> string
(** The ["ev"] discriminator, e.g. ["backup_activate"]. *)

val to_json : time:float -> event -> Jsonx.t

val of_json : Jsonx.t -> (float * event, string) result
(** Inverse of {!to_json}: a timestamped event from one trace document.
    Total over everything {!to_json} writes; [Error] describes the
    missing/ill-typed field or unknown kind.  [lib/analysis] replays
    recorded JSONL traces through this. *)

val all_samples : event list
(** One sample per constructor — extend together with the type.  The
    serialisation round-trip test iterates this list, so a constructor
    added without {!to_json}/{!of_json} support (or without a sample
    here) fails CI. *)

(** A sink consumes timestamped events; [close] flushes and releases the
    underlying resource. *)
type sink = { emit : float -> event -> unit; close : unit -> unit }

val null_sink : sink

val jsonl_sink : out_channel -> sink
(** One compact JSON document per line; [close] closes the channel. *)

val console_sink : ?oc:out_channel -> unit -> sink
(** Human-readable one-line rendering (default [stdout]); [close]
    flushes but does not close. *)

type t

val disabled : t
val create : sink -> t
val enabled : t -> bool

val emit : t -> time:float -> event -> unit
(** No-op on a disabled tracer. *)

val close : t -> unit
(** Idempotent: the first call closes the sink, later calls are no-ops —
    so entry points may guard the same tracer with both [Fun.protect]
    and [at_exit]. *)
