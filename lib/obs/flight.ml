(* The ring stores (time, event) pairs in a pre-sized array indexed by
   [seen mod capacity]; recording is two stores and a bump, cheap enough
   to leave on under a full fuzz run. *)

type t = {
  on : bool;
  times : float array;
  evs : Trace.event option array;
  mutable seen : int;
}

let disabled = { on = false; times = [||]; evs = [||]; seen = 0 }

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity >= 1";
  { on = true; times = Array.make capacity 0.; evs = Array.make capacity None; seen = 0 }

let enabled t = t.on

let capacity t = Array.length t.evs

let record t ~time ev =
  if t.on then begin
    let i = t.seen mod Array.length t.evs in
    t.times.(i) <- time;
    t.evs.(i) <- Some ev;
    t.seen <- t.seen + 1
  end

let size t = min t.seen (Array.length t.evs)

let seen t = t.seen

let events t =
  let cap = Array.length t.evs in
  let n = size t in
  let first = t.seen - n in
  List.init n (fun k ->
      let i = (first + k) mod cap in
      match t.evs.(i) with
      | Some ev -> (t.times.(i), ev)
      | None -> assert false)

let clear t =
  if t.on then begin
    Array.fill t.evs 0 (Array.length t.evs) None;
    t.seen <- 0
  end

let header ~retained ~seen =
  Trace.Note
    {
      name = "flight_recorder";
      fields =
        [
          ("retained", Jsonx.Int retained);
          ("seen", Jsonx.Int seen);
          ("dropped", Jsonx.Int (seen - retained));
        ];
    }

let dump_line oc ~time ev =
  Jsonx.output oc (Trace.to_json ~time ev);
  output_char oc '\n'

let dump_with ~seen evs oc =
  let retained = List.length evs in
  let t0 = match evs with (time, _) :: _ -> time | [] -> 0. in
  dump_line oc ~time:t0 (header ~retained ~seen);
  List.iter (fun (time, ev) -> dump_line oc ~time ev) evs

let dump t oc = dump_with ~seen:t.seen (events t) oc

let dump_events evs oc = dump_with ~seen:(List.length evs) evs oc

let dump_to_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump t oc)
