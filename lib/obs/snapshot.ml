type source = {
  sim_time : unit -> float;
  events : unit -> int;
  live_by_level : unit -> int array;
  queue_size : unit -> int;
  queue_footprint : unit -> int;
  hot : unit -> (int * int) list;
  counters : unit -> (string * int) list;
  slo : unit -> int * int;
}

type t = {
  sink : string -> unit;
  sim_every : float option;
  wall_every : float option;
  mutable src : source option;
  mutable emitted : int;
  (* event-time side *)
  mutable seq : int;
  mutable last_events : int;
  mutable last_counters : (string * int) list;
  mutable last_slo_good : int;
  mutable last_slo_bad : int;
  mutable peak_live : int;
  mutable peak_queue : int;
  (* wall-clock side *)
  mutable wall_seq : int;
  mutable wall_t0 : float;
  mutable wall_last : float;
  mutable wall_last_events : int;
  mutable gc_minor : float;
  mutable gc_major : float;
}

let create ?sim_every ?wall_every ~sink () =
  let check label = function
    | Some x when x <= 0. ->
      invalid_arg (Printf.sprintf "Snapshot.create: %s must be positive" label)
    | _ -> ()
  in
  check "sim_every" sim_every;
  check "wall_every" wall_every;
  {
    sink;
    sim_every;
    wall_every;
    src = None;
    emitted = 0;
    seq = 0;
    last_events = 0;
    last_counters = [];
    last_slo_good = 0;
    last_slo_bad = 0;
    peak_live = 0;
    peak_queue = 0;
    wall_seq = 0;
    wall_t0 = 0.;
    wall_last = 0.;
    wall_last_events = 0;
    gc_minor = 0.;
    gc_major = 0.;
  }

let sim_every t = t.sim_every
let wall_every t = t.wall_every
let emitted t = t.emitted

let start t src =
  t.src <- Some src;
  t.seq <- 0;
  t.last_events <- src.events ();
  t.last_counters <- src.counters ();
  let good0, bad0 = src.slo () in
  t.last_slo_good <- good0;
  t.last_slo_bad <- bad0;
  t.peak_live <- 0;
  t.peak_queue <- 0;
  t.wall_seq <- 0;
  let now = Clock.now () in
  t.wall_t0 <- now;
  t.wall_last <- now;
  t.wall_last_events <- src.events ();
  let g = Gc.quick_stat () in
  t.gc_minor <- g.Gc.minor_words;
  t.gc_major <- g.Gc.major_words

(* Counter deltas against the previous tick's cumulative values.  Both
   lists are name-sorted, so one merge walk suffices; zero deltas are
   dropped — the set of interned names depends on what ran earlier in
   the same registry (worker reuse across sweep points), and only the
   nonzero deltas are a function of this run alone. *)
let counter_deltas ~prev ~cur =
  let rec go acc prev cur =
    match (prev, cur) with
    | _, [] -> List.rev acc
    | [], (name, v) :: cur' ->
      go (if v <> 0 then (name, v) :: acc else acc) [] cur'
    | (pn, pv) :: prev', (cn, cv) :: cur' ->
      let c = compare pn cn in
      if c = 0 then
        go (if cv - pv <> 0 then (cn, cv - pv) :: acc else acc) prev' cur'
      else if c < 0 then go acc prev' cur (* name vanished: registries only grow *)
      else go (if cv <> 0 then (cn, cv) :: acc else acc) prev cur'
  in
  go [] prev cur

let emit t ~time ev =
  t.sink (Jsonx.to_string (Trace.to_json ~time ev));
  t.emitted <- t.emitted + 1

let tick t =
  match t.src with
  | None -> ()
  | Some src ->
    let events = src.events () in
    let levels = src.live_by_level () in
    let live = Array.fold_left ( + ) 0 levels in
    let queue = src.queue_size () in
    if live > t.peak_live then t.peak_live <- live;
    if queue > t.peak_queue then t.peak_queue <- queue;
    let counters = src.counters () in
    let slo_good, slo_bad = src.slo () in
    let d_good = slo_good - t.last_slo_good in
    let d_bad = slo_bad - t.last_slo_bad in
    let slo_burn =
      if d_good + d_bad > 0 then float_of_int d_bad /. float_of_int (d_good + d_bad)
      else 0.
    in
    let ev =
      Trace.Snapshot
        {
          seq = t.seq;
          events;
          d_events = events - t.last_events;
          live;
          live_by_level = Array.to_list levels;
          queue;
          footprint = src.queue_footprint ();
          peak_live = t.peak_live;
          peak_queue = t.peak_queue;
          hot = src.hot ();
          counters = counter_deltas ~prev:t.last_counters ~cur:counters;
          slo_good;
          slo_bad;
          slo_burn;
        }
    in
    t.seq <- t.seq + 1;
    t.last_events <- events;
    t.last_counters <- counters;
    t.last_slo_good <- slo_good;
    t.last_slo_bad <- slo_bad;
    emit t ~time:(src.sim_time ()) ev

let wall_tick t =
  match t.src with
  | None -> ()
  | Some src ->
    (* Monotonic: a stepped wall clock must not yield negative [wall_s]
       deltas or nonsense GC-rate intervals in a long-running server. *)
    let now = Clock.now () in
    let g = Gc.quick_stat () in
    let events = src.events () in
    let dt = now -. t.wall_last in
    let d_events = events - t.wall_last_events in
    let ev =
      Trace.Heartbeat
        {
          seq = t.wall_seq;
          wall_s = now -. t.wall_t0;
          d_events;
          ops_per_s = (if dt > 0. then float_of_int d_events /. dt else 0.);
          minor_words = g.Gc.minor_words -. t.gc_minor;
          major_words = g.Gc.major_words -. t.gc_major;
          heap_words = g.Gc.heap_words;
        }
    in
    t.wall_seq <- t.wall_seq + 1;
    t.wall_last <- now;
    t.wall_last_events <- events;
    t.gc_minor <- g.Gc.minor_words;
    t.gc_major <- g.Gc.major_words;
    emit t ~time:(src.sim_time ()) ev
