(** The observability context: a {!Metrics} registry, a {!Trace} tracer,
    and a simulation clock, bundled so instrumented components take one
    value.

    Components accept [?obs] at creation and default to the process-wide
    {!default} (initially {!null}, so nothing is recorded until an
    entry point — CLI, bench harness — installs a real context).  The
    clock maps trace timestamps to simulation time; {!Scenario.run}
    points it at its engine. *)

type t

val null : t
(** The shared disabled context: no-op metrics, no tracer, clock pinned
    at [0.].  {!set_clock} ignores it. *)

val create : ?metrics:Metrics.t -> ?trace:Trace.t -> ?spans:Span.t -> unit -> t
(** All three default to their disabled instances. *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t

val enabled : t -> bool
(** True when the metrics registry, the tracer, or the span profiler is
    live. *)

val tracing : t -> bool
(** True when the tracer is live — guard event construction with this so
    a disabled trace allocates nothing. *)

val profiling : t -> bool
(** True when a span profiler is attached. *)

val set_clock : t -> (unit -> float) -> unit
val now : t -> float

val default : unit -> t
val set_default : t -> unit
(** The default context is {e domain-local}: each domain starts at
    {!null}, and installing a context in one domain is invisible to the
    others.  Worker domains (see [Sweep]) install a {!fork} of the
    caller's context so nothing they record crosses a domain boundary
    until the merge at join time. *)

val fork : t -> t
(** A worker-private context mirroring [t]: a fresh metrics registry and
    span profiler (each enabled iff [t]'s is), no tracer (traces do not
    cross domains), an independent clock. *)

val absorb : into:t -> t -> unit
(** Merge a {!fork}ed worker's metrics and span aggregates back into
    [into] ({!Metrics.merge_into}, {!Span.merge_into}); call it after
    joining the worker's domain.  A no-op when the two contexts are the
    same. *)

val counter : t -> string -> Metrics.counter
val gauge : t -> string -> Metrics.gauge
val timer : t -> string -> Metrics.timer

val event : t -> Trace.event -> unit
(** Emit at the current clock; no-op when not tracing. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], records its wall time under the metrics
    timer [phase.<name>] and — when a profiler is attached — as a
    hierarchical {!Span} record (self vs total time, GC word deltas).
    The tracer sees the span too: [Span_begin]/[Span_end] events when
    profiling, the legacy flat [Phase_begin]/[Phase_end] pair otherwise.
    When the context is fully disabled the thunk runs untouched. *)

val metrics_json : t -> Jsonx.t

val close : t -> unit
(** Close the tracer's sink (idempotent, see {!Trace.close}). *)

val install : t -> unit
(** {!set_default} plus an [at_exit] {!close} hook: entry points call
    this so a raised exception or mid-run [exit] cannot lose buffered
    trace output.  Pair with [Fun.protect ~finally:(fun () -> close t)]
    around the run itself to flush on the normal path too. *)
