(** The observability context: a {!Metrics} registry, a {!Trace} tracer,
    a {!Heavy} heavy-hitter registry, a {!Flight} recorder, and a
    simulation clock, bundled so instrumented components take one value.

    Components accept [?obs] at creation and default to the process-wide
    {!default} (initially {!null}, so nothing is recorded until an
    entry point — CLI, bench harness — installs a real context).  The
    clock maps trace timestamps to simulation time; {!Scenario.run}
    points it at its engine. *)

type t

val null : t
(** The shared disabled context: no-op metrics, no tracer, clock pinned
    at [0.].  {!set_clock} ignores it. *)

val create :
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?spans:Span.t ->
  ?heavy:Heavy.t ->
  ?flight:Flight.t ->
  unit ->
  t
(** All components default to their disabled instances. *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t
val heavy : t -> Heavy.t
val flight : t -> Flight.t

val enabled : t -> bool
(** True when any component — metrics, tracer, profiler, heavy-hitter
    registry, or flight recorder — is live. *)

val tracing : t -> bool
(** True when the tracer {e or the flight recorder} is live — guard
    event construction with this so a disabled context allocates
    nothing.  The flight recorder consumes the same {!Trace.event}
    stream, so it keeps its ring populated even when no trace sink is
    attached. *)

val profiling : t -> bool
(** True when a span profiler is attached. *)

val set_clock : t -> (unit -> float) -> unit
val now : t -> float

val default : unit -> t
val set_default : t -> unit
(** The default context is {e domain-local}: each domain starts at
    {!null}, and installing a context in one domain is invisible to the
    others.  Worker domains (see [Sweep]) install a {!fork} of the
    caller's context so nothing they record crosses a domain boundary
    until the merge at join time. *)

val fork : t -> t
(** A worker-private context mirroring [t]: fresh metrics, span and
    heavy-hitter components (each enabled iff [t]'s is), no tracer or
    flight recorder (traces do not cross domains), an independent
    clock. *)

val absorb : into:t -> t -> unit
(** Merge a {!fork}ed worker's metrics, span and heavy-hitter aggregates
    back into [into] ({!Metrics.merge_into}, {!Span.merge_into},
    {!Heavy.merge_into}); call it after joining the worker's domain.  A
    no-op when the two contexts are the same. *)

val counter : t -> string -> Metrics.counter
val gauge : t -> string -> Metrics.gauge
val timer : t -> string -> Metrics.timer

val heavy_sketch : ?capacity:int -> t -> string -> Heavy.sketch
(** Intern a named sketch in the context's heavy-hitter registry
    ({!Heavy.sketch}). *)

val event : t -> Trace.event -> unit
(** Emit at the current clock to the trace sink (when tracing) and the
    flight recorder (when enabled); no-op when both are off. *)

val set_flight_dump : t -> string -> unit
(** Arm the crash dump: if the process exits — or {!dump_flight} is
    called, e.g. from a [Fun.protect] finaliser on the failure path —
    before {!cancel_flight_dump}, the flight recorder's contents are
    written to the given path as JSONL.  Ignored on {!null}. *)

val cancel_flight_dump : t -> unit
(** Disarm: the run completed normally, keep no black box. *)

val dump_flight : t -> string option
(** Write the armed dump now (idempotent: at most one dump per arming;
    skipped when disarmed or the recorder is empty).  Returns the path
    written.  {!install}'s [at_exit] hook calls this too, so an uncaught
    exception still produces the black box. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], records its wall time under the metrics
    timer [phase.<name>] and — when a profiler is attached — as a
    hierarchical {!Span} record (self vs total time, GC word deltas).
    The tracer sees the span too: [Span_begin]/[Span_end] events when
    profiling, the legacy flat [Phase_begin]/[Phase_end] pair otherwise.
    When the context is fully disabled the thunk runs untouched. *)

val metrics_json : t -> Jsonx.t

val close : t -> unit
(** Close the tracer's sink (idempotent, see {!Trace.close}). *)

val install : t -> unit
(** {!set_default} plus an [at_exit] hook that writes any armed flight
    dump and closes the tracer: entry points call this so a raised
    exception or mid-run [exit] cannot lose buffered trace output or
    the crash black box.  Pair with
    [Fun.protect ~finally:(fun () -> close t)] around the run itself to
    flush on the normal path too. *)
