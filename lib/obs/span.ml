type record = {
  name : string;
  depth : int;
  start_s : float;
  total_s : float;
  self_s : float;
  minor_words : float;
  major_words : float;
}

type agg = {
  agg_name : string;
  count : int;
  agg_total_s : float;
  agg_self_s : float;
  agg_minor_words : float;
  agg_major_words : float;
}

type frame = {
  f_name : string;
  f_depth : int;
  f_start : float;
  f_minor0 : float;
  f_major0 : float;
  mutable f_child_total : float;
}

(* Aggregates accumulate in place so a long profiled run stays O(name
   count); the per-instance records are what the cap bounds. *)
type agg_cell = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_self : float;
  mutable a_minor : float;
  mutable a_major : float;
}

type t = {
  on : bool;
  epoch : float;
  keep : int;
  mutable stack : frame list;
  mutable recs : record list; (* newest first *)
  mutable n_recs : int;
  mutable dropped : int;
  aggs : (string, agg_cell) Hashtbl.t;
}

let disabled =
  {
    on = false;
    epoch = 0.;
    keep = 0;
    stack = [];
    recs = [];
    n_recs = 0;
    dropped = 0;
    aggs = Hashtbl.create 1;
  }

let create ?(keep = 4096) () =
  if keep < 0 then invalid_arg "Span.create: negative keep";
  {
    on = true;
    epoch = Clock.now ();
    keep;
    stack = [];
    recs = [];
    n_recs = 0;
    dropped = 0;
    aggs = Hashtbl.create 32;
  }

let enabled t = t.on

let depth t = List.length t.stack

let now t = Clock.now () -. t.epoch

let frame_name f = f.f_name
let frame_start f = f.f_start

let enter t name =
  if not t.on then None
  else begin
    let minor, _, major = Gc.counters () in
    let f =
      {
        f_name = name;
        f_depth = List.length t.stack;
        f_start = now t;
        f_minor0 = minor;
        f_major0 = major;
        f_child_total = 0.;
      }
    in
    t.stack <- f :: t.stack;
    Some f
  end

let agg_cell t name =
  match Hashtbl.find_opt t.aggs name with
  | Some c -> c
  | None ->
    let c = { a_count = 0; a_total = 0.; a_self = 0.; a_minor = 0.; a_major = 0. } in
    Hashtbl.replace t.aggs name c;
    c

let exit t frame =
  if not t.on then None
  else begin
    (match t.stack with
    | top :: rest when top == frame -> t.stack <- rest
    | _ -> invalid_arg "Span.exit: frame is not the innermost open span");
    let minor, _, major = Gc.counters () in
    let total = now t -. frame.f_start in
    (* The monotonic clock cannot run backwards, but a child's recorded
       total can still exceed its parent's raw reading by rounding; the
       clamp keeps self times non-negative by construction. *)
    let total = Float.max total frame.f_child_total in
    let self = Float.max 0. (total -. frame.f_child_total) in
    (match t.stack with
    | parent :: _ -> parent.f_child_total <- parent.f_child_total +. total
    | [] -> ());
    let r =
      {
        name = frame.f_name;
        depth = frame.f_depth;
        start_s = frame.f_start;
        total_s = total;
        self_s = self;
        minor_words = Float.max 0. (minor -. frame.f_minor0);
        major_words = Float.max 0. (major -. frame.f_major0);
      }
    in
    if t.n_recs < t.keep then begin
      t.recs <- r :: t.recs;
      t.n_recs <- t.n_recs + 1
    end
    else t.dropped <- t.dropped + 1;
    let c = agg_cell t r.name in
    c.a_count <- c.a_count + 1;
    c.a_total <- c.a_total +. r.total_s;
    c.a_self <- c.a_self +. r.self_s;
    c.a_minor <- c.a_minor +. r.minor_words;
    c.a_major <- c.a_major +. r.major_words;
    Some r
  end

let wrap t name f =
  match enter t name with
  | None -> f ()
  | Some frame -> Fun.protect ~finally:(fun () -> ignore (exit t frame)) f

let records t = List.rev t.recs
let dropped_records t = t.dropped

let aggregate t =
  Hashtbl.fold
    (fun name c acc ->
      {
        agg_name = name;
        count = c.a_count;
        agg_total_s = c.a_total;
        agg_self_s = c.a_self;
        agg_minor_words = c.a_minor;
        agg_major_words = c.a_major;
      }
      :: acc)
    t.aggs []
  |> List.sort (fun a b ->
         match Float.compare b.agg_self_s a.agg_self_s with
         | 0 -> compare a.agg_name b.agg_name
         | c -> c)

let merge_into ~into src =
  if into.on && src.on then begin
    if into == src then invalid_arg "Span.merge_into: profiler merged into itself";
    Hashtbl.iter
      (fun name (c : agg_cell) ->
        let d = agg_cell into name in
        d.a_count <- d.a_count + c.a_count;
        d.a_total <- d.a_total +. c.a_total;
        d.a_self <- d.a_self +. c.a_self;
        d.a_minor <- d.a_minor +. c.a_minor;
        d.a_major <- d.a_major +. c.a_major)
      src.aggs;
    src.dropped <- src.dropped + src.n_recs (* records do not transfer *)
  end

let reset t =
  if t.on then begin
    t.stack <- [];
    t.recs <- [];
    t.n_recs <- 0;
    t.dropped <- 0;
    Hashtbl.reset t.aggs
  end

let to_json t =
  Jsonx.List
    (List.map
       (fun a ->
         Jsonx.Obj
           [
             ("name", Jsonx.String a.agg_name);
             ("count", Jsonx.Int a.count);
             ("total_s", Jsonx.Float a.agg_total_s);
             ("self_s", Jsonx.Float a.agg_self_s);
             ("minor_words", Jsonx.Float a.agg_minor_words);
             ("major_words", Jsonx.Float a.agg_major_words);
           ])
       (aggregate t))
