(** Hierarchical wall-clock span profiler.

    A profiler owns a stack of open spans; entering a span pushes a
    frame, exiting pops it and produces a {!record} carrying the span's
    {e total} wall time, its {e self} time (total minus the total time
    of its direct children), and the GC minor/major words it allocated
    (children included).  Per-name aggregates are kept unbounded; full
    per-instance records are retained up to a cap so a long profiled run
    cannot exhaust memory.

    The profiler is single-domain state.  Worker domains get their own
    via [Obs.fork]; {!merge_into} folds a worker's aggregates back at
    join time.

    {!Obs.span} drives this module and, when a tracer is live, emits
    each enter/exit as [Span_begin]/[Span_end] trace events — which is
    how span timings reach a recorded JSONL trace and, from there, the
    Perfetto export ([drqos_cli analyze --perfetto]). *)

type record = {
  name : string;
  depth : int;  (** 0 = no enclosing span. *)
  start_s : float;  (** wall seconds since profiler creation. *)
  total_s : float;
  self_s : float;  (** [total_s] minus the direct children's totals. *)
  minor_words : float;  (** GC delta over the span, children included. *)
  major_words : float;
}

type agg = {
  agg_name : string;
  count : int;
  agg_total_s : float;
  agg_self_s : float;
  agg_minor_words : float;
  agg_major_words : float;
}

type t

val disabled : t
(** The shared no-op profiler: {!enter} returns [None], {!wrap} runs the
    thunk untouched (no clock or GC reads). *)

val create : ?keep:int -> unit -> t
(** A live profiler whose epoch is now.  [keep] (default 4096) caps the
    retained per-instance records; aggregates are never dropped. *)

val enabled : t -> bool

val depth : t -> int
(** Currently open spans. *)

val now : t -> float
(** Wall seconds since the profiler's epoch. *)

type frame

val enter : t -> string -> frame option
(** Open a span; [None] on a disabled profiler. *)

val exit : t -> frame -> record option
(** Close a span.  The frame must be the innermost open one (raises
    [Invalid_argument] otherwise — spans are strictly nested). *)

val frame_name : frame -> string
val frame_start : frame -> float

val wrap : t -> string -> (unit -> 'a) -> 'a
(** [wrap t name f] = enter, run [f], exit (even on raise). *)

val records : t -> record list
(** Completed spans in completion order, capped at [keep]. *)

val dropped_records : t -> int
(** Records lost to the cap (aggregates still counted them). *)

val aggregate : t -> agg list
(** Per-name totals, sorted by self time descending (name-ordered within
    ties). *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s aggregates into [into] (worker-domain join).  Records
    do not transfer — they count into [src]'s drop tally.  A no-op when
    either side is disabled; raises [Invalid_argument] when both are the
    same live profiler. *)

val reset : t -> unit

val to_json : t -> Jsonx.t
(** The aggregate table as
    [[{"name", "count", "total_s", "self_s", "minor_words",
    "major_words"}, ...]] — the ["spans"] section of the bench
    harness's [BENCH_<exp>.json] records. *)
