/* Monotonic clock primitive for lib/obs (see clock.mli).

   CLOCK_MONOTONIC is immune to NTP steps and manual wall-clock
   adjustments, which is what makes durations computed from it safe for
   long-running daemons; the OCaml side exposes it as nanoseconds since
   an arbitrary per-boot origin. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

CAMLprim value drqos_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  /* No monotonic source on this platform: fall back to the realtime
     clock (callers still clamp negative deltas). */
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                         + (int64_t)ts.tv_nsec);
}
