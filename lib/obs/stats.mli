(** Statistics accumulators for simulation output analysis. *)

(** Streaming mean/variance (Welford's algorithm): numerically stable,
    O(1) memory. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val confidence_interval : ?z:float -> t -> float * float
  (** Normal-approximation CI around the mean (default [z = 1.96], 95%).
      Degenerate (mean, mean) with fewer than two samples. *)

  val merge : t -> t -> t
  (** Combine two accumulators (Chan's parallel update). *)
end

(** Time-weighted average of a piecewise-constant signal — the estimator
    for "average bandwidth reserved", which must weight each level by how
    long it was held, not by how many events touched it. *)
module Timed_average : sig
  type t

  val create : start:float -> value:float -> t

  val update : t -> time:float -> value:float -> unit
  (** The signal takes [value] from [time] on.  [time] must not decrease;
      equal times are fine (instantaneous double transition). *)

  val value : t -> float
  (** Current signal value. *)

  val average : t -> upto:float -> float
  (** Time-weighted mean over [[start, upto]].  Does not disturb the
      accumulator.  Returns the current value if the window is empty. *)

  val elapsed : t -> upto:float -> float
end

(** Fixed-width bucket histogram over [[lo, hi)]; outliers go to the first
    and last buckets. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val bucket_bounds : t -> int -> float * float
  val quantile : t -> float -> float
  (** Approximate quantile (bucket midpoint); [q] in [0, 1].  [nan] on an
      empty histogram.  [q = 0] is the first populated bucket, [q = 1]
      the last; out-of-range samples live in the clamping edge
      buckets. *)

  val pp : Format.formatter -> t -> unit
end
