(** Request-scoped tracing for the serving plane: a propagatable trace
    context, a closed per-request stage taxonomy, and a recorder that
    turns one completed request into mergeable per-stage timers, a
    slowest-verb sketch, SLO good/bad counts, and [Req_*] trace events
    (DESIGN.md §15).

    The context travels on the wire as an optional [trace] field of the
    request line; the server decomposes every request — traced or not —
    into the stage taxonomy on the monotonic {!Clock} and feeds one
    {!observe} per completion.  Stages carry {e durations}, never
    timestamps, so server records join client-side {!Trace.Req_client}
    records across process (and clock-origin) boundaries: the client
    latency minus the server stage sum {e is} network + socket-queue
    time. *)

type ctx = { rid : int; t_sched : float }
(** The propagated context: [rid] is the client-assigned request id
    (the open-loop schedule index — globally unique across worker
    connections), [t_sched] the operation's scheduled due time within
    the replay.  Servers assign negative rids to untraced requests so
    the two spaces never collide. *)

(** The closed stage taxonomy.  Every served request decomposes into
    these five (the analyzer adds a sixth, derived, [network] residual
    for joined requests). *)
type stage =
  | Queue  (** socket readable → dispatch started. *)
  | Parse  (** JSONL line → decoded request. *)
  | Service  (** broker dispatch minus redistribution. *)
  | Redistribute  (** incremental water-filling flush. *)
  | Write  (** reply serialisation + socket write. *)

val all_stages : stage list
(** In pipeline order: queue, parse, service, redistribute, write. *)

val stage_name : stage -> string
val stage_of_name : string -> stage option

val timer_name : stage -> string
(** The metrics timer fed per stage: [req.<stage_name>].  The total
    lands in [req.total]. *)

(** A request that missed the SLO, handed to the exemplar sink. *)
type exemplar = {
  ex_rid : int;
  ex_verb : string;
  ex_ok : bool;
  ex_total_s : float;
  ex_stages : (stage * float) list;
}

val exemplar_note : exemplar -> Trace.event
(** The exemplar as a [Note { name = "slow_request"; ... }] trace event
    carrying the per-stage breakdown. *)

type t

val create : ?slo:float -> ?on_exemplar:(exemplar -> unit) -> Obs.t -> t
(** A recorder over [obs]: per-stage timers [req.<stage>] + [req.total]
    in its metrics registry, the [req.slow_verbs] sketch in its
    heavy-hitter registry, trace events through its tracer.  [slo]
    (seconds, positive — raises [Invalid_argument] otherwise) arms SLO
    counting: requests at or under the threshold count good, the rest
    bad and are handed to [on_exemplar] (default: dropped).  Without
    [slo], {!slo_counts} stays [(0, 0)]. *)

val observe :
  t ->
  rid:int ->
  verb:string ->
  verb_index:int ->
  ok:bool ->
  stages:(stage * float) list ->
  total_s:float ->
  unit
(** Record one completed request.  [total_s] should be the stage sum;
    [verb_index] is the verb's small-int key for the sketch.  Emits the
    [Req_begin]/[Req_stage]*/[Req_end] trio when the context is
    tracing. *)

val slo_counts : t -> int * int
(** Cumulative [(good, bad)] — a {!Snapshot.source}'s [slo] accessor. *)

val slo_threshold : t -> float option
