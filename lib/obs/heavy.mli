(** Mergeable heavy-hitter sketches (space-saving top-k).

    A sketch tracks the [k] most frequent integer keys of a stream
    (link ids, node ids) in bounded memory using the space-saving
    algorithm: hits increment exactly; a miss on a full sketch evicts
    the current minimum and inherits its count as the new key's error
    bound.  Estimates therefore {e over}-count: for every tracked key,
    [true <= estimate <= true + error], and [error <= total / capacity],
    so any key with true frequency above [total / capacity] is
    guaranteed to be tracked.

    Sketches are interned by name in a registry mirroring {!Metrics}:
    instruments minted from a disabled registry reduce every {!offer} to
    one load and one branch, and {!merge_into} folds worker registries
    back at {!Sweep} join time.  Merging is an exact (and associative)
    sum whenever the union of keys fits the capacity; beyond that it
    stays within the space-saving bound but is order-sensitive like any
    bounded summary.  Eviction and tie-breaks are deterministic
    (smallest count, then smallest key), so equal streams produce equal
    sketches. *)

type t
(** A registry of named sketches. *)

type sketch

val create : ?enabled:bool -> unit -> t
(** A fresh registry; [enabled] defaults to [true]. *)

val disabled : t
(** The shared always-off registry: sketches minted from it never
    record. *)

val enabled : t -> bool

val sketch : ?capacity:int -> t -> string -> sketch
(** Interned by name (two calls return the same sketch).  [capacity]
    (default 64) applies on first creation only. *)

val standalone : ?capacity:int -> enabled:bool -> unit -> sketch
(** A private sketch outside any registry — for per-run state that must
    not accumulate across runs sharing a registry. *)

val sketch_enabled : sketch -> bool
(** Whether offers record: the owning registry's switch for interned
    sketches, the creation flag for {!standalone} ones.  Guard loops
    that offer many keys per operation with this. *)

val offer : ?by:int -> sketch -> int -> unit
(** Record one occurrence of a key (or [by] occurrences, [by >= 0]).
    No-op on a disabled sketch. *)

val total : sketch -> int
(** Total weight offered (exact, never truncated). *)

val tracked : sketch -> int
(** Distinct keys currently tracked ([<= capacity]). *)

val capacity : sketch -> int

val estimate : sketch -> int -> (int * int) option
(** [(count, error)] for a tracked key: [count - error <= true <=
    count].  [None] when the key is not tracked. *)

val top : ?k:int -> sketch -> (int * int * int) list
(** [(key, count, error)] sorted by estimated count descending (key
    ascending within ties), truncated to [k] (default: all tracked). *)

val merge_sketch_into : into:sketch -> sketch -> unit
(** Fold one sketch into another (space-saving merge: common keys sum
    counts and errors; a new key on a full target inherits the evicted
    minimum as extra error).  No-op when [into] is disabled or the two
    are the same sketch. *)

val merge_into : into:t -> t -> unit
(** Fold every sketch of [src] into the same-named sketch of [into]
    (interned on demand, inheriting the source capacity).  No-op when
    [into] is disabled; raises [Invalid_argument] when both arguments
    are the same registry. *)

val sketch_json : sketch -> Jsonx.t
(** [{"total": n, "tracked": k, "capacity": c, "top": [[key, count,
    err], ...]}] with [top] in {!top} order. *)

val snapshot : t -> Jsonx.t
(** [{"enabled": bool, "sketches": {name: sketch_json}}], name-sorted. *)
