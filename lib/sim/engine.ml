type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  obs : Obs.t;
  ev_dispatched : Metrics.counter;
  queue_depth : Metrics.gauge;
  run_timer : Metrics.timer;
  (* Metrics-independent dispatch count: telemetry needs it even when
     the metrics registry is off, and it must not double when several
     engines share a registry. *)
  mutable dispatched : int;
  mutable hb_every : float;
  mutable hb_next : float;
  mutable hb_fn : (t -> unit) option;
  mutable whb_every : float;
  mutable whb_last : float;
  mutable whb_fn : (t -> unit) option;
}

type handle = Event_queue.handle

let create ?(start_time = 0.) ?capacity ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  {
    queue = Event_queue.create ?capacity ();
    clock = start_time;
    obs;
    ev_dispatched = Obs.counter obs "engine.events";
    queue_depth = Obs.gauge obs "engine.queue_depth";
    run_timer = Obs.timer obs "engine.run_s";
    dispatched = 0;
    hb_every = 0.;
    hb_next = infinity;
    hb_fn = None;
    whb_every = 0.;
    whb_last = 0.;
    whb_fn = None;
  }

let now t = t.clock

let dispatched t = t.dispatched

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let footprint t = Event_queue.footprint t.queue

let on_heartbeat t ~every f =
  if every <= 0. then invalid_arg "Engine.on_heartbeat: every must be positive";
  t.hb_every <- every;
  t.hb_next <- t.clock +. every;
  t.hb_fn <- Some f

let on_wall_heartbeat t ~every_s f =
  if every_s <= 0. then invalid_arg "Engine.on_wall_heartbeat: every_s must be positive";
  t.whb_every <- every_s;
  t.whb_last <- Clock.now ();
  t.whb_fn <- Some f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.dispatched <- t.dispatched + 1;
    Metrics.incr t.ev_dispatched;
    f t;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  Obs.span t.obs "engine.run" @@ fun () ->
  let handled = ref 0 in
  let instrumented = Metrics.enabled (Obs.metrics t.obs) in
  let t0 = if instrumented then Clock.now () else 0. in
  let continue = ref true in
  while !continue && !handled < max_events do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until ->
      t.clock <- until;
      continue := false
    | Some time ->
      (* Fire every simulation-time heartbeat boundary the next event
         would cross, before dispatching it: the callback observes the
         state as of the boundary instant, and the cadence is a pure
         function of the event stream — deterministic whatever the
         wall-clock pacing. *)
      (match t.hb_fn with
      | Some fn ->
        while t.hb_next <= time && t.hb_next <= until do
          t.clock <- t.hb_next;
          fn t;
          t.hb_next <- t.hb_next +. t.hb_every
        done
      | None -> ());
      (* Sampled before dispatch, so the gauge's peak is the true high
         watermark of live events. *)
      if instrumented then Metrics.set t.queue_depth (float_of_int (Event_queue.size t.queue));
      ignore (step t);
      incr handled;
      (* Wall heartbeats poll the clock only every 64 events to keep the
         clock-read cost off the per-event path. *)
      (match t.whb_fn with
      | Some fn when t.dispatched land 63 = 0 ->
        let now_s = Clock.now () in
        if now_s -. t.whb_last >= t.whb_every then begin
          t.whb_last <- now_s;
          fn t
        end
      | _ -> ())
  done;
  (* Close the interval even if we drained the queue first: the clock
     advances to [until], and any heartbeat boundaries on the way fire
     first — stopping at [until] must not silently swallow beats the
     interval contains. *)
  if Float.is_finite until then begin
    (match t.hb_fn with
    | Some fn ->
      while t.hb_next <= until do
        t.clock <- t.hb_next;
        fn t;
        t.hb_next <- t.hb_next +. t.hb_every
      done
    | None -> ());
    if t.clock < until then t.clock <- until
  end;
  if instrumented then Metrics.observe t.run_timer (Clock.elapsed_since t0);
  !handled
