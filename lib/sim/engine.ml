type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  obs : Obs.t;
  ev_dispatched : Metrics.counter;
  queue_depth : Metrics.gauge;
  run_timer : Metrics.timer;
}

type handle = Event_queue.handle

let create ?(start_time = 0.) ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  {
    queue = Event_queue.create ();
    clock = start_time;
    obs;
    ev_dispatched = Obs.counter obs "engine.events";
    queue_depth = Obs.gauge obs "engine.queue_depth";
    run_timer = Obs.timer obs "engine.run_s";
  }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    Metrics.incr t.ev_dispatched;
    f t;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  Obs.span t.obs "engine.run" @@ fun () ->
  let handled = ref 0 in
  let instrumented = Metrics.enabled (Obs.metrics t.obs) in
  let t0 = if instrumented then Unix.gettimeofday () else 0. in
  let continue = ref true in
  while !continue && !handled < max_events do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until ->
      t.clock <- until;
      continue := false
    | Some _ ->
      (* Sampled before dispatch, so the gauge's peak is the true high
         watermark of live events. *)
      if instrumented then Metrics.set t.queue_depth (float_of_int (Event_queue.size t.queue));
      ignore (step t);
      incr handled
  done;
  (* Close the interval even if we drained the queue first. *)
  if Float.is_finite until && t.clock < until then t.clock <- until;
  if instrumented then Metrics.observe t.run_timer (Unix.gettimeofday () -. t0);
  !handled
