(** Priority queue of timed events with O(log n) insertion/extraction and
    O(1) cancellation (lazy deletion).

    Ties in time are broken by insertion order, so simulations are fully
    deterministic. *)

type 'a t

type handle
(** Names a scheduled event for cancellation. *)

val create : ?capacity:int -> unit -> 'a t
(** [capacity] pre-sizes the heap and pending table for an expected
    number of concurrently-scheduled events (default: grow on demand) —
    avoids the doubling-and-rehash cascade when a simulation schedules
    millions of events up front. *)

val add : 'a t -> time:float -> 'a -> handle
(** Schedules a payload.  [time] must be finite; raises otherwise. *)

val cancel : 'a t -> handle -> bool
(** [true] if the event was still pending (now removed); [false] if it had
    already fired or been cancelled. *)

val pop : 'a t -> (float * 'a) option
(** Earliest remaining event, skipping cancelled entries. *)

val peek_time : 'a t -> float option

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val footprint : 'a t -> int
(** Bookkeeping entries currently retained: pending-table entries plus
    occupied heap slots.  Bounded by live events plus
    cancelled-but-not-yet-drained ones — {e not} by the queue's history.
    Regression guard for the former fired-set leak, where the table
    gained one entry per fired event forever. *)

val is_empty : 'a t -> bool
