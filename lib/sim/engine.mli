(** Discrete-event simulation engine.

    A thin deterministic loop over {!Event_queue}: events are closures run
    at their scheduled time, in time order (insertion order within a
    tie).  Handlers may schedule and cancel further events freely. *)

type t

type handle = Event_queue.handle

val create : ?start_time:float -> ?capacity:int -> ?obs:Obs.t -> unit -> t
(** [capacity] pre-sizes the event queue for an expected number of
    concurrently-scheduled events (see {!Event_queue.create}).

    [obs] (default {!Obs.default}) receives the engine's instrumentation:
    counter [engine.events] (dispatched events), gauge
    [engine.queue_depth] (live events sampled before each dispatch, peak
    = high watermark), timer [engine.run_s] (wall time per {!run}
    call).  With a disabled context the per-event overhead is one
    branch. *)

val now : t -> float
(** Current simulation time: the timestamp of the event being handled, or
    the start time before the first event. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]; [delay >= 0]. *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant; [time >= now t]. *)

val cancel : t -> handle -> bool

val pending : t -> int

val footprint : t -> int
(** {!Event_queue.footprint} of the engine's queue: heap slots plus
    pending handles, a proxy for the queue's memory footprint. *)

val dispatched : t -> int
(** Total events dispatched over the engine's lifetime.  Unlike the
    [engine.events] counter this is tracked on the engine itself, so it
    works with a disabled metrics registry and never aggregates across
    engines. *)

val on_heartbeat : t -> every:float -> (t -> unit) -> unit
(** Call the function every [every] simulation-time units during {!run},
    starting at [now t +. every].  Boundaries are fired {e before}
    dispatching the first event at-or-after them, with the clock set to
    the boundary instant — the cadence is a pure function of the event
    stream, so heartbeat-driven telemetry is deterministic.  When a run
    stops at a finite [until], the boundaries it contains fire as the
    clock closes on [until].  At most one callback; a second call
    replaces the first.  [every > 0]. *)

val on_wall_heartbeat : t -> every_s:float -> (t -> unit) -> unit
(** Call the function roughly every [every_s] wall-clock seconds during
    {!run}.  The clock is polled every 64 dispatched events, so a beat
    fires at the first such poll past the interval — cheap, but neither
    exact nor deterministic (intended for live progress/GC telemetry
    only).  At most one callback; a second call replaces the first.
    [every_s > 0]. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Process events until the queue drains, the next event would exceed
    [until], or [max_events] have been handled.  Returns the number of
    events handled.  When stopped by [until], the clock is advanced to
    [until] (so time-weighted statistics can be closed there). *)

val step : t -> bool
(** Handle exactly one event; [false] if the queue was empty. *)
