(** Discrete-event simulation engine.

    A thin deterministic loop over {!Event_queue}: events are closures run
    at their scheduled time, in time order (insertion order within a
    tie).  Handlers may schedule and cancel further events freely. *)

type t

type handle = Event_queue.handle

val create : ?start_time:float -> ?obs:Obs.t -> unit -> t
(** [obs] (default {!Obs.default}) receives the engine's instrumentation:
    counter [engine.events] (dispatched events), gauge
    [engine.queue_depth] (live events sampled before each dispatch, peak
    = high watermark), timer [engine.run_s] (wall time per {!run}
    call).  With a disabled context the per-event overhead is one
    branch. *)

val now : t -> float
(** Current simulation time: the timestamp of the event being handled, or
    the start time before the first event. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]; [delay >= 0]. *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant; [time >= now t]. *)

val cancel : t -> handle -> bool

val pending : t -> int

val run : ?until:float -> ?max_events:int -> t -> int
(** Process events until the queue drains, the next event would exceed
    [until], or [max_events] have been handled.  Returns the number of
    events handled.  When stopped by [until], the clock is advanced to
    [until] (so time-weighted statistics can be closed there). *)

val step : t -> bool
(** Handle exactly one event; [false] if the queue was empty. *)
