type handle = int

type 'a entry = { time : float; seq : int; payload : 'a }

(* Pending handles are tracked positively: a seq is in [pending] iff the
   event is scheduled and has neither fired nor been cancelled.  The
   previous encoding kept the complement (every fired/cancelled seq,
   forever), which grew without bound over the life of the queue; this
   table is O(live).  Vacated heap slots are nulled so popped payloads
   become collectable immediately (hence the option array). *)
type 'a t = {
  mutable heap : 'a entry option array;
  mutable size_heap : int;
  mutable next_seq : int;
  pending : (int, unit) Hashtbl.t;
}

let create ?(capacity = 0) () =
  {
    heap = (if capacity > 0 then Array.make capacity None else [||]);
    size_heap = 0;
    next_seq = 0;
    pending = Hashtbl.create (max 64 capacity);
  }

let earlier a b = a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let get arr i = match arr.(i) with Some e -> e | None -> assert false

let ensure_capacity t =
  let len = Array.length t.heap in
  if t.size_heap = len then begin
    let bigger = Array.make (max 64 (2 * len)) None in
    Array.blit t.heap 0 bigger 0 t.size_heap;
    t.heap <- bigger
  end

let add t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_queue.add: non-finite time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  let arr = t.heap in
  let i = ref t.size_heap in
  arr.(!i) <- Some entry;
  t.size_heap <- t.size_heap + 1;
  while !i > 0 && earlier (get arr !i) (get arr ((!i - 1) / 2)) do
    let parent = (!i - 1) / 2 in
    let tmp = arr.(!i) in
    arr.(!i) <- arr.(parent);
    arr.(parent) <- tmp;
    i := parent
  done;
  Hashtbl.replace t.pending entry.seq ();
  entry.seq

(* A handle outside [pending] has fired or been cancelled already (or was
   never issued), so late cancels return false as before. *)
let cancel t h =
  if Hashtbl.mem t.pending h then begin
    Hashtbl.remove t.pending h;
    true
  end
  else false

let sift_down arr size =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && earlier (get arr l) (get arr !smallest) then smallest := l;
    if r < size && earlier (get arr r) (get arr !smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!smallest);
      arr.(!smallest) <- tmp;
      i := !smallest
    end
  done

(* Remove and return the root, nulling the vacated slot. *)
let remove_top t =
  let arr = t.heap in
  let top = get arr 0 in
  t.size_heap <- t.size_heap - 1;
  arr.(0) <- arr.(t.size_heap);
  arr.(t.size_heap) <- None;
  sift_down arr t.size_heap;
  top

let rec pop t =
  if t.size_heap = 0 then None
  else begin
    let top = remove_top t in
    if Hashtbl.mem t.pending top.seq then begin
      Hashtbl.remove t.pending top.seq;
      Some (top.time, top.payload)
    end
    else pop t (* cancelled: slot already nulled, keep draining *)
  end

let rec peek_time t =
  if t.size_heap = 0 then None
  else begin
    let top = get t.heap 0 in
    if Hashtbl.mem t.pending top.seq then Some top.time
    else begin
      ignore (remove_top t);
      peek_time t
    end
  end

let size t = Hashtbl.length t.pending

let footprint t = Hashtbl.length t.pending + t.size_heap

let is_empty t = peek_time t = None
