(** One spec-based option parser for every ad-hoc flag table in the repo.

    Three surfaces share it: the bench drivers' shared flags
    ([Exp.parse_args]), the bench sub-command dispatch ([bench/main]),
    and the fuzz reproducers' [# fuzz k=v] headers ([Fuzz.parse_script]).
    A flag either stands alone ([Unit]) or consumes the next argument
    ([Value]); unknown arguments pass through to the caller in order, so
    sub-command words and positional arguments survive the walk.

    Callers keep their exit conventions — [parse] only reports; the
    binary decides that a usage error is exit code 2. *)

type spec =
  | Unit of (unit -> unit)  (** standalone flag, e.g. [--quick]. *)
  | Value of (string -> (unit, string) result)
      (** flag consuming the next argument, e.g. [--out DIR]; the
          callback validates and applies it. *)

val parse :
  specs:(string * spec) list -> string list -> (string list, string) result
(** Walk the arguments left to right.  Arguments matching a spec are
    applied in order; everything else is returned, in its original
    order.  A [Value] flag accepts both spellings — [--out DIR] and
    [--out=DIR] — but may appear only once: a duplicate is an error
    (silent last-one-wins discards configuration).  [Unit] flags are
    idempotent and stay repeatable; [--flag=v] on a [Unit] spec is an
    error.  An unknown argument containing ['='] passes through
    verbatim.  [Error] also on a [Value] flag with no following
    argument or a callback rejection; flags already applied stay
    applied (the callers exit on error). *)

val parse_kv :
  specs:(string * (string -> (unit, string) result)) list ->
  (string * string) list ->
  (unit, string) result
(** Apply [key = value] pairs (the fuzz reproducer header dialect)
    against a spec table.  Unknown keys, duplicate keys and rejected
    values are errors — a reproducer must not silently lose
    configuration. *)
