type spec =
  | Unit of (unit -> unit)
  | Value of (string -> (unit, string) result)

(* Split "--flag=value" at the first '='; only meaningful when the
   prefix names a known spec — an unknown "foo=bar" argument must pass
   through verbatim (fuzz reproducer headers and positional words use
   that shape). *)
let split_eq arg =
  match String.index_opt arg '=' with
  | None -> None
  | Some i ->
    Some (String.sub arg 0 i, String.sub arg (i + 1) (String.length arg - i - 1))

let parse ~specs args =
  (* A [Value] flag given twice is ambiguous — last-one-wins silently
     discards configuration, so it is a parse error.  [Unit] flags are
     idempotent toggles ("--quick --quick") and stay repeatable. *)
  let seen = Hashtbl.create 8 in
  let duplicate flag =
    if Hashtbl.mem seen flag then
      Error (Printf.sprintf "%s given more than once" flag)
    else begin
      Hashtbl.replace seen flag ();
      Ok ()
    end
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | arg :: rest -> (
      match List.assoc_opt arg specs with
      | Some (Unit apply) ->
        apply ();
        go acc rest
      | Some (Value apply) -> (
        match duplicate arg with
        | Error _ as e -> e
        | Ok () -> (
          match rest with
          | [] -> Error (Printf.sprintf "%s requires an argument" arg)
          | v :: rest -> (
            match apply v with Ok () -> go acc rest | Error _ as e -> e)))
      | None -> (
        match split_eq arg with
        | Some (flag, v) -> (
          match List.assoc_opt flag specs with
          | Some (Unit _) ->
            Error (Printf.sprintf "%s does not take an argument" flag)
          | Some (Value apply) -> (
            match duplicate flag with
            | Error _ as e -> e
            | Ok () -> (
              match apply v with Ok () -> go acc rest | Error _ as e -> e))
          | None -> go (arg :: acc) rest)
        | None -> go (arg :: acc) rest))
  in
  go [] args

let parse_kv ~specs pairs =
  let seen = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | (k, v) :: rest -> (
      match List.assoc_opt k specs with
      | None -> Error (Printf.sprintf "unknown key %S" k)
      | Some apply ->
        if Hashtbl.mem seen k then
          Error (Printf.sprintf "key %S given more than once" k)
        else begin
          Hashtbl.replace seen k ();
          match apply v with
          | Ok () -> go rest
          | Error _ as e -> e
        end)
  in
  go pairs
