type spec =
  | Unit of (unit -> unit)
  | Value of (string -> (unit, string) result)

let parse ~specs args =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | arg :: rest -> (
      match List.assoc_opt arg specs with
      | Some (Unit apply) ->
        apply ();
        go acc rest
      | Some (Value apply) -> (
        match rest with
        | [] -> Error (Printf.sprintf "%s requires an argument" arg)
        | v :: rest -> (
          match apply v with Ok () -> go acc rest | Error _ as e -> e))
      | None -> go (arg :: acc) rest)
  in
  go [] args

let parse_kv ~specs pairs =
  let rec go = function
    | [] -> Ok ()
    | (k, v) :: rest -> (
      match List.assoc_opt k specs with
      | None -> Error (Printf.sprintf "unknown key %S" k)
      | Some apply -> (
        match apply v with
        | Ok () -> go rest
        | Error _ as e -> e))
  in
  go pairs
