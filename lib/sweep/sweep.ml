let recommended_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?obs f points =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Sweep.map: jobs must be >= 1";
  let items = Array.of_list points in
  let n = Array.length items in
  let workers = min jobs n in
  if workers <= 1 then begin
    (* One effective worker: run in the calling domain, but still install
       [obs] as the domain default for the duration — exactly what a
       worker does with its fork — so deep call sites that read the
       default (the solvers) record the same instruments either way. *)
    let saved = Obs.default () in
    Obs.set_default obs;
    Fun.protect
      ~finally:(fun () -> Obs.set_default saved)
      (fun () -> List.map (f obs) points)
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* Each worker pulls the next unclaimed index; every cell is written
       by exactly one domain, and [Domain.join] orders those writes
       before our reads. *)
    let worker () =
      let wobs = Obs.fork obs in
      Obs.set_default wobs;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f wobs items.(i) with
          | r -> results.(i) <- Some r
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ();
      wobs
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    let forks = Array.map Domain.join domains in
    Array.iter (fun w -> Obs.absorb ~into:obs w) forks;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end
