let recommended_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?obs f points =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Sweep.map: jobs must be >= 1";
  let items = Array.of_list points in
  let n = Array.length items in
  let workers = min jobs n in
  if workers <= 1 then begin
    (* One effective worker: run in the calling domain, but still install
       [obs] as the domain default for the duration — exactly what a
       worker does with its fork — so deep call sites that read the
       default (the solvers) record the same instruments either way. *)
    let saved = Obs.default () in
    Obs.set_default obs;
    Fun.protect
      ~finally:(fun () -> Obs.set_default saved)
      (fun () -> List.map (f obs) points)
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* Each worker pulls the next unclaimed index; every cell is written
       by exactly one domain, and [Domain.join] orders those writes
       before our reads. *)
    let worker () =
      let wobs = Obs.fork obs in
      Obs.set_default wobs;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f wobs items.(i) with
          | r -> results.(i) <- Some r
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ();
      wobs
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    let forks = Array.map Domain.join domains in
    Array.iter (fun w -> Obs.absorb ~into:obs w) forks;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

type open_loop_report = {
  sent : int;
  wall_s : float;
  achieved_rps : float;
  max_lag_s : float;
}

let open_loop ?jobs ?obs ?(timer = "open_loop.latency")
    ?(on_complete = fun _ _ -> ()) ~arrivals ~worker ?(finish = fun _ -> ())
    f =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Sweep.open_loop: jobs must be >= 1";
  let n = Array.length arrivals in
  if n = 0 then { sent = 0; wall_s = 0.; achieved_rps = 0.; max_lag_s = 0. }
  else begin
    let workers = min jobs n in
    let lags = Array.make workers 0. in
    let errors = Array.make workers None in
    (* One schedule origin for every domain: operation [i] is due at
       [t0 + arrivals.(i)] on the shared monotonic clock. *)
    let t0 = Clock.now () in
    (* Worker [w] owns indices [w, w + workers, ...]: a deterministic
       split, and index order within a slice is due-time order because
       [arrivals] is non-decreasing. *)
    let run w wobs =
      let tm = Obs.timer wobs timer in
      let state = worker w in
      Fun.protect
        ~finally:(fun () -> finish state)
        (fun () ->
          let i = ref w in
          while !i < n do
            let due = arrivals.(!i) in
            let rec wait () =
              let now = Clock.now () -. t0 in
              if now < due then begin
                Unix.sleepf (due -. now);
                wait ()
              end
            in
            wait ();
            let lag = Clock.now () -. t0 -. due in
            if lag > lags.(w) then lags.(w) <- lag;
            f wobs state !i;
            (* Open-loop latency: completion minus the *scheduled* due
               time, so backlog behind a slow target is charged to the
               operations that queued, not hidden by a slipped start. *)
            let latency = Clock.now () -. t0 -. due in
            Metrics.observe tm latency;
            on_complete !i latency;
            i := !i + workers
          done)
    in
    if workers = 1 then begin
      let saved = Obs.default () in
      Obs.set_default obs;
      Fun.protect
        ~finally:(fun () -> Obs.set_default saved)
        (fun () -> run 0 obs)
    end
    else begin
      let spawn w =
        Domain.spawn (fun () ->
            let wobs = Obs.fork obs in
            Obs.set_default wobs;
            (match run w wobs with
            | () -> ()
            | exception e ->
              errors.(w) <- Some (e, Printexc.get_raw_backtrace ()));
            wobs)
      in
      let domains = Array.init workers spawn in
      let forks = Array.map Domain.join domains in
      Array.iter (fun wobs -> Obs.absorb ~into:obs wobs) forks;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors
    end;
    let wall_s = Clock.now () -. t0 in
    {
      sent = n;
      wall_s;
      achieved_rps = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
      max_lag_s = Array.fold_left Float.max 0. lags;
    }
  end
