(** Deterministic parallel map over OCaml 5 domains — the substrate every
    experiment sweep (bench figures, CLI sweeps, replicated runs) fans
    out on.

    The pool evaluates independent points concurrently and returns the
    results {e in submission order}, bit-for-bit identical to a
    sequential run: each point carries its own randomness (the scenario
    seed travels inside the point), workers share no mutable state, and
    each worker records observability into a private {!Obs.fork} of the
    caller's context, merged back into it after all domains join.
    Tracing does not cross domains — worker forks carry no tracer. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default pool width. *)

val map : ?jobs:int -> ?obs:Obs.t -> (Obs.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map ~jobs ~obs f points] evaluates [f worker_obs point] for every
    point and returns the results in the order the points were given.

    [jobs] (default {!recommended_jobs}) bounds the number of worker
    domains; the pool never spawns more workers than points.  With one
    effective worker the pool degenerates to a plain sequential [List.map]
    in the calling domain — no domain is spawned; [f] receives [obs]
    itself, installed as the domain default for the duration (exactly
    what each worker does with its fork, so deep call sites reading the
    default record the same instruments either way).  Raises
    [Invalid_argument] when [jobs < 1].

    [obs] defaults to the calling domain's {!Obs.default}.  Each worker
    domain receives a private {!Obs.fork} of it, installs that fork as
    its domain-local default (so deep call sites reading the default
    record into the worker's registry), and the forks' metrics are merged
    back into [obs] after the join — counters and timer counts are exact
    sums, identical to a sequential run.

    Points are handed to idle workers dynamically (an atomic cursor), so
    uneven point costs balance; determinism is unaffected because results
    are stored by submission index.

    If [f] raises on any point, every domain still finishes its remaining
    points and is joined, worker metrics are still merged, and then the
    exception of the {e lowest-index} failing point is re-raised with its
    backtrace. *)
