(** Deterministic parallel map over OCaml 5 domains — the substrate every
    experiment sweep (bench figures, CLI sweeps, replicated runs) fans
    out on.

    The pool evaluates independent points concurrently and returns the
    results {e in submission order}, bit-for-bit identical to a
    sequential run: each point carries its own randomness (the scenario
    seed travels inside the point), workers share no mutable state, and
    each worker records observability into a private {!Obs.fork} of the
    caller's context, merged back into it after all domains join.
    Tracing does not cross domains — worker forks carry no tracer. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default pool width. *)

val map : ?jobs:int -> ?obs:Obs.t -> (Obs.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map ~jobs ~obs f points] evaluates [f worker_obs point] for every
    point and returns the results in the order the points were given.

    [jobs] (default {!recommended_jobs}) bounds the number of worker
    domains; the pool never spawns more workers than points.  With one
    effective worker the pool degenerates to a plain sequential [List.map]
    in the calling domain — no domain is spawned; [f] receives [obs]
    itself, installed as the domain default for the duration (exactly
    what each worker does with its fork, so deep call sites reading the
    default record the same instruments either way).  Raises
    [Invalid_argument] when [jobs < 1].

    [obs] defaults to the calling domain's {!Obs.default}.  Each worker
    domain receives a private {!Obs.fork} of it, installs that fork as
    its domain-local default (so deep call sites reading the default
    record into the worker's registry), and the forks' metrics are merged
    back into [obs] after the join — counters and timer counts are exact
    sums, identical to a sequential run.

    Points are handed to idle workers dynamically (an atomic cursor), so
    uneven point costs balance; determinism is unaffected because results
    are stored by submission index.

    If [f] raises on any point, every domain still finishes its remaining
    points and is joined, worker metrics are still merged, and then the
    exception of the {e lowest-index} failing point is re-raised with its
    backtrace. *)

(** {1 Open-loop load replay}

    Where {!map} evaluates points as fast as the pool allows (closed
    loop), {!open_loop} fires them on a {e schedule}: operation [i] is
    due [arrivals.(i)] seconds after the replay starts, whether or not
    earlier operations have finished.  A slow target therefore builds a
    backlog instead of silently slowing the offered load — the
    coordinated-omission trap an interactive-benchmark harness must
    avoid. *)

type open_loop_report = {
  sent : int;
  wall_s : float;  (** monotonic, start to last completion. *)
  achieved_rps : float;  (** [sent /. wall_s]. *)
  max_lag_s : float;
      (** worst start-time slip behind the schedule across all
          operations — how far the replay fell behind its own clock. *)
}

val open_loop :
  ?jobs:int ->
  ?obs:Obs.t ->
  ?timer:string ->
  ?on_complete:(int -> float -> unit) ->
  arrivals:float array ->
  worker:(int -> 'w) ->
  ?finish:('w -> unit) ->
  (Obs.t -> 'w -> int -> unit) ->
  open_loop_report
(** [open_loop ~arrivals ~worker f] replays the schedule across
    [min jobs (length arrivals)] domains.  Operation [i] belongs to
    worker [i mod workers] (a deterministic round-robin split, so a
    replay against a deterministic target partitions identically at a
    given width); each worker walks its slice in index order, sleeping
    until an operation is due and running the backlog flat-out when it
    is behind.  [arrivals] must be non-decreasing.

    [worker w] builds worker [w]'s private state (e.g. one client
    connection) inside the worker's domain; [finish] (default no-op)
    tears it down there, backlog or no backlog.

    Latency accounting is open-loop: each operation's duration is
    measured from its {e scheduled} due time to its completion (both on
    the monotonic {!Clock}) and observed into the metrics timer named
    [timer] (default ["open_loop.latency"]) of the worker's {!Obs.fork},
    so queueing delay behind a saturated target is charged to the
    operations that queued.  Forks merge back into [obs] after the join
    — read the percentiles off [obs]'s registry with
    {!Metrics.timer_quantile}.

    [on_complete i latency] (default no-op) fires after each operation
    with its global index and that same open-loop latency, {e in the
    worker's domain} — callers recording per-operation data must give
    it domain-safe storage (e.g. a pre-sized array cell per index, as
    the load generator's request-tracing log does).

    Worker exceptions behave as in {!map}: every domain drains its
    slice, forks are merged, then the lowest-worker-index exception is
    re-raised. *)
