(** Packet-level simulation of established real-time channels — the
    run-time message-scheduling phase (§2.1.1; Kandlur, Shin & Ferrari,
    TPDS 1994) over a whole path, not just one link.

    Each directed link is a non-preemptive server at its line rate,
    choosing among queued packets by earliest {e local} deadline (EDF);
    a packet's end-to-end deadline budget is split evenly across its
    hops.  Sources are token-bucket-shaped.  Everything runs on the
    shared {!Engine}, so channel-level events (failures, re-routing)
    can be interleaved by the caller. *)

type t

type flow_id = int

val create : ?propagation_delay:float -> ?obs:Obs.t -> Engine.t -> Graph.t ->
  rate_of:(Dirlink.id -> Bandwidth.t) -> t
(** One server per directed link of the graph.  [propagation_delay]
    (seconds per hop, default 0) is added after each transmission.
    [obs] (default {!Obs.default}) receives the counters
    [netsim.packets_sent], [netsim.packets_delivered],
    [netsim.deadline_misses] and [netsim.packets_skipped], plus the
    heavy-hitter sketch [netsim.link_util] ranking directed links by
    transmitted bits. *)

val add_flow :
  t ->
  path:Dirlink.id list ->
  spec:Traffic_spec.t ->
  deadline:float ->
  ?start:float ->
  ?interval:Interval_qos.spec ->
  ?skip_threshold:int ->
  stop:float ->
  unit ->
  flow_id
(** A shaped source injecting packets along [path] from [start] (default
    now) until [stop]; each packet must arrive within [deadline] seconds
    of its creation.  The source sends as fast as its token bucket
    allows, i.e. at sustained rate [spec.rate] after an initial burst.

    With [interval] the flow carries a k-out-of-M contract (§2.2's
    run-time elastic model): when the flow's first-hop queue holds at
    least [skip_threshold] packets (default 4) and the sliding window
    tolerates a loss, the source {e skips} the packet instead of sending
    it — skip-over scheduling, trading packets the contract permits to
    lose for queue relief.  On-time delivery records a success in the
    window; a late delivery records a loss.

    Raises [Invalid_argument] on an empty path or non-positive
    deadline. *)

(** Delivery statistics of one flow. *)
type stats = {
  sent : int;
  delivered : int;
  missed : int;  (** delivered after their deadline. *)
  skipped : int;  (** deliberately dropped at the source (interval QoS). *)
  in_flight : int;  (** still queued when the stats were read. *)
  delay : Stats.Welford.t;  (** end-to-end delay of delivered packets. *)
  worst_delay : float;
  contract_violations : int option;
      (** sliding-window violations; [None] without an interval
          contract. *)
}

val stats : t -> flow_id -> stats
(** Raises [Not_found] for an unknown id. *)

val link_busy_time : t -> Dirlink.id -> float
(** Cumulated transmission time of a link's server — its utilisation is
    [busy / elapsed]. *)

val total_delivered : t -> int
