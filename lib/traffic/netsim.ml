type flow_id = int

type packet = {
  flow : flow_id;
  created : float;
  e2e_deadline : float; (* absolute *)
  size_bits : int;
  per_hop_budget : float;
  path : Dirlink.id array;
  mutable hop : int; (* next link to traverse *)
}

(* Local EDF deadline at the packet's current hop: the even split of the
   end-to-end budget. *)
let local_deadline p = p.created +. (p.per_hop_budget *. float_of_int (p.hop + 1))

type server = {
  rate : Bandwidth.t;
  mutable busy : bool;
  mutable queue : packet list; (* sorted by local deadline *)
  mutable busy_time : float;
}

type flow_state = {
  fid : flow_id;
  fpath : Dirlink.id array;
  spec : Traffic_spec.t;
  deadline : float;
  stop : float;
  bucket : Traffic_spec.Bucket.bucket;
  monitor : Interval_qos.monitor option;
  skip_threshold : int;
  mutable sent : int;
  mutable delivered : int;
  mutable missed : int;
  mutable skipped : int;
  delay_acc : Stats.Welford.t;
  mutable worst : float;
}

type t = {
  engine : Engine.t;
  servers : server array;
  flows : (flow_id, flow_state) Hashtbl.t;
  propagation_delay : float;
  mutable next_flow : int;
  mutable delivered_total : int;
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_missed : Metrics.counter;
  m_skipped : Metrics.counter;
  h_util : Heavy.sketch;
}

let create ?(propagation_delay = 0.) ?obs engine graph ~rate_of =
  if propagation_delay < 0. then invalid_arg "Netsim.create: negative propagation delay";
  let obs = match obs with Some o -> o | None -> Obs.default () in
  {
    engine;
    servers =
      Array.init (Dirlink.count graph) (fun dl ->
          let rate = rate_of dl in
          if rate <= 0 then invalid_arg "Netsim.create: non-positive link rate";
          { rate; busy = false; queue = []; busy_time = 0. });
    flows = Hashtbl.create 32;
    propagation_delay;
    next_flow = 0;
    delivered_total = 0;
    m_sent = Obs.counter obs "netsim.packets_sent";
    m_delivered = Obs.counter obs "netsim.packets_delivered";
    m_missed = Obs.counter obs "netsim.deadline_misses";
    m_skipped = Obs.counter obs "netsim.packets_skipped";
    h_util = Obs.heavy_sketch obs "netsim.link_util";
  }

let insert_by_deadline p queue =
  let key = local_deadline p in
  let rec go = function
    | [] -> [ p ]
    | q :: rest as l -> if local_deadline q <= key then q :: go rest else p :: l
  in
  go queue

let deliver t flow_state p ~now =
  let delay = now -. p.created in
  flow_state.delivered <- flow_state.delivered + 1;
  t.delivered_total <- t.delivered_total + 1;
  Metrics.incr t.m_delivered;
  Stats.Welford.add flow_state.delay_acc delay;
  if delay > flow_state.worst then flow_state.worst <- delay;
  let on_time = now <= p.e2e_deadline in
  if not on_time then begin
    flow_state.missed <- flow_state.missed + 1;
    Metrics.incr t.m_missed
  end;
  Option.iter
    (fun mon -> Interval_qos.record mon ~delivered:on_time)
    flow_state.monitor

(* Mutual recursion: finishing a transmission hands the packet to the
   next hop (an arrival) and pulls the next packet into service. *)
let rec start_service t dl =
  let s = t.servers.(dl) in
  match s.queue with
  | [] -> s.busy <- false
  | p :: rest ->
    s.queue <- rest;
    s.busy <- true;
    let tx = float_of_int p.size_bits /. (float_of_int s.rate *. 1000.) in
    s.busy_time <- s.busy_time +. tx;
    (* Bit-weighted, so the top-k ranks links by carried traffic, not
       packet count. *)
    Heavy.offer ~by:p.size_bits t.h_util dl;
    ignore
      (Engine.schedule t.engine ~delay:tx (fun _ ->
           let now = Engine.now t.engine in
           p.hop <- p.hop + 1;
           if p.hop >= Array.length p.path then begin
             match Hashtbl.find_opt t.flows p.flow with
             | None ->
               (* Flows are registered before any packet is injected. *)
               assert false
             | Some flow_state ->
               deliver t flow_state p ~now:(now +. t.propagation_delay)
           end
           else if Float.equal t.propagation_delay 0. then arrive t p
           else
             ignore
               (Engine.schedule t.engine ~delay:t.propagation_delay (fun _ ->
                    arrive t p));
           start_service t dl))

and arrive t p =
  let dl = p.path.(p.hop) in
  let s = t.servers.(dl) in
  s.queue <- insert_by_deadline p s.queue;
  if not s.busy then start_service t dl

(* Skip-over decision: congested first hop + a window that tolerates the
   loss. *)
let should_skip t flow_state =
  match flow_state.monitor with
  | None -> false
  | Some mon ->
    let first = t.servers.(flow_state.fpath.(0)) in
    List.length first.queue >= flow_state.skip_threshold && Interval_qos.can_skip mon

let rec source_tick t flow_state () =
  let now = Engine.now t.engine in
  if now < flow_state.stop then begin
    if Traffic_spec.Bucket.try_consume flow_state.bucket ~now then begin
      if should_skip t flow_state then begin
        flow_state.skipped <- flow_state.skipped + 1;
        Metrics.incr t.m_skipped;
        Option.iter
          (fun mon -> Interval_qos.record mon ~delivered:false)
          flow_state.monitor
      end
      else begin
        flow_state.sent <- flow_state.sent + 1;
        Metrics.incr t.m_sent;
        let p =
          {
            flow = flow_state.fid;
            created = now;
            e2e_deadline = now +. flow_state.deadline;
            size_bits = flow_state.spec.Traffic_spec.packet_bits;
            per_hop_budget =
              flow_state.deadline /. float_of_int (Array.length flow_state.fpath);
            path = flow_state.fpath;
            hop = 0;
          }
        in
        arrive t p
      end
    end;
    let next = Traffic_spec.Bucket.next_conforming_time flow_state.bucket ~now in
    let delay = Float.max (next -. now) 1e-9 in
    ignore (Engine.schedule t.engine ~delay (fun _ -> source_tick t flow_state ()))
  end

let add_flow t ~path ~spec ~deadline ?start ?interval ?(skip_threshold = 4) ~stop () =
  if path = [] then invalid_arg "Netsim.add_flow: empty path";
  if deadline <= 0. then invalid_arg "Netsim.add_flow: non-positive deadline";
  if skip_threshold < 1 then invalid_arg "Netsim.add_flow: skip_threshold >= 1";
  List.iter
    (fun dl ->
      if dl < 0 || dl >= Array.length t.servers then
        invalid_arg "Netsim.add_flow: link id out of range")
    path;
  let fid = t.next_flow in
  t.next_flow <- fid + 1;
  let start = Option.value ~default:(Engine.now t.engine) start in
  let flow_state =
    {
      fid;
      fpath = Array.of_list path;
      spec;
      deadline;
      stop;
      bucket = Traffic_spec.Bucket.create spec;
      monitor = Option.map Interval_qos.create interval;
      skip_threshold;
      sent = 0;
      delivered = 0;
      missed = 0;
      skipped = 0;
      delay_acc = Stats.Welford.create ();
      worst = 0.;
    }
  in
  Hashtbl.replace t.flows fid flow_state;
  ignore
    (Engine.schedule_at t.engine ~time:(Float.max start (Engine.now t.engine))
       (fun _ -> source_tick t flow_state ()));
  fid

type stats = {
  sent : int;
  delivered : int;
  missed : int;
  skipped : int;
  in_flight : int;
  delay : Stats.Welford.t;
  worst_delay : float;
  contract_violations : int option;
}

let stats t fid =
  match Hashtbl.find_opt t.flows fid with
  | None -> raise Not_found
  | Some f ->
    {
      sent = f.sent;
      delivered = f.delivered;
      missed = f.missed;
      skipped = f.skipped;
      in_flight = f.sent - f.delivered;
      delay = f.delay_acc;
      worst_delay = f.worst;
      contract_violations = Option.map Interval_qos.violations f.monitor;
    }

let link_busy_time t dl =
  if dl < 0 || dl >= Array.length t.servers then
    invalid_arg "Netsim.link_busy_time: out of range";
  t.servers.(dl).busy_time

let total_delivered t = t.delivered_total
