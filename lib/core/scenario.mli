(** End-to-end experiment runner: build a topology, load it with
    DR-connections, churn it in steady state while measuring, then solve
    the Markov model from the measured parameters — the full §4 pipeline
    (simulation and analysis sides) in one call.

    Rate conventions: [lambda], [mu] and [gamma] are {e network-wide}
    event rates (a new request, a termination of one random connection, a
    failure of one random working edge).  This is the only reading under
    which the paper's Fig. 4 premise "the link failure rate is too small
    compared to the arrival rate" holds numerically, and it matches the
    model's use of [gamma] side-by-side with [lambda]. *)

type topology =
  | Waxman of Waxman.spec
  | Transit_stub of Transit_stub.spec
  | Fixed of Graph.t

type config = {
  topology : topology;
  capacity : Bandwidth.t;
  multiplexing : bool;
  qos : Qos.t;
  policy : Policy.t;
  require_backup : bool;
  with_backups : bool;
  backups_per_connection : int;
  restore_on_failure : bool;
  route_search : [ `Flooding | `Sequential of int ];
  offered : int;  (** connections whose set-up is attempted (load phase). *)
  lambda : float;
  mu : float;
  gamma : float;
  repair_rate : float;  (** per failed edge; 0 disables repair. *)
  warmup_events : int;  (** churn events discarded before measuring. *)
  churn_events : int;  (** measured churn events. *)
  seed : int;
}

val default : config
(** The paper's Fig. 2 baseline: 100-node calibrated Waxman, 10 Mbps
    links, QoS 100–500 Kbps step 50 (9 levels), equal-share policy,
    [lambda = mu = 0.001], no failures, 3000 offered connections,
    500 warmup + 3000 measured events, seed 1. *)

type result = {
  config : config;
  graph : Graph.t;
  offered : int;
  carried_initial : int;  (** connections alive after the load phase. *)
  carried_final : int;
  rejected_load : int;  (** load-phase rejections (Table 1's Tier effect). *)
  rejected_churn : int;
  dropped : int;  (** connections lost to failures. *)
  failures_injected : int;
  recovered_by_backup : int;  (** victims whose backup took over. *)
  restored_from_scratch : int;  (** victims saved by reactive restoration. *)
  sim_avg_bandwidth : float;
      (** time-weighted mean over the measured churn window of
          (total reserved bandwidth / live channels) — the paper's
          simulation curve. *)
  sim_avg_level : float;
  model_avg_bandwidth : float;
      (** the Markov chain's prediction from measured parameters — the
          paper's analytic curve.  When the measured chain is degenerate
          (no off-diagonal transitions observed — uncontended network),
          this is the regularised solution, which converges to [b_max]. *)
  ideal_avg_bandwidth : float;  (** the paper's ideal reference line. *)
  avg_hops : float;  (** mean primary path length of carried channels. *)
  estimator : Estimator.t;
  channel_bandwidth_dist : float array;
      (** stationary level distribution measured from simulation
          (time-weighted share of channel-time spent at each level). *)
}

val run : ?obs:Obs.t -> ?snapshot:Snapshot.t -> config -> result
(** Deterministic in [config] (all randomness from [seed]).

    [obs] (default {!Obs.default}) observes the whole run: phases
    [load], [warmup], [measure] and [solve] are timed and traced, churn
    events are counted under [scenario.churn_*], and the context is
    threaded into the {!Drcomm} service and the {!Engine} (whose clock
    drives the trace timestamps).  Observability never perturbs the
    simulation itself.

    [snapshot] attaches a telemetry emitter to the churn-phase engine:
    its event-time cadence fires on deterministic simulation-time
    boundaries (see {!Engine.on_heartbeat}) reading live/level counts,
    queue footprint, hottest links and counter deltas; its optional
    wall-clock cadence adds throughput/GC heartbeats.  The service's
    churn sketch is folded into the obs heavy-hitter registry
    ({!Drcomm.absorb_heavy}) before returning. *)

(** Aggregate over independent replications (different seeds — fresh
    topology instance and workload each). *)
type summary = {
  runs : int;
  sim_mean : float;
  sim_ci : float * float;  (** 95% normal-approximation interval. *)
  model_mean : float;
  model_ci : float * float;
  carried_mean : float;
  dropped_total : int;
}

val run_replications :
  ?seeds:int list -> ?obs:Obs.t -> ?jobs:int -> config -> result list * summary
(** Replicates [config] once per seed (default seeds 1..5; the config's
    own seed is ignored) and returns the per-seed results, in seed-list
    order, alongside their aggregate.  Replications run through
    {!Sweep.map}: [jobs] (default [Sweep.recommended_jobs ()]) bounds
    the worker domains, [obs] (default {!Obs.default}) receives every
    worker's merged metrics, and the results are bit-for-bit identical
    to a sequential run.  Raises [Invalid_argument] on an empty list. *)

val summarize : result list -> summary
(** Aggregate independent results ({!run_replications} over its per-seed
    list); zero/degenerate statistics on an empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_result : Format.formatter -> result -> unit
