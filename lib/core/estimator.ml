type counts = { levels : int; table : int array (* levels x levels *) }

let counts_create levels = { levels; table = Array.make (levels * levels) 0 }

let counts_add c ~before ~after =
  if before < 0 || before >= c.levels || after < 0 || after >= c.levels then
    invalid_arg "Estimator: level out of range";
  let k = (before * c.levels) + after in
  c.table.(k) <- c.table.(k) + 1

let counts_row_total c i =
  let acc = ref 0 in
  for j = 0 to c.levels - 1 do
    acc := !acc + c.table.((i * c.levels) + j)
  done;
  !acc

(* Row-stochastic matrix; unobserved rows become identity rows (a channel
   we never saw affected at level i is modelled as staying at i). *)
let counts_matrix c =
  let m = Matrix.create c.levels c.levels in
  for i = 0 to c.levels - 1 do
    let total = counts_row_total c i in
    if total = 0 then Matrix.set m i i 1.
    else
      for j = 0 to c.levels - 1 do
        Matrix.set m i j
          (float_of_int c.table.((i * c.levels) + j) /. float_of_int total)
      done
  done;
  m

type t = {
  levels : int;
  a : counts;
  b : counts;
  t_counts : counts;
  f : counts;
  mutable arrivals : int;
  mutable terminations : int;
  mutable failures : int;
  mutable sum_existing_arr : int;
  mutable sum_direct_arr : int;
  mutable sum_indirect_arr : int;
  mutable sum_existing_term : int;
  mutable sum_direct_term : int;
  mutable adaptations : int;
}

let create ~levels =
  if levels < 1 then invalid_arg "Estimator.create: levels >= 1";
  {
    levels;
    a = counts_create levels;
    b = counts_create levels;
    t_counts = counts_create levels;
    f = counts_create levels;
    arrivals = 0;
    terminations = 0;
    failures = 0;
    sum_existing_arr = 0;
    sum_direct_arr = 0;
    sum_indirect_arr = 0;
    sum_existing_term = 0;
    sum_direct_term = 0;
    adaptations = 0;
  }

let record_transitions counts ~select (report : Drcomm.report) =
  List.iter
    (fun (tr : Drcomm.transition) ->
      if select tr.Drcomm.chained then
        counts_add counts ~before:tr.Drcomm.before ~after:tr.Drcomm.after)
    report.Drcomm.transitions

let record_adaptations t (report : Drcomm.report) =
  List.iter
    (fun (tr : Drcomm.transition) ->
      if tr.Drcomm.before <> tr.Drcomm.after then t.adaptations <- t.adaptations + 1)
    report.Drcomm.transitions

let observe_arrival t (report : Drcomm.report) =
  t.arrivals <- t.arrivals + 1;
  record_adaptations t report;
  t.sum_existing_arr <- t.sum_existing_arr + report.Drcomm.existing;
  t.sum_direct_arr <- t.sum_direct_arr + report.Drcomm.direct_count;
  t.sum_indirect_arr <- t.sum_indirect_arr + report.Drcomm.indirect_count;
  record_transitions t.a ~select:(fun c -> c = `Direct) report;
  record_transitions t.b ~select:(fun c -> c = `Indirect) report

let observe_termination t (report : Drcomm.report) =
  t.terminations <- t.terminations + 1;
  record_adaptations t report;
  t.sum_existing_term <- t.sum_existing_term + report.Drcomm.existing;
  t.sum_direct_term <- t.sum_direct_term + report.Drcomm.direct_count;
  record_transitions t.t_counts ~select:(fun c -> c = `Direct) report

let observe_failure t (report : Drcomm.report) =
  t.failures <- t.failures + 1;
  record_adaptations t report;
  record_transitions t.f ~select:(fun c -> c = `Direct) report

let adaptations t = t.adaptations

let adaptation_rate t =
  let events = t.arrivals + t.terminations + t.failures in
  if events = 0 then 0. else float_of_int t.adaptations /. float_of_int events

let arrivals t = t.arrivals
let terminations t = t.terminations
let failures t = t.failures

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let p_f t = ratio t.sum_direct_arr t.sum_existing_arr
let p_s t = ratio t.sum_indirect_arr t.sum_existing_arr
let p_f_termination t = ratio t.sum_direct_term t.sum_existing_term

let a_matrix t = counts_matrix t.a
let b_matrix t = counts_matrix t.b
let t_matrix t = counts_matrix t.t_counts
let f_matrix t = counts_matrix t.f

let a_row_count t i =
  if i < 0 || i >= t.levels then invalid_arg "Estimator.a_row_count: out of range";
  counts_row_total t.a i

let to_json t =
  Jsonx.Obj
    [
      ("arrivals", Jsonx.Int t.arrivals);
      ("terminations", Jsonx.Int t.terminations);
      ("failures", Jsonx.Int t.failures);
      ("adaptations", Jsonx.Int t.adaptations);
      ("adaptation_rate", Jsonx.Float (adaptation_rate t));
      ("p_f", Jsonx.Float (p_f t));
      ("p_s", Jsonx.Float (p_s t));
      ("p_f_termination", Jsonx.Float (p_f_termination t));
    ]

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>estimator: %d arrivals, %d terminations, %d failures@,\
     P_f = %.4f (terminations: %.4f), P_s = %.4f@]"
    t.arrivals t.terminations t.failures (p_f t) (p_f_termination t) (p_s t)
