(** The dependable real-time communication service with elastic QoS —
    the network operation of §3.1 of the paper.

    A DR-connection gets a primary channel (admitted at its QoS floor,
    elastically upgraded afterwards) and one passive backup channel
    (link-disjoint where possible, multiplexed with other backups).  The
    service handles the four events that drive the paper's Markov model:

    - {b arrival}: bounded flooding finds the primary route; every
      existing primary sharing a (directed) link with it retreats to its
      floor; the backup route is found and registered; freed and spare
      bandwidth is redistributed by the adaptation policy;
    - {b termination}: reservations are released and neighbours upgrade;
    - {b link failure}: backups of the primaries crossing the failed edge
      activate (becoming primaries at the floor); extras on the activated
      links retreat; survivors re-establish new backups when possible;
    - {b link repair}: the edge becomes routable again.

    Every mutating call returns a report of the level transitions it
    caused, classified exactly as the paper's model needs them
    (directly-chained vs indirectly-chained), so the {!Estimator} can
    measure [P_f], [P_s], [A], [B], [T] without reaching into the
    service's internals. *)

type t

type channel_id = int

type config = {
  policy : Policy.t;
  hop_bound : int;
  route_search : [ `Flooding | `Sequential of int ];
      (** how routes are discovered (§2.1.1): parallel bounded flooding
          (the paper's protocol, default) or sequential probing of the
          [k] shortest candidates.  Both apply identical admission
          tests. *)
  require_backup : bool;
      (** reject a connection that cannot get a backup channel (the
          paper's dependability QoS); [false] gives the non-dependable
          baseline. *)
  with_backups : bool;
      (** [false] disables backups entirely (pure elastic real-time
          service — ablation baseline). *)
  backups_per_connection : int;
      (** the paper's "one or more backup channels": how many mutually
          link-disjoint backups each connection tries to hold (default 1;
          acceptance only requires the first, the rest are best-effort).
          With [k] backups a connection survives [k] successive primary
          failures without restoration. *)
  restore_on_failure : bool;
      (** when a failure leaves a connection without a usable backup, try
          to re-establish it from scratch (the {e reactive restoration}
          baseline the backup-channel scheme is designed to beat —
          restoration can fail under congestion, which is the paper's
          §1 motivation).  Default [false]. *)
}

val default_config : config
(** Equal-utility water-filling ([Equal_share]), hop bound 16, backups
    required. *)

val create : ?config:config -> ?obs:Obs.t -> Net_state.t -> t
(** [obs] (default {!Obs.default}) receives the service's
    instrumentation: counters [drcomm.admits], [drcomm.rejects],
    [drcomm.terminations], [drcomm.elastic_upgrades],
    [drcomm.elastic_retreats], [drcomm.link_failures],
    [drcomm.link_repairs], [drcomm.backup_activations],
    [drcomm.backup_losses], [drcomm.drops], [drcomm.restores]; and the
    trace events [Admit], [Reject], [Terminate], [Upgrade], [Retreat],
    [Link_fail], [Link_repair], [Backup_activate], [Backup_lost],
    [Drop], [Restore].  Timestamps come from the context's clock (see
    {!Obs.set_clock}).

    Telemetry beyond the counters: the high watermark
    [drcomm.live_hwm] (peak live connections, max-merged across
    domains); a per-run link-churn heavy-hitter sketch behind
    {!hot_links} (folded into the registry sketch [drcomm.link_churn]
    by {!absorb_heavy}); and the registry sketch
    [drcomm.reject_endpoints] counting the endpoints of rejected
    requests. *)

val net : t -> Net_state.t
val config : t -> config

(** {1 Connection lifecycle} *)

type reject_reason =
  | No_primary_route  (** flooding found no admissible route. *)
  | No_backup_route  (** primary found, but no backup and backups required. *)

(** One channel's level change: [before] and [after] are elastic levels
    (0 = floor).  [chained] tells how the channel was affected:
    [`Direct] shares a directed link with the triggering channel;
    [`Indirect] is indirectly chained to it (via a third channel). *)
type transition = {
  channel : channel_id;
  before : int;
  after : int;
  chained : [ `Direct | `Indirect ];
}

(** What an event did — input for parameter estimation and for tests. *)
type report = {
  existing : int;  (** channels present before the event (excl. subject). *)
  direct_count : int;  (** of which directly chained to the subject. *)
  indirect_count : int;  (** of which indirectly chained to the subject. *)
  transitions : transition list;
      (** every directly- or indirectly-chained channel, including those
          whose level did not change (diagonal transitions — the model
          needs the full conditional matrix). *)
}

type admit_result =
  | Admitted of channel_id * report
  | Rejected of reject_reason

val admit :
  ?want_indirect:bool -> t -> src:int -> dst:int -> qos:Qos.t -> admit_result
(** Establish a DR-connection.  [src <> dst]; both in range.
    [~want_indirect:false] (default [true]) skips computing the
    indirectly-chained set — measurably cheaper during bulk loading when
    the report is discarded. *)

(** {1 Redistribution control}

    By default every mutating call water-fills the affected links before
    returning.  For bulk loading, switch auto-redistribution off, load,
    then run one global pass. *)

val set_auto_redistribute : t -> bool -> unit
val auto_redistribute : t -> bool

val redistribute_all : t -> unit
(** One global water-filling pass over all channels. *)

val terminate : t -> channel_id -> report
(** Tear down a connection and redistribute.  Raises [Not_found] for an
    unknown or already-terminated id. *)

val change_qos : t -> channel_id -> Qos.t -> [ `Changed | `Rejected ]
(** Renegotiate a live connection's QoS contract in place (same primary
    and backup routes).  The new floor is admission-tested against
    floors-plus-pools on every link after reclaiming extras — exactly
    like a fresh arrival — and every backup is re-registered at the new
    floor.  All-or-nothing: on [`Rejected] the old contract is fully
    restored.  The channel restarts at its (new) floor and re-upgrades
    through redistribution.  Raises [Not_found] for an unknown id. *)

(** Outcome of one connection's recovery from a failure. *)
type recovery = {
  victim : channel_id;
  outcome :
    [ `Switched_to_backup of bool
      (** backup activated; the flag says whether a {e new} backup was
          re-established afterwards. *)
    | `Dropped  (** no usable backup: connection lost. *)
    | `Restored of bool
      (** no usable backup, but [restore_on_failure] re-established the
          connection from scratch (flag = got a new backup too). *)
    | `Backup_lost of bool
      (** only the backup crossed the failed edge; flag = new backup
          found. *) ];
}

type failure_report = { recoveries : recovery list; event : report }

val fail_edge : t -> int -> failure_report
(** Fail an undirected edge: activate backups, retreat extras on the
    activated links, redistribute.  Idempotent on an already-failed
    edge (empty report). *)

val repair_edge : t -> int -> unit

(** {1 Queries} *)

val count : t -> int
val active_channels : t -> channel_id list
val mem : t -> channel_id -> bool
val level : t -> channel_id -> int
val reserved_bandwidth : t -> channel_id -> Bandwidth.t
val qos_of : t -> channel_id -> Qos.t
val primary_links : t -> channel_id -> Dirlink.id list
val backup_links : t -> channel_id -> Dirlink.id list option
(** First (activation-priority) backup; [None] when the connection
    currently has no backup channel. *)

val all_backup_links : t -> channel_id -> Dirlink.id list list
(** Every backup held, in activation order. *)

val has_backup : t -> channel_id -> bool

val level_histogram : t -> max_levels:int -> int array
(** [level_histogram t ~max_levels] counts live channels at each elastic
    level; levels beyond [max_levels - 1] raise (they indicate a QoS spec
    inconsistent with the caller's assumption). *)

val total_reserved : t -> int
(** Sum of every channel's current reservation (Kbps; path-length
    independent — each channel counted once, not per link). *)

val average_bandwidth : t -> float
(** [total_reserved / count]; 0 when empty. *)

val dropped_connections : t -> int
(** Cumulative count of connections lost to failures. *)

val hot_links : t -> k:int -> (Dirlink.id * int) list
(** The [k] highest-churn directed links of this run as [(link,
    estimated churn)] — one churn unit per link touched by an admission,
    retreat/upgrade, or termination.  Estimates come from a space-saving
    sketch ({!Heavy}): deterministic for equal runs, possibly
    over-counting by at most the sketch error.  [[]] when the context's
    heavy-hitter registry is disabled. *)

val absorb_heavy : t -> unit
(** Fold the per-run churn sketch into the obs registry's
    [drcomm.link_churn] sketch.  {!Scenario.run} calls this at the end
    of a run; no-op when the registry is disabled. *)

val check_invariants : t -> unit
(** Full consistency audit: per-link accounting, level/reservation
    coherence on every link of every channel, backup registration
    coherence.  Raises [Failure] on any violation. *)
