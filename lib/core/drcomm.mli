(** The dependable real-time communication service with elastic QoS —
    the network operation of §3.1 of the paper.

    A DR-connection gets a primary channel (admitted at its QoS floor,
    elastically upgraded afterwards) and one passive backup channel
    (link-disjoint where possible, multiplexed with other backups).  The
    service handles the four events that drive the paper's Markov model:

    - {b arrival}: bounded flooding finds the primary route; every
      existing primary sharing a (directed) link with it retreats to its
      floor; the backup route is found and registered; freed and spare
      bandwidth is redistributed by the adaptation policy;
    - {b termination}: reservations are released and neighbours upgrade;
    - {b link failure}: backups of the primaries crossing the failed edge
      activate (becoming primaries at the floor); extras on the activated
      links retreat; survivors re-establish new backups when possible;
    - {b link repair}: the edge becomes routable again.

    Every mutating call returns a report of the level transitions it
    caused, classified exactly as the paper's model needs them
    (directly-chained vs indirectly-chained), so the {!Estimator} can
    measure [P_f], [P_s], [A], [B], [T] without reaching into the
    service's internals.

    {b Scale.}  Connections are abstract handles; the service keeps them
    in a dense array with O(1) admit/terminate/sample, maintains every
    aggregate the probes read incrementally, and water-fills off a
    dirty-link set — see DESIGN.md §13.  Sustains ~10⁶ live connections
    on 1000+-node transit-stub topologies with flat per-operation cost
    (see BENCH_scale.json). *)

type t

type channel_id
(** Abstract handle to a DR-connection.  Handles stay valid identifiers
    after termination ({!mem} answers [false]); passing a dead handle to
    an accessor raises [Not_found].  Handles compare cheaply (by
    connection id) with the polymorphic comparison operators, and
    {!Channel_id} gives explicit operations. *)

(** Identity operations on connection handles. *)
module Channel_id : sig
  type t = channel_id

  val to_int : t -> int
  (** The connection's unique (per-service, monotonically assigned)
      integer id — for logs, traces, and keying external tables. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

(** Service configuration — built by {!Config.make}, which validates the
    fields (so a [t] is well-formed by construction). *)
module Config : sig
  type t

  val version : int
  (** Configuration schema version (bumped on incompatible change). *)

  val make :
    ?policy:Policy.t ->
    ?hop_bound:int ->
    ?route_search:[ `Flooding | `Sequential of int ] ->
    ?require_backup:bool ->
    ?with_backups:bool ->
    ?backups_per_connection:int ->
    ?restore_on_failure:bool ->
    unit ->
    t
  (** Defaults give the paper's baseline service: equal-share
      water-filling, hop bound 16, bounded flooding, one required backup
      per connection, no reactive restoration.

      - [route_search]: how routes are discovered (§2.1.1) — parallel
        bounded flooding (the paper's protocol, default) or sequential
        probing of the [k] shortest candidates.  Both apply identical
        admission tests.
      - [require_backup]: reject a connection that cannot get a backup
        channel (the paper's dependability QoS); [false] gives the
        non-dependable baseline.
      - [with_backups]: [false] disables backups entirely (pure elastic
        real-time service — ablation baseline).
      - [backups_per_connection]: the paper's "one or more backup
        channels" — how many mutually link-disjoint backups each
        connection tries to hold (default 1; acceptance only requires
        the first, the rest are best-effort).  With [k] backups a
        connection survives [k] successive primary failures without
        restoration.
      - [restore_on_failure]: when a failure leaves a connection without
        a usable backup, try to re-establish it from scratch (the
        {e reactive restoration} baseline the backup-channel scheme is
        designed to beat — restoration can fail under congestion, which
        is the paper's §1 motivation).  Default [false].

      Raises [Invalid_argument] on [hop_bound < 1], [`Sequential k] with
      [k < 1], or [with_backups] with [backups_per_connection < 1]. *)

  val default : t
  (** [make ()]. *)

  val policy : t -> Policy.t
  val hop_bound : t -> int
  val route_search : t -> [ `Flooding | `Sequential of int ]
  val require_backup : t -> bool
  val with_backups : t -> bool
  val backups_per_connection : t -> int
  val restore_on_failure : t -> bool
end

val create : ?config:Config.t -> ?obs:Obs.t -> Net_state.t -> t
(** [obs] (default {!Obs.default}) receives the service's
    instrumentation: counters [drcomm.admits], [drcomm.rejects],
    [drcomm.terminations], [drcomm.elastic_upgrades],
    [drcomm.elastic_retreats], [drcomm.link_failures],
    [drcomm.link_repairs], [drcomm.backup_activations],
    [drcomm.backup_losses], [drcomm.drops], [drcomm.restores]; and the
    trace events [Admit], [Reject], [Terminate], [Upgrade], [Retreat],
    [Link_fail], [Link_repair], [Backup_activate], [Backup_lost],
    [Drop], [Restore].  Timestamps come from the context's clock (see
    {!Obs.set_clock}).

    Telemetry beyond the counters: the high watermark
    [drcomm.live_hwm] (peak live connections, max-merged across
    domains); a per-run link-churn heavy-hitter sketch behind
    {!hot_links} (folded into the registry sketch [drcomm.link_churn]
    by {!absorb_heavy}); and the registry sketch
    [drcomm.reject_endpoints] counting the endpoints of rejected
    requests. *)

val net : t -> Net_state.t
val config : t -> Config.t

(** {1 Connection lifecycle} *)

type reject_reason =
  | No_primary_route  (** flooding found no admissible route. *)
  | No_backup_route  (** primary found, but no backup and backups required. *)

(** One channel's level change: [before] and [after] are elastic levels
    (0 = floor).  [chained] tells how the channel was affected:
    [`Direct] shares a directed link with the triggering channel;
    [`Indirect] is indirectly chained to it (via a third channel). *)
type transition = {
  channel : channel_id;
  before : int;
  after : int;
  chained : [ `Direct | `Indirect ];
}

(** What an event did — input for parameter estimation and for tests. *)
type report = {
  existing : int;  (** channels present before the event (excl. subject). *)
  direct_count : int;  (** of which directly chained to the subject. *)
  indirect_count : int;  (** of which indirectly chained to the subject. *)
  transitions : transition list;
      (** every directly- or indirectly-chained channel, including those
          whose level did not change (diagonal transitions — the model
          needs the full conditional matrix). *)
}

type admit_result =
  | Admitted of channel_id * report
  | Rejected of reject_reason

val admit :
  ?want_indirect:bool ->
  ?want_report:bool ->
  t ->
  src:int ->
  dst:int ->
  qos:Qos.t ->
  admit_result
(** Establish a DR-connection.  [src <> dst]; both in range.
    [~want_indirect:false] (default [true]) skips computing the
    indirectly-chained set; [~want_report:false] (default [true])
    additionally skips the directly-chained census — the retreats still
    happen (through the per-link extras index, visiting only channels
    that actually hold extras), but the returned report carries empty
    transition lists.  Use it on the bulk-loading and churn hot paths
    where the report is discarded. *)

(** {1 Redistribution control}

    By default every mutating call water-fills the links it dirtied
    before returning.  For bulk loading, switch auto-redistribution off,
    load, then call {!redistribute_pending} (or {!redistribute_all}) —
    dirty links accumulate while auto-redistribution is off. *)

val set_auto_redistribute : t -> bool -> unit
val auto_redistribute : t -> bool

val set_time_redistribution : t -> bool -> unit
(** Arm (or disarm) redistribution time accounting: while armed, every
    non-empty water-filling flush adds its monotonic wall time to the
    {!redistribution_seconds} accumulator.  Off by default — the
    simulation paths must not pay two clock reads per churn event. *)

val redistribution_seconds : t -> float
(** Cumulative seconds spent in water-filling flushes since creation
    (while {!set_time_redistribution} was armed).  A server differences
    this around one dispatch to attribute the redistribution slice of a
    request's service time (DESIGN.md §15). *)

val redistribute_pending : t -> unit
(** Water-fill the channels touching the links dirtied since the last
    pass, then clear the dirty set.  O(affected), not O(live): links
    carrying no elastic primary are skipped outright.  No-op when
    nothing is dirty. *)

val redistribute_all : t -> unit
(** One global water-filling pass over all channels (marks every live
    channel's links dirty, then flushes).  The from-scratch recompute
    that {!redistribute_pending} is checked against. *)

val terminate : ?report:bool -> t -> channel_id -> report
(** Tear down a connection and redistribute.  [~report:false] (default
    [true]) skips the directly-chained census (empty transition list).
    Raises [Not_found] for an unknown or already-terminated handle. *)

val change_qos : t -> channel_id -> Qos.t -> [ `Changed | `Rejected ]
(** Renegotiate a live connection's QoS contract in place (same primary
    and backup routes).  The new floor is admission-tested against
    floors-plus-pools on every link after reclaiming extras — exactly
    like a fresh arrival — and every backup is re-registered at the new
    floor.  All-or-nothing: on [`Rejected] the old contract is fully
    restored.  The channel restarts at its (new) floor and re-upgrades
    through redistribution.  Raises [Not_found] for a dead handle. *)

(** Outcome of one connection's recovery from a failure. *)
type recovery = {
  victim : channel_id;
  outcome :
    [ `Switched_to_backup of bool
      (** backup activated; the flag says whether a {e new} backup was
          re-established afterwards. *)
    | `Dropped  (** no usable backup: connection lost. *)
    | `Restored of bool
      (** no usable backup, but [restore_on_failure] re-established the
          connection from scratch (flag = got a new backup too). *)
    | `Backup_lost of bool
      (** only the backup crossed the failed edge; flag = new backup
          found. *) ];
}

type failure_report = { recoveries : recovery list; event : report }

val fail_edge : t -> int -> failure_report
(** Fail an undirected edge: activate backups, retreat extras on the
    activated links, redistribute.  Victims are resolved from the failed
    edge's two directed links (the per-link channel indexes), not by
    scanning the live set.  Idempotent on an already-failed edge (empty
    report). *)

val repair_edge : t -> int -> unit

(** {1 Queries} *)

val count : t -> int

val active_channels : t -> channel_id list
(** Every live connection, in internal (dense-array) order.  O(live) —
    prefer {!nth_channel} for sampling. *)

val nth_channel : t -> int -> channel_id
(** The live connection in slot [i], [0 <= i < count t] — O(1), for
    uniform sampling ([nth_channel t (rng (count t))]).  Slot order is
    arbitrary and changes on termination.  Raises [Invalid_argument] out
    of range. *)

val mem : t -> channel_id -> bool
val level : t -> channel_id -> int
val reserved_bandwidth : t -> channel_id -> Bandwidth.t
val qos_of : t -> channel_id -> Qos.t
val primary_links : t -> channel_id -> Dirlink.id list

val backup_links : t -> channel_id -> Dirlink.id list option
(** First (activation-priority) backup; [None] when the connection
    currently has no backup channel. *)

val all_backup_links : t -> channel_id -> Dirlink.id list list
(** Every backup held, in activation order. *)

val has_backup : t -> channel_id -> bool

val level_histogram : t -> max_levels:int -> int array
(** [level_histogram t ~max_levels] counts live channels at each elastic
    level — O(levels) off the maintained histogram, not a scan; levels
    beyond [max_levels - 1] raise (they indicate a QoS spec inconsistent
    with the caller's assumption). *)

val total_reserved : t -> int
(** Sum of every channel's current reservation (Kbps; path-length
    independent — each channel counted once, not per link).  O(1),
    maintained. *)

val average_bandwidth : t -> float
(** [total_reserved / count]; 0 when empty. *)

val dropped_connections : t -> int
(** Cumulative count of connections lost to failures. *)

val hot_links : t -> k:int -> (Dirlink.id * int) list
(** The [k] highest-churn directed links of this run as [(link,
    estimated churn)] — one churn unit per link touched by an admission,
    retreat/upgrade, or termination.  Estimates come from a space-saving
    sketch ({!Heavy}): deterministic for equal runs, possibly
    over-counting by at most the sketch error.  [[]] when the context's
    heavy-hitter registry is disabled. *)

val absorb_heavy : t -> unit
(** Fold the per-run churn sketch into the obs registry's
    [drcomm.link_churn] sketch.  {!Scenario.run} calls this at the end
    of a run; no-op when the registry is disabled. *)

val check_invariants : t -> unit
(** Full consistency audit: per-link accounting, level/reservation
    coherence on every link of every channel, backup registration
    coherence, {e and} a from-scratch recomputation of every maintained
    aggregate (dense index, level histogram, total reservation, per-link
    elastic counts) checked against the incremental state.  Raises
    [Failure] on any violation. *)
