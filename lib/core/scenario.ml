type topology =
  | Waxman of Waxman.spec
  | Transit_stub of Transit_stub.spec
  | Fixed of Graph.t

type config = {
  topology : topology;
  capacity : Bandwidth.t;
  multiplexing : bool;
  qos : Qos.t;
  policy : Policy.t;
  require_backup : bool;
  with_backups : bool;
  backups_per_connection : int;
  restore_on_failure : bool;
  route_search : [ `Flooding | `Sequential of int ];
  offered : int;
  lambda : float;
  mu : float;
  gamma : float;
  repair_rate : float;
  warmup_events : int;
  churn_events : int;
  seed : int;
}

let default =
  {
    topology = Waxman (Waxman.paper_spec ~nodes:100);
    capacity = Bandwidth.paper_link_capacity;
    multiplexing = true;
    qos = Qos.paper_spec ~increment:(Bandwidth.kbps 50);
    policy = Policy.equal_share;
    require_backup = true;
    with_backups = true;
    backups_per_connection = 1;
    restore_on_failure = false;
    route_search = `Flooding;
    offered = 3000;
    lambda = 0.001;
    mu = 0.001;
    gamma = 0.;
    repair_rate = 0.01;
    warmup_events = 500;
    churn_events = 3000;
    seed = 1;
  }

type result = {
  config : config;
  graph : Graph.t;
  offered : int;
  carried_initial : int;
  carried_final : int;
  rejected_load : int;
  rejected_churn : int;
  dropped : int;
  failures_injected : int;
  recovered_by_backup : int;
  restored_from_scratch : int;
  sim_avg_bandwidth : float;
  sim_avg_level : float;
  model_avg_bandwidth : float;
  ideal_avg_bandwidth : float;
  avg_hops : float;
  estimator : Estimator.t;
  channel_bandwidth_dist : float array;
}

let build_graph rng = function
  | Waxman spec -> Waxman.generate rng spec
  | Transit_stub spec -> (Transit_stub.generate rng spec).Transit_stub.graph
  | Fixed g -> g

(* Mutable measurement state for the churn phase. *)
type probe = {
  levels : int;
  mutable last_time : float;
  mutable weighted_bw : float;  (* integral of avg bandwidth dt *)
  mutable weighted_level : float;
  mutable weighted_occupancy : float array;  (* per level: channel-time *)
  mutable span : float;
}

let probe_create ~levels ~start =
  {
    levels;
    last_time = start;
    weighted_bw = 0.;
    weighted_level = 0.;
    weighted_occupancy = Array.make levels 0.;
    span = 0.;
  }

let probe_tick probe service ~now ~qos =
  let dt = now -. probe.last_time in
  if dt > 0. then begin
    let n = Drcomm.count service in
    if n > 0 then begin
      let counts = Drcomm.level_histogram service ~max_levels:probe.levels in
      let total_bw = ref 0 and total_level = ref 0 in
      Array.iteri
        (fun lvl c ->
          total_bw := !total_bw + (c * Qos.bandwidth_of_level qos lvl);
          total_level := !total_level + (c * lvl);
          probe.weighted_occupancy.(lvl) <-
            probe.weighted_occupancy.(lvl) +. (float_of_int c *. dt))
        counts;
      let nf = float_of_int n in
      probe.weighted_bw <- probe.weighted_bw +. (float_of_int !total_bw /. nf *. dt);
      probe.weighted_level <-
        probe.weighted_level +. (float_of_int !total_level /. nf *. dt);
      probe.span <- probe.span +. dt
    end;
    probe.last_time <- now
  end

let probe_avg_bw probe = if probe.span > 0. then probe.weighted_bw /. probe.span else 0.
let probe_avg_level probe =
  if probe.span > 0. then probe.weighted_level /. probe.span else 0.

let probe_distribution probe =
  let total = Array.fold_left ( +. ) 0. probe.weighted_occupancy in
  if total <= 0. then Array.make probe.levels 0.
  else Array.map (fun x -> x /. total) probe.weighted_occupancy

(* One churn step: draw the next event time and kind from the competing
   exponentials, apply it, and reschedule.  Runs inside the engine so the
   event-driven substrate is exercised end-to-end. *)
type churn = {
  cfg : config;
  service : Drcomm.t;
  rng : Prng.t;
  est : Estimator.t;
  probe : probe;
  mutable measuring : bool;
  mutable events_done : int;
  mutable rejected : int;
  mutable failures : int;
  mutable switched : int;
  mutable restored : int;
  mutable stop_after : int;
  m_arrivals : Metrics.counter;
  m_terminations : Metrics.counter;
  m_failures : Metrics.counter;
  m_repairs : Metrics.counter;
}

let random_pair rng n = Prng.sample_distinct_pair rng n

let churn_arrival c =
  Metrics.incr c.m_arrivals;
  let g = Net_state.graph (Drcomm.net c.service) in
  let src, dst = random_pair c.rng (Graph.node_count g) in
  match Drcomm.admit ~want_indirect:c.measuring c.service ~src ~dst ~qos:c.cfg.qos with
  | Admitted (_, report) -> if c.measuring then Estimator.observe_arrival c.est report
  | Rejected _ ->
    c.rejected <- c.rejected + 1;
    (* A rejected request still counts as an arrival for the estimator's
       P_f denominator?  No: the paper's chain is conditioned on accepted
       channels interacting; a rejection changes nobody's level, so we
       skip it (its A-row would be all-diagonal noise). *)
    ()

let churn_termination c =
  Metrics.incr c.m_terminations;
  let n = Drcomm.count c.service in
  if n > 0 then begin
    (* O(1) uniform victim pick off the dense live array — materialising
       the whole live set per termination is what capped the old churn
       loop at small populations. *)
    let id = Drcomm.nth_channel c.service (Prng.int c.rng n) in
    let report = Drcomm.terminate ~report:c.measuring c.service id in
    if c.measuring then Estimator.observe_termination c.est report
  end

let churn_failure c =
  Metrics.incr c.m_failures;
  let net = Drcomm.net c.service in
  let g = Net_state.graph net in
  let working =
    List.filter
      (fun e -> not (Net_state.edge_failed net e))
      (List.init (Graph.edge_count g) Fun.id)
  in
  match working with
  | [] -> ()
  | edges ->
    let e = Prng.pick_list c.rng edges in
    c.failures <- c.failures + 1;
    let freport = Drcomm.fail_edge c.service e in
    List.iter
      (fun r ->
        match r.Drcomm.outcome with
        | `Switched_to_backup _ -> c.switched <- c.switched + 1
        | `Restored _ -> c.restored <- c.restored + 1
        | `Dropped | `Backup_lost _ -> ())
      freport.Drcomm.recoveries;
    if c.measuring then Estimator.observe_failure c.est freport.Drcomm.event

let churn_repair c =
  Metrics.incr c.m_repairs;
  let net = Drcomm.net c.service in
  match Net_state.failed_edges net with
  | [] -> ()
  | edges ->
    let e = Prng.pick_list c.rng edges in
    Drcomm.repair_edge c.service e

let rec schedule_churn c engine =
  if c.events_done < c.stop_after then begin
    let net = Drcomm.net c.service in
    let failed = Net_state.failed_count net in
    let rate_repair = c.cfg.repair_rate *. float_of_int failed in
    let rate_term = if Drcomm.count c.service > 0 then c.cfg.mu else 0. in
    let total = c.cfg.lambda +. rate_term +. c.cfg.gamma +. rate_repair in
    if total > 0. then begin
      let dt = Prng.exponential c.rng total in
      ignore
        (Engine.schedule engine ~delay:dt (fun engine ->
             probe_tick c.probe c.service ~now:(Engine.now engine) ~qos:c.cfg.qos;
             let u = Prng.float c.rng total in
             if u < c.cfg.lambda then churn_arrival c
             else if u < c.cfg.lambda +. rate_term then churn_termination c
             else if u < c.cfg.lambda +. rate_term +. c.cfg.gamma then churn_failure c
             else churn_repair c;
             c.events_done <- c.events_done + 1;
             schedule_churn c engine))
    end
  end

let run ?obs ?snapshot (cfg : config) =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  if cfg.offered < 0 then invalid_arg "Scenario.run: negative offered count";
  if cfg.lambda <= 0. || cfg.mu <= 0. then
    invalid_arg "Scenario.run: lambda and mu must be positive";
  if cfg.gamma < 0. || cfg.repair_rate < 0. then
    invalid_arg "Scenario.run: negative failure/repair rate";
  let topo_rng = Prng.create cfg.seed in
  let workload_rng = Prng.split topo_rng in
  let graph = build_graph topo_rng cfg.topology in
  let net = Net_state.create ~multiplexing:cfg.multiplexing ~capacity:cfg.capacity graph in
  let dr_config =
    Drcomm.Config.make ~policy:cfg.policy ~route_search:cfg.route_search
      ~require_backup:cfg.require_backup ~with_backups:cfg.with_backups
      ~backups_per_connection:cfg.backups_per_connection
      ~restore_on_failure:cfg.restore_on_failure ()
  in
  let service = Drcomm.create ~config:dr_config ~obs net in
  (* Load phase: attempt [offered] set-ups.  Redistribution is deferred to
     one global pass — per-event adaptation only matters once we measure,
     and the warmup churn re-equilibrates the allocation anyway. *)
  let rejected_load = ref 0 in
  let n = Graph.node_count graph in
  Obs.span obs "load" (fun () ->
      Drcomm.set_auto_redistribute service false;
      for _ = 1 to cfg.offered do
        let src, dst = random_pair workload_rng n in
        match
          Drcomm.admit ~want_indirect:false ~want_report:false service ~src ~dst
            ~qos:cfg.qos
        with
        | Admitted _ -> ()
        | Rejected _ -> incr rejected_load
      done;
      (* Every loaded channel dirtied its links, so flushing the pending
         set is the global pass. *)
      Drcomm.redistribute_pending service;
      Drcomm.set_auto_redistribute service true);
  let carried_initial = Drcomm.count service in
  let avg_hops =
    match Drcomm.active_channels service with
    | [] -> 0.
    | ids ->
      let total =
        List.fold_left
          (fun acc id -> acc + List.length (Drcomm.primary_links service id))
          0 ids
      in
      float_of_int total /. float_of_int (List.length ids)
  in
  (* Churn phase. *)
  let levels = Qos.levels cfg.qos in
  let est = Estimator.create ~levels in
  let engine = Engine.create ~obs () in
  (* Trace timestamps now follow the simulation clock. *)
  Obs.set_clock obs (fun () -> Engine.now engine);
  (* Telemetry heartbeats: the emitter reads everything through this
     source, all of it simulation state except the wall-clock beats. *)
  Option.iter
    (fun snap ->
      (* Event-time SLO: an admission is good, a rejection or
         failure-drop bad — pure simulation state.  Baselined at source
         construction so worker-registry reuse across sweep points (the
         counters are registry-cumulative) cannot leak into the stream;
         the per-run deltas are byte-identical whatever [--jobs] is. *)
      let slo =
        let m = Obs.metrics obs in
        let c_good = Metrics.counter m "drcomm.admits" in
        let c_rej = Metrics.counter m "drcomm.rejects" in
        let c_drop = Metrics.counter m "drcomm.drops" in
        let g0 = Metrics.count c_good in
        let b0 = Metrics.count c_rej + Metrics.count c_drop in
        fun () ->
          ( Metrics.count c_good - g0,
            Metrics.count c_rej + Metrics.count c_drop - b0 )
      in
      let source =
        {
          Snapshot.sim_time = (fun () -> Engine.now engine);
          events = (fun () -> Engine.dispatched engine);
          live_by_level =
            (fun () -> Drcomm.level_histogram service ~max_levels:levels);
          queue_size = (fun () -> Engine.pending engine);
          queue_footprint = (fun () -> Engine.footprint engine);
          hot = (fun () -> Drcomm.hot_links service ~k:5);
          counters = (fun () -> Metrics.counter_values (Obs.metrics obs));
          slo;
        }
      in
      Snapshot.start snap source;
      Option.iter
        (fun every ->
          Engine.on_heartbeat engine ~every (fun _ -> Snapshot.tick snap))
        (Snapshot.sim_every snap);
      Option.iter
        (fun every_s ->
          Engine.on_wall_heartbeat engine ~every_s (fun _ ->
              Snapshot.wall_tick snap))
        (Snapshot.wall_every snap))
    snapshot;
  let probe = probe_create ~levels ~start:0. in
  let churn =
    {
      cfg;
      service;
      rng = workload_rng;
      est;
      probe;
      measuring = false;
      events_done = 0;
      rejected = 0;
      failures = 0;
      switched = 0;
      restored = 0;
      stop_after = cfg.warmup_events;
      m_arrivals = Obs.counter obs "scenario.churn_arrivals";
      m_terminations = Obs.counter obs "scenario.churn_terminations";
      m_failures = Obs.counter obs "scenario.churn_failures";
      m_repairs = Obs.counter obs "scenario.churn_repairs";
    }
  in
  (* Warmup: churn without measuring. *)
  Obs.span obs "warmup" (fun () ->
      schedule_churn churn engine;
      ignore (Engine.run engine));
  (* Reset measurement state and run the measured window. *)
  churn.measuring <- true;
  churn.rejected <- 0;
  probe.last_time <- Engine.now engine;
  probe.weighted_bw <- 0.;
  probe.weighted_level <- 0.;
  probe.weighted_occupancy <- Array.make levels 0.;
  probe.span <- 0.;
  churn.stop_after <- cfg.warmup_events + cfg.churn_events;
  Obs.span obs "measure" (fun () ->
      schedule_churn churn engine;
      ignore (Engine.run engine));
  probe_tick probe service ~now:(Engine.now engine) ~qos:cfg.qos;
  Drcomm.check_invariants service;
  Drcomm.absorb_heavy service;
  let model_avg =
    Obs.span obs "solve" (fun () ->
        let params =
          Model.params_of_estimator ~lambda:cfg.lambda ~mu:cfg.mu ~gamma:cfg.gamma est
        in
        Model.average_bandwidth_regularized params ~qos:cfg.qos)
  in
  let ideal =
    let hops = if avg_hops > 0. then avg_hops else Paths.average_hops graph in
    let channels = max 1 carried_initial in
    Ideal.bandwidth_capped ~qos:cfg.qos ~link_bandwidth:cfg.capacity
      ~links:(2 * Graph.edge_count graph) ~channels ~avg_hops:hops
  in
  {
    config = cfg;
    graph;
    offered = cfg.offered;
    carried_initial;
    carried_final = Drcomm.count service;
    rejected_load = !rejected_load;
    rejected_churn = churn.rejected;
    dropped = Drcomm.dropped_connections service;
    failures_injected = churn.failures;
    recovered_by_backup = churn.switched;
    restored_from_scratch = churn.restored;
    sim_avg_bandwidth = probe_avg_bw probe;
    sim_avg_level = probe_avg_level probe;
    model_avg_bandwidth = model_avg;
    ideal_avg_bandwidth = ideal;
    avg_hops;
    estimator = est;
    channel_bandwidth_dist = probe_distribution probe;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>offered %d, carried %d -> %d (rejected %d load / %d churn, dropped %d)@,\
     sim avg bandwidth %.1f Kbps (level %.2f), model %.1f Kbps, ideal %.1f Kbps@,\
     avg hops %.2f, failures %d@,%a@]"
    r.offered r.carried_initial r.carried_final r.rejected_load r.rejected_churn
    r.dropped r.sim_avg_bandwidth r.sim_avg_level r.model_avg_bandwidth
    r.ideal_avg_bandwidth r.avg_hops r.failures_injected Estimator.pp_summary
    r.estimator

type summary = {
  runs : int;
  sim_mean : float;
  sim_ci : float * float;
  model_mean : float;
  model_ci : float * float;
  carried_mean : float;
  dropped_total : int;
}

let summarize results =
  let sim = Stats.Welford.create () in
  let model = Stats.Welford.create () in
  let carried = Stats.Welford.create () in
  let dropped = ref 0 in
  List.iter
    (fun r ->
      Stats.Welford.add sim r.sim_avg_bandwidth;
      Stats.Welford.add model r.model_avg_bandwidth;
      Stats.Welford.add carried (float_of_int r.carried_initial);
      dropped := !dropped + r.dropped)
    results;
  {
    runs = List.length results;
    sim_mean = Stats.Welford.mean sim;
    sim_ci = Stats.Welford.confidence_interval sim;
    model_mean = Stats.Welford.mean model;
    model_ci = Stats.Welford.confidence_interval model;
    carried_mean = Stats.Welford.mean carried;
    dropped_total = !dropped;
  }

let run_replications ?(seeds = [ 1; 2; 3; 4; 5 ]) ?obs ?jobs (cfg : config) =
  if seeds = [] then invalid_arg "Scenario.run_replications: no seeds";
  let results = Sweep.map ?jobs ?obs (fun obs seed -> run ~obs { cfg with seed }) seeds in
  (results, summarize results)

let pp_summary ppf s =
  let lo, hi = s.sim_ci and mlo, mhi = s.model_ci in
  Format.fprintf ppf
    "@[<v>%d replications: sim %.1f Kbps [%.1f, %.1f], model %.1f Kbps [%.1f, %.1f]@,\
     carried %.0f on average, %d dropped in total@]"
    s.runs s.sim_mean lo hi s.model_mean mlo mhi s.carried_mean s.dropped_total
