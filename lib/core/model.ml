type params = {
  lambda : float;
  mu : float;
  gamma : float;
  p_f : float;
  p_s : float;
  a : Matrix.t;
  b : Matrix.t;
  t_mat : Matrix.t;
}

let params_of_estimator ~lambda ~mu ~gamma est =
  {
    lambda;
    mu;
    gamma;
    p_f = Estimator.p_f est;
    p_s = Estimator.p_s est;
    a = Estimator.a_matrix est;
    b = Estimator.b_matrix est;
    t_mat = Estimator.t_matrix est;
  }

let levels p = Matrix.rows p.a

(* The paper's qualitative transition structure without an estimator: a
   directly-chained arrival retreats the channel to its floor (every A
   row points at column 0), while an indirectly-chained arrival or a
   sharing termination climbs exactly one level (B and T superdiagonal,
   identity at the top).  Shared by the [chain] CLI command and the
   trace-vs-model audit in [lib/analysis]. *)
let synthetic ~lambda ~mu ~gamma ~p_f ~p_s ~levels:n =
  if n < 1 then invalid_arg "Model.synthetic: need at least one level";
  let a = Matrix.create n n in
  let b = Matrix.create n n in
  let t_mat = Matrix.create n n in
  for i = 0 to n - 1 do
    Matrix.set a i 0 1.;
    if i < n - 1 then begin
      Matrix.set b i (i + 1) 1.;
      Matrix.set t_mat i (i + 1) 1.
    end
    else begin
      Matrix.set b i i 1.;
      Matrix.set t_mat i i 1.
    end
  done;
  { lambda; mu; gamma; p_f; p_s; a; b; t_mat }

let validate p =
  let n = levels p in
  if n < 1 then invalid_arg "Model.validate: empty matrix";
  let check_rate name r =
    if r < 0. || not (Float.is_finite r) then
      invalid_arg (Printf.sprintf "Model.validate: bad %s rate %g" name r)
  in
  check_rate "lambda" p.lambda;
  check_rate "mu" p.mu;
  check_rate "gamma" p.gamma;
  let check_prob name x =
    if x < 0. || x > 1. then
      invalid_arg (Printf.sprintf "Model.validate: %s = %g outside [0, 1]" name x)
  in
  check_prob "p_f" p.p_f;
  check_prob "p_s" p.p_s;
  if p.p_f +. p.p_s > 1. +. 1e-9 then
    invalid_arg "Model.validate: p_f + p_s exceeds 1";
  let check_matrix name m =
    if Matrix.rows m <> n || Matrix.cols m <> n then
      invalid_arg (Printf.sprintf "Model.validate: %s has wrong dimensions" name);
    Dtmc.validate m
  in
  check_matrix "A" p.a;
  check_matrix "B" p.b;
  check_matrix "T" p.t_mat

let build p =
  validate p;
  let n = levels p in
  let c = Ctmc.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i > j then begin
        (* Downward: sharing arrival, or backup activation on failure. *)
        let r = p.p_f *. Matrix.get p.a i j *. (p.lambda +. p.gamma) in
        if r > 0. then Ctmc.add_rate c ~src:i ~dst:j r
      end
      else if i < j then begin
        (* Upward: indirectly-chained arrival, or sharing termination. *)
        let r =
          (p.p_s *. Matrix.get p.b i j *. p.lambda)
          +. (p.p_f *. Matrix.get p.t_mat i j *. p.mu)
        in
        if r > 0. then Ctmc.add_rate c ~src:i ~dst:j r
      end
    done
  done;
  c

let build_regularized ?(eps_up = 1e-9) ?(eps_down = 1e-12) p =
  let c = build p in
  let n = levels p in
  for i = 0 to n - 2 do
    Ctmc.add_rate c ~src:i ~dst:(i + 1) eps_up;
    Ctmc.add_rate c ~src:(i + 1) ~dst:i eps_down
  done;
  c

let average_bandwidth_regularized p ~qos =
  if Qos.levels qos <> levels p then
    invalid_arg "Model.average_bandwidth_regularized: QoS levels mismatch";
  let pi = Ctmc.stationary (build_regularized p) in
  let acc = ref 0. in
  Array.iteri
    (fun i x -> acc := !acc +. (x *. float_of_int (Qos.bandwidth_of_level qos i)))
    pi;
  !acc

let stationary p = Ctmc.stationary (build p)

let average_level p =
  let pi = stationary p in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (float_of_int i *. x)) pi;
  !acc

let average_bandwidth p ~qos =
  if Qos.levels qos <> levels p then
    invalid_arg "Model.average_bandwidth: QoS levels do not match the chain";
  let pi = stationary p in
  let acc = ref 0. in
  Array.iteri
    (fun i x -> acc := !acc +. (x *. float_of_int (Qos.bandwidth_of_level qos i)))
    pi;
  !acc

type knob = [ `Lambda | `Mu | `Gamma | `P_f | `P_s ]

let with_knob p knob value =
  match knob with
  | `Lambda -> { p with lambda = value }
  | `Mu -> { p with mu = value }
  | `Gamma -> { p with gamma = value }
  | `P_f -> { p with p_f = Float.max 0. (Float.min 1. value) }
  | `P_s -> { p with p_s = Float.max 0. (Float.min 1. value) }

let knob_value p = function
  | `Lambda -> p.lambda
  | `Mu -> p.mu
  | `Gamma -> p.gamma
  | `P_f -> p.p_f
  | `P_s -> p.p_s

let sensitivity p ~qos knob =
  let x = knob_value p knob in
  (* Relative central difference; absolute floor keeps zero-valued knobs
     (e.g. gamma = 0) differentiable one-sidedly within the clamp. *)
  let h = Float.max (Float.abs x *. 1e-4) 1e-9 in
  let lo = Float.max 0. (x -. h) and hi = x +. h in
  let f v = average_bandwidth_regularized (with_knob p knob v) ~qos in
  (f hi -. f lo) /. (hi -. lo)
