(** The paper's N-state Markov chain of one primary channel's elastic
    bandwidth level (§3.2, Figure 1).

    State [S_i] means the channel holds [B_min + i * Δ].  Transition
    rates, with [λ] arrival, [μ] termination and [γ] link-failure rates:

    - downward [i -> j] ([i > j]): [P_f * A_ij * (λ + γ)] — a channel
      sharing a link arrives, or a failure activates backups;
    - upward [i -> j] ([i < j]): [P_s * B_ij * λ + P_f * T_ij * μ] — an
      indirectly-chained channel arrives, or a sharing channel ends.

    Matrix entries outside their sanctioned triangle (e.g. an upward
    entry of [A]) are ignored, as in the paper's Figure 1; the measured
    matrices are nearly triangular anyway, and the estimator's raw data
    retains anything discarded here. *)

type params = {
  lambda : float;  (** DR-connection arrival rate. *)
  mu : float;  (** DR-connection termination rate (steady state: = lambda). *)
  gamma : float;  (** link failure rate. *)
  p_f : float;  (** P(share >= 1 link with a new channel). *)
  p_s : float;  (** P(indirectly chained with a new channel). *)
  a : Matrix.t;  (** direct-chain transition matrix (downward used). *)
  b : Matrix.t;  (** indirect-chain transition matrix (upward used). *)
  t_mat : Matrix.t;  (** termination transition matrix (upward used). *)
}

val params_of_estimator :
  lambda:float -> mu:float -> gamma:float -> Estimator.t -> params
(** Package measured values; the matrices must share the estimator's
    dimension. *)

val levels : params -> int

val synthetic :
  lambda:float ->
  mu:float ->
  gamma:float ->
  p_f:float ->
  p_s:float ->
  levels:int ->
  params
(** The paper's qualitative chain structure without measured matrices: a
    direct-chain arrival retreats to the floor (A rows -> column 0), an
    indirect-chain arrival or a sharing termination climbs one level
    (B, T superdiagonal; identity at the top).  Used by the [chain] CLI
    command and by the empirical-vs-analytic audit in [lib/analysis].
    Raises [Invalid_argument] when [levels < 1]. *)

val validate : params -> unit
(** Raises [Invalid_argument] on malformed inputs: negative rates,
    probabilities outside [0, 1], non-square or mismatched matrices,
    non-stochastic rows. *)

val build : params -> Ctmc.t
(** The chain of Figure 1. *)

val build_regularized : ?eps_up:float -> ?eps_down:float -> params -> Ctmc.t
(** {!build} plus vanishing rates between adjacent levels
    ([eps_up = 1e-9] upward, [eps_down = 1e-12] downward) so the chain is
    always irreducible.  When real transitions exist the perturbation is
    negligible (six-plus orders below the paper's rates); when none were
    observed — an uncontended network — the solution concentrates at the
    top level, which is exactly the physical behaviour (redistribution
    drives unconstrained channels to [b_max]). *)

val average_bandwidth_regularized : params -> qos:Qos.t -> float
(** [average_bandwidth] on the regularised chain — total function used by
    experiment drivers. *)

val stationary : params -> float array
(** Steady-state probability of each level.  Raises
    {!Linsolve.Singular} if the chain is reducible (e.g. all-identity
    matrices — no transitions observed). *)

val average_bandwidth : params -> qos:Qos.t -> float
(** The paper's headline metric: [sum_i pi_i * (b_min + i * Δ)].
    [Qos.levels qos] must equal [levels params]. *)

val average_level : params -> float

type knob = [ `Lambda | `Mu | `Gamma | `P_f | `P_s ]

val sensitivity : params -> qos:Qos.t -> knob -> float
(** Central finite-difference derivative of the average bandwidth with
    respect to one scalar parameter (relative step 1e-4, regularised
    chain) — what-if analysis for the planning workflow: e.g.
    [sensitivity p ~qos `Gamma] tells how many Kbps one unit of extra
    failure rate costs.  Probability knobs are clamped to [0, 1]. *)
