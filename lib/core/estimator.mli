(** Measurement of the Markov model's parameters from a running
    simulation — §3.3 of the paper.

    The paper's transition probabilities cannot be derived in closed form
    on irregular topologies, so they are measured: this module consumes
    the {!Drcomm.report} of each churn event and accumulates

    - [P_f]: probability that an existing channel shares at least one
      link with a newly-arrived channel (ratio of sums across events);
    - [P_s]: probability that an existing channel is indirectly chained
      with a newly-arrived channel;
    - [A]: level-transition matrix of directly-chained channels at
      arrivals (and, recorded separately, at failures);
    - [B]: level-transition matrix of indirectly-chained channels at
      arrivals;
    - [T]: level-transition matrix of directly-chained channels at
      terminations.

    All matrices are conditional on the channel being affected, include
    the diagonal (no-change) outcomes, and are returned row-stochastic;
    rows never observed default to the identity row. *)

type t

val create : levels:int -> t
(** [levels] is the N of the target Markov chain (levels of the QoS
    spec). *)

val observe_arrival : t -> Drcomm.report -> unit
val observe_termination : t -> Drcomm.report -> unit
val observe_failure : t -> Drcomm.report -> unit
(** Failure transitions are kept out of [A] (the paper folds them in via
    the same matrix; we record them separately so that choice can be
    validated — see {!f_matrix}). *)

val arrivals : t -> int
val terminations : t -> int
val failures : t -> int

val p_f : t -> float
(** Sum of direct counts / sum of existing counts over arrival events;
    0 if nothing observed. *)

val p_s : t -> float

val p_f_termination : t -> float
(** Same ratio measured at terminations — a consistency check: in steady
    state it should approximate {!p_f}. *)

val a_matrix : t -> Matrix.t
val b_matrix : t -> Matrix.t
val t_matrix : t -> Matrix.t
val f_matrix : t -> Matrix.t
(** Transition matrix measured at failures only. *)

val a_row_count : t -> int -> int
(** Number of observations behind row [i] of [A] (to judge confidence). *)

val adaptations : t -> int
(** Level changes observed across all events (transitions with
    [before <> after]) — the re-adjustment traffic the paper's Table 1
    discussion attributes to small increment sizes. *)

val adaptation_rate : t -> float
(** {!adaptations} per observed churn event (arrivals + terminations +
    failures); 0 when nothing observed. *)

val to_json : t -> Jsonx.t
(** Event totals and the measured chaining probabilities, for the
    metrics manifests written by the CLI and bench harness. *)

val pp_summary : Format.formatter -> t -> unit
