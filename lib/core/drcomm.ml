(* The DR-connection service, rearchitected for scale: connections are
   abstract handles over a dense live array (O(1) admit/terminate/pick),
   every aggregate the probes read (count, total reservation, level
   histogram) is maintained incrementally, redistribution works off a
   dirty-link set accumulated by the mutating operations, and the failure
   path resolves a failed edge's victims from the edge's two directed
   links instead of scanning every connection. *)

module Config = struct
  type t = {
    policy : Policy.t;
    hop_bound : int;
    route_search : [ `Flooding | `Sequential of int ];
    require_backup : bool;
    with_backups : bool;
    backups_per_connection : int;
    restore_on_failure : bool;
  }

  let version = 1

  let make ?(policy = Policy.equal_share) ?(hop_bound = 16)
      ?(route_search = `Flooding) ?(require_backup = true) ?(with_backups = true)
      ?(backups_per_connection = 1) ?(restore_on_failure = false) () =
    if hop_bound < 1 then invalid_arg "Drcomm.Config.make: hop_bound >= 1";
    (match route_search with
    | `Sequential k when k < 1 ->
      invalid_arg "Drcomm.Config.make: route_search candidates >= 1"
    | `Sequential _ | `Flooding -> ());
    if with_backups && backups_per_connection < 1 then
      invalid_arg "Drcomm.Config.make: with_backups needs backups_per_connection >= 1";
    {
      policy;
      hop_bound;
      route_search;
      require_backup;
      with_backups;
      backups_per_connection;
      restore_on_failure;
    }

  let default = make ()

  let policy t = t.policy
  let hop_bound t = t.hop_bound
  let route_search t = t.route_search
  let require_backup t = t.require_backup
  let with_backups t = t.with_backups
  let backups_per_connection t = t.backups_per_connection
  let restore_on_failure t = t.restore_on_failure
end

(* [id] deliberately comes first: handles are compared structurally in a
   few generic contexts (sorting live sets, snapshot diffs), and ids are
   unique per service, so polymorphic compare resolves on the first field
   and never walks the mutable tail. *)
type channel = {
  id : int;
  src : int;
  dst : int;
  mutable qos : Qos.t; (* renegotiable, see change_qos *)
  mutable primary : Dirlink.id list;
  mutable primary_edges : int list;
  mutable backups : Dirlink.id list list; (* mutually link-disjoint *)
  mutable level : int;
  mutable slot : int; (* index in the live array; -1 once terminated *)
  mutable mark : int; (* visit stamp for allocation-free dedupe *)
}

type channel_id = channel

module Channel_id = struct
  type t = channel

  let to_int ch = ch.id
  let compare a b = Int.compare a.id b.id
  let equal a b = a.id = b.id
  let hash ch = ch.id
  let pp ppf ch = Format.pp_print_int ppf ch.id
end

type t = {
  net : Net_state.t;
  cfg : Config.t;
  by_id : (int, channel) Hashtbl.t; (* resolves link-recorded ids *)
  mutable live : channel array; (* dense: slots 0 .. n_live-1 *)
  mutable n_live : int;
  mutable next_id : int;
  mutable dropped : int;
  mutable auto_redistribute : bool;
  mutable mark_gen : int;
  (* Maintained aggregates: reading them never walks the live set. *)
  mutable total_res : int;
  mutable hist : int array; (* live channels per elastic level *)
  elastic_on_link : int array; (* per directed link: elastic primaries *)
  (* The dirty-link set: directed links whose membership or reservation
     changed since the last water-filling pass. *)
  mutable dirty_links : int array;
  mutable dirty_n : int;
  dirty_mark : Bytes.t;
  (* Redistribution time accounting for request tracing: when armed,
     every non-empty water-filling flush adds its wall time here, so a
     caller can difference the accumulator around an operation and
     attribute that slice to a [redistribute] stage. *)
  mutable time_redist : bool;
  mutable redist_acc : float;
  obs : Obs.t;
  m_admits : Metrics.counter;
  m_rejects : Metrics.counter;
  m_terminations : Metrics.counter;
  m_upgrades : Metrics.counter;
  m_retreats : Metrics.counter;
  m_link_failures : Metrics.counter;
  m_link_repairs : Metrics.counter;
  m_backup_activations : Metrics.counter;
  m_backup_losses : Metrics.counter;
  m_drops : Metrics.counter;
  m_restores : Metrics.counter;
  live_hwm : Metrics.hwm;
  (* Per-run (standalone) link-churn sketch: interning it in the obs
     registry would accumulate across runs sharing a worker registry,
     making per-run "hottest links" depend on sweep scheduling.  It is
     folded into the registry sketch by [absorb_heavy] at run end. *)
  h_churn : Heavy.sketch;
  h_reject : Heavy.sketch;
}

let create ?(config = Config.default) ?obs net =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  {
    net;
    cfg = config;
    by_id = Hashtbl.create 256;
    live = [||];
    n_live = 0;
    next_id = 0;
    dropped = 0;
    auto_redistribute = true;
    mark_gen = 0;
    total_res = 0;
    hist = Array.make 8 0;
    elastic_on_link = Array.make (max 1 (Net_state.link_count net)) 0;
    dirty_links = [||];
    dirty_n = 0;
    dirty_mark = Bytes.make (max 1 (Net_state.link_count net)) '\000';
    time_redist = false;
    redist_acc = 0.;
    obs;
    m_admits = Obs.counter obs "drcomm.admits";
    m_rejects = Obs.counter obs "drcomm.rejects";
    m_terminations = Obs.counter obs "drcomm.terminations";
    m_upgrades = Obs.counter obs "drcomm.elastic_upgrades";
    m_retreats = Obs.counter obs "drcomm.elastic_retreats";
    m_link_failures = Obs.counter obs "drcomm.link_failures";
    m_link_repairs = Obs.counter obs "drcomm.link_repairs";
    m_backup_activations = Obs.counter obs "drcomm.backup_activations";
    m_backup_losses = Obs.counter obs "drcomm.backup_losses";
    m_drops = Obs.counter obs "drcomm.drops";
    m_restores = Obs.counter obs "drcomm.restores";
    live_hwm = Metrics.hwm (Obs.metrics obs) "drcomm.live_hwm";
    h_churn = Heavy.standalone ~enabled:(Heavy.enabled (Obs.heavy obs)) ();
    h_reject = Obs.heavy_sketch obs "drcomm.reject_endpoints";
  }

let set_auto_redistribute t flag = t.auto_redistribute <- flag
let auto_redistribute t = t.auto_redistribute
let set_time_redistribution t flag = t.time_redist <- flag
let redistribution_seconds t = t.redist_acc

let net t = t.net
let config t = t.cfg

type reject_reason = No_primary_route | No_backup_route

type transition = {
  channel : channel_id;
  before : int;
  after : int;
  chained : [ `Direct | `Indirect ];
}

type report = {
  existing : int;
  direct_count : int;
  indirect_count : int;
  transitions : transition list;
}

type admit_result = Admitted of channel_id * report | Rejected of reject_reason

type recovery = {
  victim : channel_id;
  outcome :
    [ `Switched_to_backup of bool
    | `Dropped
    | `Restored of bool
    | `Backup_lost of bool ];
}

type failure_report = { recoveries : recovery list; event : report }

(* ------------------------------------------------------------------ *)
(* Internal helpers                                                    *)

let find ch = if ch.slot < 0 then raise Not_found else ch

let resolve t id =
  match Hashtbl.find_opt t.by_id id with
  | Some ch -> ch
  | None -> assert false (* every id recorded on a link is live *)

let bandwidth_at ch lvl = Qos.bandwidth_of_level ch.qos lvl

let next_mark t =
  t.mark_gen <- t.mark_gen + 1;
  t.mark_gen

let ensure_hist t lvl =
  if lvl >= Array.length t.hist then begin
    let bigger = Array.make (max (lvl + 1) (2 * Array.length t.hist)) 0 in
    Array.blit t.hist 0 bigger 0 (Array.length t.hist);
    t.hist <- bigger
  end

(* Aggregate-side of a level change; the caller owns link reservations. *)
let note_level t ch lvl =
  t.total_res <- t.total_res + bandwidth_at ch lvl - bandwidth_at ch ch.level;
  t.hist.(ch.level) <- t.hist.(ch.level) - 1;
  ensure_hist t lvl;
  t.hist.(lvl) <- t.hist.(lvl) + 1;
  ch.level <- lvl

let bump_elastic t ch delta =
  if Qos.is_elastic ch.qos then
    List.iter
      (fun dl -> t.elastic_on_link.(dl) <- t.elastic_on_link.(dl) + delta)
      ch.primary

let add_live t ch =
  if t.n_live = Array.length t.live then begin
    let bigger = Array.make (max 64 (2 * t.n_live)) ch in
    Array.blit t.live 0 bigger 0 t.n_live;
    t.live <- bigger
  end;
  ch.slot <- t.n_live;
  t.live.(t.n_live) <- ch;
  t.n_live <- t.n_live + 1;
  Hashtbl.replace t.by_id ch.id ch;
  ensure_hist t ch.level;
  t.hist.(ch.level) <- t.hist.(ch.level) + 1;
  t.total_res <- t.total_res + bandwidth_at ch ch.level

let remove_live t ch =
  let slot = ch.slot in
  let last = t.n_live - 1 in
  if slot < last then begin
    t.live.(slot) <- t.live.(last);
    t.live.(slot).slot <- slot
  end;
  t.live.(last) <- t.live.(last); (* slot [last] keeps a stale ref; n_live guards it *)
  t.n_live <- last;
  ch.slot <- -1;
  Hashtbl.remove t.by_id ch.id;
  t.hist.(ch.level) <- t.hist.(ch.level) - 1;
  t.total_res <- t.total_res - bandwidth_at ch ch.level

(* One churn unit per link the operation touched: admissions, retreats
   and upgrades all count, so the sketch's top-k is the set of links the
   elastic machinery works hardest. *)
let offer_churn t links =
  if Heavy.sketch_enabled t.h_churn then
    List.iter (fun dl -> Heavy.offer t.h_churn dl) links

let set_level t ch lvl =
  if lvl <> ch.level then begin
    let bw = bandwidth_at ch lvl in
    List.iter (fun dl -> Link_state.set_primary (Net_state.link t.net dl) ~channel:ch.id bw)
      ch.primary;
    offer_churn t ch.primary;
    if lvl > ch.level then Metrics.incr t.m_upgrades else Metrics.incr t.m_retreats;
    if Obs.tracing t.obs then
      Obs.event t.obs
        (if lvl > ch.level then
           Trace.Upgrade { channel = ch.id; from_level = ch.level; to_level = lvl }
         else Trace.Retreat { channel = ch.id; from_level = ch.level; to_level = lvl });
    note_level t ch lvl
  end

let retreat t ch = set_level t ch 0

(* Distinct channels holding a primary reservation on any of [links],
   except [exclude] — mark-stamp dedupe, no per-call tables. *)
let channels_on_links t ?(exclude = []) links =
  let gen = next_mark t in
  List.iter (fun ch -> ch.mark <- gen) exclude;
  let out = ref [] in
  List.iter
    (fun dl ->
      Link_state.iter_primary_channels
        (fun id _ ->
          let ch = resolve t id in
          if ch.mark <> gen then begin
            ch.mark <- gen;
            out := ch :: !out
          end)
        (Net_state.link t.net dl))
    links;
  !out

(* ------------------------------------------------------------------ *)
(* Water-filling redistribution                                        *)

(* Admission and redistribution run once per churn event, so their spans
   fire only under a profiler — a trace-only or metrics-only run must not
   pay (or log) a span pair per operation. *)
let hot_span t name f = if Obs.profiling t.obs then Obs.span t.obs name f else f ()

let add_dirty t dl =
  if Bytes.get t.dirty_mark dl = '\000' then begin
    Bytes.set t.dirty_mark dl '\001';
    if t.dirty_n = Array.length t.dirty_links then begin
      let bigger = Array.make (max 64 (2 * t.dirty_n)) 0 in
      Array.blit t.dirty_links 0 bigger 0 t.dirty_n;
      t.dirty_links <- bigger
    end;
    t.dirty_links.(t.dirty_n) <- dl;
    t.dirty_n <- t.dirty_n + 1
  end

let add_dirty_path t links = List.iter (add_dirty t) links

(* A channel can take one more increment iff it is elastic, below its
   ceiling, and every link of its primary path has that much spare
   (extras may borrow inactive backup pool, see Link_state). *)
let can_upgrade t ch =
  ch.level < Qos.levels ch.qos - 1
  && List.for_all
       (fun dl -> Link_state.spare (Net_state.link t.net dl) >= ch.qos.Qos.increment)
       ch.primary

let grant_increment t ch = set_level t ch (ch.level + 1)

let claim ch = { Policy.utility = ch.qos.Qos.utility; extras_granted = ch.level }

(* Water-fill the channels touching the accumulated dirty links; the
   policy value owns the grant loop (see {!Policy}).  Links carrying no
   elastic primary are skipped without touching their channel sets.
   Terminates because every grant consumes one increment of finite link
   capacity. *)
let redistribute_flush t =
  if t.dirty_n > 0 then begin
    let t0 = if t.time_redist then Clock.now () else 0. in
    Fun.protect ~finally:(fun () ->
        if t.time_redist then t.redist_acc <- t.redist_acc +. (Clock.now () -. t0))
    @@ fun () ->
    hot_span t "drcomm.redistribute" @@ fun () ->
    let gen = next_mark t in
    let candidates = ref [] in
    for i = 0 to t.dirty_n - 1 do
      let dl = t.dirty_links.(i) in
      Bytes.set t.dirty_mark dl '\000';
      if t.elastic_on_link.(dl) > 0 then
        Link_state.iter_primary_channels
          (fun id _ ->
            let ch = resolve t id in
            if ch.mark <> gen then begin
              ch.mark <- gen;
              if Qos.is_elastic ch.qos then candidates := ch :: !candidates
            end)
          (Net_state.link t.net dl)
    done;
    t.dirty_n <- 0;
    match !candidates with
    | [] -> ()
    | candidates ->
      let env =
        {
          Policy.claim;
          can_upgrade = (fun ch -> can_upgrade t ch);
          grant = (fun ch -> grant_increment t ch);
          tie = (fun a b -> compare a.id b.id);
        }
      in
      t.cfg.Config.policy.Policy.run env candidates
  end

let redistribute_pending t = redistribute_flush t

(* Global pass: water-fill every elastic channel (dirty = every link any
   channel uses).  Used after a bulk load with auto-redistribution off. *)
let redistribute_all t =
  for i = 0 to t.n_live - 1 do
    add_dirty_path t t.live.(i).primary
  done;
  redistribute_flush t

let maybe_redistribute t = if t.auto_redistribute then redistribute_flush t

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let snapshot_levels chans = List.map (fun ch -> (ch, ch.level)) chans

let transitions_of ~chained snap =
  List.map (fun (ch, before) -> { channel = ch; before; after = ch.level; chained }) snap

(* Indirectly-chained set at an arrival: channels on the links of the
   directly-chained channels' paths, that are not directly chained
   themselves (the paper's third-channel definition). *)
let indirect_set t ~direct =
  let direct_links = List.concat_map (fun ch -> ch.primary) direct in
  channels_on_links t ~exclude:direct direct_links

(* ------------------------------------------------------------------ *)
(* Route discovery dispatch                                            *)

let find_primary_route t req =
  match t.cfg.Config.route_search with
  | `Flooding -> Flooding.primary_route t.net req
  | `Sequential candidates -> Sequential.primary_route t.net req ~candidates

let find_backup_route ?banned_edges t req ~primary_edges =
  match t.cfg.Config.route_search with
  | `Flooding -> Flooding.backup_route ?banned_edges t.net req ~primary_edges
  | `Sequential candidates ->
    Sequential.backup_route ?banned_edges t.net req ~candidates ~primary_edges

(* Register one backup path's reservations. *)
let register_backup_path ?floor t ch blinks =
  let floor = Option.value ~default:ch.qos.Qos.b_min floor in
  List.iter
    (fun dl ->
      Link_state.register_backup (Net_state.link t.net dl) ~channel:ch.id ~b_min:floor
        ~primary_edges:ch.primary_edges)
    blinks

let unregister_backup_path t ch blinks =
  List.iter
    (fun dl -> Link_state.unregister_backup (Net_state.link t.net dl) ~channel:ch.id)
    blinks

(* All-or-nothing registration: roll back the prefix on failure. *)
let try_register_backup_path ?floor t ch blinks =
  let floor = Option.value ~default:ch.qos.Qos.b_min floor in
  let registered = ref [] in
  try
    List.iter
      (fun dl ->
        Link_state.register_backup (Net_state.link t.net dl) ~channel:ch.id
          ~b_min:floor ~primary_edges:ch.primary_edges;
        registered := dl :: !registered)
      blinks;
    true
  with Invalid_argument _ ->
    List.iter
      (fun dl -> Link_state.unregister_backup (Net_state.link t.net dl) ~channel:ch.id)
      !registered;
    false

(* Establish further backup channels until the configured count is
   reached; each new backup is banned from the edges of the ones already
   held (mutual link-disjointness, so one failure never claims two).
   Returns how many were added. *)
let top_up_backups t ch =
  if not t.cfg.Config.with_backups then 0
  else begin
    let floor = ch.qos.Qos.b_min in
    let req =
      Flooding.request ~hop_bound:t.cfg.Config.hop_bound ~src:ch.src ~dst:ch.dst
        ~floor ()
    in
    let added = ref 0 in
    let continue = ref true in
    while !continue && List.length ch.backups < t.cfg.Config.backups_per_connection do
      let banned_edges =
        List.concat_map (List.map Dirlink.edge) ch.backups |> List.sort_uniq compare
      in
      match find_backup_route ~banned_edges t req ~primary_edges:ch.primary_edges with
      | None -> continue := false
      | Some bpath ->
        let blinks = Dirlink.of_path (Net_state.graph t.net) bpath in
        register_backup_path t ch blinks;
        ch.backups <- ch.backups @ [ blinks ];
        incr added
    done;
    !added
  end

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

(* Fast-path retreat for report-free admission: only channels actually
   holding extras on [links] retreat (a retreat of a floor-level channel
   is a no-op anyway), found through the per-link extras index. *)
let retreat_extras_on t links =
  let gen = next_mark t in
  let hit = ref [] in
  List.iter
    (fun dl ->
      let l = Net_state.link t.net dl in
      if Link_state.extras_count l > 0 then
        Link_state.iter_extras
          (fun id _ ->
            let ch = resolve t id in
            if ch.mark <> gen then begin
              ch.mark <- gen;
              hit := ch :: !hit
            end)
          l)
    links;
  List.iter
    (fun ch ->
      retreat t ch;
      add_dirty_path t ch.primary)
    !hit

let admit ?(want_indirect = true) ?(want_report = true) t ~src ~dst ~qos =
  hot_span t "drcomm.admit" @@ fun () ->
  let g = Net_state.graph t.net in
  let n = Graph.node_count g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Drcomm.admit: endpoint out of range";
  if src = dst then invalid_arg "Drcomm.admit: src = dst";
  let floor = qos.Qos.b_min in
  let req = Flooding.request ~hop_bound:t.cfg.Config.hop_bound ~src ~dst ~floor () in
  let rejected reason =
    Metrics.incr t.m_rejects;
    Heavy.offer t.h_reject src;
    Heavy.offer t.h_reject dst;
    if Obs.tracing t.obs then
      Obs.event t.obs
        (Trace.Reject
           {
             reason =
               (match reason with
               | No_primary_route -> "no_primary_route"
               | No_backup_route -> "no_backup_route");
           });
    Rejected reason
  in
  match find_primary_route t req with
  | None -> rejected No_primary_route
  | Some ppath -> (
    let plinks = Dirlink.of_path g ppath in
    let pedges = ppath.Paths.edges in
    let id = t.next_id in
    let existing = t.n_live in
    (* Directly-chained channels retreat to their floors (§3.1), making
       room for the new floor physically (extras may have filled the
       links).  Without a report only the channels holding extras are
       visited — the retreat itself is identical. *)
    let direct, direct_snap, indirect_snap =
      if want_report then begin
        let direct = channels_on_links t plinks in
        let direct_snap = snapshot_levels direct in
        let indirect =
          if want_indirect then indirect_set t ~direct else []
        in
        let indirect_snap = snapshot_levels indirect in
        List.iter
          (fun ch ->
            retreat t ch;
            add_dirty_path t ch.primary)
          direct;
        (direct, direct_snap, indirect_snap)
      end
      else begin
        retreat_extras_on t plinks;
        ([], [], [])
      end
    in
    List.iter
      (fun dl ->
        Link_state.reserve_primary (Net_state.link t.net dl) ~channel:id ~b_min:floor)
      plinks;
    add_dirty_path t plinks;
    (* Backups are searched with the primary already in place, so the
       backup admission test sees the primary's floor on any link the
       routes would share (maximally-disjoint fallback).  The first
       backup decides acceptance; further ones (when configured) are
       best-effort. *)
    let ch =
      {
        id;
        src;
        dst;
        qos;
        primary = plinks;
        primary_edges = pedges;
        backups = [];
        level = 0;
        slot = -1;
        mark = 0;
      }
    in
    let got_backups = top_up_backups t ch in
    match got_backups with
    | 0 when t.cfg.Config.with_backups && t.cfg.Config.require_backup ->
      (* Roll the primary back; the retreated channels re-upgrade. *)
      List.iter
        (fun dl -> Link_state.release_primary (Net_state.link t.net dl) ~channel:id)
        plinks;
      maybe_redistribute t;
      rejected No_backup_route
    | _ ->
      t.next_id <- id + 1;
      add_live t ch;
      bump_elastic t ch 1;
      offer_churn t plinks;
      Metrics.observe_hwm t.live_hwm (float_of_int t.n_live);
      (* Freed extras and remaining spare are redistributed; the new
         channel participates too. *)
      maybe_redistribute t;
      let report =
        {
          existing;
          direct_count = List.length direct;
          indirect_count = List.length indirect_snap;
          transitions =
            transitions_of ~chained:`Direct direct_snap
            @ transitions_of ~chained:`Indirect indirect_snap;
        }
      in
      Metrics.incr t.m_admits;
      if Obs.tracing t.obs then
        Obs.event t.obs
          (Trace.Admit
             {
               channel = id;
               direct = report.direct_count;
               indirect = report.indirect_count;
             });
      Admitted (ch, report))

(* ------------------------------------------------------------------ *)
(* Termination                                                         *)

let release_primary_reservations t ch =
  bump_elastic t ch (-1);
  List.iter
    (fun dl -> Link_state.release_primary (Net_state.link t.net dl) ~channel:ch.id)
    ch.primary

let unregister_backup_links t ch =
  List.iter (unregister_backup_path t ch) ch.backups;
  ch.backups <- []

let terminate ?(report = true) t handle =
  let ch = find handle in
  let direct_snap =
    if report then
      snapshot_levels (channels_on_links t ~exclude:[ ch ] ch.primary)
    else []
  in
  let existing = t.n_live - 1 in
  release_primary_reservations t ch;
  unregister_backup_links t ch;
  remove_live t ch;
  add_dirty_path t ch.primary;
  offer_churn t ch.primary;
  maybe_redistribute t;
  Metrics.incr t.m_terminations;
  if Obs.tracing t.obs then Obs.event t.obs (Trace.Terminate { channel = ch.id });
  {
    existing;
    direct_count = List.length direct_snap;
    indirect_count = 0;
    transitions = transitions_of ~chained:`Direct direct_snap;
  }

(* ------------------------------------------------------------------ *)
(* QoS renegotiation                                                   *)

(* Replace a channel's QoS contract in place (same routes).  Treated like
   an arrival on its own links: extras there are reclaimed so the new
   floor can be judged against floors + pools only.  All-or-nothing: on
   any failure the old contract is restored exactly. *)
let change_qos t handle qos' =
  let ch = find handle in
  let id = ch.id in
  let old_qos = ch.qos in
  let old_floor = old_qos.Qos.b_min in
  let new_floor = qos'.Qos.b_min in
  let backups = ch.backups in
  (* Reclaim extras on the channel's links (including its own). *)
  let sharing = channels_on_links t ch.primary in
  List.iter
    (fun c ->
      retreat t c;
      add_dirty_path t c.primary)
    sharing;
  (* Swap the primary floor link by link, tracking progress for
     rollback. *)
  let swapped = ref [] in
  (* Restores go through [~force]: the old floor was already held when
     this call started, so putting it back must never be re-admitted —
     on a link whose guarantee constraint is transiently broken (the
     multi-failure corner) the normal floors-plus-pool test would
     spuriously reject its own standing reservation. *)
  let restore_floor ~floor dl =
    let l = Net_state.link t.net dl in
    Link_state.release_primary l ~channel:id;
    Link_state.reserve_primary ~force:true l ~channel:id ~b_min:floor
  in
  let swap_back () =
    List.iter (restore_floor ~floor:old_floor) !swapped;
    swapped := []
  in
  let rollback () =
    maybe_redistribute t;
    `Rejected
  in
  let rec swap_all = function
    | [] -> `Ok
    | dl :: rest -> (
      let l = Net_state.link t.net dl in
      Link_state.release_primary l ~channel:id;
      match Link_state.reserve_primary l ~channel:id ~b_min:new_floor with
      | () ->
        swapped := dl :: !swapped;
        swap_all rest
      | exception Invalid_argument _ ->
        (* This link was already released: restore its old floor before
           unwinding the fully-swapped ones. *)
        Link_state.reserve_primary ~force:true l ~channel:id ~b_min:old_floor;
        swap_back ();
        rollback ())
  in
  match swap_all ch.primary with
  | `Rejected -> `Rejected
  | `Ok -> (
    (* Re-key every backup to the new floor, all-or-nothing. *)
    List.iter (unregister_backup_path t ch) backups;
    let rec rereg done_ = function
      | [] -> `Ok
      | b :: rest ->
        if try_register_backup_path ~floor:new_floor t ch b then rereg (b :: done_) rest
        else begin
          (* Roll everything back: restore the old floor first so the
             backup re-registrations see the original pools, then re-hold
             the backups.  A backup that no longer fits even then (it can
             only have been displaced by concurrent state we do not
             track) is dropped rather than crashing. *)
          List.iter (unregister_backup_path t ch) done_;
          swap_back ();
          ch.backups <-
            List.filter (try_register_backup_path ~floor:old_floor t ch) backups;
          maybe_redistribute t;
          `Rejected
        end
    in
    match rereg [] backups with
    | `Rejected -> `Rejected
    | `Ok ->
      (* The contract swap may change the floor (total reservation) and
         the channel's elasticity (the per-link elastic index). *)
      bump_elastic t ch (-1);
      ch.qos <- qos';
      bump_elastic t ch 1;
      t.total_res <- t.total_res + new_floor - old_floor;
      ch.level <- 0;
      maybe_redistribute t;
      `Changed)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)

let path_usable t links =
  List.for_all (fun dl -> Net_state.usable_edge t.net (Dirlink.edge dl)) links

(* Top-up after a recovery event; [true] when at least one backup is
   (still) held afterwards. *)
let try_new_backup t ch =
  ignore (top_up_backups t ch);
  ch.backups <> []

(* Convert one of [ch]'s backups into its primary.  The single-failure
   guarantee makes the floors fit; extras on the backup links are
   retreated first (they were borrowing the pool).  The channel's other
   backups are re-registered against the new primary's edges (their pool
   accounting was keyed by the old primary).  Returns [false] if floors
   do not fit (multi-failure corner) — the caller then drops the
   connection. *)
let activate_backup t ch blinks ~retreated =
  let floor = ch.qos.Qos.b_min in
  let fits =
    List.for_all
      (fun dl ->
        let l = Net_state.link t.net dl in
        Link_state.primary_min_total l + floor <= Link_state.capacity l)
      blinks
  in
  if not fits then false
  else begin
    let remaining = List.filter (fun b -> b != blinks) ch.backups in
    unregister_backup_path t ch blinks;
    (* Primaries sharing the activated links release their extras
       (§3.1: the pool they were borrowing is being called in).  Found
       through the per-link extras index: a link full of floor-level
       primaries costs nothing here. *)
    let gen = next_mark t in
    let hit = ref [] in
    List.iter
      (fun dl ->
        let l = Net_state.link t.net dl in
        if Link_state.extras_count l > 0 then
          Link_state.iter_extras
            (fun id _ ->
              let other = resolve t id in
              if other.id <> ch.id && other.mark <> gen then begin
                other.mark <- gen;
                hit := other :: !hit
              end)
            l)
      blinks;
    List.iter
      (fun other ->
        retreated := (other, other.level) :: !retreated;
        retreat t other)
      !hit;
    List.iter
      (fun dl ->
        Link_state.reserve_primary ~force:true (Net_state.link t.net dl) ~channel:ch.id
          ~b_min:floor)
      blinks;
    ch.primary <- blinks;
    ch.primary_edges <- List.sort_uniq compare (List.map Dirlink.edge blinks);
    bump_elastic t ch 1;
    note_level t ch 0;
    (* Remaining backups: re-key their pool accounting to the new primary
       (they are disjoint from it by construction — backups were mutually
       disjoint).  Only still-usable paths qualify: a backup crossing the
       edge that just failed could never activate, and keeping it
       registered would both pin phantom pool demand and falsely report
       the connection as protected.  A re-registration can also fail if
       the pool no longer fits; either way the backup is dropped and
       replaced later if possible. *)
    List.iter (unregister_backup_path t ch) remaining;
    ch.backups <- [];
    List.iter
      (fun b ->
        if path_usable t b && try_register_backup_path t ch b then
          ch.backups <- ch.backups @ [ b ])
      remaining;
    true
  end

let empty_event t =
  { existing = t.n_live; direct_count = 0; indirect_count = 0; transitions = [] }

let fail_edge t e =
  if Net_state.edge_failed t.net e then { recoveries = []; event = empty_event t }
  else begin
    Net_state.fail_edge t.net e;
    Metrics.incr t.m_link_failures;
    if Obs.tracing t.obs then Obs.event t.obs (Trace.Link_fail { edge = e });
    let existing = t.n_live in
    (* The failed edge's victims live on its two directed links: a
       primary victim holds a reservation on either direction, a backup
       victim has a backup registered there (and no primary across the
       edge).  No global scan. *)
    let gen = next_mark t in
    let victims_primary = ref [] and victims_backup = ref [] in
    let each_direction f =
      f (2 * e);
      f ((2 * e) + 1)
    in
    each_direction (fun dl ->
        Link_state.iter_primary_channels
          (fun id _ ->
            let ch = resolve t id in
            if ch.mark <> gen then begin
              ch.mark <- gen;
              victims_primary := ch :: !victims_primary
            end)
          (Net_state.link t.net dl));
    each_direction (fun dl ->
        Link_state.iter_backup_channels
          (fun id ->
            let ch = resolve t id in
            if ch.mark <> gen then begin
              ch.mark <- gen;
              victims_backup := ch :: !victims_backup
            end)
          (Net_state.link t.net dl));
    let by_id a b = compare a.id b.id in
    let victims_primary = List.sort by_id !victims_primary in
    let victims_backup = List.sort by_id !victims_backup in
    let crosses blinks = List.exists (fun dl -> Dirlink.edge dl = e) blinks in
    let retreated = ref [] in
    let recoveries = ref [] in
    List.iter
      (fun ch ->
        release_primary_reservations t ch;
        add_dirty_path t ch.primary;
        (* Last resort when no backup can take over: drop, or — under the
           reactive-restoration baseline — attempt a from-scratch
           re-establishment over the surviving topology. *)
        let drop_or_restore () =
          remove_live t ch;
          if not t.cfg.Config.restore_on_failure then begin
            t.dropped <- t.dropped + 1;
            `Dropped
          end
          else
            match admit ~want_indirect:false t ~src:ch.src ~dst:ch.dst ~qos:ch.qos with
            | Admitted (nch, _) -> `Restored (nch.backups <> [])
            | Rejected _ ->
              t.dropped <- t.dropped + 1;
              `Dropped
        in
        let outcome =
          (* Activate the first backup whose whole path is still up. *)
          match List.find_opt (path_usable t) ch.backups with
          | Some blinks ->
            if activate_backup t ch blinks ~retreated then begin
              add_dirty_path t blinks;
              `Switched_to_backup (try_new_backup t ch)
            end
            else begin
              unregister_backup_links t ch;
              drop_or_restore ()
            end
          | None ->
            (* No backup, or every backup crosses a failed edge. *)
            unregister_backup_links t ch;
            drop_or_restore ()
        in
        (match outcome with
        | `Switched_to_backup reprotected ->
          Metrics.incr t.m_backup_activations;
          if Obs.tracing t.obs then
            Obs.event t.obs (Trace.Backup_activate { channel = ch.id; reprotected })
        | `Dropped ->
          Metrics.incr t.m_drops;
          if Obs.tracing t.obs then Obs.event t.obs (Trace.Drop { channel = ch.id })
        | `Restored with_backup ->
          Metrics.incr t.m_restores;
          if Obs.tracing t.obs then
            Obs.event t.obs (Trace.Restore { channel = ch.id; with_backup })
        | `Backup_lost _ -> ());
        recoveries := { victim = ch; outcome } :: !recoveries)
      victims_primary;
    List.iter
      (fun ch ->
        (* Drop only the backups crossing the failed edge; keep the
           rest; then top the count back up if routes exist. *)
        let lost, kept = List.partition crosses ch.backups in
        List.iter (unregister_backup_path t ch) lost;
        ch.backups <- kept;
        let replaced = try_new_backup t ch in
        Metrics.incr t.m_backup_losses;
        if Obs.tracing t.obs then
          Obs.event t.obs (Trace.Backup_lost { channel = ch.id; replaced });
        recoveries := { victim = ch; outcome = `Backup_lost replaced } :: !recoveries)
      victims_backup;
    let retreated_snap = List.rev !retreated in
    (* A bystander retreated by an activation freed spare on its whole
       path, not just on the activated links — its other links must be
       water-filled too, exactly as admission treats direct sharers. *)
    List.iter (fun (ch, _) -> add_dirty_path t ch.primary) retreated_snap;
    maybe_redistribute t;
    let transitions =
      List.map
        (fun (ch, before) ->
          { channel = ch; before; after = ch.level; chained = `Direct })
        retreated_snap
    in
    {
      recoveries = List.rev !recoveries;
      event =
        {
          existing;
          direct_count = List.length retreated_snap;
          indirect_count = 0;
          transitions;
        };
    }
  end

let repair_edge t e =
  (* Idempotent like fail_edge: repairing a healthy edge is a no-op and
     must not count as a repair or emit an event. *)
  if Net_state.edge_failed t.net e then begin
    Net_state.repair_edge t.net e;
    Metrics.incr t.m_link_repairs;
    if Obs.tracing t.obs then Obs.event t.obs (Trace.Link_repair { edge = e })
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let count t = t.n_live

let active_channels t =
  let acc = ref [] in
  for i = t.n_live - 1 downto 0 do
    acc := t.live.(i) :: !acc
  done;
  !acc

let nth_channel t i =
  if i < 0 || i >= t.n_live then invalid_arg "Drcomm.nth_channel: index out of range";
  t.live.(i)

let mem _t ch = ch.slot >= 0
let level _t ch = (find ch).level

let reserved_bandwidth _t handle =
  let ch = find handle in
  bandwidth_at ch ch.level

let qos_of _t ch = (find ch).qos
let primary_links _t ch = (find ch).primary

let backup_links _t handle =
  match (find handle).backups with [] -> None | first :: _ -> Some first

let all_backup_links _t ch = (find ch).backups
let has_backup _t ch = (find ch).backups <> []

let level_histogram t ~max_levels =
  let counts = Array.make max_levels 0 in
  let n = Array.length t.hist in
  for lvl = 0 to n - 1 do
    if t.hist.(lvl) > 0 && lvl >= max_levels then
      invalid_arg
        (Printf.sprintf "Drcomm.level_histogram: live channel at level %d" lvl);
    if lvl < max_levels then counts.(lvl) <- t.hist.(lvl)
  done;
  counts

let total_reserved t = t.total_res

let average_bandwidth t =
  let n = count t in
  if n = 0 then 0. else float_of_int (total_reserved t) /. float_of_int n

let dropped_connections t = t.dropped

let hot_links t ~k =
  List.map (fun (key, cnt, _err) -> (key, cnt)) (Heavy.top ~k t.h_churn)

let absorb_heavy t =
  let reg = Obs.heavy t.obs in
  if Heavy.enabled reg then
    Heavy.merge_sketch_into ~into:(Heavy.sketch reg "drcomm.link_churn") t.h_churn

(* Full audit: the per-channel checks of old, plus a from-scratch
   recomputation of every maintained aggregate (live index, histogram,
   total reservation, per-link elastic counts) against the incremental
   state — the fuzzer's cross-check of incremental vs full recompute. *)
let check_invariants t =
  Net_state.check_invariants t.net;
  let total = ref 0 in
  let hist = Array.make (Array.length t.hist) 0 in
  let elastic = Array.make (Array.length t.elastic_on_link) 0 in
  for i = 0 to t.n_live - 1 do
    let ch = t.live.(i) in
    let id = ch.id in
    if ch.slot <> i then
      failwith (Printf.sprintf "Drcomm: channel %d slot index out of sync" id);
    (match Hashtbl.find_opt t.by_id id with
    | Some ch' when ch' == ch -> ()
    | _ -> failwith (Printf.sprintf "Drcomm: channel %d missing from id table" id));
    if ch.level < 0 || ch.level >= Qos.levels ch.qos then
      failwith (Printf.sprintf "Drcomm: channel %d has level %d" id ch.level);
    let bw = bandwidth_at ch ch.level in
    total := !total + bw;
    hist.(ch.level) <- hist.(ch.level) + 1;
    List.iter
      (fun dl ->
        if Qos.is_elastic ch.qos then elastic.(dl) <- elastic.(dl) + 1;
        match Link_state.primary_reservation (Net_state.link t.net dl) ~channel:id with
        | Some r when r = bw -> ()
        | Some r ->
          failwith
            (Printf.sprintf "Drcomm: channel %d reserves %d on link %d, level says %d"
               id r dl bw)
        | None ->
          failwith (Printf.sprintf "Drcomm: channel %d missing on link %d" id dl))
      ch.primary;
    (* Every held backup is registered on every one of its links, and
       distinct backups of one connection are mutually edge-disjoint. *)
    List.iter
      (fun blinks ->
        List.iter
          (fun dl ->
            if not (Link_state.has_backup (Net_state.link t.net dl) ~channel:id) then
              failwith (Printf.sprintf "Drcomm: backup of %d missing on link %d" id dl))
          blinks)
      ch.backups;
    let backup_edges = List.map (List.map Dirlink.edge) ch.backups in
    let all = List.concat backup_edges in
    if List.length all <> List.length (List.sort_uniq compare all) then
      failwith (Printf.sprintf "Drcomm: backups of %d share an edge" id)
  done;
  if Hashtbl.length t.by_id <> t.n_live then
    failwith "Drcomm: id table size out of sync with live set";
  if !total <> t.total_res then
    failwith
      (Printf.sprintf "Drcomm: total_reserved %d out of sync (recomputed %d)"
         t.total_res !total);
  Array.iteri
    (fun lvl c ->
      if c <> t.hist.(lvl) then
        failwith (Printf.sprintf "Drcomm: level histogram out of sync at level %d" lvl))
    hist;
  Array.iteri
    (fun dl c ->
      if c <> t.elastic_on_link.(dl) then
        failwith (Printf.sprintf "Drcomm: elastic index out of sync on link %d" dl))
    elastic
