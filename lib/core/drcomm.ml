type channel_id = int

type config = {
  policy : Policy.t;
  hop_bound : int;
  route_search : [ `Flooding | `Sequential of int ];
  require_backup : bool;
  with_backups : bool;
  backups_per_connection : int;
  restore_on_failure : bool;
}

let default_config =
  {
    policy = Policy.Equal_share;
    hop_bound = 16;
    route_search = `Flooding;
    require_backup = true;
    with_backups = true;
    backups_per_connection = 1;
    restore_on_failure = false;
  }

type channel = {
  id : channel_id;
  src : int;
  dst : int;
  mutable qos : Qos.t; (* renegotiable, see change_qos *)
  mutable primary : Dirlink.id list;
  mutable primary_edges : int list;
  mutable backups : Dirlink.id list list; (* mutually link-disjoint *)
  mutable level : int;
}

type t = {
  net : Net_state.t;
  cfg : config;
  channels : (channel_id, channel) Hashtbl.t;
  mutable next_id : int;
  mutable dropped : int;
  mutable auto_redistribute : bool;
  obs : Obs.t;
  m_admits : Metrics.counter;
  m_rejects : Metrics.counter;
  m_terminations : Metrics.counter;
  m_upgrades : Metrics.counter;
  m_retreats : Metrics.counter;
  m_link_failures : Metrics.counter;
  m_link_repairs : Metrics.counter;
  m_backup_activations : Metrics.counter;
  m_backup_losses : Metrics.counter;
  m_drops : Metrics.counter;
  m_restores : Metrics.counter;
  live_hwm : Metrics.hwm;
  (* Per-run (standalone) link-churn sketch: interning it in the obs
     registry would accumulate across runs sharing a worker registry,
     making per-run "hottest links" depend on sweep scheduling.  It is
     folded into the registry sketch by [absorb_heavy] at run end. *)
  h_churn : Heavy.sketch;
  h_reject : Heavy.sketch;
}

let create ?(config = default_config) ?obs net =
  if config.hop_bound < 1 then invalid_arg "Drcomm.create: hop_bound >= 1";
  if config.with_backups && config.backups_per_connection < 1 then
    invalid_arg "Drcomm.create: with_backups needs backups_per_connection >= 1";
  let obs = match obs with Some o -> o | None -> Obs.default () in
  {
    net;
    cfg = config;
    channels = Hashtbl.create 256;
    next_id = 0;
    dropped = 0;
    auto_redistribute = true;
    obs;
    m_admits = Obs.counter obs "drcomm.admits";
    m_rejects = Obs.counter obs "drcomm.rejects";
    m_terminations = Obs.counter obs "drcomm.terminations";
    m_upgrades = Obs.counter obs "drcomm.elastic_upgrades";
    m_retreats = Obs.counter obs "drcomm.elastic_retreats";
    m_link_failures = Obs.counter obs "drcomm.link_failures";
    m_link_repairs = Obs.counter obs "drcomm.link_repairs";
    m_backup_activations = Obs.counter obs "drcomm.backup_activations";
    m_backup_losses = Obs.counter obs "drcomm.backup_losses";
    m_drops = Obs.counter obs "drcomm.drops";
    m_restores = Obs.counter obs "drcomm.restores";
    live_hwm = Metrics.hwm (Obs.metrics obs) "drcomm.live_hwm";
    h_churn = Heavy.standalone ~enabled:(Heavy.enabled (Obs.heavy obs)) ();
    h_reject = Obs.heavy_sketch obs "drcomm.reject_endpoints";
  }

let set_auto_redistribute t flag = t.auto_redistribute <- flag
let auto_redistribute t = t.auto_redistribute

let net t = t.net
let config t = t.cfg

type reject_reason = No_primary_route | No_backup_route

type transition = {
  channel : channel_id;
  before : int;
  after : int;
  chained : [ `Direct | `Indirect ];
}

type report = {
  existing : int;
  direct_count : int;
  indirect_count : int;
  transitions : transition list;
}

type admit_result = Admitted of channel_id * report | Rejected of reject_reason

type recovery = {
  victim : channel_id;
  outcome :
    [ `Switched_to_backup of bool
    | `Dropped
    | `Restored of bool
    | `Backup_lost of bool ];
}

type failure_report = { recoveries : recovery list; event : report }

(* ------------------------------------------------------------------ *)
(* Internal helpers                                                    *)

let find t id =
  match Hashtbl.find_opt t.channels id with
  | Some ch -> ch
  | None -> raise Not_found

let bandwidth_at ch lvl = Qos.bandwidth_of_level ch.qos lvl

(* One churn unit per link the operation touched: admissions, retreats
   and upgrades all count, so the sketch's top-k is the set of links the
   elastic machinery works hardest. *)
let offer_churn t links =
  if Heavy.sketch_enabled t.h_churn then
    List.iter (fun dl -> Heavy.offer t.h_churn dl) links

let set_level t ch lvl =
  if lvl <> ch.level then begin
    let bw = bandwidth_at ch lvl in
    List.iter (fun dl -> Link_state.set_primary (Net_state.link t.net dl) ~channel:ch.id bw)
      ch.primary;
    offer_churn t ch.primary;
    if lvl > ch.level then Metrics.incr t.m_upgrades else Metrics.incr t.m_retreats;
    if Obs.tracing t.obs then
      Obs.event t.obs
        (if lvl > ch.level then
           Trace.Upgrade { channel = ch.id; from_level = ch.level; to_level = lvl }
         else Trace.Retreat { channel = ch.id; from_level = ch.level; to_level = lvl });
    ch.level <- lvl
  end

let retreat t ch = set_level t ch 0

(* Distinct channels holding a primary reservation on any of [links],
   except [exclude]. *)
let channels_on_links t ?(exclude = []) links =
  let seen = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace seen id ()) exclude;
  let out = ref [] in
  List.iter
    (fun dl ->
      Link_state.iter_primary_channels
        (fun id _ ->
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.replace seen id ();
            out := find t id :: !out
          end)
        (Net_state.link t.net dl))
    links;
  !out

(* ------------------------------------------------------------------ *)
(* Water-filling redistribution                                        *)

(* A channel can take one more increment iff it is elastic, below its
   ceiling, and every link of its primary path has that much spare
   (extras may borrow inactive backup pool, see Link_state). *)
let can_upgrade t ch =
  ch.level < Qos.levels ch.qos - 1
  && List.for_all
       (fun dl -> Link_state.spare (Net_state.link t.net dl) >= ch.qos.Qos.increment)
       ch.primary

let grant_increment t ch = set_level t ch (ch.level + 1)

let claim ch = { Policy.utility = ch.qos.Qos.utility; extras_granted = ch.level }

let compare_candidates policy a b =
  match Policy.compare_claims policy (claim a) (claim b) with
  | 0 -> compare a.id b.id
  | c -> c

(* Water-fill the channels touching [dirty] links; the policy decides who
   gets each successive increment.  Terminates because every grant
   consumes one increment of finite link capacity.

   - Equal_share: round-based — each round walks candidates from the
     lowest level up, granting one increment where it fits.  For equal
     utilities this equals always-grant-the-minimum, at round-scan cost.
   - Proportional: exact selection loop — each step grants the candidate
     with the fewest increments per unit utility (the coefficient
     scheme's fluid limit on the increment grid).
   - Max_utility: candidates in utility order, each drained to its
     ceiling before the next sees anything. *)
(* Admission and redistribution run once per churn event, so their spans
   fire only under a profiler — a trace-only or metrics-only run must not
   pay (or log) a span pair per operation. *)
let hot_span t name f = if Obs.profiling t.obs then Obs.span t.obs name f else f ()

let redistribute t ~dirty =
  hot_span t "drcomm.redistribute" @@ fun () ->
  let candidates =
    List.filter (fun ch -> Qos.is_elastic ch.qos) (channels_on_links t dirty)
  in
  match candidates with
  | [] -> ()
  | _ -> (
    match t.cfg.policy with
    | Policy.Equal_share ->
      let progress = ref true in
      while !progress do
        progress := false;
        let ordered = List.sort (compare_candidates t.cfg.policy) candidates in
        List.iter
          (fun ch ->
            if can_upgrade t ch then begin
              grant_increment t ch;
              progress := true
            end)
          ordered
      done
    | Policy.Proportional ->
      let continue = ref true in
      while !continue do
        let eligible = List.filter (can_upgrade t) candidates in
        match List.sort (compare_candidates t.cfg.policy) eligible with
        | [] -> continue := false
        | best :: _ -> grant_increment t best
      done
    | Policy.Max_utility ->
      let ordered = List.sort (compare_candidates t.cfg.policy) candidates in
      List.iter
        (fun ch ->
          while can_upgrade t ch do
            grant_increment t ch
          done)
        ordered)

(* Global pass: water-fill every elastic channel (dirty = every link any
   channel uses).  Used after a bulk load with auto-redistribution off. *)
let redistribute_all t =
  let dirty = Hashtbl.fold (fun _ ch acc -> ch.primary @ acc) t.channels [] in
  redistribute t ~dirty

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let snapshot_levels chans = List.map (fun ch -> (ch, ch.level)) chans

let transitions_of ~chained snap =
  List.map (fun (ch, before) -> { channel = ch.id; before; after = ch.level; chained }) snap

(* Indirectly-chained set at an arrival: channels on the links of the
   directly-chained channels' paths, that are not directly chained
   themselves (the paper's third-channel definition). *)
let indirect_set t ~direct ~exclude =
  let direct_links = List.concat_map (fun ch -> ch.primary) direct in
  channels_on_links t ~exclude direct_links

(* ------------------------------------------------------------------ *)
(* Route discovery dispatch                                            *)

let find_primary_route t req =
  match t.cfg.route_search with
  | `Flooding -> Flooding.primary_route t.net req
  | `Sequential candidates -> Sequential.primary_route t.net req ~candidates

let find_backup_route ?banned_edges t req ~primary_edges =
  match t.cfg.route_search with
  | `Flooding -> Flooding.backup_route ?banned_edges t.net req ~primary_edges
  | `Sequential candidates ->
    Sequential.backup_route ?banned_edges t.net req ~candidates ~primary_edges

(* Register one backup path's reservations. *)
let register_backup_path ?floor t ch blinks =
  let floor = Option.value ~default:ch.qos.Qos.b_min floor in
  List.iter
    (fun dl ->
      Link_state.register_backup (Net_state.link t.net dl) ~channel:ch.id ~b_min:floor
        ~primary_edges:ch.primary_edges)
    blinks

let unregister_backup_path t ch blinks =
  List.iter
    (fun dl -> Link_state.unregister_backup (Net_state.link t.net dl) ~channel:ch.id)
    blinks

(* All-or-nothing registration: roll back the prefix on failure. *)
let try_register_backup_path ?floor t ch blinks =
  let floor = Option.value ~default:ch.qos.Qos.b_min floor in
  let registered = ref [] in
  try
    List.iter
      (fun dl ->
        Link_state.register_backup (Net_state.link t.net dl) ~channel:ch.id
          ~b_min:floor ~primary_edges:ch.primary_edges;
        registered := dl :: !registered)
      blinks;
    true
  with Invalid_argument _ ->
    List.iter
      (fun dl -> Link_state.unregister_backup (Net_state.link t.net dl) ~channel:ch.id)
      !registered;
    false

(* Establish further backup channels until the configured count is
   reached; each new backup is banned from the edges of the ones already
   held (mutual link-disjointness, so one failure never claims two).
   Returns how many were added. *)
let top_up_backups t ch =
  if not t.cfg.with_backups then 0
  else begin
    let floor = ch.qos.Qos.b_min in
    let req =
      Flooding.request ~hop_bound:t.cfg.hop_bound ~src:ch.src ~dst:ch.dst ~floor ()
    in
    let added = ref 0 in
    let continue = ref true in
    while !continue && List.length ch.backups < t.cfg.backups_per_connection do
      let banned_edges =
        List.concat_map (List.map Dirlink.edge) ch.backups |> List.sort_uniq compare
      in
      match find_backup_route ~banned_edges t req ~primary_edges:ch.primary_edges with
      | None -> continue := false
      | Some bpath ->
        let blinks = Dirlink.of_path (Net_state.graph t.net) bpath in
        register_backup_path t ch blinks;
        ch.backups <- ch.backups @ [ blinks ];
        incr added
    done;
    !added
  end

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let admit ?(want_indirect = true) t ~src ~dst ~qos =
  hot_span t "drcomm.admit" @@ fun () ->
  let g = Net_state.graph t.net in
  let n = Graph.node_count g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Drcomm.admit: endpoint out of range";
  if src = dst then invalid_arg "Drcomm.admit: src = dst";
  let floor = qos.Qos.b_min in
  let req = Flooding.request ~hop_bound:t.cfg.hop_bound ~src ~dst ~floor () in
  let rejected reason =
    Metrics.incr t.m_rejects;
    Heavy.offer t.h_reject src;
    Heavy.offer t.h_reject dst;
    if Obs.tracing t.obs then
      Obs.event t.obs
        (Trace.Reject
           {
             reason =
               (match reason with
               | No_primary_route -> "no_primary_route"
               | No_backup_route -> "no_backup_route");
           });
    Rejected reason
  in
  match find_primary_route t req with
  | None -> rejected No_primary_route
  | Some ppath -> (
    let plinks = Dirlink.of_path g ppath in
    let pedges = ppath.Paths.edges in
    let id = t.next_id in
    let existing = Hashtbl.length t.channels in
    (* Directly-chained channels retreat to their floors (§3.1), making
       room for the new floor physically (extras may have filled the
       links). *)
    let direct = channels_on_links t plinks in
    let direct_snap = snapshot_levels direct in
    let indirect =
      if want_indirect then
        indirect_set t ~direct ~exclude:(List.map (fun c -> c.id) direct)
      else []
    in
    let indirect_snap = snapshot_levels indirect in
    List.iter (retreat t) direct;
    List.iter
      (fun dl ->
        Link_state.reserve_primary (Net_state.link t.net dl) ~channel:id ~b_min:floor)
      plinks;
    let dirty = plinks @ List.concat_map (fun c -> c.primary) direct in
    (* Backups are searched with the primary already in place, so the
       backup admission test sees the primary's floor on any link the
       routes would share (maximally-disjoint fallback).  The first
       backup decides acceptance; further ones (when configured) are
       best-effort. *)
    let ch =
      {
        id;
        src;
        dst;
        qos;
        primary = plinks;
        primary_edges = pedges;
        backups = [];
        level = 0;
      }
    in
    let got_backups = top_up_backups t ch in
    match got_backups with
    | 0 when t.cfg.with_backups && t.cfg.require_backup ->
      (* Roll the primary back; the retreated channels re-upgrade. *)
      List.iter
        (fun dl -> Link_state.release_primary (Net_state.link t.net dl) ~channel:id)
        plinks;
      if t.auto_redistribute then redistribute t ~dirty;
      rejected No_backup_route
    | _ ->
      t.next_id <- id + 1;
      Hashtbl.replace t.channels id ch;
      offer_churn t plinks;
      Metrics.observe_hwm t.live_hwm (float_of_int (Hashtbl.length t.channels));
      (* Freed extras and remaining spare are redistributed; the new
         channel participates too. *)
      if t.auto_redistribute then redistribute t ~dirty;
      let report =
        {
          existing;
          direct_count = List.length direct;
          indirect_count = List.length indirect;
          transitions =
            transitions_of ~chained:`Direct direct_snap
            @ transitions_of ~chained:`Indirect indirect_snap;
        }
      in
      Metrics.incr t.m_admits;
      if Obs.tracing t.obs then
        Obs.event t.obs
          (Trace.Admit
             {
               channel = id;
               direct = report.direct_count;
               indirect = report.indirect_count;
             });
      Admitted (id, report))

(* ------------------------------------------------------------------ *)
(* Termination                                                         *)

let release_primary_reservations t ch =
  List.iter
    (fun dl -> Link_state.release_primary (Net_state.link t.net dl) ~channel:ch.id)
    ch.primary

let unregister_backup_links t ch =
  List.iter (unregister_backup_path t ch) ch.backups;
  ch.backups <- []

let terminate t id =
  let ch = find t id in
  let direct = channels_on_links t ~exclude:[ id ] ch.primary in
  let direct_snap = snapshot_levels direct in
  let existing = Hashtbl.length t.channels - 1 in
  release_primary_reservations t ch;
  unregister_backup_links t ch;
  Hashtbl.remove t.channels id;
  offer_churn t ch.primary;
  if t.auto_redistribute then redistribute t ~dirty:ch.primary;
  Metrics.incr t.m_terminations;
  if Obs.tracing t.obs then Obs.event t.obs (Trace.Terminate { channel = id });
  {
    existing;
    direct_count = List.length direct;
    indirect_count = 0;
    transitions = transitions_of ~chained:`Direct direct_snap;
  }

(* ------------------------------------------------------------------ *)
(* QoS renegotiation                                                   *)

(* Replace a channel's QoS contract in place (same routes).  Treated like
   an arrival on its own links: extras there are reclaimed so the new
   floor can be judged against floors + pools only.  All-or-nothing: on
   any failure the old contract is restored exactly. *)
let change_qos t id qos' =
  let ch = find t id in
  let old_qos = ch.qos in
  let old_floor = old_qos.Qos.b_min in
  let new_floor = qos'.Qos.b_min in
  let backups = ch.backups in
  (* Reclaim extras on the channel's links (including its own). *)
  let sharing = channels_on_links t ch.primary in
  List.iter (retreat t) sharing;
  let dirty = List.concat_map (fun c -> c.primary) sharing in
  (* Swap the primary floor link by link, tracking progress for
     rollback. *)
  let swapped = ref [] in
  (* Restores go through [~force]: the old floor was already held when
     this call started, so putting it back must never be re-admitted —
     on a link whose guarantee constraint is transiently broken (the
     multi-failure corner) the normal floors-plus-pool test would
     spuriously reject its own standing reservation. *)
  let restore_floor ~floor dl =
    let l = Net_state.link t.net dl in
    Link_state.release_primary l ~channel:id;
    Link_state.reserve_primary ~force:true l ~channel:id ~b_min:floor
  in
  let swap_back () =
    List.iter (restore_floor ~floor:old_floor) !swapped;
    swapped := []
  in
  let rollback () =
    swap_back ();
    if t.auto_redistribute then redistribute t ~dirty;
    `Rejected
  in
  let rec swap_all = function
    | [] -> `Ok
    | dl :: rest -> (
      let l = Net_state.link t.net dl in
      Link_state.release_primary l ~channel:id;
      match Link_state.reserve_primary l ~channel:id ~b_min:new_floor with
      | () ->
        swapped := dl :: !swapped;
        swap_all rest
      | exception Invalid_argument _ ->
        (* This link was already released: restore its old floor before
           unwinding the fully-swapped ones. *)
        Link_state.reserve_primary ~force:true l ~channel:id ~b_min:old_floor;
        rollback ())
  in
  match swap_all ch.primary with
  | `Rejected -> `Rejected
  | `Ok -> (
    (* Re-key every backup to the new floor, all-or-nothing. *)
    List.iter (unregister_backup_path t ch) backups;
    let rec rereg done_ = function
      | [] -> `Ok
      | b :: rest ->
        if try_register_backup_path ~floor:new_floor t ch b then rereg (b :: done_) rest
        else begin
          (* Roll everything back: restore the old floor first so the
             backup re-registrations see the original pools, then re-hold
             the backups.  A backup that no longer fits even then (it can
             only have been displaced by concurrent state we do not
             track) is dropped rather than crashing. *)
          List.iter (unregister_backup_path t ch) done_;
          swap_back ();
          ch.backups <-
            List.filter (try_register_backup_path ~floor:old_floor t ch) backups;
          if t.auto_redistribute then redistribute t ~dirty;
          `Rejected
        end
    in
    match rereg [] backups with
    | `Rejected -> `Rejected
    | `Ok ->
      ch.qos <- qos';
      ch.level <- 0;
      if t.auto_redistribute then redistribute t ~dirty;
      `Changed)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)

let path_usable t links =
  List.for_all (fun dl -> Net_state.usable_edge t.net (Dirlink.edge dl)) links

(* Top-up after a recovery event; [true] when at least one backup is
   (still) held afterwards. *)
let try_new_backup t ch =
  ignore (top_up_backups t ch);
  ch.backups <> []

(* Convert one of [ch]'s backups into its primary.  The single-failure
   guarantee makes the floors fit; extras on the backup links are
   retreated first (they were borrowing the pool).  The channel's other
   backups are re-registered against the new primary's edges (their pool
   accounting was keyed by the old primary).  Returns [false] if floors
   do not fit (multi-failure corner) — the caller then drops the
   connection. *)
let activate_backup t ch blinks ~retreated =
  let floor = ch.qos.Qos.b_min in
  let fits =
    List.for_all
      (fun dl ->
        let l = Net_state.link t.net dl in
        Link_state.primary_min_total l + floor <= Link_state.capacity l)
      blinks
  in
  if not fits then false
  else begin
    let remaining = List.filter (fun b -> b != blinks) ch.backups in
    unregister_backup_path t ch blinks;
    (* Primaries sharing the activated links release their extras
       (§3.1: the pool they were borrowing is being called in). *)
    List.iter
      (fun other ->
        if other.id <> ch.id && other.level > 0 then begin
          retreated := (other, other.level) :: !retreated;
          retreat t other
        end)
      (channels_on_links t blinks);
    List.iter
      (fun dl ->
        Link_state.reserve_primary ~force:true (Net_state.link t.net dl) ~channel:ch.id
          ~b_min:floor)
      blinks;
    ch.primary <- blinks;
    ch.primary_edges <- List.sort_uniq compare (List.map Dirlink.edge blinks);
    ch.level <- 0;
    (* Remaining backups: re-key their pool accounting to the new primary
       (they are disjoint from it by construction — backups were mutually
       disjoint).  Only still-usable paths qualify: a backup crossing the
       edge that just failed could never activate, and keeping it
       registered would both pin phantom pool demand and falsely report
       the connection as protected.  A re-registration can also fail if
       the pool no longer fits; either way the backup is dropped and
       replaced later if possible. *)
    List.iter (unregister_backup_path t ch) remaining;
    ch.backups <- [];
    List.iter
      (fun b ->
        if path_usable t b && try_register_backup_path t ch b then
          ch.backups <- ch.backups @ [ b ])
      remaining;
    true
  end

let fail_edge t e =
  if Net_state.edge_failed t.net e then { recoveries = []; event = { existing = Hashtbl.length t.channels; direct_count = 0; indirect_count = 0; transitions = [] } }
  else begin
    Net_state.fail_edge t.net e;
    Metrics.incr t.m_link_failures;
    if Obs.tracing t.obs then Obs.event t.obs (Trace.Link_fail { edge = e });
    let existing = Hashtbl.length t.channels in
    let victims_primary = ref [] and victims_backup = ref [] in
    let crosses blinks = List.exists (fun dl -> Dirlink.edge dl = e) blinks in
    Hashtbl.iter
      (fun _ ch ->
        if List.mem e ch.primary_edges then victims_primary := ch :: !victims_primary
        else if List.exists crosses ch.backups then
          victims_backup := ch :: !victims_backup)
      t.channels;
    let by_id a b = compare a.id b.id in
    let victims_primary = List.sort by_id !victims_primary in
    let victims_backup = List.sort by_id !victims_backup in
    let retreated = ref [] in
    let dirty = ref [] in
    let recoveries = ref [] in
    List.iter
      (fun ch ->
        release_primary_reservations t ch;
        dirty := ch.primary @ !dirty;
        (* Last resort when no backup can take over: drop, or — under the
           reactive-restoration baseline — attempt a from-scratch
           re-establishment over the surviving topology. *)
        let drop_or_restore () =
          Hashtbl.remove t.channels ch.id;
          if not t.cfg.restore_on_failure then begin
            t.dropped <- t.dropped + 1;
            `Dropped
          end
          else
            match admit ~want_indirect:false t ~src:ch.src ~dst:ch.dst ~qos:ch.qos with
            | Admitted (nid, _) -> `Restored ((find t nid).backups <> [])
            | Rejected _ ->
              t.dropped <- t.dropped + 1;
              `Dropped
        in
        let outcome =
          (* Activate the first backup whose whole path is still up. *)
          match List.find_opt (path_usable t) ch.backups with
          | Some blinks ->
            if activate_backup t ch blinks ~retreated then begin
              dirty := blinks @ !dirty;
              `Switched_to_backup (try_new_backup t ch)
            end
            else begin
              unregister_backup_links t ch;
              drop_or_restore ()
            end
          | None ->
            (* No backup, or every backup crosses a failed edge. *)
            unregister_backup_links t ch;
            drop_or_restore ()
        in
        (match outcome with
        | `Switched_to_backup reprotected ->
          Metrics.incr t.m_backup_activations;
          if Obs.tracing t.obs then
            Obs.event t.obs (Trace.Backup_activate { channel = ch.id; reprotected })
        | `Dropped ->
          Metrics.incr t.m_drops;
          if Obs.tracing t.obs then Obs.event t.obs (Trace.Drop { channel = ch.id })
        | `Restored with_backup ->
          Metrics.incr t.m_restores;
          if Obs.tracing t.obs then
            Obs.event t.obs (Trace.Restore { channel = ch.id; with_backup })
        | `Backup_lost _ -> ());
        recoveries := { victim = ch.id; outcome } :: !recoveries)
      victims_primary;
    List.iter
      (fun ch ->
        (* Drop only the backups crossing the failed edge; keep the
           rest; then top the count back up if routes exist. *)
        let lost, kept = List.partition crosses ch.backups in
        List.iter (unregister_backup_path t ch) lost;
        ch.backups <- kept;
        let replaced = try_new_backup t ch in
        Metrics.incr t.m_backup_losses;
        if Obs.tracing t.obs then
          Obs.event t.obs (Trace.Backup_lost { channel = ch.id; replaced });
        recoveries := { victim = ch.id; outcome = `Backup_lost replaced } :: !recoveries)
      victims_backup;
    let retreated_snap = List.rev !retreated in
    (* A bystander retreated by an activation freed spare on its whole
       path, not just on the activated links — its other links must be
       water-filled too, exactly as admission treats direct sharers. *)
    dirty :=
      List.concat_map (fun (ch, _) -> ch.primary) retreated_snap @ !dirty;
    if t.auto_redistribute then redistribute t ~dirty:!dirty;
    let transitions =
      List.map
        (fun (ch, before) ->
          { channel = ch.id; before; after = ch.level; chained = `Direct })
        retreated_snap
    in
    {
      recoveries = List.rev !recoveries;
      event =
        {
          existing;
          direct_count = List.length retreated_snap;
          indirect_count = 0;
          transitions;
        };
    }
  end

let repair_edge t e =
  (* Idempotent like fail_edge: repairing a healthy edge is a no-op and
     must not count as a repair or emit an event. *)
  if Net_state.edge_failed t.net e then begin
    Net_state.repair_edge t.net e;
    Metrics.incr t.m_link_repairs;
    if Obs.tracing t.obs then Obs.event t.obs (Trace.Link_repair { edge = e })
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let count t = Hashtbl.length t.channels
let active_channels t = Hashtbl.fold (fun id _ acc -> id :: acc) t.channels []
let mem t id = Hashtbl.mem t.channels id
let level t id = (find t id).level
let reserved_bandwidth t id =
  let ch = find t id in
  bandwidth_at ch ch.level
let qos_of t id = (find t id).qos
let primary_links t id = (find t id).primary

let backup_links t id =
  match (find t id).backups with [] -> None | first :: _ -> Some first

let all_backup_links t id = (find t id).backups
let has_backup t id = (find t id).backups <> []

let level_histogram t ~max_levels =
  let counts = Array.make max_levels 0 in
  Hashtbl.iter
    (fun id ch ->
      if ch.level >= max_levels then
        invalid_arg
          (Printf.sprintf "Drcomm.level_histogram: channel %d at level %d" id ch.level);
      counts.(ch.level) <- counts.(ch.level) + 1)
    t.channels;
  counts

let total_reserved t =
  Hashtbl.fold (fun _ ch acc -> acc + bandwidth_at ch ch.level) t.channels 0

let average_bandwidth t =
  let n = count t in
  if n = 0 then 0. else float_of_int (total_reserved t) /. float_of_int n

let dropped_connections t = t.dropped

let hot_links t ~k =
  List.map (fun (key, cnt, _err) -> (key, cnt)) (Heavy.top ~k t.h_churn)

let absorb_heavy t =
  let reg = Obs.heavy t.obs in
  if Heavy.enabled reg then
    Heavy.merge_sketch_into ~into:(Heavy.sketch reg "drcomm.link_churn") t.h_churn

let check_invariants t =
  Net_state.check_invariants t.net;
  Hashtbl.iter
    (fun id ch ->
      if ch.level < 0 || ch.level >= Qos.levels ch.qos then
        failwith (Printf.sprintf "Drcomm: channel %d has level %d" id ch.level);
      let bw = bandwidth_at ch ch.level in
      List.iter
        (fun dl ->
          match Link_state.primary_reservation (Net_state.link t.net dl) ~channel:id with
          | Some r when r = bw -> ()
          | Some r ->
            failwith
              (Printf.sprintf "Drcomm: channel %d reserves %d on link %d, level says %d"
                 id r dl bw)
          | None ->
            failwith (Printf.sprintf "Drcomm: channel %d missing on link %d" id dl))
        ch.primary;
      (* Every held backup is registered on every one of its links, and
         distinct backups of one connection are mutually edge-disjoint. *)
      List.iter
        (fun blinks ->
          List.iter
            (fun dl ->
              if not (Link_state.has_backup (Net_state.link t.net dl) ~channel:id) then
                failwith (Printf.sprintf "Drcomm: backup of %d missing on link %d" id dl))
            blinks)
        ch.backups;
      let backup_edges = List.map (List.map Dirlink.edge) ch.backups in
      let all = List.concat backup_edges in
      if List.length all <> List.length (List.sort_uniq compare all) then
        failwith (Printf.sprintf "Drcomm: backups of %d share an edge" id))
    t.channels
