type t = Equal_share | Proportional | Max_utility

let pp ppf = function
  | Equal_share -> Format.pp_print_string ppf "equal-share"
  | Proportional -> Format.pp_print_string ppf "proportional"
  | Max_utility -> Format.pp_print_string ppf "max-utility"

let of_string = function
  | "equal-share" | "equal" -> Some Equal_share
  | "proportional" | "coefficient" -> Some Proportional
  | "max-utility" | "max" -> Some Max_utility
  | _ -> None

let all = [ Equal_share; Proportional; Max_utility ]

type claim = { utility : float; extras_granted : int }

let compare_claims policy a b =
  match policy with
  | Equal_share -> compare a.extras_granted b.extras_granted
  | Proportional ->
    (* Fewest granted increments per unit of utility first. *)
    Float.compare
      (float_of_int a.extras_granted /. a.utility)
      (float_of_int b.extras_granted /. b.utility)
  | Max_utility -> (
    match Float.compare b.utility a.utility with
    | 0 -> compare a.extras_granted b.extras_granted
    | c -> c)
