type claim = { utility : float; extras_granted : int }

type 'a env = {
  claim : 'a -> claim;
  can_upgrade : 'a -> bool;
  grant : 'a -> unit;
  tie : 'a -> 'a -> int;
}

type t = {
  name : string;
  order : claim -> claim -> int;
  run : 'a. 'a env -> 'a list -> unit;
}

(* The three grant disciplines.  Each sorts with the policy order first
   and the environment's tie-break second, so results are deterministic
   whatever order the candidates arrive in. *)

let by order env a b =
  match order (env.claim a) (env.claim b) with 0 -> env.tie a b | c -> c

let run_rounds order env candidates =
  let progress = ref true in
  while !progress do
    progress := false;
    let ordered = List.sort (by order env) candidates in
    List.iter
      (fun ch ->
        if env.can_upgrade ch then begin
          env.grant ch;
          progress := true
        end)
      ordered
  done

let run_exact order env candidates =
  let continue = ref true in
  while !continue do
    let eligible = List.filter env.can_upgrade candidates in
    match List.sort (by order env) eligible with
    | [] -> continue := false
    | best :: _ -> env.grant best
  done

let run_drain order env candidates =
  let ordered = List.sort (by order env) candidates in
  List.iter
    (fun ch ->
      while env.can_upgrade ch do
        env.grant ch
      done)
    ordered

let make ~name ~order ~style =
  match style with
  | `Rounds -> { name; order; run = (fun env cs -> run_rounds order env cs) }
  | `Exact -> { name; order; run = (fun env cs -> run_exact order env cs) }
  | `Drain -> { name; order; run = (fun env cs -> run_drain order env cs) }

let equal_share =
  make ~name:"equal-share"
    ~order:(fun a b -> compare a.extras_granted b.extras_granted)
    ~style:`Rounds

let proportional =
  (* Fewest granted increments per unit of utility first. *)
  make ~name:"proportional"
    ~order:(fun a b ->
      Float.compare
        (float_of_int a.extras_granted /. a.utility)
        (float_of_int b.extras_granted /. b.utility))
    ~style:`Exact

let max_utility =
  make ~name:"max-utility"
    ~order:(fun a b ->
      match Float.compare b.utility a.utility with
      | 0 -> compare a.extras_granted b.extras_granted
      | c -> c)
    ~style:`Drain

let pp ppf t = Format.pp_print_string ppf t.name

let name t = t.name

let equal a b = String.equal a.name b.name

let of_string = function
  | "equal-share" | "equal" -> Some equal_share
  | "proportional" | "coefficient" -> Some proportional
  | "max-utility" | "max" -> Some max_utility
  | _ -> None

let all = [ equal_share; proportional; max_utility ]

let compare_claims t = t.order
