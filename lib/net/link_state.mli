(** Reservation bookkeeping for one directed link.

    A link carries three kinds of load:

    - {e primary reservations}: per-channel bandwidth actually reserved,
      [floor <= reserved <= b_max].  Anything above the channel's floor is
      "extra" and reclaimable at any time;
    - {e the backup pool}: bandwidth set aside for the backup channels
      registered here.  With multiplexing (the default, as in the paper),
      the pool is the worst-case {e single-failure} activation demand:
      [max over edges f of sum of floors over backups whose primary
      traverses f].  Without multiplexing it is the plain sum — the
      baseline the paper's backup-multiplexing argument beats;
    - nothing for activated backups: activation converts a backup into a
      primary reservation.

    Crucially (§2.2 of the paper), the backup pool is {e borrowable}:
    while no failure has activated the backups, elastic extras may occupy
    the pool's bandwidth.  Hence two distinct capacity constraints:

    - hard: [primary_total <= capacity] — physics;
    - guarantee: [primary_min_total + backup_pool <= capacity] — enforced
      at admission/registration time, so that retreating every extra
      always frees enough room to activate any single failure's backups. *)

type t

val create : ?multiplexing:bool -> capacity:Bandwidth.t -> unit -> t
(** [multiplexing] defaults to [true]. *)

val capacity : t -> Bandwidth.t

(** {1 Primary reservations} *)

val reserve_primary : ?force:bool -> t -> channel:int -> b_min:Bandwidth.t -> unit
(** Admit a channel at its floor.  The normal admission test is
    {!admissible_primary} (floor fits beside other floors {e and} the
    backup pool).  [~force:true] — used when activating a backup, whose
    bandwidth was already accounted in the pool — only requires the floor
    to fit physically beside the other floors.  In both cases the caller
    must have reclaimed extras first so that [primary_total] stays within
    capacity; raises [Invalid_argument] otherwise. *)

val admissible_primary : t -> b_min:Bandwidth.t -> bool
(** [primary_min_total + backup_pool + b_min <= capacity]. *)

val set_primary : t -> channel:int -> Bandwidth.t -> unit
(** Adjust an existing reservation (elastic upgrade/retreat).  The new
    value must be >= the channel's floor and keep
    [primary_total <= capacity] — extras may borrow the backup pool.
    Raises [Invalid_argument] otherwise. *)

val release_primary : t -> channel:int -> unit
(** Remove a channel's reservation.  Raises [Not_found] if absent. *)

val primary_reservation : t -> channel:int -> Bandwidth.t option
val primary_channels : t -> (int * Bandwidth.t) list
(** [(channel, reserved)] pairs, unordered. *)

val iter_primary_channels : (int -> Bandwidth.t -> unit) -> t -> unit
val primary_count : t -> int
val primary_total : t -> Bandwidth.t
val primary_min_total : t -> Bandwidth.t

val extras_count : t -> int
(** How many primaries here currently hold bandwidth above their floor —
    O(1).  The service's retreat paths skip whole links on 0 instead of
    scanning their channel sets. *)

val iter_extras : (int -> Bandwidth.t -> unit) -> t -> unit
(** [(channel, reserved)] for every primary holding extras
    ([reserved > floor]).  A flat walk, and a no-op when
    [extras_count = 0]. *)

(** {1 Backup registrations} *)

val register_backup :
  t -> channel:int -> b_min:Bandwidth.t -> primary_edges:int list -> unit
(** Register a backup whose primary traverses the given undirected edges.
    Raises [Invalid_argument] if the resulting pool would violate the
    guarantee constraint, or on double registration. *)

val backup_pool_with : t -> b_min:Bandwidth.t -> primary_edges:int list -> Bandwidth.t
(** Pool size if such a backup were added — the backup admission test is
    [primary_min_total + backup_pool_with <= capacity].  With multiplexing
    this is often just the current pool (free dependability — the paper's
    key resource saving). *)

val unregister_backup : t -> channel:int -> unit
val has_backup : t -> channel:int -> bool
val backup_channels : t -> int list

val iter_backup_channels : (int -> unit) -> t -> unit
(** Every channel with a backup registered here — a flat walk over the
    indexed set (the failure path resolves a failed edge's victims from
    its two directed links instead of scanning every connection). *)

val backup_count : t -> int

val backup_pool : t -> Bandwidth.t
(** With multiplexing this is served from an incrementally maintained
    cache: registrations update it in place, and only an unregistration
    that removed demand at the cached maximum forces a lazy recompute.
    Amortised O(1) on the admission hot path. *)

val multiplexing : t -> bool

val backup_registration : t -> channel:int -> (Bandwidth.t * int list) option
(** The registered floor and the primary's undirected edges for one
    channel's backup here, if any — what external auditors (the fuzzer's
    cross-layer invariants) compare against the service's own records. *)

val backup_demand_for_edge : t -> int -> Bandwidth.t
(** Activation demand this link would face if the given undirected edge
    failed: sum of floors of backups registered here whose primary
    traverses it.  0 for edges no registered primary uses.  With
    multiplexing, {!backup_pool} is the max of these over all edges. *)

val edge_demands : t -> (int * Bandwidth.t) list
(** Every [(edge, demand)] pair with non-zero recorded demand,
    unordered. *)

val backup_dedicated_demand : t -> Bandwidth.t
(** What the pool would be {e without} multiplexing: the plain sum of
    registered backup floors.  [backup_pool <= backup_dedicated_demand];
    the gap is the overbooking saving on this link. *)

(** {1 Capacity queries} *)

val spare : t -> Bandwidth.t
(** [capacity - primary_total]: bandwidth an elastic upgrade may take
    right now (extras borrow the inactive backup pool). *)

val reclaimable_headroom : t -> Bandwidth.t
(** [capacity - primary_min_total - backup_pool]: what admission control
    may count on after reclaiming all extras. *)

val guarantee_holds : t -> bool
(** Whether [primary_min_total + backup_pool <= capacity].  Always true
    outside failure recovery; may transiently fail after a failure
    converts backups to primaries (multi-failure corner), until churn or
    repair restores it. *)

val check_invariant : t -> unit
(** Raises [Failure] if internal accounting is inconsistent or the hard
    capacity constraint is violated. *)
