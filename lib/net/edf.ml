type packet = { channel : int; release : float; deadline : float; size_bits : int }

type completion = { packet : packet; start : float; finish : float; missed : bool }

type t = {
  rate : Bandwidth.t;
  mutable queue : packet list; (* kept sorted by (deadline, release) *)
  mutable clock : float;
}

let create ~rate =
  if rate <= 0 then invalid_arg "Edf.create: non-positive rate";
  { rate; queue = []; clock = 0. }

let transmission_time t bits =
  if bits <= 0 then invalid_arg "Edf.transmission_time: non-positive size";
  float_of_int bits /. (float_of_int t.rate *. 1000.)

let packet_order a b =
  match Float.compare a.deadline b.deadline with
  | 0 -> Float.compare a.release b.release
  | c -> c

let submit t p =
  if p.size_bits <= 0 then invalid_arg "Edf.submit: non-positive size";
  if p.deadline < p.release then invalid_arg "Edf.submit: deadline before release";
  t.queue <- List.merge packet_order [ p ] t.queue

let pending t = List.length t.queue

(* Pick the earliest-deadline packet among those released by [now]; if
   none is released yet, advance to the earliest release. *)
let next_released t ~now =
  let released = List.filter (fun p -> p.release <= now) t.queue in
  match released with
  | p :: _ -> Some (p, now)
  | [] -> (
    match t.queue with
    | [] -> None
    | _ ->
      let earliest =
        List.fold_left (fun acc p -> Float.min acc p.release) infinity t.queue
      in
      let candidates = List.filter (fun p -> p.release <= earliest) t.queue in
      (match candidates with
      | p :: _ -> Some (p, earliest)
      | [] -> None))

let remove t victim = t.queue <- List.filter (fun p -> p != victim) t.queue

let run t ~until =
  let done_ = ref [] in
  let continue = ref true in
  while !continue do
    match next_released t ~now:t.clock with
    | None -> continue := false
    | Some (p, start_at) ->
      let start = Float.max t.clock start_at in
      let finish = start +. transmission_time t p.size_bits in
      if finish > until then continue := false
      else begin
        remove t p;
        t.clock <- finish;
        done_ := { packet = p; start; finish; missed = finish > p.deadline } :: !done_
      end
  done;
  if t.clock < until then t.clock <- until;
  List.rev !done_

let drain t = run t ~until:infinity

type flow = { period : float; packet_bits : int; relative_deadline : float }

let check_flow f =
  if f.period <= 0. || f.packet_bits <= 0 || f.relative_deadline <= 0. then
    invalid_arg "Edf: malformed flow"

let utilisation ~rate flows =
  if rate <= 0 then invalid_arg "Edf.utilisation: non-positive rate";
  List.fold_left
    (fun acc f ->
      check_flow f;
      acc +. (float_of_int f.packet_bits /. (float_of_int rate *. 1000.) /. f.period))
    0. flows

let schedulable ~rate flows =
  let u = utilisation ~rate flows in
  let tx bits = float_of_int bits /. (float_of_int rate *. 1000.) in
  let max_tx = List.fold_left (fun acc f -> Float.max acc (tx f.packet_bits)) 0. flows in
  u <= 1.
  && List.for_all
       (fun f ->
         (* Non-preemptive blocking: one maximal foreign packet may have
            just started. *)
         tx f.packet_bits +. max_tx <= f.relative_deadline)
       flows
