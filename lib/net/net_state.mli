(** Whole-network resource state: one {!Link_state} per directed link of a
    topology, plus the set of currently-failed edges.

    Failures are per {e undirected} edge (a cable cut takes out both
    directions), matching the paper's single-component failure model. *)

type t

val create : ?multiplexing:bool -> ?capacity:Bandwidth.t -> Graph.t -> t
(** Every link gets the same [capacity] (default
    {!Bandwidth.paper_link_capacity}); the paper notes this uniformity is
    an intranet-style assumption that is easy to relax — use
    {!set_capacity} to do so. *)

val create_heterogeneous :
  ?multiplexing:bool -> capacity_of:(Dirlink.id -> Bandwidth.t) -> Graph.t -> t

val graph : t -> Graph.t
val multiplexing : t -> bool

val link : t -> Dirlink.id -> Link_state.t
(** Raises [Invalid_argument] for an out-of-range id. *)

val link_count : t -> int

(** {1 Failures} *)

val fail_edge : t -> int -> unit
(** Mark an undirected edge failed.  Idempotent. *)

val repair_edge : t -> int -> unit
val edge_failed : t -> int -> bool

val failed_edges : t -> int list
(** The currently-failed edges in ascending order — O(failed · log
    failed) off a maintained set, not a scan over every edge. *)

val failed_count : t -> int
(** O(1). *)

val usable_edge : t -> int -> bool
(** [not (edge_failed t e)] — the routing filter. *)

(** {1 Whole-network queries} *)

val iter_links : (Dirlink.id -> Link_state.t -> unit) -> t -> unit

val total_primary_reserved : t -> int
(** Sum of primary reservations over all links (Kbps-links). *)

val total_backup_pool : t -> int

val utilisation : t -> float
(** [ (total primary + total backup pool) / total capacity ]. *)

val multiplexing_gain : t -> float
(** Ratio of the bandwidth that {e dedicated} backup reservations would
    consume (the plain per-link sums) to what the multiplexed pools
    actually hold; >= 1, and 1 exactly when nothing multiplexes (or no
    backups exist).  The paper's overbooking saving, as a single
    number. *)

val check_invariants : t -> unit
(** {!Link_state.check_invariant} on every link. *)
