(* Indexed channel sets: primaries and backups live in dense parallel
   arrays (swap-remove on release), with an int-keyed slot table per set
   for O(1) lookup.  Iteration is a flat array walk — no hashtable scans
   on the hot path — and the multiplexed backup pool is a cached maximum
   over the per-edge demand index, recomputed lazily only after an
   unregistration removed demand at the cached maximum. *)

type t = {
  capacity : Bandwidth.t;
  multiplexing : bool;
  (* Primary reservations, slot-indexed. *)
  mutable p_chan : int array;
  mutable p_res : int array;
  mutable p_floor : int array;
  mutable p_n : int;
  p_slot : (int, int) Hashtbl.t; (* channel -> slot *)
  mutable extras : int; (* slots with reserved > floor *)
  (* Backup registrations, slot-indexed. *)
  mutable b_chan : int array;
  mutable b_floor : int array;
  mutable b_edges : int array array;
  mutable b_n : int;
  b_slot : (int, int) Hashtbl.t;
  (* For multiplexing: activation demand per failed undirected edge. *)
  pool_by_edge : (int, int) Hashtbl.t;
  mutable pool_max : int; (* cached max demand, valid unless pool_stale *)
  mutable pool_stale : bool;
  mutable primary_total : Bandwidth.t;
  mutable primary_min_total : Bandwidth.t;
  mutable backup_sum : Bandwidth.t; (* plain sum of registered b_mins *)
}

let create ?(multiplexing = true) ~capacity () =
  if capacity <= 0 then invalid_arg "Link_state.create: capacity must be positive";
  {
    capacity;
    multiplexing;
    p_chan = [||];
    p_res = [||];
    p_floor = [||];
    p_n = 0;
    p_slot = Hashtbl.create 16;
    extras = 0;
    b_chan = [||];
    b_floor = [||];
    b_edges = [||];
    b_n = 0;
    b_slot = Hashtbl.create 16;
    pool_by_edge = Hashtbl.create 16;
    pool_max = 0;
    pool_stale = false;
    primary_total = 0;
    primary_min_total = 0;
    backup_sum = 0;
  }

let capacity t = t.capacity

let grow_int arr n = Array.init (max 8 (2 * n)) (fun i -> if i < n then arr.(i) else 0)

let backup_pool t =
  if not t.multiplexing then t.backup_sum
  else begin
    if t.pool_stale then begin
      t.pool_max <- Hashtbl.fold (fun _ demand acc -> max demand acc) t.pool_by_edge 0;
      t.pool_stale <- false
    end;
    t.pool_max
  end

let backup_dedicated_demand t = t.backup_sum

let primary_total t = t.primary_total
let primary_min_total t = t.primary_min_total

let spare t = t.capacity - t.primary_total
let reclaimable_headroom t = t.capacity - t.primary_min_total - backup_pool t

let admissible_primary t ~b_min = b_min <= reclaimable_headroom t

let guarantee_holds t = t.primary_min_total + backup_pool t <= t.capacity

let reserve_primary ?(force = false) t ~channel ~b_min =
  if b_min <= 0 then invalid_arg "Link_state.reserve_primary: non-positive floor";
  if Hashtbl.mem t.p_slot channel then
    invalid_arg "Link_state.reserve_primary: channel already reserved here";
  let admissible =
    if force then t.primary_min_total + b_min <= t.capacity
    else admissible_primary t ~b_min
  in
  if not admissible then
    invalid_arg "Link_state.reserve_primary: floor does not fit";
  if t.primary_total + b_min > t.capacity then
    invalid_arg "Link_state.reserve_primary: reclaim extras first";
  if t.p_n = Array.length t.p_chan then begin
    t.p_chan <- grow_int t.p_chan t.p_n;
    t.p_res <- grow_int t.p_res t.p_n;
    t.p_floor <- grow_int t.p_floor t.p_n
  end;
  let slot = t.p_n in
  t.p_chan.(slot) <- channel;
  t.p_res.(slot) <- b_min;
  t.p_floor.(slot) <- b_min;
  t.p_n <- slot + 1;
  Hashtbl.replace t.p_slot channel slot;
  t.primary_total <- t.primary_total + b_min;
  t.primary_min_total <- t.primary_min_total + b_min

let set_primary t ~channel bw =
  match Hashtbl.find_opt t.p_slot channel with
  | None -> invalid_arg "Link_state.set_primary: unknown channel"
  | Some slot ->
    let floor = t.p_floor.(slot) in
    if bw < floor then invalid_arg "Link_state.set_primary: below floor";
    let old = t.p_res.(slot) in
    let new_total = t.primary_total - old + bw in
    if new_total > t.capacity then
      invalid_arg "Link_state.set_primary: would exceed link capacity";
    t.primary_total <- new_total;
    t.p_res.(slot) <- bw;
    if old > floor && bw = floor then t.extras <- t.extras - 1
    else if old = floor && bw > floor then t.extras <- t.extras + 1

let release_primary t ~channel =
  match Hashtbl.find_opt t.p_slot channel with
  | None -> raise Not_found
  | Some slot ->
    if t.p_res.(slot) > t.p_floor.(slot) then t.extras <- t.extras - 1;
    t.primary_total <- t.primary_total - t.p_res.(slot);
    t.primary_min_total <- t.primary_min_total - t.p_floor.(slot);
    Hashtbl.remove t.p_slot channel;
    let last = t.p_n - 1 in
    if slot < last then begin
      t.p_chan.(slot) <- t.p_chan.(last);
      t.p_res.(slot) <- t.p_res.(last);
      t.p_floor.(slot) <- t.p_floor.(last);
      Hashtbl.replace t.p_slot t.p_chan.(slot) slot
    end;
    t.p_n <- last

let primary_reservation t ~channel =
  Option.map (fun slot -> t.p_res.(slot)) (Hashtbl.find_opt t.p_slot channel)

let primary_channels t =
  let acc = ref [] in
  for slot = t.p_n - 1 downto 0 do
    acc := (t.p_chan.(slot), t.p_res.(slot)) :: !acc
  done;
  !acc

let iter_primary_channels f t =
  for slot = 0 to t.p_n - 1 do
    f t.p_chan.(slot) t.p_res.(slot)
  done

let primary_count t = t.p_n

let extras_count t = t.extras

let iter_extras f t =
  if t.extras > 0 then
    for slot = 0 to t.p_n - 1 do
      if t.p_res.(slot) > t.p_floor.(slot) then f t.p_chan.(slot) t.p_res.(slot)
    done

let backup_pool_with t ~b_min ~primary_edges =
  if not t.multiplexing then t.backup_sum + b_min
  else
    (* New pool = max over edges of (existing demand + b_min if the new
       backup's primary uses that edge). *)
    let current = backup_pool t in
    List.fold_left
      (fun acc e ->
        let existing = Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) in
        max acc (existing + b_min))
      current primary_edges

let register_backup t ~channel ~b_min ~primary_edges =
  if b_min <= 0 then invalid_arg "Link_state.register_backup: non-positive b_min";
  if primary_edges = [] then
    invalid_arg "Link_state.register_backup: backup needs a non-empty primary path";
  if Hashtbl.mem t.b_slot channel then
    invalid_arg "Link_state.register_backup: channel already registered here";
  let pool' = backup_pool_with t ~b_min ~primary_edges in
  if t.primary_min_total + pool' > t.capacity then
    invalid_arg "Link_state.register_backup: pool does not fit";
  if t.b_n = Array.length t.b_chan then begin
    t.b_chan <- grow_int t.b_chan t.b_n;
    t.b_floor <- grow_int t.b_floor t.b_n;
    t.b_edges <-
      Array.init (max 8 (2 * t.b_n)) (fun i ->
          if i < t.b_n then t.b_edges.(i) else [||])
  end;
  let slot = t.b_n in
  t.b_chan.(slot) <- channel;
  t.b_floor.(slot) <- b_min;
  t.b_edges.(slot) <- Array.of_list primary_edges;
  t.b_n <- slot + 1;
  Hashtbl.replace t.b_slot channel slot;
  t.backup_sum <- t.backup_sum + b_min;
  List.iter
    (fun e ->
      let existing = Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) in
      let demand = existing + b_min in
      Hashtbl.replace t.pool_by_edge e demand;
      (* A raise can only move the cached maximum up, stale or not. *)
      if demand > t.pool_max then t.pool_max <- demand)
    primary_edges

let unregister_backup t ~channel =
  match Hashtbl.find_opt t.b_slot channel with
  | None -> raise Not_found
  | Some slot ->
    let b_min = t.b_floor.(slot) in
    let edges = t.b_edges.(slot) in
    Hashtbl.remove t.b_slot channel;
    let last = t.b_n - 1 in
    if slot < last then begin
      t.b_chan.(slot) <- t.b_chan.(last);
      t.b_floor.(slot) <- t.b_floor.(last);
      t.b_edges.(slot) <- t.b_edges.(last);
      Hashtbl.replace t.b_slot t.b_chan.(slot) slot
    end;
    t.b_edges.(last) <- [||];
    t.b_n <- last;
    t.backup_sum <- t.backup_sum - b_min;
    Array.iter
      (fun e ->
        match Hashtbl.find_opt t.pool_by_edge e with
        | None -> assert false
        | Some demand ->
          let remaining = demand - b_min in
          if remaining = 0 then Hashtbl.remove t.pool_by_edge e
          else Hashtbl.replace t.pool_by_edge e remaining;
          (* Shrinking demand at the cached maximum invalidates it; the
             next pool query recomputes. *)
          if (not t.pool_stale) && demand = t.pool_max then t.pool_stale <- true)
      edges

let has_backup t ~channel = Hashtbl.mem t.b_slot channel

let backup_channels t =
  let acc = ref [] in
  for slot = t.b_n - 1 downto 0 do
    acc := t.b_chan.(slot) :: !acc
  done;
  !acc

let iter_backup_channels f t =
  for slot = 0 to t.b_n - 1 do
    f t.b_chan.(slot)
  done

let backup_count t = t.b_n

let multiplexing t = t.multiplexing

let backup_registration t ~channel =
  Option.map
    (fun slot -> (t.b_floor.(slot), Array.to_list t.b_edges.(slot)))
    (Hashtbl.find_opt t.b_slot channel)

let backup_demand_for_edge t e =
  Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e)

let edge_demands t =
  Hashtbl.fold (fun e demand acc -> (e, demand) :: acc) t.pool_by_edge []

let check_invariant t =
  let sum_reserved = ref 0 and sum_floor = ref 0 and extras = ref 0 in
  for slot = 0 to t.p_n - 1 do
    sum_reserved := !sum_reserved + t.p_res.(slot);
    sum_floor := !sum_floor + t.p_floor.(slot);
    if t.p_res.(slot) > t.p_floor.(slot) then incr extras;
    if t.p_res.(slot) < t.p_floor.(slot) then
      failwith (Printf.sprintf "Link_state: channel %d below floor" t.p_chan.(slot));
    (match Hashtbl.find_opt t.p_slot t.p_chan.(slot) with
    | Some s when s = slot -> ()
    | _ -> failwith "Link_state: primary slot index out of sync")
  done;
  if !sum_reserved <> t.primary_total then
    failwith "Link_state: primary_total out of sync";
  if !sum_floor <> t.primary_min_total then
    failwith "Link_state: primary_min_total out of sync";
  if !extras <> t.extras then failwith "Link_state: extras count out of sync";
  if Hashtbl.length t.p_slot <> t.p_n then
    failwith "Link_state: primary slot table size out of sync";
  if t.primary_total > t.capacity then failwith "Link_state: link overbooked";
  let sum_backup = ref 0 in
  for slot = 0 to t.b_n - 1 do
    sum_backup := !sum_backup + t.b_floor.(slot);
    match Hashtbl.find_opt t.b_slot t.b_chan.(slot) with
    | Some s when s = slot -> ()
    | _ -> failwith "Link_state: backup slot index out of sync"
  done;
  if !sum_backup <> t.backup_sum then failwith "Link_state: backup_sum out of sync";
  if Hashtbl.length t.b_slot <> t.b_n then
    failwith "Link_state: backup slot table size out of sync";
  (* The per-edge activation-demand index must agree exactly with the
     backup registrations it summarises: every registration contributes
     its floor to each of its primary's edges, and nothing else does. *)
  let recomputed = Hashtbl.create 16 in
  for slot = 0 to t.b_n - 1 do
    Array.iter
      (fun e ->
        let existing = Option.value ~default:0 (Hashtbl.find_opt recomputed e) in
        Hashtbl.replace recomputed e (existing + t.b_floor.(slot)))
      t.b_edges.(slot)
  done;
  Hashtbl.iter
    (fun e demand ->
      if Option.value ~default:0 (Hashtbl.find_opt recomputed e) <> demand then
        failwith (Printf.sprintf "Link_state: stale pool demand on edge %d" e))
    t.pool_by_edge;
  Hashtbl.iter
    (fun e demand ->
      if Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) <> demand then
        failwith (Printf.sprintf "Link_state: missing pool demand on edge %d" e))
    recomputed;
  (* The cached pool maximum, when trusted, must equal the recomputed
     maximum — the incremental cache is audited against full recompute. *)
  if t.multiplexing && not t.pool_stale then begin
    let true_max = Hashtbl.fold (fun _ d acc -> max d acc) t.pool_by_edge 0 in
    if t.pool_max <> true_max then
      failwith "Link_state: cached backup pool out of sync"
  end
