type primary = { mutable reserved : Bandwidth.t; floor : Bandwidth.t }

type backup = { b_min : Bandwidth.t; primary_edges : int list }

type t = {
  capacity : Bandwidth.t;
  multiplexing : bool;
  primaries : (int, primary) Hashtbl.t;
  backups : (int, backup) Hashtbl.t;
  (* For multiplexing: activation demand per failed undirected edge. *)
  pool_by_edge : (int, int) Hashtbl.t;
  mutable primary_total : Bandwidth.t;
  mutable primary_min_total : Bandwidth.t;
  mutable backup_sum : Bandwidth.t; (* plain sum of registered b_mins *)
}

let create ?(multiplexing = true) ~capacity () =
  if capacity <= 0 then invalid_arg "Link_state.create: capacity must be positive";
  {
    capacity;
    multiplexing;
    primaries = Hashtbl.create 16;
    backups = Hashtbl.create 16;
    pool_by_edge = Hashtbl.create 16;
    primary_total = 0;
    primary_min_total = 0;
    backup_sum = 0;
  }

let capacity t = t.capacity

let backup_pool t =
  if not t.multiplexing then t.backup_sum
  else Hashtbl.fold (fun _ demand acc -> max demand acc) t.pool_by_edge 0

let backup_dedicated_demand t = t.backup_sum

let primary_total t = t.primary_total
let primary_min_total t = t.primary_min_total

let spare t = t.capacity - t.primary_total
let reclaimable_headroom t = t.capacity - t.primary_min_total - backup_pool t

let admissible_primary t ~b_min = b_min <= reclaimable_headroom t

let guarantee_holds t = t.primary_min_total + backup_pool t <= t.capacity

let reserve_primary ?(force = false) t ~channel ~b_min =
  if b_min <= 0 then invalid_arg "Link_state.reserve_primary: non-positive floor";
  if Hashtbl.mem t.primaries channel then
    invalid_arg "Link_state.reserve_primary: channel already reserved here";
  let admissible =
    if force then t.primary_min_total + b_min <= t.capacity
    else admissible_primary t ~b_min
  in
  if not admissible then
    invalid_arg "Link_state.reserve_primary: floor does not fit";
  if t.primary_total + b_min > t.capacity then
    invalid_arg "Link_state.reserve_primary: reclaim extras first";
  Hashtbl.replace t.primaries channel { reserved = b_min; floor = b_min };
  t.primary_total <- t.primary_total + b_min;
  t.primary_min_total <- t.primary_min_total + b_min

let set_primary t ~channel bw =
  match Hashtbl.find_opt t.primaries channel with
  | None -> invalid_arg "Link_state.set_primary: unknown channel"
  | Some p ->
    if bw < p.floor then invalid_arg "Link_state.set_primary: below floor";
    let new_total = t.primary_total - p.reserved + bw in
    if new_total > t.capacity then
      invalid_arg "Link_state.set_primary: would exceed link capacity";
    t.primary_total <- new_total;
    p.reserved <- bw

let release_primary t ~channel =
  match Hashtbl.find_opt t.primaries channel with
  | None -> raise Not_found
  | Some p ->
    Hashtbl.remove t.primaries channel;
    t.primary_total <- t.primary_total - p.reserved;
    t.primary_min_total <- t.primary_min_total - p.floor

let primary_reservation t ~channel =
  Option.map (fun p -> p.reserved) (Hashtbl.find_opt t.primaries channel)

let primary_channels t =
  Hashtbl.fold (fun ch p acc -> (ch, p.reserved) :: acc) t.primaries []

let iter_primary_channels f t = Hashtbl.iter (fun ch p -> f ch p.reserved) t.primaries

let primary_count t = Hashtbl.length t.primaries

let backup_pool_with t ~b_min ~primary_edges =
  if not t.multiplexing then t.backup_sum + b_min
  else
    (* New pool = max over edges of (existing demand + b_min if the new
       backup's primary uses that edge). *)
    let current = backup_pool t in
    List.fold_left
      (fun acc e ->
        let existing = Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) in
        max acc (existing + b_min))
      current primary_edges

let register_backup t ~channel ~b_min ~primary_edges =
  if b_min <= 0 then invalid_arg "Link_state.register_backup: non-positive b_min";
  if primary_edges = [] then
    invalid_arg "Link_state.register_backup: backup needs a non-empty primary path";
  if Hashtbl.mem t.backups channel then
    invalid_arg "Link_state.register_backup: channel already registered here";
  let pool' = backup_pool_with t ~b_min ~primary_edges in
  if t.primary_min_total + pool' > t.capacity then
    invalid_arg "Link_state.register_backup: pool does not fit";
  Hashtbl.replace t.backups channel { b_min; primary_edges };
  t.backup_sum <- t.backup_sum + b_min;
  List.iter
    (fun e ->
      let existing = Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) in
      Hashtbl.replace t.pool_by_edge e (existing + b_min))
    primary_edges

let unregister_backup t ~channel =
  match Hashtbl.find_opt t.backups channel with
  | None -> raise Not_found
  | Some b ->
    Hashtbl.remove t.backups channel;
    t.backup_sum <- t.backup_sum - b.b_min;
    List.iter
      (fun e ->
        match Hashtbl.find_opt t.pool_by_edge e with
        | None -> assert false
        | Some demand ->
          let remaining = demand - b.b_min in
          if remaining = 0 then Hashtbl.remove t.pool_by_edge e
          else Hashtbl.replace t.pool_by_edge e remaining)
      b.primary_edges

let has_backup t ~channel = Hashtbl.mem t.backups channel

let backup_channels t = Hashtbl.fold (fun ch _ acc -> ch :: acc) t.backups []

let multiplexing t = t.multiplexing

let backup_registration t ~channel =
  Option.map
    (fun b -> (b.b_min, b.primary_edges))
    (Hashtbl.find_opt t.backups channel)

let backup_demand_for_edge t e =
  Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e)

let edge_demands t =
  Hashtbl.fold (fun e demand acc -> (e, demand) :: acc) t.pool_by_edge []

let check_invariant t =
  let sum_reserved = Hashtbl.fold (fun _ p acc -> acc + p.reserved) t.primaries 0 in
  let sum_floor = Hashtbl.fold (fun _ p acc -> acc + p.floor) t.primaries 0 in
  if sum_reserved <> t.primary_total then
    failwith "Link_state: primary_total out of sync";
  if sum_floor <> t.primary_min_total then
    failwith "Link_state: primary_min_total out of sync";
  let sum_backup = Hashtbl.fold (fun _ b acc -> acc + b.b_min) t.backups 0 in
  if sum_backup <> t.backup_sum then failwith "Link_state: backup_sum out of sync";
  Hashtbl.iter
    (fun ch p ->
      if p.reserved < p.floor then
        failwith (Printf.sprintf "Link_state: channel %d below floor" ch))
    t.primaries;
  if t.primary_total > t.capacity then failwith "Link_state: link overbooked";
  (* The per-edge activation-demand index must agree exactly with the
     backup registrations it summarises: every registration contributes
     its floor to each of its primary's edges, and nothing else does. *)
  let recomputed = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun e ->
          let existing = Option.value ~default:0 (Hashtbl.find_opt recomputed e) in
          Hashtbl.replace recomputed e (existing + b.b_min))
        b.primary_edges)
    t.backups;
  Hashtbl.iter
    (fun e demand ->
      if Option.value ~default:0 (Hashtbl.find_opt recomputed e) <> demand then
        failwith (Printf.sprintf "Link_state: stale pool demand on edge %d" e))
    t.pool_by_edge;
  Hashtbl.iter
    (fun e demand ->
      if Option.value ~default:0 (Hashtbl.find_opt t.pool_by_edge e) <> demand then
        failwith (Printf.sprintf "Link_state: missing pool demand on edge %d" e))
    recomputed
