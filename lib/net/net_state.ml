type t = {
  graph : Graph.t;
  links : Link_state.t array;
  failed : bool array; (* by undirected edge *)
  (* The failed set, maintained: a dense array of failed edges plus each
     edge's position in it (-1 when up), so failure/repair are O(1) and
     enumerating the set is O(failed) instead of a scan over every
     edge. *)
  mutable failed_list : int array;
  mutable failed_n : int;
  failed_pos : int array;
  multiplexing : bool;
}

let create_heterogeneous ?(multiplexing = true) ~capacity_of graph =
  let n = Dirlink.count graph in
  let edges = max 1 (Graph.edge_count graph) in
  {
    graph;
    links =
      Array.init n (fun id ->
          Link_state.create ~multiplexing ~capacity:(capacity_of id) ());
    failed = Array.make edges false;
    failed_list = [||];
    failed_n = 0;
    failed_pos = Array.make edges (-1);
    multiplexing;
  }

let create ?multiplexing ?(capacity = Bandwidth.paper_link_capacity) graph =
  create_heterogeneous ?multiplexing ~capacity_of:(fun _ -> capacity) graph

let graph t = t.graph
let multiplexing t = t.multiplexing

let link t id =
  if id < 0 || id >= Array.length t.links then
    invalid_arg (Printf.sprintf "Net_state.link: id %d out of range" id);
  t.links.(id)

let link_count t = Array.length t.links

let check_edge t e =
  if e < 0 || e >= Graph.edge_count t.graph then
    invalid_arg (Printf.sprintf "Net_state: edge %d out of range" e)

let fail_edge t e =
  check_edge t e;
  if not t.failed.(e) then begin
    t.failed.(e) <- true;
    if t.failed_n = Array.length t.failed_list then
      t.failed_list <-
        Array.init
          (max 8 (2 * t.failed_n))
          (fun i -> if i < t.failed_n then t.failed_list.(i) else 0);
    t.failed_list.(t.failed_n) <- e;
    t.failed_pos.(e) <- t.failed_n;
    t.failed_n <- t.failed_n + 1
  end

let repair_edge t e =
  check_edge t e;
  if t.failed.(e) then begin
    t.failed.(e) <- false;
    let pos = t.failed_pos.(e) in
    let last = t.failed_n - 1 in
    if pos < last then begin
      t.failed_list.(pos) <- t.failed_list.(last);
      t.failed_pos.(t.failed_list.(pos)) <- pos
    end;
    t.failed_pos.(e) <- -1;
    t.failed_n <- last
  end

let edge_failed t e =
  check_edge t e;
  t.failed.(e)

let failed_count t = t.failed_n

(* Ascending order, as the per-call rebuild used to return — O(f log f)
   in the number of failed edges, not O(edges). *)
let failed_edges t =
  List.sort compare (Array.to_list (Array.sub t.failed_list 0 t.failed_n))

let usable_edge t e = not (edge_failed t e)

let iter_links f t = Array.iteri f t.links

let total_primary_reserved t =
  Array.fold_left (fun acc l -> acc + Link_state.primary_total l) 0 t.links

let total_backup_pool t =
  Array.fold_left (fun acc l -> acc + Link_state.backup_pool l) 0 t.links

let utilisation t =
  let cap = Array.fold_left (fun acc l -> acc + Link_state.capacity l) 0 t.links in
  if cap = 0 then 0.
  else float_of_int (total_primary_reserved t + total_backup_pool t) /. float_of_int cap

let multiplexing_gain t =
  let dedicated =
    Array.fold_left (fun acc l -> acc + Link_state.backup_dedicated_demand l) 0 t.links
  in
  let pooled = total_backup_pool t in
  if pooled = 0 then 1. else float_of_int dedicated /. float_of_int pooled

let check_invariants t = Array.iter Link_state.check_invariant t.links
