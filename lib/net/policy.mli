(** Extra-resource adaptation policies — §2.2 of the paper — as
    first-class values.

    When bandwidth beyond the floors is available, the network walks
    eligible channels and grants one increment at a time (water-filling).
    A policy owns that walk: it decides {e who gets the next increment}
    and {e in what discipline} the grants are issued.  The paper
    evaluates with equal utilities ("fair distribution"); the
    coefficient/proportional and max-utility schemes it describes are
    also provided, and compared in the ablation benches.

    Policies used to be a closed variant baked into the service; they are
    now values, so alternative redistribution strategies (slice-weighted,
    survivability-priced, …) plug in without touching the hot path. *)

type claim = { utility : float; extras_granted : int }
(** A channel's standing in the current water-filling round:
    [extras_granted] counts increments already granted above the floor. *)

(** What the redistribution core hands a policy: how to read a
    candidate's claim, whether one more increment fits on its whole
    path, how to grant it, and the deterministic last-resort tie-break
    (the service compares channel ids).  The element type stays abstract
    to the policy — it never inspects channels directly. *)
type 'a env = {
  claim : 'a -> claim;
  can_upgrade : 'a -> bool;
  grant : 'a -> unit;
  tie : 'a -> 'a -> int;
}

type t = {
  name : string;  (** stable identifier; {!of_string} accepts it. *)
  order : claim -> claim -> int;
      (** total preorder: negative when the first claim deserves the
          next increment more. *)
  run : 'a. 'a env -> 'a list -> unit;
      (** water-fill the candidates to a fixed point: afterwards no
          candidate may have [can_upgrade] true.  Must terminate —
          every grant consumes one increment of finite link capacity. *)
}

val make :
  name:string ->
  order:(claim -> claim -> int) ->
  style:[ `Rounds | `Exact | `Drain ] ->
  t
(** Build a policy from an ordering and a grant discipline:

    - [`Rounds]: each round sorts all candidates by [order] and grants
      one increment to every candidate that fits, repeating while any
      grant landed;
    - [`Exact]: each step re-sorts the still-eligible candidates and
      grants exactly the best one;
    - [`Drain]: sort once, then drain each candidate to its ceiling
      before the next sees anything.

    Ties under [order] break via the environment's [tie]. *)

val equal_share : t
(** ["equal-share"], [`Rounds] by fewest extras granted: round-robin by
    current extra allocation, lowest first.  With equal utilities this is
    the paper's fair distribution. *)

val proportional : t
(** ["proportional"], [`Exact] by fewest increments per unit of utility —
    the coefficient scheme (Han, PhD 1998) on the increment grid. *)

val max_utility : t
(** ["max-utility"], [`Drain] by highest utility: the highest-utility
    channel takes all it can before anyone else — may monopolise, as the
    paper warns. *)

val pp : Format.formatter -> t -> unit
(** Prints {!val-name}. *)

val name : t -> string

val equal : t -> t -> bool
(** By {!val-name} — policy values carry closures, so structural
    equality would raise. *)

val of_string : string -> t option
(** Resolves the built-in policies by name (plus the historical aliases
    [equal], [coefficient], [max]). *)

val all : t list
(** The built-in policies, in presentation order. *)

val compare_claims : t -> claim -> claim -> int
(** [compare_claims t] is [t.order] — kept as a function for callers
    that only rank claims. *)
