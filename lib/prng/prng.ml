(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014.  The golden-gamma constant
   below is floor(2^64 / phi) rounded to odd. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Mixing function (variant "mix13"). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: 64 bits of entropy modulo small bounds
     has negligible bias for bound << 2^64, but reject to be exact. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    (* Accept only if the full block [r-v, r-v+bound-1] fits below 2^63,
       otherwise the last partial block would bias small values. *)
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub bound64 1L)
    then loop ()
    else Int64.to_int v
  in
  loop ()

let float t bound =
  if bound <= 0. then invalid_arg "Prng.float: bound must be positive";
  (* 53 uniform bits -> [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  let u = Int64.to_float r /. 9007199254740992. in
  u *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let rec draw () =
    let u = float t 1. in
    if Float.equal u 0. then draw () else -.log u /. rate
  in
  draw ()

let uniform_in t lo hi =
  if not (lo < hi) then invalid_arg "Prng.uniform_in: requires lo < hi";
  lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct_pair t n =
  if n < 2 then invalid_arg "Prng.sample_distinct_pair: need n >= 2";
  let a = int t n in
  let b = int t (n - 1) in
  let b = if b >= a then b + 1 else b in
  (a, b)
