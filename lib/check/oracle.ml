let failf fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* γ = 0: Markov chain vs ideal formula                                *)

let gamma0_average ~qos ~lambda =
  let n = Qos.levels qos in
  (* Row-stochastic matrices; with p_f = 0 only the upward (B, T)
     superdiagonals matter. *)
  let stoch_up () =
    let m = Matrix.create n n in
    for i = 0 to n - 2 do
      Matrix.set m i (i + 1) 1.0
    done;
    Matrix.set m (n - 1) (n - 1) 1.0;
    m
  in
  let p =
    {
      Model.lambda;
      mu = lambda;
      gamma = 0.0;
      p_f = 0.0;
      p_s = 0.5;
      a = Matrix.identity n;
      b = stoch_up ();
      t_mat = stoch_up ();
    }
  in
  Model.average_bandwidth_regularized p ~qos

let check_gamma0_agreement ?(tol = 1e-6) qos =
  let bmax = float_of_int qos.Qos.b_max in
  let markov = gamma0_average ~qos ~lambda:1.0 in
  if abs_float (markov -. bmax) > tol *. bmax then
    failf "gamma=0 chain average %.6f, but without failures every channel must \
           ride at b_max = %.0f"
      markov bmax;
  let ideal =
    Ideal.bandwidth_capped ~qos ~link_bandwidth:1_000_000 ~links:1000 ~channels:1
      ~avg_hops:1.0
  in
  if not (Linsolve.approx_eq ideal bmax) then
    failf "uncontended ideal reference %.6f does not saturate at b_max = %.0f"
      ideal bmax

(* ------------------------------------------------------------------ *)
(* No sharing => ceiling                                               *)

let check_unshared_at_ceiling t =
  if Drcomm.auto_redistribute t then
    let net = Drcomm.net t in
    List.iter
      (fun id ->
        let qos = Drcomm.qos_of t id in
        if Qos.is_elastic qos then
          let alone =
            List.for_all
              (fun dl ->
                let l = Net_state.link net dl in
                Link_state.primary_count l = 1
                && Link_state.capacity l >= qos.Qos.b_max)
              (Drcomm.primary_links t id)
          in
          if alone && Drcomm.level t id < Qos.levels qos - 1 then
            failf "channel %d shares no link and its path has room, yet it sits \
                   at level %d of %d"
              (Drcomm.Channel_id.to_int id)
              (Drcomm.level t id)
              (Qos.levels qos - 1))
      (List.sort Drcomm.Channel_id.compare (Drcomm.active_channels t))

(* ------------------------------------------------------------------ *)
(* fail -> repair -> redistribute round-trip                           *)

type snapshot = {
  channels : (Drcomm.channel_id * int * int) list;
  total : int;
  link_totals : (int * int) array;
}

let snapshot t =
  let net = Drcomm.net t in
  {
    channels =
      List.map
        (fun id -> (id, Drcomm.level t id, Drcomm.reserved_bandwidth t id))
        (List.sort Drcomm.Channel_id.compare (Drcomm.active_channels t));
    total = Drcomm.total_reserved t;
    link_totals =
      Array.init (Net_state.link_count net) (fun dl ->
          let l = Net_state.link net dl in
          (Link_state.primary_total l, Link_state.primary_min_total l));
  }

let check_fail_repair_roundtrip t ~edge =
  let net = Drcomm.net t in
  if Net_state.edge_failed net edge then
    invalid_arg "Oracle.check_fail_repair_roundtrip: edge already failed";
  let crosses id =
    List.exists (fun dl -> Dirlink.edge dl = edge) (Drcomm.primary_links t id)
  in
  if List.exists crosses (Drcomm.active_channels t) then
    invalid_arg "Oracle.check_fail_repair_roundtrip: a primary crosses the edge";
  (* Pin both sides of the comparison to the water-filling fixed point. *)
  Drcomm.redistribute_all t;
  let before = snapshot t in
  let r = Drcomm.fail_edge t edge in
  List.iter
    (fun { Drcomm.victim; outcome } ->
      match outcome with
      | `Backup_lost _ -> ()
      | _ ->
        failf "edge %d carries no primary, yet channel %d reports a primary-path \
               recovery"
          edge
          (Drcomm.Channel_id.to_int victim))
    r.Drcomm.recoveries;
  if Drcomm.total_reserved t <> before.total then
    failf "backup-only failure of edge %d moved total reserved bandwidth %d -> %d"
      edge before.total (Drcomm.total_reserved t);
  Drcomm.repair_edge t edge;
  Drcomm.redistribute_all t;
  let after = snapshot t in
  if after.channels <> before.channels then
    failf "fail/repair round-trip on edge %d did not restore per-channel levels"
      edge;
  if after.total <> before.total then
    failf "fail/repair round-trip on edge %d moved total reserved bandwidth %d -> %d"
      edge before.total after.total;
  if after.link_totals <> before.link_totals then
    failf "fail/repair round-trip on edge %d left different per-link totals" edge
