type t =
  | Admit of { src : int; dst : int; qos : int }
  | Terminate of int
  | Change_qos of int * int
  | Fail of int
  | Repair of int
  | Set_auto of bool
  | Redistribute_all

let to_string = function
  | Admit { src; dst; qos } -> Printf.sprintf "admit %d %d %d" src dst qos
  | Terminate k -> Printf.sprintf "terminate %d" k
  | Change_qos (k, q) -> Printf.sprintf "chqos %d %d" k q
  | Fail k -> Printf.sprintf "fail %d" k
  | Repair k -> Printf.sprintf "repair %d" k
  | Set_auto b -> if b then "auto on" else "auto off"
  | Redistribute_all -> "redistribute"

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "admit"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some src, Some dst, Some qos -> Some (Admit { src; dst; qos })
    | _ -> None)
  | [ "terminate"; a ] -> Option.map (fun k -> Terminate k) (int_of_string_opt a)
  | [ "chqos"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some k, Some q -> Some (Change_qos (k, q))
    | _ -> None)
  | [ "fail"; a ] -> Option.map (fun k -> Fail k) (int_of_string_opt a)
  | [ "repair"; a ] -> Option.map (fun k -> Repair k) (int_of_string_opt a)
  | [ "auto"; "on" ] -> Some (Set_auto true)
  | [ "auto"; "off" ] -> Some (Set_auto false)
  | [ "redistribute" ] -> Some Redistribute_all
  | _ -> None

let pp fmt op = Format.pp_print_string fmt (to_string op)
