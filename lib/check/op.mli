(** The fuzzer's operation language over a {!Drcomm} service.

    An op is a {e closed} description: its integer parameters are raw
    draws that the executor reduces modulo the state it finds (node
    count, live-channel list, failed-edge list...), and an op whose
    target does not exist is a no-op.  This makes {e every} subsequence
    of an op script executable, which is what lets the delta-debugging
    shrinker prune a failing sequence without re-planning it — and makes
    a printed script replayable verbatim. *)

type t =
  | Admit of { src : int; dst : int; qos : int }
      (** [src]/[dst] reduced modulo the node count (forced distinct);
          [qos] indexes the executor's QoS palette. *)
  | Terminate of int  (** index into the sorted live-channel list. *)
  | Change_qos of int * int  (** channel index, QoS palette index. *)
  | Fail of int  (** undirected edge id modulo the edge count. *)
  | Repair of int  (** index into the sorted failed-edge list. *)
  | Set_auto of bool
      (** toggle auto-redistribution; turning it back on runs one global
          pass so the water-filling fixed point is re-established. *)
  | Redistribute_all

val to_string : t -> string
(** One line, parseable back by {!of_string} — the reproducer format. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
