(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type family = Waxman | Torus | Transit_stub

let family_name = function
  | Waxman -> "waxman"
  | Torus -> "torus"
  | Transit_stub -> "transit-stub"

let family_of_string = function
  | "waxman" | "random" -> Some Waxman
  | "torus" -> Some Torus
  | "transit-stub" | "tier" -> Some Transit_stub
  | _ -> None

let all_families = [ Waxman; Torus; Transit_stub ]

type config = {
  family : family;
  seed : int;
  ops : int;
  nodes : int;
  capacity : int;
  backups_per_connection : int;
  restore_on_failure : bool;
  multiplexing : bool;
  policy : Policy.t;
  deep_every : int;
}

let config ?(nodes = 20) ?(capacity = 1200) ?(backups = 2) ?(restore = false)
    ?(multiplexing = true) ?(policy = Policy.equal_share) ?(deep_every = 20)
    ~family ~seed ~ops () =
  {
    family;
    seed;
    ops;
    nodes;
    capacity;
    backups_per_connection = backups;
    restore_on_failure = restore;
    multiplexing;
    policy;
    deep_every;
  }

(* The topology is part of the reproducer: derived from the seed alone
   (via an independent split of the stream) so a printed script plus its
   config line rebuilds the exact same network. *)
let topology cfg =
  let rng = Prng.create (cfg.seed lxor 0x2545f4914f6cdd1d) in
  match cfg.family with
  | Waxman ->
    Waxman.generate rng (Waxman.spec ~nodes:(max 4 cfg.nodes) ~alpha:0.6 ~beta:0.5 ())
  | Torus ->
    let n = max 9 cfg.nodes in
    let rows = max 3 (int_of_float (sqrt (float_of_int n))) in
    Torus.generate ~rows ~cols:(max 3 (n / rows))
  | Transit_stub ->
    let stub_size = max 2 ((max 12 cfg.nodes - 4) / 8) in
    (Transit_stub.generate rng
       (Transit_stub.spec ~transit_domains:1 ~transit_size:4
          ~stubs_per_transit_node:2 ~stub_size ()))
      .Transit_stub.graph

(* Mix of elastic ranges (incl. the paper's 100–500 spec at two
   increments), utility outliers for the utility-aware policies, and an
   inelastic single-value spec. *)
let qos_palette =
  [|
    Qos.paper_spec ~increment:100;
    Qos.paper_spec ~increment:50;
    Qos.make ~utility:2.0 ~b_min:100 ~b_max:300 ~increment:100 ();
    Qos.make ~utility:0.7 ~b_min:200 ~b_max:400 ~increment:50 ();
    Qos.make ~b_min:50 ~b_max:250 ~increment:50 ();
    Qos.single_value 150;
  |]

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let gen_op rng =
  let raw () = Prng.int rng 100_000 in
  let dice = Prng.int rng 100 in
  if dice < 34 then
    let src = raw () in
    let dst = raw () in
    let qos = raw () in
    Op.Admit { src; dst; qos }
  else if dice < 59 then Op.Terminate (raw ())
  else if dice < 69 then Op.Fail (raw ())
  else if dice < 79 then Op.Repair (raw ())
  else if dice < 87 then
    let k = raw () in
    let q = raw () in
    Op.Change_qos (k, q)
  else if dice < 90 then Op.Set_auto false
  else if dice < 94 then Op.Set_auto true
  else Op.Redistribute_all

let gen_ops cfg =
  let rng = Prng.create cfg.seed in
  Array.init cfg.ops (fun _ -> gen_op rng)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type stats = {
  ops_run : int;
  admitted : int;
  rejected : int;
  terminated : int;
  qos_changed : int;
  qos_refused : int;
  edge_failures : int;
  edge_repairs : int;
  activations : int;
  drops : int;
  restores : int;
  backup_losses : int;
  live : int;
}

type violation = { index : int; op : Op.t; message : string }

type run = {
  stats : stats;
  violation : violation option;
  flight : (float * Trace.event) list;
}

let replay ?(extra_invariant = fun (_ : Drcomm.t) -> ()) cfg (ops : Op.t array) =
  let g = topology cfg in
  let n = Graph.node_count g in
  let ec = Graph.edge_count g in
  let metrics = Metrics.create () in
  (* Always-on flight recorder: replays are fully deterministic, so the
     ring's tail is a black box of the trace events leading into a
     violation, with the op index as the time axis. *)
  let flight = Flight.create ~capacity:256 () in
  let obs = Obs.create ~metrics ~flight () in
  let net =
    Net_state.create ~multiplexing:cfg.multiplexing ~capacity:cfg.capacity g
  in
  let dconfig =
    (* [backups=0] in a reproducer means "no backups", which the service
       spells [with_backups:false]. *)
    Drcomm.Config.make ~policy:cfg.policy ~require_backup:false
      ~with_backups:(cfg.backups_per_connection > 0)
      ~backups_per_connection:(max 1 cfg.backups_per_connection)
      ~restore_on_failure:cfg.restore_on_failure ()
  in
  let t = Drcomm.create ~config:dconfig ~obs net in
  let admitted = ref 0
  and rejected = ref 0
  and terminated = ref 0
  and qos_changed = ref 0
  and qos_refused = ref 0
  and edge_failures = ref 0
  and edge_repairs = ref 0
  and activations = ref 0
  and drops = ref 0
  and restores = ref 0
  and backup_losses = ref 0 in
  (* Expected drcomm.* counters, predicted from the returned reports. *)
  let exp_admits = ref 0
  and exp_rejects = ref 0
  and exp_terms = ref 0
  and exp_fail = ref 0
  and exp_rep = ref 0
  and exp_act = ref 0
  and exp_lost = ref 0
  and exp_drops = ref 0
  and exp_rest = ref 0 in
  let expected () =
    {
      Invariants.admits = !exp_admits;
      rejects = !exp_rejects;
      terminations = !exp_terms;
      link_failures = !exp_fail;
      link_repairs = !exp_rep;
      backup_activations = !exp_act;
      backup_losses = !exp_lost;
      drops = !exp_drops;
      restores = !exp_rest;
    }
  in
  let live_sorted () = List.sort compare (Drcomm.active_channels t) in
  let apply op =
    match op with
    | Op.Admit { src; dst; qos } ->
      let src = src mod n in
      let dst = if n <= 1 then src else (src + 1 + (dst mod (n - 1))) mod n in
      let qos = qos_palette.(qos mod Array.length qos_palette) in
      (match Drcomm.admit t ~src ~dst ~qos with
      | Drcomm.Admitted _ ->
        incr admitted;
        incr exp_admits
      | Drcomm.Rejected _ ->
        incr rejected;
        incr exp_rejects)
    | Op.Terminate k -> (
      match live_sorted () with
      | [] -> ()
      | ids ->
        ignore (Drcomm.terminate t (List.nth ids (k mod List.length ids)));
        incr terminated;
        incr exp_terms)
    | Op.Change_qos (k, q) -> (
      match live_sorted () with
      | [] -> ()
      | ids -> (
        let id = List.nth ids (k mod List.length ids) in
        match
          Drcomm.change_qos t id qos_palette.(q mod Array.length qos_palette)
        with
        | `Changed -> incr qos_changed
        | `Rejected -> incr qos_refused))
    | Op.Fail k ->
      if ec > 0 then begin
        let e = k mod ec in
        let fresh = not (Net_state.edge_failed net e) in
        let r = Drcomm.fail_edge t e in
        if fresh then begin
          incr edge_failures;
          incr exp_fail
        end
        else if
          r.Drcomm.recoveries <> [] || r.Drcomm.event.Drcomm.transitions <> []
        then failwith "fail_edge on an already-failed edge was not a no-op";
        List.iter
          (fun { Drcomm.outcome; _ } ->
            match outcome with
            | `Switched_to_backup _ ->
              incr activations;
              incr exp_act
            | `Dropped ->
              incr drops;
              incr exp_drops;
              (* A failed restoration attempt is an internal admit
                 rejection. *)
              if cfg.restore_on_failure then incr exp_rejects
            | `Restored _ ->
              incr restores;
              incr exp_rest;
              (* A successful restoration is an internal admit. *)
              incr exp_admits
            | `Backup_lost _ ->
              incr backup_losses;
              incr exp_lost)
          r.Drcomm.recoveries
      end
    | Op.Repair k ->
      if ec > 0 then begin
        match List.sort compare (Net_state.failed_edges net) with
        | [] ->
          (* Nothing failed: aim at a healthy edge — must be a strict
             no-op, counters included. *)
          Drcomm.repair_edge t (k mod ec)
        | failed ->
          Drcomm.repair_edge t (List.nth failed (k mod List.length failed));
          incr edge_repairs;
          incr exp_rep
      end
    | Op.Set_auto b ->
      let was = Drcomm.auto_redistribute t in
      Drcomm.set_auto_redistribute t b;
      (* Re-establish the water-filling fixed point the invariant
         expects whenever redistribution comes back on. *)
      if b && not was then Drcomm.redistribute_all t
    | Op.Redistribute_all -> Drcomm.redistribute_all t
  in
  let violation = ref None in
  let at = ref 0 in
  Obs.set_clock obs (fun () -> float_of_int !at);
  (try
     Array.iteri
       (fun i op ->
         at := i;
         apply op;
         let deep = cfg.deep_every > 0 && (i + 1) mod cfg.deep_every = 0 in
         Invariants.check_all ~expected:(expected ()) ~metrics ~deep t;
         extra_invariant t)
       ops
   with e ->
     let message =
       match e with Failure m -> m | e -> Printexc.to_string e
     in
     violation := Some { index = !at; op = ops.(!at); message });
  let stats =
    {
      ops_run =
        (match !violation with
        | Some v -> v.index + 1
        | None -> Array.length ops);
      admitted = !admitted;
      rejected = !rejected;
      terminated = !terminated;
      qos_changed = !qos_changed;
      qos_refused = !qos_refused;
      edge_failures = !edge_failures;
      edge_repairs = !edge_repairs;
      activations = !activations;
      drops = !drops;
      restores = !restores;
      backup_losses = !backup_losses;
      live = Drcomm.count t;
    }
  in
  { stats; violation = !violation; flight = Flight.events flight }

(* ------------------------------------------------------------------ *)
(* Shrinking: classic ddmin over the op script                         *)

let shrink_script ?extra_invariant cfg ops =
  let fails lst =
    (replay ?extra_invariant cfg (Array.of_list lst)).violation <> None
  in
  let rec ddmin lst gran =
    let len = List.length lst in
    if len < 2 then lst
    else begin
      let chunk = max 1 (len / gran) in
      let rec attempt start =
        if start >= len then None
        else
          let cand =
            List.filteri (fun i _ -> i < start || i >= start + chunk) lst
          in
          if cand <> [] && fails cand then Some cand else attempt (start + chunk)
      in
      match attempt 0 with
      | Some smaller -> ddmin smaller (max 2 (gran - 1))
      | None -> if chunk <= 1 then lst else ddmin lst (min len (gran * 2))
    end
  in
  Array.of_list (ddmin (Array.to_list ops) 2)

(* ------------------------------------------------------------------ *)
(* Top-level runs and the reproducer format                            *)

type failure = {
  config : config;
  script : Op.t array;
  violation : violation;
  stats : stats;
  flight : (float * Trace.event) list;
}

let run ?extra_invariant ?(shrink = true) cfg =
  let ops = gen_ops cfg in
  let r = replay ?extra_invariant cfg ops in
  match r.violation with
  | None -> Ok r.stats
  | Some v ->
    let prefix = Array.sub ops 0 (v.index + 1) in
    let script =
      if shrink then shrink_script ?extra_invariant cfg prefix else prefix
    in
    (* The black box comes from the final (shrunk) replay, so its events
       line up with the reproducer script's op indices. *)
    let final = replay ?extra_invariant cfg script in
    let violation = match final.violation with Some v' -> v' | None -> v in
    Error { config = cfg; script; violation; stats = r.stats; flight = final.flight }

let config_line cfg =
  Printf.sprintf
    "# fuzz family=%s seed=%d nodes=%d capacity=%d backups=%d restore=%b \
     multiplexing=%b policy=%s deep-every=%d"
    (family_name cfg.family) cfg.seed cfg.nodes cfg.capacity
    cfg.backups_per_connection cfg.restore_on_failure cfg.multiplexing
    (Format.asprintf "%a" Policy.pp cfg.policy)
    cfg.deep_every

let to_script f =
  let b = Buffer.create 512 in
  Buffer.add_string b "# drqos fuzz reproducer\n";
  Buffer.add_string b (config_line f.config);
  Buffer.add_char b '\n';
  Printf.bprintf b "# violation at op %d (%s): %s\n" f.violation.index
    (Op.to_string f.violation.op)
    f.violation.message;
  Array.iter
    (fun op ->
      Buffer.add_string b (Op.to_string op);
      Buffer.add_char b '\n')
    f.script;
  Buffer.contents b

(* The [# fuzz k=v] header dialect, as one {!Cliopt.parse_kv} spec table
   over a config cell — the same parser the bench drivers use for their
   flag tables. *)
let header_specs acc =
  let as_int key f =
    ( key,
      fun v ->
        match int_of_string_opt v with
        | Some n ->
          acc := f !acc n;
          Ok ()
        | None -> Error (Printf.sprintf "bad integer for %s: %S" key v) )
  in
  let as_bool key f =
    ( key,
      fun v ->
        match bool_of_string_opt v with
        | Some b ->
          acc := f !acc b;
          Ok ()
        | None -> Error (Printf.sprintf "bad boolean for %s: %S" key v) )
  in
  [
    ( "family",
      fun v ->
        match family_of_string v with
        | Some f ->
          acc := { !acc with family = f };
          Ok ()
        | None -> Error (Printf.sprintf "unknown family %S" v) );
    as_int "seed" (fun c n -> { c with seed = n });
    as_int "nodes" (fun c n -> { c with nodes = n });
    as_int "capacity" (fun c n -> { c with capacity = n });
    as_int "backups" (fun c n -> { c with backups_per_connection = n });
    as_int "deep-every" (fun c n -> { c with deep_every = n });
    as_bool "restore" (fun c b -> { c with restore_on_failure = b });
    as_bool "multiplexing" (fun c b -> { c with multiplexing = b });
    ( "policy",
      fun v ->
        match Policy.of_string v with
        | Some p ->
          acc := { !acc with policy = p };
          Ok ()
        | None -> Error (Printf.sprintf "unknown policy %S" v) );
  ]

let split_kvs kvs =
  let rec go = function
    | [] -> Ok []
    | "" :: rest -> go rest
    | kv :: rest -> (
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "malformed key=value %S" kv)
      | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match go rest with Ok l -> Ok ((key, v) :: l) | Error _ as e -> e))
  in
  go kvs

let parse_script text =
  let base = config ~family:Waxman ~seed:1 ~ops:0 () in
  let rec fold cfg ops = function
    | [] -> Ok (cfg, Array.of_list (List.rev ops))
    | line :: rest -> (
      let line = String.trim line in
      if line = "" then fold cfg ops rest
      else if line.[0] = '#' then
        match String.split_on_char ' ' line with
        | "#" :: "fuzz" :: kvs -> (
          match split_kvs kvs with
          | Error _ as e -> e
          | Ok pairs -> (
            let acc = ref cfg in
            match Cliopt.parse_kv ~specs:(header_specs acc) pairs with
            | Ok () -> fold !acc ops rest
            | Error _ as e -> e))
        | _ -> fold cfg ops rest
      else
        match Op.of_string line with
        | Some op -> fold cfg (op :: ops) rest
        | None -> Error (Printf.sprintf "unparseable op %S" line))
  in
  match fold base [] (String.split_on_char '\n' text) with
  | Ok (cfg, ops) -> Ok ({ cfg with ops = Array.length ops }, ops)
  | Error _ as e -> e
