let failf fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* Expected-counter bookkeeping                                        *)

type counters = {
  admits : int;
  rejects : int;
  terminations : int;
  link_failures : int;
  link_repairs : int;
  backup_activations : int;
  backup_losses : int;
  drops : int;
  restores : int;
}

let zero_counters =
  {
    admits = 0;
    rejects = 0;
    terminations = 0;
    link_failures = 0;
    link_repairs = 0;
    backup_activations = 0;
    backup_losses = 0;
    drops = 0;
    restores = 0;
  }

let counter_names =
  [
    ("drcomm.admits", fun c -> c.admits);
    ("drcomm.rejects", fun c -> c.rejects);
    ("drcomm.terminations", fun c -> c.terminations);
    ("drcomm.link_failures", fun c -> c.link_failures);
    ("drcomm.link_repairs", fun c -> c.link_repairs);
    ("drcomm.backup_activations", fun c -> c.backup_activations);
    ("drcomm.backup_losses", fun c -> c.backup_losses);
    ("drcomm.drops", fun c -> c.drops);
    ("drcomm.restores", fun c -> c.restores);
  ]

let read_counters metrics =
  let get name = Metrics.count (Metrics.counter metrics name) in
  {
    admits = get "drcomm.admits";
    rejects = get "drcomm.rejects";
    terminations = get "drcomm.terminations";
    link_failures = get "drcomm.link_failures";
    link_repairs = get "drcomm.link_repairs";
    backup_activations = get "drcomm.backup_activations";
    backup_losses = get "drcomm.backup_losses";
    drops = get "drcomm.drops";
    restores = get "drcomm.restores";
  }

let pp_counters fmt c =
  List.iter
    (fun (name, get) -> Format.fprintf fmt " %s=%d" name (get c))
    counter_names

let check_counters ~expected metrics =
  let actual = read_counters metrics in
  if actual <> expected then
    failf "metrics diverged from event reports:%s but counters say%s"
      (Format.asprintf "%a" pp_counters expected)
      (Format.asprintf "%a" pp_counters actual)

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let sorted_channels t =
  List.sort Drcomm.Channel_id.compare (Drcomm.active_channels t)

let int_id = Drcomm.Channel_id.to_int

let primary_edges_of t id =
  List.sort_uniq compare (List.map Dirlink.edge (Drcomm.primary_links t id))

let path_edges blinks = List.map Dirlink.edge blinks

(* ------------------------------------------------------------------ *)
(* Failed-edge unroutability                                           *)

let check_failed_edge_unroutability t =
  let net = Drcomm.net t in
  match Net_state.failed_edges net with
  | [] -> ()
  | failed ->
    List.iter
      (fun id ->
        List.iter
          (fun e ->
            if List.mem e failed then
              failf "channel %d's primary traverses failed edge %d" (int_id id) e)
          (primary_edges_of t id);
        List.iter
          (fun blinks ->
            List.iter
              (fun e ->
                if List.mem e failed then
                  failf "channel %d holds a backup over failed edge %d" (int_id id) e)
              (path_edges blinks))
          (Drcomm.all_backup_links t id))
      (sorted_channels t)

(* ------------------------------------------------------------------ *)
(* Cross-layer per-link accounting                                     *)

(* Rebuild every link's expected reservation/registration tables from the
   service's channel records alone, then require the network layer to
   hold exactly that — no orphans (a reservation with no live owner is a
   leak), no omissions, no stale floors, and a per-edge activation-demand
   index that matches the registrations it summarises. *)
let check_link_accounting t =
  let net = Drcomm.net t in
  let n_links = Net_state.link_count net in
  let exp_primary = Array.init n_links (fun _ -> Hashtbl.create 4) in
  let exp_backup = Array.init n_links (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun id ->
      let bw = Drcomm.reserved_bandwidth t id in
      let floor = (Drcomm.qos_of t id).Qos.b_min in
      let pedges = primary_edges_of t id in
      List.iter
        (fun dl -> Hashtbl.replace exp_primary.(dl) (int_id id) (bw, floor))
        (Drcomm.primary_links t id);
      List.iter
        (fun blinks ->
          List.iter
            (fun dl -> Hashtbl.replace exp_backup.(dl) (int_id id) (floor, pedges))
            blinks)
        (Drcomm.all_backup_links t id))
    (sorted_channels t);
  for dl = 0 to n_links - 1 do
    let l = Net_state.link net dl in
    (* Primary side: exact set equality, reservation by reservation. *)
    let actual = Link_state.primary_channels l in
    if List.length actual <> Hashtbl.length exp_primary.(dl) then
      failf "link %d: %d primary reservations, %d live channels route here" dl
        (List.length actual)
        (Hashtbl.length exp_primary.(dl));
    let min_total = ref 0 and total = ref 0 in
    List.iter
      (fun (ch, reserved) ->
        match Hashtbl.find_opt exp_primary.(dl) ch with
        | None -> failf "link %d: orphan primary reservation for channel %d" dl ch
        | Some (bw, floor) ->
          if bw <> reserved then
            failf "link %d: channel %d reserves %d, service says %d" dl ch reserved bw;
          min_total := !min_total + floor;
          total := !total + reserved)
      actual;
    if Link_state.primary_total l <> !total then
      failf "link %d: primary_total %d, channels sum to %d" dl
        (Link_state.primary_total l) !total;
    if Link_state.primary_min_total l <> !min_total then
      failf "link %d: primary_min_total %d, floors sum to %d" dl
        (Link_state.primary_min_total l) !min_total;
    if Link_state.spare l < 0 then
      failf "link %d: negative spare (%d reserved on capacity %d)" dl
        (Link_state.primary_total l) (Link_state.capacity l);
    (* Backup side: registrations must match held backups exactly. *)
    let actual_b = Link_state.backup_channels l in
    if List.length actual_b <> Hashtbl.length exp_backup.(dl) then
      failf "link %d: %d backup registrations, %d backups held here" dl
        (List.length actual_b)
        (Hashtbl.length exp_backup.(dl));
    List.iter
      (fun ch ->
        match
          (Hashtbl.find_opt exp_backup.(dl) ch, Link_state.backup_registration l ~channel:ch)
        with
        | None, _ -> failf "link %d: orphan backup registration for channel %d" dl ch
        | _, None -> assert false
        | Some (floor, pedges), Some (b_min, reg_edges) ->
          if b_min <> floor then
            failf "link %d: backup of %d registered at %d, floor is %d" dl ch b_min floor;
          if List.sort_uniq compare reg_edges <> pedges then
            failf "link %d: backup of %d keyed to stale primary edges" dl ch)
      actual_b;
    (* Per-edge activation demand recomputed from the registrations. *)
    let demand = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ (floor, pedges) ->
        List.iter
          (fun e ->
            let d = Option.value ~default:0 (Hashtbl.find_opt demand e) in
            Hashtbl.replace demand e (d + floor))
          pedges)
      exp_backup.(dl);
    let recorded = List.sort compare (Link_state.edge_demands l) in
    let recomputed =
      List.sort compare (Hashtbl.fold (fun e d acc -> (e, d) :: acc) demand [])
    in
    if recorded <> recomputed then
      failf "link %d: per-edge pool demand diverged from registrations" dl
  done

(* ------------------------------------------------------------------ *)
(* Water-filling completeness                                          *)

(* With auto-redistribution on, every mutating call leaves the network at
   a water-filling fixed point: no elastic channel can absorb one more
   increment.  A violation means some operation's dirty-link set missed a
   channel that gained headroom. *)
let check_redistribution_complete t =
  if Drcomm.auto_redistribute t then
    let net = Drcomm.net t in
    List.iter
      (fun id ->
        let qos = Drcomm.qos_of t id in
        if Qos.is_elastic qos && Drcomm.level t id < Qos.levels qos - 1 then
          let blocked =
            List.exists
              (fun dl -> Link_state.spare (Net_state.link net dl) < qos.Qos.increment)
              (Drcomm.primary_links t id)
          in
          if not blocked then
            failf
              "water-filling incomplete: channel %d at level %d has an increment of \
               spare on every link of its path"
              (int_id id) (Drcomm.level t id))
      (sorted_channels t)

(* ------------------------------------------------------------------ *)
(* Incremental-vs-full redistribution equivalence                      *)

(* The dirty-set passes must land on the same fixed point a from-scratch
   global pass would: running {!Drcomm.redistribute_all} against a
   settled service changes no reservation anywhere.  Stronger than
   {!check_redistribution_complete} (which only tests one-increment
   blockage per channel): this exercises the production policy loop
   itself over the full candidate set. *)
let check_incremental_equivalence t =
  if Drcomm.auto_redistribute t then begin
    let net = Drcomm.net t in
    let snap () =
      let acc = ref [] in
      Net_state.iter_links
        (fun dl l ->
          acc := (dl, List.sort compare (Link_state.primary_channels l)) :: !acc)
        net;
      !acc
    in
    let before = snap () in
    Drcomm.redistribute_all t;
    if snap () <> before then
      failf
        "incremental redistribution diverged: a full water-filling pass changed \
         reservations"
  end

(* ------------------------------------------------------------------ *)
(* Backup-multiplexing single-failure safety                           *)

(* The paper's central safety claim (§2.1.2, after Han & Shin): backups
   multiplexed on a shared link must never be over-subscribed by any
   single link failure.  We simulate every usable edge's failure against
   the current state: victims release their primary floors, each victim's
   first still-usable backup activates at its floor, and no link may
   exceed capacity.  Skipped while any link's guarantee constraint is
   broken — the documented multi-failure corner, where forced activations
   legitimately overbook the pool until churn or repair clears it. *)
let check_single_failure_safety t =
  let net = Drcomm.net t in
  let clean = ref true in
  Net_state.iter_links (fun _ l -> if not (Link_state.guarantee_holds l) then clean := false) net;
  if !clean then begin
    let g = Net_state.graph net in
    let chans =
      List.map
        (fun id ->
          ( id,
            (Drcomm.qos_of t id).Qos.b_min,
            primary_edges_of t id,
            Drcomm.primary_links t id,
            Drcomm.all_backup_links t id ))
        (sorted_channels t)
    in
    for e = 0 to Graph.edge_count g - 1 do
      if Net_state.usable_edge net e then begin
        let victims = List.filter (fun (_, _, pedges, _, _) -> List.mem e pedges) chans in
        if victims <> [] then begin
          let delta = Hashtbl.create 16 in
          let bump dl d =
            let cur = Option.value ~default:0 (Hashtbl.find_opt delta dl) in
            Hashtbl.replace delta dl (cur + d)
          in
          List.iter
            (fun (_, floor, _, plinks, backups) ->
              List.iter (fun dl -> bump dl (-floor)) plinks;
              let usable blinks =
                List.for_all
                  (fun dl ->
                    let be = Dirlink.edge dl in
                    be <> e && Net_state.usable_edge net be)
                  blinks
              in
              match List.find_opt usable backups with
              | None -> ()
              | Some blinks -> List.iter (fun dl -> bump dl floor) blinks)
            victims;
          Hashtbl.iter
            (fun dl d ->
              let l = Net_state.link net dl in
              let after = Link_state.primary_min_total l + d in
              if after > Link_state.capacity l then
                failf
                  "single failure of edge %d would over-subscribe link %d: floors \
                   %d + activation delta %d > capacity %d"
                  e dl (Link_state.primary_min_total l) d (Link_state.capacity l))
            delta
        end
      end
    done
  end

(* ------------------------------------------------------------------ *)

let check_all ?expected ?metrics ?(deep = true) t =
  Drcomm.check_invariants t;
  check_failed_edge_unroutability t;
  check_link_accounting t;
  check_redistribution_complete t;
  if deep then begin
    check_incremental_equivalence t;
    check_single_failure_safety t
  end;
  match (expected, metrics) with
  | Some expected, Some metrics -> check_counters ~expected metrics
  | _ -> ()
