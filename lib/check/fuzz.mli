(** Seeded operation fuzzer for the {!Drcomm} service.

    A run draws a topology and an op script from one integer seed,
    executes the script against a fresh service, and audits the full
    {!Invariants} suite (plus predicted [drcomm.*] counters) after
    {e every} operation.  On a violation a delta-debugging pass shrinks
    the script to a locally-minimal failing sequence and renders it in a
    self-contained text format: the config line plus the script rebuild
    the exact network and replay the failure verbatim. *)

type family = Waxman | Torus | Transit_stub

val family_name : family -> string
val family_of_string : string -> family option
val all_families : family list

type config = {
  family : family;
  seed : int;
  ops : int;
  nodes : int;  (** approximate — each family rounds to its own grid. *)
  capacity : int;
  backups_per_connection : int;
  restore_on_failure : bool;
  multiplexing : bool;
  policy : Policy.t;
  deep_every : int;
      (** run the superlinear single-failure-safety check every this
          many ops (0 = never). *)
}

val config :
  ?nodes:int ->
  ?capacity:int ->
  ?backups:int ->
  ?restore:bool ->
  ?multiplexing:bool ->
  ?policy:Policy.t ->
  ?deep_every:int ->
  family:family ->
  seed:int ->
  ops:int ->
  unit ->
  config
(** Defaults: 20 nodes, capacity 1200, 2 backups per connection, no
    restoration, multiplexing on, [Equal_share], deep check every 20
    ops. *)

val topology : config -> Graph.t
(** The seed-determined network a run executes on. *)

val qos_palette : Qos.t array
(** The specs [Admit]/[Change_qos] ops index into. *)

val gen_ops : config -> Op.t array
(** The seed-determined op script of a run. *)

type stats = {
  ops_run : int;
  admitted : int;
  rejected : int;
  terminated : int;
  qos_changed : int;
  qos_refused : int;
  edge_failures : int;
  edge_repairs : int;
  activations : int;
  drops : int;
  restores : int;
  backup_losses : int;
  live : int;  (** channels still up when the run ended. *)
}

type violation = { index : int; op : Op.t; message : string }

type run = {
  stats : stats;
  violation : violation option;
  flight : (float * Trace.event) list;
      (** black box: the last trace events before the run ended (ring of
          256), timestamped with the op index that emitted them.  Dump
          with {!Flight.dump_events}. *)
}

val replay :
  ?extra_invariant:(Drcomm.t -> unit) -> config -> Op.t array -> run
(** Execute a script (generated or parsed back from a reproducer)
    against a fresh service on the config's topology.
    [extra_invariant] runs after the per-op invariant suite — tests use
    it to inject artificial faults and exercise the shrinker. *)

type failure = {
  config : config;
  script : Op.t array;  (** minimal failing script (or the raw prefix). *)
  violation : violation;  (** as reported by replaying [script]. *)
  stats : stats;  (** of the original, unshrunk run. *)
  flight : (float * Trace.event) list;
      (** black box of the {e final} (shrunk) replay, so event times are
          op indices into [script]. *)
}

val run :
  ?extra_invariant:(Drcomm.t -> unit) ->
  ?shrink:bool ->
  config ->
  (stats, failure) result
(** Generate and execute the config's script; on violation, shrink
    (unless [~shrink:false]) and return the reproducer. *)

val shrink_script :
  ?extra_invariant:(Drcomm.t -> unit) -> config -> Op.t array -> Op.t array
(** ddmin: a locally-minimal subsequence that still fails under
    {!replay} (1-minimal — removing any single remaining op makes the
    failure disappear). *)

val to_script : failure -> string
(** Self-contained reproducer: header comments (config + diagnosis)
    followed by one op per line. *)

val parse_script : string -> (config * Op.t array, string) result
(** Parse a reproducer (or any hand-written script): [# fuzz k=v ...]
    comment lines set the config, other [#] lines are ignored, the rest
    must be {!Op.of_string}-parseable. *)
