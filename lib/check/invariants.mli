(** Strengthened whole-system invariants over a live {!Drcomm} service.

    {!Drcomm.check_invariants} audits the service's own records; the
    checks here go further and cross-examine layers against each other:
    the network layer must hold {e exactly} the reservations and backup
    registrations implied by the channel table, failed edges must carry
    no live path, auto-redistribution must leave a water-filling fixed
    point, and — the paper's central safety claim — no {e single} edge
    failure may over-subscribe any link through backup activation.

    Every check raises [Failure] with a human-readable diagnosis; the
    fuzzer turns that into a shrunk reproducer. *)

(** {1 Metrics consistency} *)

(** Expected values of the [drcomm.*] event counters, as predicted from
    the reports returned by the mutating calls.  (Upgrade/retreat
    counters are deliberately absent: their totals are not derivable
    from reports alone.) *)
type counters = {
  admits : int;
  rejects : int;
  terminations : int;
  link_failures : int;
  link_repairs : int;
  backup_activations : int;
  backup_losses : int;
  drops : int;
  restores : int;
}

val zero_counters : counters
val read_counters : Metrics.t -> counters
val pp_counters : Format.formatter -> counters -> unit

val check_counters : expected:counters -> Metrics.t -> unit
(** The registry's [drcomm.*] counters must equal [expected] exactly —
    an event counted without happening (or vice versa) is a bug even
    when the data path is correct. *)

(** {1 State invariants} *)

val check_failed_edge_unroutability : Drcomm.t -> unit
(** No live channel's primary may traverse a failed edge, and no held
    (passive) backup may cross one either — a backup over a failed edge
    could never activate, yet would keep occupying pool demand. *)

val check_link_accounting : Drcomm.t -> unit
(** Rebuild every link's primary reservations, backup registrations
    (floor {e and} primary-edge key), per-edge activation demands and
    totals from the channel table, and require the {!Link_state} layer
    to match exactly. *)

val check_redistribution_complete : Drcomm.t -> unit
(** With auto-redistribution on: no elastic channel below its ceiling
    may have an increment of spare on every link of its path.  No-op
    while auto-redistribution is off. *)

val check_incremental_equivalence : Drcomm.t -> unit
(** With auto-redistribution on: a full water-filling pass
    ({!Drcomm.redistribute_all}) over the current state must change no
    reservation — the incremental dirty-link machinery already sits at
    the global fixed point.  No-op while auto-redistribution is off. *)

val check_single_failure_safety : Drcomm.t -> unit
(** For every usable edge, hypothetically fail it: victims release
    their floors, each victim's first still-usable backup activates at
    its floor; no link may exceed capacity.  Skipped while any link's
    guarantee constraint is (legitimately, transiently) broken after a
    multi-failure forced activation. *)

val check_all :
  ?expected:counters -> ?metrics:Metrics.t -> ?deep:bool -> Drcomm.t -> unit
(** {!Drcomm.check_invariants} plus every check above.  [deep] (default
    [true]) includes {!check_single_failure_safety}, the only
    superlinear one.  Counters are checked when both [expected] and
    [metrics] are given. *)
