(** Differential oracles: regimes where two independent implementations
    of the paper's model must agree, or where an operation sequence must
    be an exact no-op.  All checks raise [Failure] with a diagnosis. *)

val gamma0_average : qos:Qos.t -> lambda:float -> float
(** Average bandwidth of the paper's Markov chain built for a
    failure-free, direct-chain-free regime ([gamma = 0], [P_f = 0],
    adjacent-level upgrade matrices): redistribution alone must drive
    the channel to its ceiling. *)

val check_gamma0_agreement : ?tol:float -> Qos.t -> unit
(** {!gamma0_average} must equal [b_max] within [tol] (relative,
    default [1e-6]), and {!Ideal.bandwidth_capped} for an uncontended
    channel must saturate at [b_max] exactly — the simulator, chain and
    formula agree in the degenerate regime. *)

val check_unshared_at_ceiling : Drcomm.t -> unit
(** Simulator-side counterpart: with auto-redistribution on, an elastic
    channel sharing {e no} link (and whose links could hold its
    ceiling) must sit at its top level.  No-op when auto-redistribution
    is off. *)

val check_fail_repair_roundtrip : Drcomm.t -> edge:int -> unit
(** For a usable edge carrying {e no} primary channel (raises
    [Invalid_argument] otherwise): failing it, repairing it and
    re-running global redistribution must restore every channel's level
    and reservation, the total reserved bandwidth, and every link's
    primary totals exactly.  Only passive backups may have moved.
    Mutates [t] transiently (including one global redistribution pass
    up front, to pin the comparison at the water-filling fixed
    point). *)
