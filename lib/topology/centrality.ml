(* Brandes' betweenness with edge accumulation.  For each source s:
   BFS records, per node w, the number of shortest s-w paths (sigma) and
   the predecessor list; the backward pass accumulates dependencies
   delta(w) = sum over successors v of (sigma_w / sigma_v) (1 + delta_v),
   crediting each predecessor edge with its share. *)

let brandes g ~on_edge ~on_node =
  let n = Graph.node_count g in
  let sigma = Array.make n 0. in
  let dist = Array.make n (-1) in
  let preds = Array.make n [] in
  let delta = Array.make n 0. in
  let order = Array.make n 0 in
  for s = 0 to n - 1 do
    Array.fill sigma 0 n 0.;
    Array.fill dist 0 n (-1);
    Array.fill delta 0 n 0.;
    Array.iteri (fun i _ -> preds.(i) <- []) preds;
    let head = ref 0 and tail = ref 0 in
    let push v =
      order.(!tail) <- v;
      incr tail
    in
    sigma.(s) <- 1.;
    dist.(s) <- 0;
    push s;
    while !head < !tail do
      let u = order.(!head) in
      incr head;
      List.iter
        (fun (v, e) ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            push v
          end;
          if dist.(v) = dist.(u) + 1 then begin
            sigma.(v) <- sigma.(v) +. sigma.(u);
            preds.(v) <- (u, e) :: preds.(v)
          end)
        (Graph.neighbors g u)
    done;
    (* Backward pass in reverse BFS order. *)
    for i = !tail - 1 downto 0 do
      let w = order.(i) in
      List.iter
        (fun (u, e) ->
          let share = sigma.(u) /. sigma.(w) *. (1. +. delta.(w)) in
          on_edge e share;
          delta.(u) <- delta.(u) +. share)
        preds.(w);
      if w <> s then on_node w delta.(w)
    done
  done

let edge_betweenness g =
  let acc = Array.make (Graph.edge_count g) 0. in
  brandes g
    ~on_edge:(fun e share -> acc.(e) <- acc.(e) +. share)
    ~on_node:(fun _ _ -> ());
  acc

let node_betweenness g =
  let acc = Array.make (Graph.node_count g) 0. in
  brandes g
    ~on_edge:(fun _ _ -> ())
    ~on_node:(fun v d -> acc.(v) <- acc.(v) +. d);
  acc

let edge_usage_probability g =
  let n = Graph.node_count g in
  let pairs = float_of_int (n * (n - 1)) in
  if Float.equal pairs 0. then Array.make (Graph.edge_count g) 0.
  else Array.map (fun b -> b /. pairs) (edge_betweenness g)

(* P_f counts *directed*-link sharing (the reservation-competition notion
   of Drcomm).  A random connection uses each undirected edge e with
   probability p_e, split evenly between the two directions, so the
   expected number of directed links shared by two independent
   connections is sum over directions of (p_e / 2)^2 = sum_e p_e^2 / 2 —
   which first-order-approximates P(share >= 1 directed link). *)
let estimate_p_f g =
  Array.fold_left (fun acc p -> acc +. (p *. p /. 2.)) 0. (edge_usage_probability g)
