type path = { nodes : int list; edges : int list }

let hop_count p = List.length p.edges

let is_valid g p =
  match p.nodes with
  | [] -> false
  | first :: rest ->
    let distinct = List.sort_uniq compare p.nodes in
    List.length distinct = List.length p.nodes
    && List.length p.nodes = List.length p.edges + 1
    &&
    let rec walk u nodes edges =
      match (nodes, edges) with
      | [], [] -> true
      | v :: nodes', e :: edges' -> (
        match Graph.find_edge g u v with
        | Some e' when e' = e -> walk v nodes' edges'
        | _ -> false)
      | _ -> false
    in
    walk first rest p.edges

let all_usable _ = true

(* BFS recording, for each reached node, the (parent, edge) it was reached
   through; shared by [hops_from] and [shortest_path]. *)
let bfs ?(usable = all_usable) g src =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  let via = Array.make n (-1, -1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, e) ->
        if usable e && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          via.(v) <- (u, e);
          Queue.push v q
        end)
      (Graph.neighbors g u)
  done;
  (dist, via)

let hops_from ?usable g src =
  let dist, _ = bfs ?usable g src in
  dist

let rebuild_path via src dst =
  let rec walk v nodes edges =
    if v = src then { nodes = src :: nodes; edges }
    else
      let u, e = via.(v) in
      walk u (v :: nodes) (e :: edges)
  in
  walk dst [] []

let shortest_path ?usable g src dst =
  let dist, via = bfs ?usable g src in
  if dist.(dst) < 0 then None else Some (rebuild_path via src dst)

(* A tiny mutable binary min-heap over (key, node); enough for Dijkstra on
   graphs of a few hundred nodes. *)
module Heap = struct
  type t = { mutable size : int; mutable arr : (float * int) array }

  let create () = { size = 0; arr = Array.make 64 (0., -1) }
  let is_empty h = h.size = 0

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let push h key v =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) (0., -1) in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    h.arr.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.arr.((!i - 1) / 2) > fst h.arr.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    h.arr.(0) <- h.arr.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.arr.(l) < fst h.arr.(!smallest) then smallest := l;
      if r < h.size && fst h.arr.(r) < fst h.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top
end

let dijkstra ~weight ?(usable = all_usable) g src dst =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let via = Array.make n (-1, -1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  while not (Heap.is_empty heap) do
    let d, u = Heap.pop heap in
    if not settled.(u) && d <= dist.(u) then begin
      settled.(u) <- true;
      List.iter
        (fun (v, e) ->
          if usable e && not settled.(v) then begin
            let w = weight e in
            if w < 0. then invalid_arg "Paths.dijkstra: negative weight";
            let alt = d +. w in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              via.(v) <- (u, e);
              Heap.push heap alt v
            end
          end)
        (Graph.neighbors g u)
    end
  done;
  if Float.equal dist.(dst) infinity then None
  else Some (rebuild_path via src dst, dist.(dst))

let widest_path ~width g src dst =
  let n = Graph.node_count g in
  (* Maximise the bottleneck; among equal bottlenecks prefer fewer hops.
     Label = (-bottleneck, hops) ordered lexicographically, packed into the
     float key via a second pass: we instead run a modified Dijkstra keeping
     both components explicitly. *)
  let bottleneck = Array.make n neg_infinity in
  let hops = Array.make n max_int in
  let via = Array.make n (-1, -1) in
  let settled = Array.make n false in
  let better v b h = b > bottleneck.(v) || (Float.equal b bottleneck.(v) && h < hops.(v)) in
  bottleneck.(src) <- infinity;
  hops.(src) <- 0;
  let rec pick_next () =
    (* Linear scan is fine at n <= a few hundred. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not settled.(v)) && bottleneck.(v) > neg_infinity then
        if !best < 0
           || bottleneck.(v) > bottleneck.(!best)
           || (Float.equal bottleneck.(v) bottleneck.(!best) && hops.(v) < hops.(!best))
        then best := v
    done;
    if !best < 0 then ()
    else begin
      let u = !best in
      settled.(u) <- true;
      if u <> dst then begin
        List.iter
          (fun (v, e) ->
            if not settled.(v) then begin
              let b = Float.min bottleneck.(u) (width e) in
              let h = hops.(u) + 1 in
              if better v b h then begin
                bottleneck.(v) <- b;
                hops.(v) <- h;
                via.(v) <- (u, e)
              end
            end)
          (Graph.neighbors g u);
        pick_next ()
      end
    end
  in
  pick_next ();
  if Float.equal bottleneck.(dst) neg_infinity then None
  else Some (rebuild_path via src dst, bottleneck.(dst))

let eccentricity g u =
  let dist = hops_from g u in
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 dist

let diameter g =
  let worst = ref 0 in
  for u = 0 to Graph.node_count g - 1 do
    let e = eccentricity g u in
    if e > !worst then worst := e
  done;
  !worst

let average_hops g =
  let total = ref 0 and pairs = ref 0 in
  for u = 0 to Graph.node_count g - 1 do
    let dist = hops_from g u in
    Array.iteri
      (fun v d ->
        if v <> u && d > 0 then begin
          total := !total + d;
          incr pairs
        end)
      dist
  done;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs
