let check ~servers ~offered_load =
  if servers < 0 then invalid_arg "Erlang: negative server count";
  if offered_load < 0. then invalid_arg "Erlang: negative offered load"

(* Stable recursion: B(0) = 1, B(c) = a B(c-1) / (c + a B(c-1)). *)
let erlang_b ~servers ~offered_load =
  check ~servers ~offered_load;
  if Float.equal offered_load 0. then if servers = 0 then 1. else 0.
  else begin
    let b = ref 1. in
    for c = 1 to servers do
      b := offered_load *. !b /. (float_of_int c +. (offered_load *. !b))
    done;
    !b
  end

let required_servers ~offered_load ~target_blocking =
  if target_blocking <= 0. || target_blocking >= 1. then
    invalid_arg "Erlang.required_servers: target in (0, 1)";
  check ~servers:0 ~offered_load;
  let rec grow c b =
    if b <= target_blocking then c
    else
      let c = c + 1 in
      let b = offered_load *. b /. (float_of_int c +. (offered_load *. b)) in
      grow c b
  in
  grow 0 1.

let carried_load ~servers ~offered_load =
  offered_load *. (1. -. erlang_b ~servers ~offered_load)

let mmcc_occupancy ~servers ~offered_load =
  check ~servers ~offered_load;
  (* pi_k proportional to a^k / k!, computed incrementally. *)
  let unnorm = Array.make (servers + 1) 1. in
  for k = 1 to servers do
    unnorm.(k) <- unnorm.(k - 1) *. offered_load /. float_of_int k
  done;
  let total = Array.fold_left ( +. ) 0. unnorm in
  Array.map (fun x -> x /. total) unnorm
