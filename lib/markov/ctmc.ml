type t = { n : int; rates : float array (* row-major, diagonal unused *) }

let create n =
  if n <= 0 then invalid_arg "Ctmc.create: need at least one state";
  { n; rates = Array.make (n * n) 0. }

let state_count c = c.n

let check c s name =
  if s < 0 || s >= c.n then
    invalid_arg (Printf.sprintf "Ctmc.%s: state %d out of range [0, %d)" name s c.n)

let add_rate c ~src ~dst r =
  check c src "add_rate";
  check c dst "add_rate";
  if src = dst then invalid_arg "Ctmc.add_rate: src = dst";
  if r < 0. then invalid_arg "Ctmc.add_rate: negative rate";
  c.rates.((src * c.n) + dst) <- c.rates.((src * c.n) + dst) +. r

let rate c ~src ~dst =
  check c src "rate";
  check c dst "rate";
  if src = dst then 0. else c.rates.((src * c.n) + dst)

let exit_rate c s =
  let acc = ref 0. in
  for j = 0 to c.n - 1 do
    if j <> s then acc := !acc +. c.rates.((s * c.n) + j)
  done;
  !acc

let generator c =
  let q = Matrix.create c.n c.n in
  for i = 0 to c.n - 1 do
    for j = 0 to c.n - 1 do
      if i <> j then Matrix.set q i j c.rates.((i * c.n) + j)
    done;
    Matrix.set q i i (-.exit_rate c i)
  done;
  q

let stationary c =
  let obs = Obs.default () in
  if not (Obs.enabled obs) then Linsolve.solve_left_nullvector (generator c)
  else begin
    let t0 = Clock.now () in
    let pi = Linsolve.solve_left_nullvector (generator c) in
    let dt = Clock.elapsed_since t0 in
    Metrics.incr (Obs.counter obs "markov.stationary_solves");
    Metrics.observe (Obs.timer obs "markov.stationary_s") dt;
    Obs.event obs (Trace.Solve { what = "ctmc.stationary"; states = c.n; seconds = dt });
    pi
  end

let mean_reward c reward =
  let pi = stationary c in
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. reward i)) pi;
  !acc

let holding_time c s =
  check c s "holding_time";
  let e = exit_rate c s in
  if Float.equal e 0. then infinity else 1. /. e

let embedded_dtmc c =
  let p = Matrix.create c.n c.n in
  for i = 0 to c.n - 1 do
    let e = exit_rate c i in
    if Float.equal e 0. then Matrix.set p i i 1.
    else
      for j = 0 to c.n - 1 do
        if j <> i then Matrix.set p i j (c.rates.((i * c.n) + j) /. e)
      done
  done;
  p

let check_states c name states =
  if states = [] then invalid_arg (Printf.sprintf "Ctmc.%s: empty state list" name);
  List.iter (fun s -> check c s name) states

(* Mean hitting time of the target set: for non-target states the vector
   h satisfies (Q' h) = -1 where Q' is the generator restricted to
   non-target rows/columns (transitions into targets just disappear from
   the coupling, contributing their rate only to the diagonal). *)
let mean_first_passage c ~targets =
  check_states c "mean_first_passage" targets;
  let is_target = Array.make c.n false in
  List.iter (fun s -> is_target.(s) <- true) targets;
  let others = List.filter (fun s -> not is_target.(s)) (List.init c.n Fun.id) in
  let m = List.length others in
  let index = Hashtbl.create 16 in
  List.iteri (fun k s -> Hashtbl.replace index s k) others;
  (* Every non-target state was indexed just above. *)
  let row s = match Hashtbl.find_opt index s with Some k -> k | None -> assert false in
  let a = Matrix.create m m in
  let b = Array.make m (-1.) in
  List.iteri
    (fun k s ->
      Matrix.set a k k (-.exit_rate c s);
      List.iter
        (fun s' ->
          if s' <> s && not is_target.(s') then
            Matrix.set a k (row s') c.rates.((s * c.n) + s'))
        (List.init c.n Fun.id))
    others;
  let h = if m = 0 then [||] else Linsolve.gaussian a b in
  let out = Array.make c.n 0. in
  List.iteri (fun k s -> out.(s) <- h.(k)) others;
  (* A non-positive or non-finite solution signals unreachable targets
     (the restricted generator was not strictly substochastic). *)
  Array.iteri
    (fun s x ->
      if (not is_target.(s)) && (x < 0. || not (Float.is_finite x)) then
        raise Linsolve.Singular)
    out;
  out

let hitting_probability c ~targets ~avoid =
  check_states c "hitting_probability" targets;
  check_states c "hitting_probability" avoid;
  List.iter
    (fun s ->
      if List.mem s targets then
        invalid_arg "Ctmc.hitting_probability: targets and avoid overlap")
    avoid;
  let kind = Array.make c.n `Free in
  List.iter (fun s -> kind.(s) <- `Target) targets;
  List.iter (fun s -> kind.(s) <- `Avoid) avoid;
  let others = List.filter (fun s -> kind.(s) = `Free) (List.init c.n Fun.id) in
  let m = List.length others in
  let index = Hashtbl.create 16 in
  List.iteri (fun k s -> Hashtbl.replace index s k) others;
  (* Every free state was indexed just above. *)
  let row s = match Hashtbl.find_opt index s with Some k -> k | None -> assert false in
  (* p_s = sum_{s'} rate(s,s')/q_s * value(s'); rearranged into a linear
     system over free states. *)
  let a = Matrix.create m m in
  let b = Array.make m 0. in
  List.iteri
    (fun k s ->
      let q = exit_rate c s in
      if Float.equal q 0. then Matrix.set a k k 1. (* absorbing free state: never hits *)
      else begin
        Matrix.set a k k 1.;
        List.iter
          (fun s' ->
            if s' <> s then begin
              let w = c.rates.((s * c.n) + s') /. q in
              match kind.(s') with
              | `Free -> Matrix.add_to a k (row s') (-.w)
              | `Target -> b.(k) <- b.(k) +. w
              | `Avoid -> ()
            end)
          (List.init c.n Fun.id)
      end)
    others;
  let p = if m = 0 then [||] else Linsolve.gaussian a b in
  let out = Array.make c.n 0. in
  List.iter (fun s -> out.(s) <- 1.) targets;
  List.iteri (fun k s -> out.(s) <- p.(k)) others;
  out

(* Uniformisation: pick Lambda >= max exit rate, form the DTMC
   P = I + Q / Lambda, and sum the Poisson-weighted powers
   p(t) = sum_k Poisson(Lambda t, k) * p0 P^k, truncating once the
   remaining Poisson mass drops below eps. *)
let transient c ~p0 ~horizon ?(eps = 1e-10) () =
  if Array.length p0 <> c.n then invalid_arg "Ctmc.transient: p0 size mismatch";
  if horizon < 0. then invalid_arg "Ctmc.transient: negative horizon";
  if Float.equal horizon 0. then Array.copy p0
  else begin
    let max_exit = ref 0. in
    for s = 0 to c.n - 1 do
      max_exit := Float.max !max_exit (exit_rate c s)
    done;
    if Float.equal !max_exit 0. then Array.copy p0
    else begin
      let lambda = !max_exit *. 1.02 in
      let p =
        let q = generator c in
        Matrix.add (Matrix.identity c.n) (Matrix.scale (1. /. lambda) q)
      in
      let lt = lambda *. horizon in
      (* Poisson weights computed iteratively; start from k = 0. *)
      let result = Array.make c.n 0. in
      let current = ref (Array.copy p0) in
      let weight = ref (exp (-.lt)) in
      let cumulative = ref !weight in
      let k = ref 0 in
      let accumulate w v = Array.iteri (fun i x -> result.(i) <- result.(i) +. (w *. x)) v in
      accumulate !weight !current;
      (* Guard: lt can be large; exp(-lt) may underflow to 0.  In that case
         start accumulating once weights become representable — the simple
         scheme below stays correct because weights are monotone up to
         k ~ lt. *)
      while 1. -. !cumulative > eps && !k < 100_000 do
        incr k;
        current := Matrix.vec_mul !current p;
        weight := !weight *. lt /. float_of_int !k;
        (match classify_float !weight with
        | FP_nan | FP_infinite -> invalid_arg "Ctmc.transient: horizon too large"
        | FP_zero | FP_subnormal | FP_normal -> ());
        cumulative := !cumulative +. !weight;
        accumulate !weight !current
      done;
      let obs = Obs.default () in
      if Obs.enabled obs then begin
        (* Uniformisation is the one iterative solver here: expose how
           many matrix-vector products the truncation needed. *)
        Metrics.incr (Obs.counter obs "markov.transient_solves");
        Metrics.add (Obs.counter obs "markov.transient_steps") !k;
        Obs.event obs
          (Trace.Solve { what = "ctmc.transient"; states = c.n; seconds = 0. })
      end;
      (* Renormalise the truncation remainder. *)
      let total = Array.fold_left ( +. ) 0. result in
      if total > 0. then Array.map (fun x -> x /. total) result else result
    end
  end
