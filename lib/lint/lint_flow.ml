(* R7/R8/R9: the interprocedural rules built on {!Lint_interproc}.

   R7 — cross-domain races: a top-level mutable value reachable,
   directly or through any call chain, from a worker closure passed to
   Sweep.map / Sweep.open_loop / Domain.spawn.

   R8 — event-loop hygiene: transitively-blocking calls, and unbounded
   List/Seq traversals in the loop layer itself, reachable from the
   serving plane's per-connection dispatch roots.

   R9 — wall-clock taint: Unix.gettimeofday / Unix.time / Sys.time and
   anything transitively built on them, outside lib/obs/clock.ml. *)

module SS = Lint_interproc.SS
open Lint_interproc

type config = {
  r7_exempt_units : string list;
  r8_roots : string list;
  r9_clock_source : string;
}

(* The Obs layer implements the documented fork/absorb merge protocol
   (DESIGN §8): its internal mutable state is per-domain by construction
   and merged explicitly, so worker code reaching it is the sanctioned
   path, not a race.  Sweep owns the domain pool itself. *)
let default_r7_exempt =
  [
    "Obs";
    "Metrics";
    "Trace";
    "Span";
    "Stats";
    "Heavy";
    "Flight";
    "Snapshot";
    "Reqtrace";
    "Clock";
    "Jsonx";
    "Sweep";
  ]

(* The per-connection dispatch path of the serving plane.  The fixture
   loop rides along so the verify.sh negative control (and the
   acceptance run over test/lintfix) exercises R8 through the default
   CLI configuration; a root that resolves to no definition contributes
   nothing. *)
let default_r8_roots = [ "Serve_server.handle_line"; "Lintfix_evloop.dispatch" ]

let default_r9_clock_source = "lib/obs/clock.ml"

let default_config =
  {
    r7_exempt_units = default_r7_exempt;
    r8_roots = default_r8_roots;
    r9_clock_source = default_r9_clock_source;
  }

let finding rule (u : summary) (pos : pos) message =
  {
    Lint.rule;
    file = u.s_source;
    line = pos.line;
    col = pos.col;
    message;
  }

let chain names = String.concat " -> " names

(* ------------------------------------------------------------------ *)
(* R7: cross-domain races.                                             *)

let r7_mutable_globals cfg db =
  List.fold_left
    (fun acc u ->
      if List.mem u.s_modname cfg.r7_exempt_units then acc
      else
        List.fold_left
          (fun acc d ->
            match d.d_mutable with Some _ -> SS.add d.d_name acc | None -> acc)
          acc u.s_defs)
    SS.empty (units db)

let r7_mutable_kind db name =
  match find_def db name with
  | Some (d, _) -> Option.value ~default:"mutable" d.d_mutable
  | None -> "mutable"

let check_r7 ~emit cfg db =
  let muts = r7_mutable_globals cfg db in
  if not (SS.is_empty muts) then begin
    let exempt u = List.mem u.s_modname cfg.r7_exempt_units in
    let touchers =
      transitive db ~seeds:muts ~stop:(fun u _ -> exempt u) ()
    in
    List.iter
      (fun u ->
        if not (exempt u) then
          List.iter
            (fun sp ->
              List.iter
                (fun (w : use) ->
                  if SS.mem w.u_name muts then
                    emit
                      (finding Lint.R7 u w.u_pos
                         (Printf.sprintf
                            "%s worker shares top-level mutable %s %s across \
                             domains; route per-domain state through the Obs \
                             fork/absorb protocol or an Atomic"
                            sp.sp_kind
                            (r7_mutable_kind db w.u_name)
                            w.u_name))
                  else if SS.mem w.u_name touchers then
                    let via =
                      match witness db ~seeds:muts ~tainted:touchers w.u_name with
                      | Some c -> chain c
                      | None -> w.u_name
                    in
                    emit
                      (finding Lint.R7 u w.u_pos
                         (Printf.sprintf
                            "%s worker calls %s, which reaches top-level \
                             mutable state without the fork/absorb merge \
                             protocol (%s); pass the state in, or merge \
                             per-domain copies explicitly"
                            sp.sp_kind w.u_name via)))
                sp.sp_worker)
            u.s_spawns)
      (units db)
  end

(* ------------------------------------------------------------------ *)
(* R8: event-loop hygiene.                                             *)

let check_r8 ~emit cfg db =
  let roots = SS.of_list cfg.r8_roots in
  let reach = reachable db ~roots in
  if not (SS.is_empty reach) then begin
    (* The loop layer: the units that own a root.  Unbounded traversals
       are flagged there only — beneath the loop, traversals are the
       request's measured service work, not loop overhead. *)
    let root_units =
      SS.fold
        (fun r acc ->
          match find_def db r with
          | Some (_, u) when SS.mem r roots -> SS.add u.s_source acc
          | _ -> acc)
        reach SS.empty
    in
    List.iter
      (fun u ->
        List.iter
          (fun d ->
            if SS.mem d.d_name reach then begin
              let via =
                match path_from db ~roots d.d_name with
                | Some c -> chain c
                | None -> d.d_name
              in
              List.iter
                (fun (b : use) ->
                  emit
                    (finding Lint.R8 u b.u_pos
                       (Printf.sprintf
                          "blocking %s on the event-loop dispatch path (%s); \
                           the select loop must never block outside the \
                           select itself — buffer the I/O and wait for \
                           readiness"
                          b.u_name via)))
                d.d_blocking;
              if SS.mem u.s_source root_units then
                List.iter
                  (fun (tr : use) ->
                    emit
                      (finding Lint.R8 u tr.u_pos
                         (Printf.sprintf
                            "unbounded %s on the event-loop dispatch path \
                             (%s); per-request work in the loop layer must \
                             not scale with connection count — index it or \
                             move it behind the broker"
                            tr.u_name via)))
                  d.d_traversals
            end)
          u.s_defs)
      (units db)
  end

(* ------------------------------------------------------------------ *)
(* R9: wall-clock taint.                                               *)

let check_r9 ~emit cfg db =
  let sanctioned u = u.s_source = cfg.r9_clock_source in
  let tainted =
    transitive db ~seeds:wall_prims ~stop:(fun u _ -> sanctioned u) ()
  in
  List.iter
    (fun u ->
      if not (sanctioned u) then
        List.iter
          (fun d ->
            List.iter
              (fun (w : use) ->
                emit
                  (finding Lint.R9 u w.u_pos
                     (Printf.sprintf
                        "%s reads the wall clock outside %s; durations come \
                         off the monotonic Clock.now, calendar labels off \
                         Clock.wall_s"
                        w.u_name cfg.r9_clock_source)))
              d.d_wall;
            List.iter
              (fun (r : use) ->
                if SS.mem r.u_name tainted then
                  let via =
                    match
                      witness db ~seeds:wall_prims ~tainted r.u_name
                    with
                    | Some c -> chain c
                    | None -> r.u_name
                  in
                  emit
                    (finding Lint.R9 u r.u_pos
                       (Printf.sprintf
                          "%s transitively reads the wall clock (%s); alias \
                           and re-export chains are banned outside %s — use \
                           the monotonic Clock"
                          r.u_name via cfg.r9_clock_source)))
              d.d_refs)
          u.s_defs)
    (units db)

let check ~emit ~enabled cfg db =
  if enabled Lint.R7 then check_r7 ~emit cfg db;
  if enabled Lint.R8 then check_r8 ~emit cfg db;
  if enabled Lint.R9 then check_r9 ~emit cfg db
