(** Rule catalogue and findings for the project linter.

    [drqos_lint] walks the typed AST recorded in the [.cmt] files dune
    already produces and rejects, at build time, the bug classes the
    fuzzer (PR 3) and the trace audit (PR 4) kept finding at runtime:
    float [=] in numerical code, catch-alls silently absorbing new
    constructors of closed project variants, partial stdlib functions,
    swallowed exceptions, stray prints bypassing {!Obs}, and global
    observability state mutated from inside [Sweep.map] workers.

    This module holds what every layer shares: rule identities,
    severities, and the finding record with its text/JSON renderings.
    The analyses themselves live in {!Lint_rules} (syntactic, per
    compilation unit) and, for everything that crosses function or
    module boundaries, on the {!Lint_interproc} engine: {!Lint_taint}
    (R6, the original Obs-state fix-point, now the engine's first
    client) and {!Lint_flow} (R7 cross-domain races, R8 event-loop
    hygiene, R9 wall-clock taint).  {!Lint_driver} orchestrates, and
    {!Lint_baseline} applies suppressions. *)

type rule_id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

type severity = Error | Warning

val all_rules : rule_id list
(** In catalogue order, R1 first. *)

val rule_name : rule_id -> string
(** ["R1"] .. ["R9"]. *)

val rule_of_name : string -> rule_id option

val severity : rule_id -> severity

val describe : rule_id -> string
(** One-line catalogue entry, e.g. for [--help] output. *)

type finding = {
  rule : rule_id;
  file : string;  (** build-root-relative source path, e.g. [lib/obs/trace.ml]. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler diagnostics. *)
  message : string;
}

val compare_finding : finding -> finding -> int
(** Orders by file, then line, column, rule — the report order. *)

val finding_to_string : finding -> string
(** [file:line:col: [R1/error] message] — one line, no trailing newline. *)

val finding_to_json : finding -> Jsonx.t
(** [{"rule","severity","file","line","col","message"}]. *)

val severity_name : severity -> string
