open Typedtree
module SS = Set.Make (String)

type unit_info = {
  u_source : string;
  u_modname : string;
  u_structure : Typedtree.structure;
}

(* ------------------------------------------------------------------ *)
(* The program database.  Everything below is plain data — no typedtree
   escapes [summarize] — so a unit's summary can round-trip through the
   JSON cache and an unchanged .cmt never has to be re-read, let alone
   re-walked, by the interprocedural rules. *)

type pos = { line : int; col : int }

type use = { u_name : string; u_pos : pos }

type def = {
  d_name : string;  (* "Module.value", nested modules dotted in *)
  d_pos : pos;
  d_refs : use list;  (* globals referenced, first occurrence per name *)
  d_blocking : use list;  (* direct uses of blocking primitives *)
  d_wall : use list;  (* direct wall-clock reads *)
  d_traversals : use list;  (* unbounded List/Seq traversal calls *)
  d_alloc_loop : use list;  (* allocating calls under a while/for loop *)
  d_mutable : string option;  (* Some kind when the binding holds mutable state *)
}

type spawn = {
  sp_kind : string;  (* "Sweep.map" | "Sweep.open_loop" | "Domain.spawn" *)
  sp_pos : pos;
  sp_worker : use list;  (* every global referenced inside the worker arg(s) *)
}

type summary = {
  s_source : string;
  s_modname : string;
  s_defs : def list;
  s_spawns : spawn list;
}

type t = {
  units : summary list;
  def_tbl : (string, def * summary) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Effect tables.  Baked into the summaries (and therefore into the
   cache format — bump [cache_version] when touching them). *)

let blocking_prims =
  SS.of_list
    [
      "Unix.select";
      "Unix.read";
      "Unix.write";
      "Unix.write_substring";
      "Unix.single_write";
      "Unix.single_write_substring";
      "Unix.sleep";
      "Unix.sleepf";
      "Unix.accept";
      "Unix.connect";
      "Unix.recv";
      "Unix.recvfrom";
      "Unix.send";
      "Unix.send_substring";
      "Unix.sendto";
      "Unix.wait";
      "Unix.waitpid";
      "Unix.system";
      "Domain.join";
      "Thread.join";
      "Thread.delay";
      "Mutex.lock";
      "Condition.wait";
      "input_line";
      "input";
      "really_input";
      "really_input_string";
      "read_line";
      "read_int";
      "read_float";
    ]

let wall_prims = SS.of_list [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* Strict traversals only: [Seq.map] and friends are lazy O(1), so the
   Seq entries are the forcing combinators. *)
let traversal_prims =
  SS.of_list
    [
      "List.iter";
      "List.iteri";
      "List.iter2";
      "List.map";
      "List.mapi";
      "List.map2";
      "List.rev_map";
      "List.filter";
      "List.filter_map";
      "List.concat_map";
      "List.fold_left";
      "List.fold_right";
      "List.sort";
      "List.stable_sort";
      "List.sort_uniq";
      "List.length";
      "List.mem";
      "List.memq";
      "List.assoc";
      "List.assoc_opt";
      "List.find";
      "List.find_opt";
      "List.find_map";
      "List.partition";
      "List.for_all";
      "List.exists";
      "Seq.iter";
      "Seq.iteri";
      "Seq.fold_left";
      "Seq.length";
      "Seq.for_all";
      "Seq.exists";
      "Seq.find";
    ]

let alloc_prims =
  SS.of_list
    [
      "Array.make";
      "Array.init";
      "Array.create_float";
      "Bytes.create";
      "Bytes.make";
      "Buffer.create";
      "Hashtbl.create";
      "String.make";
      "String.concat";
      "List.init";
    ]

(* Head type constructors whose values are shared mutable state.  Atomic
   and Domain.DLS are deliberately absent: they are the sanctioned
   cross-domain primitives. *)
let mutable_type_heads =
  SS.of_list
    [ "ref"; "array"; "bytes"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

(* Spawn points and which argument carries the worker closure. *)
let spawn_specs =
  [
    ("Sweep.map", `First_nolabel);
    ("Domain.spawn", `First_nolabel);
    ("Sweep.open_loop", `All_args);
  ]

(* ------------------------------------------------------------------ *)
(* Summarising one unit: a single typed-AST pass.                      *)

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  { line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let rec pattern_vars : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (q, id, _) -> Ident.name id :: pattern_vars q
  | Tpat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

(* The binding itself holds mutable state when its head type constructor
   is a known mutable container, or the right-hand side is a record
   literal with a mutable field / an array literal.  Functions (arrow
   heads) never qualify: [let f () = ref 0] makes a fresh ref per call. *)
let mutable_kind e =
  let by_type =
    match Types.get_desc e.exp_type with
    | Types.Tconstr (p, _, _) ->
      let name = Lint_rules.ident_name p in
      if SS.mem name mutable_type_heads then Some name else None
    | _ -> None
  in
  match by_type with
  | Some _ as k -> k
  | None -> (
    match e.exp_desc with
    | Texp_array _ -> Some "array"
    | Texp_record { fields; _ } ->
      if
        Array.exists
          (fun (lbl, _) -> lbl.Types.lbl_mut = Asttypes.Mutable)
          fields
      then Some "mutable record"
      else None
    | _ -> None)

(* Collect every global referenced under [e] (all occurrences, in
   traversal order). *)
let refs_under ~modname e =
  let acc = ref [] in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
      match Lint_rules.global_name ~modname path with
      | Some g -> acc := { u_name = g; u_pos = pos_of e.exp_loc } :: !acc
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  List.rev !acc

type collect = {
  mutable c_refs : use list;  (* reversed; deduped on close *)
  mutable c_seen : SS.t;
  mutable c_blocking : use list;
  mutable c_wall : use list;
  mutable c_traversals : use list;
  mutable c_alloc_loop : use list;
}

let new_collect () =
  {
    c_refs = [];
    c_seen = SS.empty;
    c_blocking = [];
    c_wall = [];
    c_traversals = [];
    c_alloc_loop = [];
  }

(* Walk one definition body, filling [c] and appending any spawn sites
   found under it to [spawns]. *)
let scan_body ~modname ~spawns c body =
  let loop_depth = ref 0 in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
      match Lint_rules.global_name ~modname path with
      | None -> ()
      | Some g ->
        let u = { u_name = g; u_pos = pos_of e.exp_loc } in
        if not (SS.mem g c.c_seen) then begin
          c.c_seen <- SS.add g c.c_seen;
          c.c_refs <- u :: c.c_refs
        end;
        if SS.mem g blocking_prims then c.c_blocking <- u :: c.c_blocking;
        if SS.mem g wall_prims then c.c_wall <- u :: c.c_wall;
        if SS.mem g traversal_prims then c.c_traversals <- u :: c.c_traversals;
        if !loop_depth > 0 && SS.mem g alloc_prims then
          c.c_alloc_loop <- u :: c.c_alloc_loop)
    | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (path, _, _) -> (
        match Lint_rules.global_name ~modname path with
        | None -> ()
        | Some g -> (
          match List.assoc_opt g spawn_specs with
          | None -> ()
          | Some which ->
            let worker_exprs =
              match which with
              | `First_nolabel -> (
                match
                  List.find_map
                    (fun (label, arg) ->
                      match (label, arg) with
                      | Asttypes.Nolabel, Some w -> Some w
                      | _ -> None)
                    args
                with
                | Some w -> [ w ]
                | None -> [])
              | `All_args -> List.filter_map snd args
            in
            let worker =
              List.concat_map (refs_under ~modname) worker_exprs
            in
            spawns :=
              { sp_kind = g; sp_pos = pos_of e.exp_loc; sp_worker = worker }
              :: !spawns))
      | _ -> ())
    | _ -> ());
    match e.exp_desc with
    | Texp_while _ | Texp_for _ ->
      incr loop_depth;
      Tast_iterator.default_iterator.expr sub e;
      decr loop_depth
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body

let close_def ~name ~pos (c : collect) ~mutable_ =
  {
    d_name = name;
    d_pos = pos;
    d_refs = List.rev c.c_refs;
    d_blocking = List.rev c.c_blocking;
    d_wall = List.rev c.c_wall;
    d_traversals = List.rev c.c_traversals;
    d_alloc_loop = List.rev c.c_alloc_loop;
    d_mutable = mutable_;
  }

let summarize u =
  let defs = ref [] in
  let spawns = ref [] in
  (* [anon] gathers structure-level code bound to no name (let () = …,
     toplevel evals): it participates in the fix-points as a caller and
     its direct effects are still reportable. *)
  let rec walk_structure ~modname str =
    let anon = new_collect () in
    let anon_pos = ref { line = 1; col = 0 } in
    let anon_used = ref false in
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match pattern_vars vb.vb_pat with
              | [] ->
                if not !anon_used then begin
                  anon_used := true;
                  anon_pos := pos_of vb.vb_loc
                end;
                scan_body ~modname ~spawns anon vb.vb_expr
              | vars ->
                let c = new_collect () in
                scan_body ~modname ~spawns c vb.vb_expr;
                let mutable_ = mutable_kind vb.vb_expr in
                List.iter
                  (fun v ->
                    defs :=
                      close_def
                        ~name:(modname ^ "." ^ v)
                        ~pos:(pos_of vb.vb_loc) c ~mutable_
                      :: !defs)
                  vars)
            vbs
        | Tstr_eval (e, _) ->
          if not !anon_used then begin
            anon_used := true;
            anon_pos := pos_of item.str_loc
          end;
          scan_body ~modname ~spawns anon e
        | Tstr_module mb -> (
          match (mb.mb_id, mb.mb_expr.mod_desc) with
          | Some id, Tmod_structure inner ->
            walk_structure ~modname:(modname ^ "." ^ Ident.name id) inner
          | _ -> () (* functors, aliases, packs: out of scope *))
        | _ -> ())
      str.str_items;
    if !anon_used then
      defs :=
        close_def ~name:(modname ^ ".(toplevel)") ~pos:!anon_pos anon
          ~mutable_:None
        :: !defs
  in
  walk_structure ~modname:u.u_modname u.u_structure;
  {
    s_source = u.u_source;
    s_modname = u.u_modname;
    s_defs = List.rev !defs;
    s_spawns = List.rev !spawns;
  }

(* ------------------------------------------------------------------ *)
(* Database + fix-points.                                              *)

let build units =
  let def_tbl = Hashtbl.create 1024 in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          (* First binding wins on (pathological) duplicate names; the
             driver walks units in sorted order so this is stable. *)
          if not (Hashtbl.mem def_tbl d.d_name) then
            Hashtbl.add def_tbl d.d_name (d, s))
        s.s_defs)
    units;
  { units; def_tbl }

let units t = t.units
let find_def t name = Hashtbl.find_opt t.def_tbl name

(* Least set T of definition names such that a def lands in T exactly
   when [stop] does not hold for it and its body references a name in
   [seeds] or in T.  The classic backward (callee-to-caller) taint
   closure; [stop] is the sanitizer hook. *)
let transitive t ~seeds ?(stop = fun _ _ -> false) () =
  let tainted = ref SS.empty in
  let hot g = SS.mem g seeds || SS.mem g !tainted in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        List.iter
          (fun d ->
            if
              (not (SS.mem d.d_name !tainted))
              && (not (stop s d))
              && List.exists (fun u -> hot u.u_name) d.d_refs
            then begin
              tainted := SS.add d.d_name !tainted;
              changed := true
            end)
          s.s_defs)
      t.units
  done;
  !tainted

(* Shortest reference chain [name; …; seed] through tainted defs, for
   finding messages.  BFS over recorded reference order, so the chain is
   deterministic for a given database. *)
let witness t ~seeds ~tainted name =
  if SS.mem name seeds then Some [ name ]
  else if not (SS.mem name tainted) then None
  else begin
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Queue.add name queue;
    Hashtbl.replace parent name None;
    let hit = ref None in
    while !hit = None && not (Queue.is_empty queue) do
      let cur = Queue.take queue in
      match find_def t cur with
      | None -> ()
      | Some (d, _) ->
        List.iter
          (fun u ->
            if !hit = None && not (Hashtbl.mem parent u.u_name) then
              if SS.mem u.u_name seeds then begin
                Hashtbl.replace parent u.u_name (Some cur);
                hit := Some u.u_name
              end
              else if SS.mem u.u_name tainted then begin
                Hashtbl.replace parent u.u_name (Some cur);
                Queue.add u.u_name queue
              end)
          d.d_refs
    done;
    match !hit with
    | None -> None
    | Some seed ->
      let rec unwind acc n =
        match Hashtbl.find_opt parent n with
        | Some (Some p) -> unwind (n :: acc) p
        | _ -> n :: acc
      in
      Some (unwind [] seed)
  end

(* Forward closure over the call graph: every definition reachable from
   [roots] through recorded references (roots included when they are
   defs). *)
let reachable t ~roots =
  let seen = ref SS.empty in
  let queue = Queue.create () in
  SS.iter
    (fun r ->
      if Hashtbl.mem t.def_tbl r then begin
        seen := SS.add r !seen;
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let cur = Queue.take queue in
    match find_def t cur with
    | None -> ()
    | Some (d, _) ->
      List.iter
        (fun u ->
          if (not (SS.mem u.u_name !seen)) && Hashtbl.mem t.def_tbl u.u_name
          then begin
            seen := SS.add u.u_name !seen;
            Queue.add u.u_name queue
          end)
        d.d_refs
  done;
  !seen

(* Shortest call path [root; …; name] for R8 messages. *)
let path_from t ~roots name =
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  SS.iter
    (fun r ->
      if Hashtbl.mem t.def_tbl r && not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r None;
        Queue.add r queue
      end)
    roots;
  let found = ref (SS.mem name roots && Hashtbl.mem t.def_tbl name) in
  while (not !found) && not (Queue.is_empty queue) do
    let cur = Queue.take queue in
    if cur = name then found := true
    else
      match find_def t cur with
      | None -> ()
      | Some (d, _) ->
        List.iter
          (fun u ->
            if
              Hashtbl.mem t.def_tbl u.u_name
              && not (Hashtbl.mem parent u.u_name)
            then begin
              Hashtbl.replace parent u.u_name (Some cur);
              Queue.add u.u_name queue
            end)
          d.d_refs
  done;
  if not (Hashtbl.mem parent name) then None
  else begin
    let rec unwind acc n =
      match Hashtbl.find_opt parent n with
      | Some (Some p) -> unwind (n :: acc) p
      | _ -> n :: acc
    in
    Some (unwind [] name)
  end

(* ------------------------------------------------------------------ *)
(* Cache (de)serialisation via Jsonx.  Bump when the summary shape or
   any effect table changes: a stale-format cache is silently ignored,
   never misread. *)

let cache_version = 1

let use_to_json u =
  Jsonx.Obj
    [
      ("n", Jsonx.String u.u_name);
      ("l", Jsonx.Int u.u_pos.line);
      ("c", Jsonx.Int u.u_pos.col);
    ]

let use_of_json j =
  match
    ( Option.bind (Jsonx.member "n" j) Jsonx.to_str,
      Option.bind (Jsonx.member "l" j) Jsonx.to_int,
      Option.bind (Jsonx.member "c" j) Jsonx.to_int )
  with
  | Some n, Some l, Some c -> Some { u_name = n; u_pos = { line = l; col = c } }
  | _ -> None

let uses_to_json us = Jsonx.List (List.map use_to_json us)

let uses_of_json j =
  match j with
  | Jsonx.List l ->
    let us = List.filter_map use_of_json l in
    if List.length us = List.length l then Some us else None
  | _ -> None

let def_to_json d =
  Jsonx.Obj
    ([
       ("name", Jsonx.String d.d_name);
       ("line", Jsonx.Int d.d_pos.line);
       ("col", Jsonx.Int d.d_pos.col);
       ("refs", uses_to_json d.d_refs);
       ("blocking", uses_to_json d.d_blocking);
       ("wall", uses_to_json d.d_wall);
       ("traversals", uses_to_json d.d_traversals);
       ("alloc_loop", uses_to_json d.d_alloc_loop);
     ]
    @ match d.d_mutable with
      | None -> []
      | Some k -> [ ("mutable", Jsonx.String k) ])

let def_of_json j =
  let field k = Option.bind (Jsonx.member k j) uses_of_json in
  match
    ( Option.bind (Jsonx.member "name" j) Jsonx.to_str,
      Option.bind (Jsonx.member "line" j) Jsonx.to_int,
      Option.bind (Jsonx.member "col" j) Jsonx.to_int,
      field "refs",
      field "blocking",
      field "wall",
      field "traversals",
      field "alloc_loop" )
  with
  | ( Some name,
      Some line,
      Some col,
      Some refs,
      Some blocking,
      Some wall,
      Some traversals,
      Some alloc_loop ) ->
    Some
      {
        d_name = name;
        d_pos = { line; col };
        d_refs = refs;
        d_blocking = blocking;
        d_wall = wall;
        d_traversals = traversals;
        d_alloc_loop = alloc_loop;
        d_mutable = Option.bind (Jsonx.member "mutable" j) Jsonx.to_str;
      }
  | _ -> None

let spawn_to_json sp =
  Jsonx.Obj
    [
      ("kind", Jsonx.String sp.sp_kind);
      ("line", Jsonx.Int sp.sp_pos.line);
      ("col", Jsonx.Int sp.sp_pos.col);
      ("worker", uses_to_json sp.sp_worker);
    ]

let spawn_of_json j =
  match
    ( Option.bind (Jsonx.member "kind" j) Jsonx.to_str,
      Option.bind (Jsonx.member "line" j) Jsonx.to_int,
      Option.bind (Jsonx.member "col" j) Jsonx.to_int,
      Option.bind (Jsonx.member "worker" j) uses_of_json )
  with
  | Some kind, Some line, Some col, Some worker ->
    Some { sp_kind = kind; sp_pos = { line; col }; sp_worker = worker }
  | _ -> None

let all_or_none of_json l =
  let xs = List.filter_map of_json l in
  if List.length xs = List.length l then Some xs else None

let summary_to_json s =
  Jsonx.Obj
    [
      ("source", Jsonx.String s.s_source);
      ("modname", Jsonx.String s.s_modname);
      ("defs", Jsonx.List (List.map def_to_json s.s_defs));
      ("spawns", Jsonx.List (List.map spawn_to_json s.s_spawns));
    ]

let summary_of_json j =
  match
    ( Option.bind (Jsonx.member "source" j) Jsonx.to_str,
      Option.bind (Jsonx.member "modname" j) Jsonx.to_str,
      Jsonx.member "defs" j,
      Jsonx.member "spawns" j )
  with
  | Some source, Some modname, Some (Jsonx.List defs), Some (Jsonx.List spawns)
    -> (
    match (all_or_none def_of_json defs, all_or_none spawn_of_json spawns) with
    | Some defs, Some spawns ->
      Some
        { s_source = source; s_modname = modname; s_defs = defs; s_spawns = spawns }
    | _ -> None)
  | _ -> None
