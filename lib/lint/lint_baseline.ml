type entry = {
  b_rule : Lint.rule_id;
  b_file : string;
  b_line : int;
  b_reason : string;
}

type outcome = {
  kept : Lint.finding list;
  suppressed : int;
  stale : entry list;
}

let parse_line ~file ~n line =
  let fail msg = Error (Printf.sprintf "%s:%d: %s" file n msg) in
  match String.split_on_char ' ' (String.trim line) with
  | rule :: loc :: (_ :: _ as reason_words) -> (
    let reason = String.trim (String.concat " " reason_words) in
    if reason = "" then fail "missing justification"
    else
      match Lint.rule_of_name rule with
      | None -> fail (Printf.sprintf "unknown rule id %S" rule)
      | Some b_rule -> (
        match String.rindex_opt loc ':' with
        | None -> fail (Printf.sprintf "expected <file>:<line>, got %S" loc)
        | Some i -> (
          let b_file = String.sub loc 0 i in
          let ln = String.sub loc (i + 1) (String.length loc - i - 1) in
          match int_of_string_opt ln with
          | Some b_line when b_line > 0 ->
            Ok { b_rule; b_file; b_line; b_reason = reason }
          | _ -> fail (Printf.sprintf "bad line number %S" ln))))
  | [ _ ] | [ _; _ ] | [] ->
    fail "expected: <rule> <file>:<line> <justification>"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    let lines = String.split_on_char '\n' text in
    let rec go acc n = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let t = String.trim line in
        if t = "" || t.[0] = '#' then go acc (n + 1) rest
        else (
          match parse_line ~file:path ~n line with
          | Error _ as e -> e
          | Ok entry -> go (entry :: acc) (n + 1) rest)
    in
    go [] 1 lines

let matches e (f : Lint.finding) =
  e.b_rule = f.rule && e.b_file = f.file && e.b_line = f.line

let apply entries findings =
  let used = Array.make (List.length entries) false in
  let kept =
    List.filter
      (fun f ->
        let hit = ref false in
        List.iteri
          (fun i e ->
            if matches e f then begin
              used.(i) <- true;
              hit := true
            end)
          entries;
        not !hit)
      findings
  in
  let stale =
    List.filteri (fun i _ -> not used.(i)) entries
  in
  { kept; suppressed = List.length findings - List.length kept; stale }

let of_finding ~reason (f : Lint.finding) =
  { b_rule = f.rule; b_file = f.file; b_line = f.line; b_reason = reason }

let entry_to_string e =
  Printf.sprintf "%s %s:%d %s" (Lint.rule_name e.b_rule) e.b_file e.b_line
    e.b_reason

let entry_to_json e =
  Jsonx.Obj
    [
      ("rule", Jsonx.String (Lint.rule_name e.b_rule));
      ("file", Jsonx.String e.b_file);
      ("line", Jsonx.Int e.b_line);
      ("reason", Jsonx.String e.b_reason);
    ]
