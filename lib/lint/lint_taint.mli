(** R6 — domain-safety of [Sweep.map] worker functions.

    [Sweep.map] hands every worker a private {!Obs.fork}; mutating the
    domain-local default context from inside a worker ([Obs.set_default],
    [Obs.install], or any function that transitively reaches one)
    clobbers that fork and re-introduces exactly the cross-domain
    metrics races PR 2 removed.  Reading [Obs.default] through a
    component's [?obs] fallback is sanctioned by the DLS design and not
    flagged — but a worker lambda naming [Obs.default] {e directly} is:
    it already receives the context it should use as its first argument.

    Originally a bespoke taint pass; now the first client of the
    {!Lint_interproc} engine.  The semantics are unchanged: a backward
    {!Lint_interproc.transitive} fix-point from the
    [Obs.set_default] / [Obs.install] seeds (taint does not flow
    {e through} [Sweep.map] itself — it installs worker forks by
    design), then every [Sweep.map] spawn site's worker closure is
    checked for forbidden direct references and calls into the tainted
    set.  The [Obs] and [Sweep] units are exempt: they own the
    domain-local default cell. *)

val seeds : Lint_interproc.SS.t

val worker_forbidden : Lint_interproc.SS.t

val tainted : Lint_interproc.t -> Lint_interproc.SS.t
(** The fix-point's result on its own, exposed for tests: definitions
    that transitively reach an observability mutator. *)

val check : emit:(Lint.finding -> unit) -> Lint_interproc.t -> unit
(** Run the whole pass over the program database.  [emit] receives R6
    findings only. *)
