(** R6 — domain-safety of [Sweep.map] worker functions.

    [Sweep.map] hands every worker a private {!Obs.fork}; mutating the
    domain-local default context from inside a worker ([Obs.set_default],
    [Obs.install], or any function that transitively reaches one)
    clobbers that fork and re-introduces exactly the cross-domain
    metrics races PR 2 removed.  Reading [Obs.default] through a
    component's [?obs] fallback is sanctioned by the DLS design and not
    flagged — but a worker lambda naming [Obs.default] {e directly} is:
    it already receives the context it should use as its first argument.

    The analysis is a cross-unit taint pass over every loaded [.cmt]:

    + collect, per top-level value [M.x], the set of global names its
      body references (unit-local idents are resolved optimistically to
      [M.name]; shadowing is ignored);
    + fix-point: a value is tainted when it references
      [Obs.set_default] / [Obs.install] or a tainted value.  Taint does
      not flow {e through} [Sweep.map] itself (it installs worker forks
      by design);
    + flag every identifier inside the worker argument of a
      [Sweep.map] call site whose name is tainted, plus direct
      [Obs.default] / [Obs.set_default] / [Obs.install] references.

    Granularity is top-level [let]s; values inside nested modules are
    not tracked (none of the observability mutators live there). *)

type unit_info = {
  u_source : string;  (** build-root-relative source path. *)
  u_modname : string;
  u_structure : Typedtree.structure;
}

val check : emit:(Lint.finding -> unit) -> unit_info list -> unit
(** Run the whole pass over one load of the project.  [emit] receives
    R6 findings only. *)

val tainted_globals : unit_info list -> string list
(** The fix-point's result (sorted), exposed for tests: global values
    that transitively reach an observability mutator. *)
