type config = {
  roots : string list;
  rules : Lint.rule_id list;
  protect : string list;
  lib_prefix : string;
  r8_roots : string list;
  summary_cache : string option;
}

let default_protect = [ "Trace.event"; "Op.t" ]

let default_config ~roots =
  {
    roots;
    rules = Lint.all_rules;
    protect = default_protect;
    lib_prefix = "lib/";
    r8_roots = Lint_flow.default_r8_roots;
    summary_cache = None;
  }

(* ------------------------------------------------------------------ *)
(* Input discovery.                                                    *)

let is_cmt path = Filename.check_suffix path ".cmt"

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> walk acc (Filename.concat path name))
      acc
      (let names = Sys.readdir path in
       Array.sort String.compare names;
       names)
  else if is_cmt path then path :: acc
  else acc

let find_cmts roots =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | root :: rest ->
      if not (Sys.file_exists root) then
        Error (Printf.sprintf "no such file or directory: %s" root)
      else if (not (Sys.is_directory root)) && not (is_cmt root) then
        Error (Printf.sprintf "not a .cmt file or directory: %s" root)
      else go (walk acc root) rest
  in
  go [] roots

(* ------------------------------------------------------------------ *)
(* Loading.                                                            *)

let load_unit path =
  match Cmt_format.read_cmt path with
  | exception Cmt_format.Error _ ->
    Error (Printf.sprintf "%s: not a typedtree (wrong compiler version?)" path)
  | exception Cmi_format.Error _ ->
    Error (Printf.sprintf "%s: bad magic number (stale build artefact?)" path)
  | exception Sys_error msg -> Error msg
  | exception (Failure msg | Invalid_argument msg) ->
    Error (Printf.sprintf "%s: %s" path msg)
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation structure, Some source ->
      Ok
        (Some
           {
             Lint_interproc.u_source = source;
             u_modname = infos.Cmt_format.cmt_modname;
             u_structure = structure;
           })
    | _ -> Ok None (* interfaces, packs, partial saves: nothing to lint *))

(* ------------------------------------------------------------------ *)
(* Summary cache.                                                      *)

(* Keyed by the .cmt's digest, so a rebuilt-but-identical artefact still
   hits and an edited one can't serve a stale summary.  Only valid when
   every enabled rule runs off summaries (R6–R9): the syntactic rules
   need the typedtree, which the cache deliberately does not retain. *)

let syntactic = function
  | Lint.R1 | Lint.R2 | Lint.R3 | Lint.R4 | Lint.R5 -> true
  | Lint.R6 | Lint.R7 | Lint.R8 | Lint.R9 -> false

let cache_load path =
  let tbl = Hashtbl.create 64 in
  (if Sys.file_exists path then
     match
       Jsonx.of_string (In_channel.with_open_text path In_channel.input_all)
     with
     | exception (Jsonx.Parse_error _ | Sys_error _) -> ()
     | j -> (
       match (Jsonx.member "version" j, Jsonx.member "entries" j) with
       | Some (Jsonx.Int v), Some (Jsonx.Obj kvs)
         when v = Lint_interproc.cache_version ->
         List.iter
           (fun (digest, sj) ->
             match Lint_interproc.summary_of_json sj with
             | Some s -> Hashtbl.replace tbl digest s
             | None -> ())
           kvs
       | _ -> ()));
  tbl

let cache_save path entries =
  let doc =
    Jsonx.Obj
      [
        ("version", Jsonx.Int Lint_interproc.cache_version);
        ( "entries",
          Jsonx.Obj
            (List.map
               (fun (digest, s) -> (digest, Lint_interproc.summary_to_json s))
               entries) );
      ]
  in
  Out_channel.with_open_text path (fun oc -> Jsonx.output oc doc)

(* ------------------------------------------------------------------ *)
(* Running.                                                            *)

let run config =
  match find_cmts config.roots with
  | Error _ as e -> e
  | Ok paths -> (
    let findings = ref [] in
    let emit f = findings := f :: !findings in
    let enabled r = List.mem r config.rules in
    let need_tree = List.exists syntactic config.rules in
    let cache =
      match config.summary_cache with
      | Some p -> cache_load p
      | None -> Hashtbl.create 0
    in
    let fresh = ref [] in
    let summarize_path path =
      let digest =
        match config.summary_cache with
        | None -> None
        | Some _ -> Some (Digest.to_hex (Digest.file path))
      in
      let cached =
        if need_tree then None
        else
          match digest with None -> None | Some d -> Hashtbl.find_opt cache d
      in
      match cached with
      | Some s ->
        Option.iter (fun d -> fresh := (d, s) :: !fresh) digest;
        Ok (Some s)
      | None -> (
        match load_unit path with
        | Error _ as e -> e
        | Ok None -> Ok None
        | Ok (Some u) ->
          if need_tree then
            Lint_rules.check_structure
              {
                Lint_rules.source = u.Lint_interproc.u_source;
                modname = u.Lint_interproc.u_modname;
                lib_prefix = config.lib_prefix;
                protect = config.protect;
                enabled;
                emit;
              }
              u.Lint_interproc.u_structure;
          let s = Lint_interproc.summarize u in
          Option.iter (fun d -> fresh := (d, s) :: !fresh) digest;
          Ok (Some s))
    in
    let rec summarize_all acc = function
      | [] -> Ok (List.rev acc)
      | path :: rest -> (
        match summarize_path path with
        | Error _ as e -> e
        | Ok None -> summarize_all acc rest
        | Ok (Some s) -> summarize_all (s :: acc) rest)
    in
    match summarize_all [] paths with
    | Error _ as e -> e
    | Ok summaries -> (
      let db = Lint_interproc.build summaries in
      if enabled Lint.R6 then Lint_taint.check ~emit db;
      Lint_flow.check ~emit ~enabled
        { Lint_flow.default_config with r8_roots = config.r8_roots }
        db;
      match
        Option.iter (fun p -> cache_save p (List.rev !fresh)) config.summary_cache
      with
      | exception Sys_error msg -> Error msg
      | () -> Ok (List.sort_uniq Lint.compare_finding !findings)))

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

let report_json ~findings ~suppressed ~stale =
  Jsonx.Obj
    [
      ("findings", Jsonx.List (List.map Lint.finding_to_json findings));
      ("suppressed", Jsonx.Int suppressed);
      ( "stale_baseline",
        Jsonx.List (List.map Lint_baseline.entry_to_json stale) );
      ("clean", Jsonx.Bool (findings = [] && stale = []));
    ]

(* GitHub workflow-command escaping: %, CR and LF in the message;
   additionally , and : in property values. *)
let github_escape ~property s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | ',' when property -> Buffer.add_string b "%2C"
      | ':' when property -> Buffer.add_string b "%3A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let github_annotation (f : Lint.finding) =
  let level =
    match Lint.severity f.rule with
    | Lint.Error -> "error"
    | Lint.Warning -> "warning"
  in
  Printf.sprintf "::%s file=%s,line=%d,col=%d,title=%s::%s: %s" level
    (github_escape ~property:true f.file)
    f.line f.col
    (github_escape ~property:true (Lint.rule_name f.rule))
    (Lint.rule_name f.rule)
    (github_escape ~property:false f.message)
