type config = {
  roots : string list;
  rules : Lint.rule_id list;
  protect : string list;
  lib_prefix : string;
}

let default_protect = [ "Trace.event"; "Op.t" ]

let default_config ~roots =
  { roots; rules = Lint.all_rules; protect = default_protect; lib_prefix = "lib/" }

(* ------------------------------------------------------------------ *)
(* Input discovery.                                                    *)

let is_cmt path = Filename.check_suffix path ".cmt"

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> walk acc (Filename.concat path name))
      acc
      (let names = Sys.readdir path in
       Array.sort String.compare names;
       names)
  else if is_cmt path then path :: acc
  else acc

let find_cmts roots =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | root :: rest ->
      if not (Sys.file_exists root) then
        Error (Printf.sprintf "no such file or directory: %s" root)
      else if (not (Sys.is_directory root)) && not (is_cmt root) then
        Error (Printf.sprintf "not a .cmt file or directory: %s" root)
      else go (walk acc root) rest
  in
  go [] roots

(* ------------------------------------------------------------------ *)
(* Loading.                                                            *)

let load_unit path =
  match Cmt_format.read_cmt path with
  | exception Cmt_format.Error _ ->
    Error (Printf.sprintf "%s: not a typedtree (wrong compiler version?)" path)
  | exception Cmi_format.Error _ ->
    Error (Printf.sprintf "%s: bad magic number (stale build artefact?)" path)
  | exception Sys_error msg -> Error msg
  | exception (Failure msg | Invalid_argument msg) ->
    Error (Printf.sprintf "%s: %s" path msg)
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation structure, Some source ->
      Ok
        (Some
           {
             Lint_taint.u_source = source;
             u_modname = infos.Cmt_format.cmt_modname;
             u_structure = structure;
           })
    | _ -> Ok None (* interfaces, packs, partial saves: nothing to lint *))

let load_units paths =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
      match load_unit path with
      | Error _ as e -> e
      | Ok None -> go acc rest
      | Ok (Some u) -> go (u :: acc) rest)
  in
  go [] paths

(* ------------------------------------------------------------------ *)
(* Running.                                                            *)

let run config =
  match find_cmts config.roots with
  | Error _ as e -> e
  | Ok paths -> (
    match load_units paths with
    | Error _ as e -> e
    | Ok units ->
      let findings = ref [] in
      let emit f = findings := f :: !findings in
      let enabled r = List.mem r config.rules in
      List.iter
        (fun u ->
          Lint_rules.check_structure
            {
              Lint_rules.source = u.Lint_taint.u_source;
              modname = u.Lint_taint.u_modname;
              lib_prefix = config.lib_prefix;
              protect = config.protect;
              enabled;
              emit;
            }
            u.Lint_taint.u_structure)
        units;
      if enabled Lint.R6 then Lint_taint.check ~emit units;
      Ok (List.sort_uniq Lint.compare_finding !findings))

let report_json ~findings ~suppressed ~stale =
  Jsonx.Obj
    [
      ("findings", Jsonx.List (List.map Lint.finding_to_json findings));
      ("suppressed", Jsonx.Int suppressed);
      ( "stale_baseline",
        Jsonx.List (List.map Lint_baseline.entry_to_json stale) );
      ("clean", Jsonx.Bool (findings = [] && stale = []));
    ]
