open Typedtree

type ctx = {
  source : string;
  modname : string;
  lib_prefix : string;
  protect : string list;
  enabled : Lint.rule_id -> bool;
  emit : Lint.finding -> unit;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers.                                                     *)

let strip_stdlib name =
  let prefix = "Stdlib." in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    String.sub name n (String.length name - n)
  else name

let ident_name path = strip_stdlib (Path.name path)

let global_name ~modname path =
  match path with
  | Path.Pident id -> Some (modname ^ "." ^ Ident.name id)
  | Path.Pdot _ -> Some (ident_name path)
  | _ -> None

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let first_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let emit_at ctx rule (loc : Location.t) message =
  let pos = loc.Location.loc_start in
  ctx.emit
    {
      Lint.rule;
      file = ctx.source;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      message;
    }

let in_lib ctx = String.starts_with ~prefix:ctx.lib_prefix ctx.source

(* ------------------------------------------------------------------ *)
(* Pattern helpers (GADT-polymorphic over value/computation patterns). *)

let rec is_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (q, _, _) -> is_catch_all q
  | Tpat_or (a, b, _) -> is_catch_all a || is_catch_all b
  | Tpat_value v -> is_catch_all (v :> pattern)
  | _ -> false

let rec has_exception_pat : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_exception _ -> true
  | Tpat_or (a, b, _) -> has_exception_pat a || has_exception_pat b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule tables.                                                        *)

let float_cmp_ops = [ "="; "<>"; "compare" ]

let partial_fns = [ "List.hd"; "List.nth"; "Option.get"; "Hashtbl.find" ]

let print_fns =
  [
    "print_string";
    "print_bytes";
    "print_char";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
  ]

(* Escaping constructs: a handler that ends in one of these is not
   swallowing — it converts or propagates. *)
let escape_fns =
  [
    "raise";
    "raise_notrace";
    "failwith";
    "invalid_arg";
    "exit";
    "Printexc.raise_with_backtrace";
  ]

let escapes_handler rhs =
  let found = ref false in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) when List.mem (ident_name p) escape_fns ->
      found := true
    | Texp_assert _ -> found := true
    | _ -> ());
    if not !found then Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it rhs;
  !found

(* The scrutinee's head type constructor as a [Module.type] name, when it
   is one of the protected closed variants. *)
let protected_variant ctx ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
    let name =
      match p with
      | Path.Pident id -> ctx.modname ^ "." ^ Ident.name id
      | _ -> ident_name p
    in
    if List.mem name ctx.protect then Some name else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk.                                                           *)

let check_cases :
    type k. ctx -> variant:string -> k case list -> unit =
 fun ctx ~variant cases ->
  List.iter
    (fun c ->
      if c.c_guard = None && is_catch_all c.c_lhs then
        emit_at ctx Lint.R2 c.c_lhs.pat_loc
          (Printf.sprintf
             "catch-all pattern over closed variant %s silently absorbs \
              future constructors; enumerate the remaining cases"
             variant))
    cases

let check_structure ctx str =
  (* R3 is suppressed inside the body of a [try] (and the scrutinee of a
     [match ... with exception ...]): the surrounding handler is what
     makes the partial call deliberate. *)
  let handler_depth = ref 0 in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) ->
      let name = ident_name path in
      if ctx.enabled Lint.R1 && List.mem name float_cmp_ops then (
        match first_arg e.exp_type with
        | Some a when is_float a ->
          emit_at ctx Lint.R1 e.exp_loc
            (Printf.sprintf
               "polymorphic %s instantiated at float; use Float.equal / \
                Float.compare for bit-exact intent or an epsilon helper \
                (Linsolve.approx_eq)"
               (if name = "compare" then "compare" else "( " ^ name ^ " )"))
        | _ -> ());
      if
        ctx.enabled Lint.R3 && in_lib ctx && !handler_depth = 0
        && List.mem name partial_fns
      then
        emit_at ctx Lint.R3 e.exp_loc
          (Printf.sprintf
             "partial function %s outside any exception handler; match on \
              the structure or use the _opt variant"
             name);
      if ctx.enabled Lint.R5 && in_lib ctx && List.mem name print_fns then
        emit_at ctx Lint.R5 e.exp_loc
          (Printf.sprintf
             "%s writes to stdout from library code; emit through Obs or \
              take an out_channel"
             name)
    | Texp_match (scrut, cases, _) when ctx.enabled Lint.R2 -> (
      match protected_variant ctx scrut.exp_type with
      | Some variant -> check_cases ctx ~variant cases
      | None -> ())
    | Texp_function { cases = first :: _ :: _ as cases; _ }
      when ctx.enabled Lint.R2 -> (
      (* Multi-case [function ...] only: a single catch-all case is an
         ordinary [fun x ->] parameter, not a match. *)
      match protected_variant ctx first.c_lhs.pat_type with
      | Some variant -> check_cases ctx ~variant cases
      | None -> ())
    | Texp_try (_, cases) when ctx.enabled Lint.R4 ->
      List.iter
        (fun c ->
          if
            c.c_guard = None && is_catch_all c.c_lhs
            && not (escapes_handler c.c_rhs)
          then
            emit_at ctx Lint.R4 c.c_lhs.pat_loc
              "catch-all exception handler swallows every exception \
               (including Out_of_memory and Stack_overflow); narrow it to \
               the exceptions this site expects or re-raise")
        cases
    | _ -> ());
    match e.exp_desc with
    | Texp_try (body, cases) ->
      incr handler_depth;
      sub.Tast_iterator.expr sub body;
      decr handler_depth;
      List.iter (sub.Tast_iterator.case sub) cases
    | Texp_match (scrut, cases, _)
      when List.exists (fun c -> has_exception_pat c.c_lhs) cases ->
      incr handler_depth;
      sub.Tast_iterator.expr sub scrut;
      decr handler_depth;
      List.iter (sub.Tast_iterator.case sub) cases
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str
