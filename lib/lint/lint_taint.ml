(* R6: global observability state inside Sweep.map workers.

   The original bespoke taint pass; now the first client of the
   {!Lint_interproc} engine.  Semantics are unchanged: a fix-point marks
   every definition that transitively reaches Obs.set_default /
   Obs.install, then each Sweep.map worker closure is checked for direct
   references to the forbidden names and for calls into the tainted
   set. *)

module SS = Lint_interproc.SS

(* Mutators of the domain-local default context: the taint seeds. *)
let seeds = SS.of_list [ "Obs.set_default"; "Obs.install" ]

(* Names a worker lambda must not reference directly, seeds included:
   the worker already holds the context it should record into. *)
let worker_forbidden = SS.add "Obs.default" seeds

(* Taint stops here: Sweep.map installs worker forks deliberately, and
   the Obs/Sweep units are the layer that owns the default cell. *)
let sanitizers = SS.of_list [ "Sweep.map" ]

let exempt_units = [ "Obs"; "Sweep" ]

let tainted db =
  Lint_interproc.transitive db ~seeds
    ~stop:(fun _ d -> SS.mem d.Lint_interproc.d_name sanitizers)
    ()

let check ~emit db =
  let tainted = tainted db in
  let flag u (pos : Lint_interproc.pos) message =
    emit
      {
        Lint.rule = Lint.R6;
        file = u.Lint_interproc.s_source;
        line = pos.Lint_interproc.line;
        col = pos.Lint_interproc.col;
        message;
      }
  in
  List.iter
    (fun u ->
      if not (List.mem u.Lint_interproc.s_modname exempt_units) then
        List.iter
          (fun sp ->
            if sp.Lint_interproc.sp_kind = "Sweep.map" then
              List.iter
                (fun (w : Lint_interproc.use) ->
                  if SS.mem w.u_name worker_forbidden then
                    flag u w.u_pos
                      (Printf.sprintf
                         "Sweep.map worker references %s directly; use the \
                          Obs.t the worker receives as its first argument"
                         w.u_name)
                  else if SS.mem w.u_name tainted then
                    flag u w.u_pos
                      (Printf.sprintf
                         "Sweep.map worker calls %s, which transitively \
                          mutates the domain-local Obs default \
                          (Obs.set_default/Obs.install); workers must record \
                          only into their private fork"
                         w.u_name))
                sp.Lint_interproc.sp_worker)
          u.Lint_interproc.s_spawns)
    (Lint_interproc.units db)
