open Typedtree
module SS = Set.Make (String)

type unit_info = {
  u_source : string;
  u_modname : string;
  u_structure : Typedtree.structure;
}

(* Mutators of the domain-local default context: the taint seeds. *)
let seeds = SS.of_list [ "Obs.set_default"; "Obs.install" ]

(* Names a worker lambda must not reference directly, seeds included:
   the worker already holds the context it should record into. *)
let worker_forbidden = SS.add "Obs.default" seeds

(* Taint stops here: Sweep.map installs worker forks deliberately, and
   the Obs unit is the layer that owns the default cell. *)
let sanitizers = SS.of_list [ "Sweep.map" ]

let exempt_units = [ "Obs"; "Sweep" ]

(* ------------------------------------------------------------------ *)
(* Pass 1: per top-level value, the global names its body references.   *)

let rec pattern_vars : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (q, id, _) -> Ident.name id :: pattern_vars q
  | Tpat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

let referenced_globals ~modname e =
  let acc = ref SS.empty in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
      match Lint_rules.global_name ~modname path with
      | Some g -> acc := SS.add g !acc
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

(* [defs]: global name -> referenced globals, over every unit. *)
let collect_defs units =
  let defs = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter
        (fun item ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let refs =
                  referenced_globals ~modname:u.u_modname vb.vb_expr
                in
                List.iter
                  (fun v ->
                    let g = u.u_modname ^ "." ^ v in
                    let prev =
                      match Hashtbl.find_opt defs g with
                      | Some s -> s
                      | None -> SS.empty
                    in
                    Hashtbl.replace defs g (SS.union prev refs))
                  (pattern_vars vb.vb_pat))
              vbs
          | _ -> ())
        u.u_structure.str_items)
    units;
  defs

let fixpoint defs =
  let tainted = ref SS.empty in
  let hot g = SS.mem g seeds || SS.mem g !tainted in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun g refs ->
        if
          (not (SS.mem g !tainted))
          && (not (SS.mem g sanitizers))
          && SS.exists hot refs
        then begin
          tainted := SS.add g !tainted;
          changed := true
        end)
      defs
  done;
  !tainted

let tainted_globals units =
  SS.elements (fixpoint (collect_defs units))

(* ------------------------------------------------------------------ *)
(* Pass 2: scan the worker argument of every Sweep.map call site.       *)

let is_sweep_map ~modname f =
  match f.exp_desc with
  | Texp_ident (path, _, _) ->
    Lint_rules.global_name ~modname path = Some "Sweep.map"
  | _ -> false

let worker_arg args =
  List.find_map
    (fun (label, arg) ->
      match (label, arg) with
      | Asttypes.Nolabel, Some e -> Some e
      | _ -> None)
    args

let scan_worker ~emit ~u ~tainted w =
  let flag loc message =
    let pos = loc.Location.loc_start in
    emit
      {
        Lint.rule = Lint.R6;
        file = u.u_source;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        message;
      }
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
      let direct = Lint_rules.ident_name path in
      if SS.mem direct worker_forbidden then
        flag e.exp_loc
          (Printf.sprintf
             "Sweep.map worker references %s directly; use the Obs.t the \
              worker receives as its first argument"
             direct)
      else
        match Lint_rules.global_name ~modname:u.u_modname path with
        | Some g when SS.mem g tainted ->
          flag e.exp_loc
            (Printf.sprintf
               "Sweep.map worker calls %s, which transitively mutates the \
                domain-local Obs default (Obs.set_default/Obs.install); \
                workers must record only into their private fork"
               g)
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it w

let check ~emit units =
  let tainted = fixpoint (collect_defs units) in
  List.iter
    (fun u ->
      if not (List.mem u.u_modname exempt_units) then begin
        let expr sub e =
          (match e.exp_desc with
          | Texp_apply (f, args) when is_sweep_map ~modname:u.u_modname f -> (
            match worker_arg args with
            | Some w -> scan_worker ~emit ~u ~tainted w
            | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e
        in
        let it = { Tast_iterator.default_iterator with expr } in
        it.structure it u.u_structure
      end)
    units
