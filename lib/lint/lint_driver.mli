(** Orchestration: find [.cmt] files, load their typed ASTs, run every
    enabled rule, and return the sorted findings.

    The driver never prints — the executable owns presentation — and it
    reports unreadable inputs as [Error] rather than skipping them: a
    gate that silently analysed nothing would pass vacuously. *)

type config = {
  roots : string list;
      (** files or directories searched recursively for [.cmt]; dune
          puts them under [_build/default/<dir>/.<lib>.objs/byte]. *)
  rules : Lint.rule_id list;  (** enabled rules. *)
  protect : string list;  (** R2's closed variants, as [Module.type]. *)
  lib_prefix : string;
      (** source-path prefix delimiting library code for R3/R5
          (production default ["lib/"]). *)
}

val default_protect : string list
(** [Trace.event], [Op.t] — the closed variants whose silent
    absorption has already cost a fuzz or trace-audit cycle. *)

val default_config : roots:string list -> config
(** Every rule, {!default_protect}, [lib_prefix = "lib/"]. *)

val run : config -> (Lint.finding list, string) result
(** Sorted, deduplicated findings over every implementation [.cmt]
    reachable from [roots].  [Error] on an unreadable root or a [.cmt]
    that cannot be loaded. *)

val report_json :
  findings:Lint.finding list ->
  suppressed:int ->
  stale:Lint_baseline.entry list ->
  Jsonx.t
(** The [--format json] document:
    [{"findings":[...],"suppressed":n,"stale_baseline":[...],"clean":b}]
    where [clean] mirrors the process exit status. *)
