(** Orchestration: find [.cmt] files, load their typed ASTs, run every
    enabled rule, and return the sorted findings.

    The driver never prints — the executable owns presentation — and it
    reports unreadable inputs as [Error] rather than skipping them: a
    gate that silently analysed nothing would pass vacuously.

    The interprocedural rules (R6–R9) run off {!Lint_interproc}
    summaries rather than the typedtree, so with [summary_cache] set and
    only those rules enabled, unchanged [.cmt] files (matched by digest)
    are never reopened — the walk stays fast enough for verify.sh's
    timed gate. *)

type config = {
  roots : string list;
      (** files or directories searched recursively for [.cmt]; dune
          puts them under [_build/default/<dir>/.<lib>.objs/byte]. *)
  rules : Lint.rule_id list;  (** enabled rules. *)
  protect : string list;  (** R2's closed variants, as [Module.type]. *)
  lib_prefix : string;
      (** source-path prefix delimiting library code for R3/R5
          (production default ["lib/"]). *)
  r8_roots : string list;
      (** R8's event-loop dispatch entry points, as [Module.name]
          (default {!Lint_flow.default_r8_roots}). *)
  summary_cache : string option;
      (** JSON file of per-unit summaries keyed by [.cmt] digest; loaded
          before and rewritten after each run.  Hits are only taken when
          no syntactic rule (R1–R5) is enabled, since those need the
          tree. *)
}

val default_protect : string list
(** [Trace.event], [Op.t] — the closed variants whose silent
    absorption has already cost a fuzz or trace-audit cycle. *)

val default_config : roots:string list -> config
(** Every rule, {!default_protect}, [lib_prefix = "lib/"], default R8
    roots, no cache. *)

val run : config -> (Lint.finding list, string) result
(** Sorted, deduplicated findings over every implementation [.cmt]
    reachable from [roots].  [Error] on an unreadable root, a [.cmt]
    that cannot be loaded, or an unwritable cache file. *)

val report_json :
  findings:Lint.finding list ->
  suppressed:int ->
  stale:Lint_baseline.entry list ->
  Jsonx.t
(** The [--format json] document:
    [{"findings":[...],"suppressed":n,"stale_baseline":[...],"clean":b}]
    where [clean] mirrors the process exit status. *)

val github_annotation : Lint.finding -> string
(** The [--format github] rendering: one
    [::error file=...,line=...,col=...::R7: message] workflow command
    per finding, severities mapped to annotation levels, [%]/[,]/[:]
    escaped per the workflow-command rules. *)
