(** Suppression baselines: the allowlist of findings the project has
    triaged and accepted, each with a mandatory justification.

    One entry per line:

    {v <rule> <file>:<line> <justification...> v}

    e.g. [R3 lib/routing/yen.ml:37 guarded by the non-empty check above].
    Blank lines and [#] comments are skipped.  An entry suppresses every
    finding with the same rule, file and line; an entry matching no
    finding is {e stale} and fails the gate, so suppressions cannot
    outlive the code they excused. *)

type entry = {
  b_rule : Lint.rule_id;
  b_file : string;
  b_line : int;
  b_reason : string;  (** never empty — unjustified entries are rejected. *)
}

type outcome = {
  kept : Lint.finding list;  (** unsuppressed findings, original order. *)
  suppressed : int;
  stale : entry list;  (** entries that matched nothing, file order. *)
}

val load : string -> (entry list, string) result
(** Reads a baseline file; [Error] carries a [file:line]-prefixed parse
    message (missing justification, bad rule id, malformed location) or
    the I/O failure. *)

val apply : entry list -> Lint.finding list -> outcome

val of_finding : reason:string -> Lint.finding -> entry

val entry_to_string : entry -> string
(** The file format, one line, no trailing newline. *)

val entry_to_json : entry -> Jsonx.t
