(** R7/R8/R9 — the interprocedural rules, as clients of
    {!Lint_interproc}.

    {b R7 (cross-domain race)}: a worker closure handed to [Sweep.map],
    [Sweep.open_loop] or [Domain.spawn] must not reference a top-level
    mutable value (ref / array / Hashtbl.t / …), directly or through any
    call chain.  The Obs-layer units and [Sweep] are exempt: they own
    the fork/absorb merge protocol that makes their internal state
    per-domain by construction.  [Atomic.t] and [Domain.DLS] values are
    not mutable in R7's sense — they are the sanctioned alternatives.

    {b R8 (event-loop hygiene)}: no definition reachable from the
    serving plane's dispatch roots may call a blocking primitive
    ([Unix.read], [Mutex.lock], [Domain.join], …) — the select loop
    blocks only in its own [select].  Unbounded [List]/[Seq] forcing
    traversals are additionally flagged in the root units themselves,
    where per-request work must stay O(1) in the connection count.

    {b R9 (wall-clock taint)}: [Unix.gettimeofday], [Unix.time],
    [Sys.time] and every transitive wrapper are banned outside the clock
    sanctuary ([lib/obs/clock.ml]); elapsed time comes off the monotonic
    [Clock.now].  This subsumes verify.sh's old grep gate and extends it
    to alias and re-export chains. *)

type config = {
  r7_exempt_units : string list;
      (** module names whose mutable state is protocol-owned. *)
  r8_roots : string list;
      (** dispatch-path entry points, as [Module.name]. *)
  r9_clock_source : string;
      (** the one source file allowed to read the wall clock. *)
}

val default_r7_exempt : string list
val default_r8_roots : string list
val default_r9_clock_source : string
val default_config : config

val check :
  emit:(Lint.finding -> unit) ->
  enabled:(Lint.rule_id -> bool) ->
  config ->
  Lint_interproc.t ->
  unit
(** Run whichever of R7/R8/R9 [enabled] admits over the program
    database. *)
