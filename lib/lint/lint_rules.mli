(** The per-compilation-unit syntactic rules (R1–R5).

    Each check walks one typed AST with a {!Tast_iterator} and emits
    {!Lint.finding}s through the context's [emit] callback.  The
    cross-unit reachability rule (R6) lives in {!Lint_taint}; this
    module only exposes the shared helpers it needs. *)

type ctx = {
  source : string;
      (** build-root-relative source path recorded in the [.cmt], e.g.
          [lib/obs/trace.ml] — findings carry it verbatim. *)
  modname : string;  (** compilation unit name, e.g. [Trace]. *)
  lib_prefix : string;
      (** path prefix delimiting "library code" for the scoped rules
          (R3, R5); [lib/] in production, the fixture directory in
          tests. *)
  protect : string list;
      (** closed variant types R2 guards, as [Module.type] paths. *)
  enabled : Lint.rule_id -> bool;
  emit : Lint.finding -> unit;
}

val check_structure : ctx -> Typedtree.structure -> unit
(** Run R1–R5 over one implementation. *)

(** {2 Shared typed-AST helpers (used by {!Lint_taint})} *)

val ident_name : Path.t -> string
(** [Path.name] with any [Stdlib.] prefix stripped, so [=] and
    [List.hd] read the same however they were written. *)

val global_name : modname:string -> Path.t -> string option
(** The project-global name a path refers to: [Some "M.x"] for a
    cross-unit [M.x], [Some "<modname>.x"] for a unit-local top-level
    [x] (resolved optimistically — local shadowing is ignored), [None]
    for compiler-internal paths. *)

val is_float : Types.type_expr -> bool
(** The type is literally [float] (predefined path; abbreviations are
    not expanded — a [type t = float] alias escapes R1). *)
