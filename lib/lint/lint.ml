type rule_id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

type severity = Error | Warning

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let rule_of_name = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | _ -> None

let severity = function
  | R1 | R2 | R4 | R6 | R7 | R8 | R9 -> Error
  | R3 | R5 -> Warning

let describe = function
  | R1 ->
    "float equality: =, <> or polymorphic compare instantiated at float; use \
     Float.equal/Float.compare (bit-exact intent) or Linalg.approx_eq"
  | R2 ->
    "catch-all _ pattern over a closed project variant (Trace.event, Op.t, \
     ...) that would silently absorb future constructors"
  | R3 ->
    "partial stdlib function (List.hd, List.nth, Option.get, Hashtbl.find) in \
     library code outside any exception handler"
  | R4 -> "exception-swallowing `try ... with _ ->` that does not re-raise"
  | R5 ->
    "direct stdout printing (print_*, Printf.printf, Format.printf) from \
     library code; route output through Obs or take an out_channel"
  | R6 ->
    "global observability state (Obs.set_default / Obs.install, or a value \
     that transitively reaches one) used inside a Sweep.map worker function"
  | R7 ->
    "cross-domain race: a top-level mutable value (ref, Hashtbl, Buffer, \
     array, mutable record) reachable — directly or through any call chain \
     — from a worker passed to Sweep.map / Sweep.open_loop / Domain.spawn \
     without going through the Obs fork/absorb merge protocol"
  | R8 ->
    "event-loop hygiene: a transitively-blocking call (Unix.select/read/\
     write/sleepf, Domain.join, ...) or an unbounded List/Seq traversal \
     reachable from the serving plane's per-connection dispatch path"
  | R9 ->
    "wall-clock taint: Unix.gettimeofday / Unix.time / Sys.time, or any \
     function transitively built on them, outside lib/obs/clock.ml; \
     durations come off the monotonic Clock, timestamps off Clock.wall_s"

type finding = {
  rule : rule_id;
  file : string;
  line : int;
  col : int;
  message : string;
}

let rule_index = function
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Int.compare (rule_index a.rule) (rule_index b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let severity_name = function Error -> "error" | Warning -> "warning"

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" f.file f.line f.col (rule_name f.rule)
    (severity_name (severity f.rule))
    f.message

let finding_to_json f =
  Jsonx.Obj
    [
      ("rule", Jsonx.String (rule_name f.rule));
      ("severity", Jsonx.String (severity_name (severity f.rule)));
      ("file", Jsonx.String f.file);
      ("line", Jsonx.Int f.line);
      ("col", Jsonx.Int f.col);
      ("message", Jsonx.String f.message);
    ]
