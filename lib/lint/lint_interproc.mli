(** The interprocedural analysis engine behind rules R6–R9.

    One typed-AST pass per compilation unit ({!summarize}) distils each
    unit into plain data: per-definition summaries — the globals a body
    references, its direct blocking calls, wall-clock reads, unbounded
    List/Seq traversals, allocation-under-loop markers, and whether the
    binding itself holds shared mutable state — plus every
    [Sweep.map] / [Sweep.open_loop] / [Domain.spawn] call site with the
    globals its worker closure captures.  {!build} links the summaries
    into a cross-unit database; rules then run configurable fix-points
    over it ({!transitive} for backward taint with sanitizer stops,
    {!reachable} for forward call-graph closure) and render their
    messages from {!witness} / {!path_from} chains.

    Summaries contain no typedtree, so they serialise: the JSON cache
    hooks ({!summary_to_json} / {!summary_of_json}, keyed by
    [.cmt] digest in the driver) let a repo-wide interprocedural run
    skip unchanged units entirely. *)

type unit_info = {
  u_source : string;  (** build-root-relative source path *)
  u_modname : string;
  u_structure : Typedtree.structure;
}

type pos = { line : int; col : int }

type use = { u_name : string; u_pos : pos }
(** One reference to a global, e.g. [Obs.set_default] or [Drcomm.admit];
    locals resolve to a [Module.name] that matches no definition and
    falls out of every fix-point. *)

type def = {
  d_name : string;
  d_pos : pos;
  d_refs : use list;  (** first occurrence per referenced name *)
  d_blocking : use list;
  d_wall : use list;
  d_traversals : use list;
  d_alloc_loop : use list;
  d_mutable : string option;
      (** [Some kind] when the binding holds shared mutable state
          (ref/array/Hashtbl.t/…, or a literal with a mutable field). *)
}

type spawn = { sp_kind : string; sp_pos : pos; sp_worker : use list }

type summary = {
  s_source : string;
  s_modname : string;
  s_defs : def list;
  s_spawns : spawn list;
}

type t

module SS : Set.S with type elt = string

val blocking_prims : SS.t
val wall_prims : SS.t
val traversal_prims : SS.t
val alloc_prims : SS.t
val mutable_type_heads : SS.t

val summarize : unit_info -> summary
(** The single AST pass; everything else is pure data manipulation. *)

val build : summary list -> t

val units : t -> summary list

val find_def : t -> string -> (def * summary) option

val transitive :
  t -> seeds:SS.t -> ?stop:(summary -> def -> bool) -> unit -> SS.t
(** Backward fix-point: the least set [T] of definition names such that
    a def is in [T] exactly when [stop] rejects it is false and its body
    references a member of [seeds ∪ T].  [stop] is the sanitizer hook —
    a stopped def neither joins [T] nor propagates taint upward. *)

val witness : t -> seeds:SS.t -> tainted:SS.t -> string -> string list option
(** [witness t ~seeds ~tainted name] is the shortest reference chain
    [[name; …; seed]] explaining why [name] is tainted (BFS in recorded
    reference order, hence deterministic). *)

val reachable : t -> roots:SS.t -> SS.t
(** Forward closure over the call graph from [roots] (roots that resolve
    to definitions are included). *)

val path_from : t -> roots:SS.t -> string -> string list option
(** Shortest call chain [[root; …; name]], for message rendering. *)

val cache_version : int

val summary_to_json : summary -> Jsonx.t

val summary_of_json : Jsonx.t -> summary option
(** [None] on shape mismatch — the driver treats that as a cache miss. *)
