(** Direct solution of small dense linear systems. *)

exception Singular
(** Raised when elimination meets a pivot column that is numerically zero. *)

val gaussian : Matrix.t -> float array -> float array
(** [gaussian a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] must be square with [rows a = Array.length b].
    Raises {!Singular} if [a] is (numerically) singular.  [a] and [b] are
    not modified. *)

val solve_left_nullvector : Matrix.t -> float array
(** [solve_left_nullvector q] returns the probability vector [pi] with
    [pi q = 0] and [sum pi = 1] — the stationary distribution of the CTMC
    whose generator is [q].  Implemented by replacing one equation of the
    transposed system with the normalisation constraint.  Raises
    {!Singular} when the chain is reducible (no unique stationary
    vector). *)

val residual : Matrix.t -> float array -> float array -> float
(** [residual a x b] is the infinity norm of [a x - b]; a cheap a-posteriori
    accuracy check. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is [Float.abs (a -. b) <= eps] (default [eps] 1e-9) —
    the project's one named epsilon comparison.  Raw [=] / [<>] on
    computed floats is rejected by the linter (rule R1): use
    [Float.equal] where bit-exact identity is the intent (tie-breaking,
    sentinel values, division-by-zero guards) and this helper where
    tolerance is.  [nan] is never approximately equal to anything. *)
