exception Singular

let pivot_eps = 1e-13

let approx_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* In-place elimination on a working copy; returns the solution. *)
let gaussian_kernel a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Linsolve.gaussian: matrix not square";
  if Array.length b <> n then invalid_arg "Linsolve.gaussian: size mismatch";
  let m = Matrix.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry into the pivot. *)
    let best = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (Matrix.get m r col) > Float.abs (Matrix.get m !best col)
      then best := r
    done;
    if Float.abs (Matrix.get m !best col) < pivot_eps then raise Singular;
    if !best <> col then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get m col j in
        Matrix.set m col j (Matrix.get m !best j);
        Matrix.set m !best j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!best);
      x.(!best) <- tmp
    end;
    let pivot = Matrix.get m col col in
    for r = col + 1 to n - 1 do
      let factor = Matrix.get m r col /. pivot in
      if not (Float.equal factor 0.) then begin
        Matrix.set m r col 0.;
        for j = col + 1 to n - 1 do
          Matrix.add_to m r j (-.factor *. Matrix.get m col j)
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get m i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get m i i
  done;
  x

(* Solver instrumentation reads the process-wide context: solves happen
   deep inside Model/Ctmc where threading a handle through every caller
   would dominate the diff for no benefit.  Disabled context: one branch
   per solve. *)
let gaussian a b =
  let metrics = Obs.metrics (Obs.default ()) in
  if not (Metrics.enabled metrics) then gaussian_kernel a b
  else begin
    Metrics.incr (Metrics.counter metrics "linalg.gaussian_solves");
    Metrics.set
      (Metrics.gauge metrics "linalg.gaussian_n")
      (float_of_int (Matrix.rows a));
    Metrics.time (Metrics.timer metrics "linalg.gaussian_s") (fun () ->
        gaussian_kernel a b)
  end

let residual a x b =
  let ax = Matrix.mul_vec a x in
  let worst = ref 0. in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst

let solve_left_nullvector q =
  let n = Matrix.rows q in
  if Matrix.cols q <> n then
    invalid_arg "Linsolve.solve_left_nullvector: matrix not square";
  if n = 0 then invalid_arg "Linsolve.solve_left_nullvector: empty matrix";
  (* pi q = 0  <=>  q^T pi^T = 0.  Replace the last equation with
     sum_i pi_i = 1 to pin the scale. *)
  let a = Matrix.transpose q in
  for j = 0 to n - 1 do
    Matrix.set a (n - 1) j 1.
  done;
  let b = Array.make n 0. in
  b.(n - 1) <- 1.;
  let pi = gaussian a b in
  let metrics = Obs.metrics (Obs.default ()) in
  if Metrics.enabled metrics then begin
    (* A-posteriori accuracy of the raw solve (one extra mat-vec, only
       when observed): worst constraint violation of [a pi = b]. *)
    Metrics.set (Metrics.gauge metrics "linalg.nullvector_residual") (residual a pi b);
    Metrics.incr (Metrics.counter metrics "linalg.nullvector_solves")
  end;
  (* Tiny negative entries from rounding are clamped, then renormalised. *)
  let pi = Array.map (fun x -> if x < 0. && x > -1e-9 then 0. else x) pi in
  Array.iter (fun x -> if x < 0. then raise Singular) pi;
  let total = Array.fold_left ( +. ) 0. pi in
  if total <= 0. then raise Singular;
  Array.map (fun x -> x /. total) pi
