type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let rows m = m.rows
let cols m = m.cols

let idx m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d, %d) out of %dx%d" i j m.rows m.cols);
  (i * m.cols) + j

let get m i j = m.data.(idx m i j)
let set m i j x = m.data.(idx m i j) <- x
let add_to m i j x = m.data.(idx m i j) <- m.data.(idx m i j) +. x

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Matrix.of_arrays: ragged rows")
    a;
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j a.(i).(j)
    done
  done;
  m

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let transpose m =
  let r = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let map f m = { m with data = Array.map f m.data }

let elementwise op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add = elementwise ( +. )
let sub = elementwise ( -. )
let scale s m = map (fun x -> s *. x) m

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let r = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if not (Float.equal aik 0.) then
        for j = 0 to b.cols - 1 do
          add_to r i j (aik *. get b k j)
        done
    done
  done;
  r

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let vec_mul v m =
  if Array.length v <> m.rows then invalid_arg "Matrix.vec_mul: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. get m i j)
      done;
      !acc)

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. get m i j
      done;
      !acc)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. m.data

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "]@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
