#!/bin/sh
# Compare two BENCH_*.json perf records (written by `bench/main.exe`
# into its --out directory): wall time, main-domain GC deltas, and
# per-span self times.  Thin wrapper over `drqos_cli perfdiff` so the
# comparison logic lives in OCaml (no jq/python dependency).
#
#   scripts/perf_diff.sh BASE.json NEW.json [--max-regress PCT]
#
# With --max-regress the script exits non-zero when NEW's wall time
# exceeds BASE's by more than PCT percent — usable as a CI gate.
set -eu

cd "$(dirname "$0")/.."
exec dune exec bin/drqos_cli.exe -- perfdiff "$@"
