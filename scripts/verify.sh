#!/bin/sh
# Extended local verification gate: build, tests, formatting (when the
# formatter is installed), and a quick bench smoke run that must produce
# a metrics manifest.  Tier-1 remains `dune build && dune runtest`
# (ROADMAP.md); this script is the fuller pre-push check.
set -eu

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "dune build"
dune build @all

step "dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  step "dune fmt (check only)"
  dune build @fmt
else
  step "fmt check skipped (ocamlformat not installed)"
fi

step "bench smoke: fig2 --quick"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bench/main.exe -- fig2 --quick --out "$tmpdir" >/dev/null
test -s "$tmpdir/fig2.metrics.json" || {
  echo "FAIL: fig2 --quick did not write a metrics manifest" >&2
  exit 1
}

step "bench determinism: fig2 --quick --jobs 2 vs --jobs 1"
dune exec bench/main.exe -- fig2 --quick --heartbeat --jobs 2 --out "$tmpdir/verify-bench-j2" >/dev/null
dune exec bench/main.exe -- fig2 --quick --heartbeat --jobs 1 --out "$tmpdir/verify-bench-j1" >/dev/null
diff "$tmpdir/verify-bench-j1/fig2.dat" "$tmpdir/verify-bench-j2/fig2.dat" || {
  echo "FAIL: parallel fig2 sweep diverged from the sequential run" >&2
  exit 1
}

step "telemetry determinism: heartbeat stream byte-identical across --jobs"
# Snapshot contents are purely sim-derived (event-time ticks, zero-
# suppressed counter deltas, per-run churn sketches), so the
# concatenated stream must not depend on the worker-pool width.
cmp "$tmpdir/verify-bench-j1/fig2.heartbeat.jsonl" \
  "$tmpdir/verify-bench-j2/fig2.heartbeat.jsonl" || {
  echo "FAIL: heartbeat snapshot stream differs between --jobs 1 and --jobs 2" >&2
  exit 1
}
hb_count=$(wc -l < "$tmpdir/verify-bench-j1/fig2.heartbeat.jsonl")
[ "$hb_count" -ge 10 ] || {
  echo "FAIL: fig2 --quick --heartbeat emitted only $hb_count snapshots (< 10)" >&2
  exit 1
}
test -s "$tmpdir/verify-bench-j1/fig2.hb.dat" || {
  echo "FAIL: heartbeat replay wrote no fig2.hb.dat ops series" >&2
  exit 1
}

step "lint: zero unbaselined findings, no stale baseline entries (timed)"
# drqos_lint walks the .cmt files dune just built — every rule, R1-R9,
# over the whole tree (examples included).  Exit 1 covers both
# unbaselined findings and stale baseline entries (a fixed finding whose
# suppression was not removed), so either fails the gate.  The walk is
# timed: interprocedural summaries land in a digest-keyed cache, and a
# full run that exceeds 30 s means the linter has stopped being a gate
# anyone runs.
lint_cache="$tmpdir/lint-summaries.json"
lint_t0=$(date +%s)
dune exec bin/drqos_lint.exe -- --baseline lint.baseline \
  --summary-cache "$lint_cache" \
  _build/default/lib _build/default/bin _build/default/bench \
  _build/default/examples || {
  echo "FAIL: lint gate (fix the finding or baseline it with a justification)" >&2
  exit 1
}
lint_t1=$(date +%s)
lint_s=$((lint_t1 - lint_t0))
[ "$lint_s" -le 30 ] || {
  echo "FAIL: full lint walk took ${lint_s}s (> 30s budget)" >&2
  exit 1
}
echo "lint walk: ${lint_s}s"

step "lint self-check: fixture violations are still detected"
# Negative control: the deliberately-bad fixture library must keep
# tripping the linter, otherwise the gate above is vacuous.
if dune exec bin/drqos_lint.exe -- --lib-prefix test/ \
  _build/default/test/lintfix >/dev/null; then
  echo "FAIL: linter reported the violation fixtures as clean" >&2
  exit 1
fi
# The interprocedural rules alone must trip their fixtures too (a
# cross-unit race, a blocking call two wrappers deep in a fake event
# loop, an aliased wall-clock re-export).
if dune exec bin/drqos_lint.exe -- --rules R7,R8,R9 --lib-prefix test/ \
  _build/default/test/lintfix >/dev/null; then
  echo "FAIL: interprocedural rules reported the fixtures as clean" >&2
  exit 1
fi

step "fuzz: 2000 ops per topology family, fixed seed"
# The full invariant suite (link accounting, failed-edge unroutability,
# single-failure safety, counter prediction) is audited after every op;
# any violation prints a shrunk reproducer and fails the gate.
dune exec bin/drqos_cli.exe -- fuzz --seed 1 --ops 2000 || {
  echo "FAIL: fuzzer found an invariant violation (reproducer above)" >&2
  exit 1
}

step "CLI smoke: trace + metrics (profiled)"
dune exec bin/drqos_cli.exe -- run --offered 100 --churn 100 --warmup 20 \
  --trace "$tmpdir/t.jsonl" --metrics "$tmpdir/m.json" --profile >/dev/null
test -s "$tmpdir/t.jsonl" && test -s "$tmpdir/m.json" || {
  echo "FAIL: CLI run did not write trace/metrics files" >&2
  exit 1
}
grep -q '"span_end"' "$tmpdir/t.jsonl" || {
  echo "FAIL: profiled trace carries no span events" >&2
  exit 1
}

step "analyze determinism: same trace, byte-identical output"
# analyze is a pure function of the trace bytes: two invocations on the
# same file (including the Perfetto export) must agree exactly.
dune exec bin/drqos_cli.exe -- analyze "$tmpdir/t.jsonl" --audit \
  --perfetto "$tmpdir/p1.json" | grep -v '^perfetto trace written' > "$tmpdir/a1.txt"
dune exec bin/drqos_cli.exe -- analyze "$tmpdir/t.jsonl" --audit \
  --perfetto "$tmpdir/p2.json" | grep -v '^perfetto trace written' > "$tmpdir/a2.txt"
diff "$tmpdir/a1.txt" "$tmpdir/a2.txt" && diff "$tmpdir/p1.json" "$tmpdir/p2.json" || {
  echo "FAIL: analyze output diverged between runs on the same trace" >&2
  exit 1
}

step "micro-bench smoke: BENCH_micro.json perf record"
dune exec bench/main.exe -- micro --quick --out "$tmpdir/perf" >/dev/null
test -s "$tmpdir/perf/BENCH_micro.json" || {
  echo "FAIL: micro --quick did not write BENCH_micro.json" >&2
  exit 1
}
for key in experiment wall_s gc spans; do
  grep -q "\"$key\"" "$tmpdir/perf/BENCH_micro.json" || {
    echo "FAIL: BENCH_micro.json is missing the \"$key\" field" >&2
    exit 1
  }
done
# A record must compare cleanly against itself (perf_diff smoke).
scripts/perf_diff.sh "$tmpdir/perf/BENCH_micro.json" \
  "$tmpdir/perf/BENCH_micro.json" --max-regress 1 >/dev/null || {
  echo "FAIL: perf_diff rejected a record compared against itself" >&2
  exit 1
}

step "scale smoke: 10^5 live connections on transit-stub, invariants on"
# The quick plateaus (50k, 100k live DR-connections on the 1056-node
# transit-stub) run with admission control and the per-plateau
# check_invariants audit on; the perf record must carry the
# ops/sec-vs-live curve.
dune exec bench/main.exe -- scale --quick --out "$tmpdir/scale" >/dev/null
test -s "$tmpdir/scale/BENCH_scale.json" || {
  echo "FAIL: scale --quick did not write BENCH_scale.json" >&2
  exit 1
}
grep -q '"plateaus"' "$tmpdir/scale/BENCH_scale.json" || {
  echo "FAIL: BENCH_scale.json is missing the plateaus curve" >&2
  exit 1
}
# Strict self-comparison (record format sanity), then a generous gate
# against the committed full-scale baseline: wall clock varies across
# machines, so this only catches order-of-magnitude hot-path collapses
# (the quick run normally finishes in a fraction of the 10^6 baseline).
scripts/perf_diff.sh "$tmpdir/scale/BENCH_scale.json" \
  "$tmpdir/scale/BENCH_scale.json" --max-regress 1 >/dev/null || {
  echo "FAIL: perf_diff rejected the scale record compared against itself" >&2
  exit 1
}
scripts/perf_diff.sh bench/baselines/BENCH_scale.json \
  "$tmpdir/scale/BENCH_scale.json" --max-regress 400 || {
  echo "FAIL: scale smoke wall time blew past the committed 10^6 baseline" >&2
  exit 1
}

step "clock hygiene: R9 wall-clock taint (lint, replaces the old grep gate)"
# Durations must come off the monotonic Clock; Unix.gettimeofday,
# Unix.time and Sys.time step under NTP and are allowed only inside the
# Clock implementation.  Unlike the grep this ran as, R9 follows alias
# and re-export chains across compilation units — `let now =
# Unix.gettimeofday` in one unit taints its callers everywhere.  The
# summary cache from the timed walk above makes this near-instant.
dune exec bin/drqos_lint.exe -- --rules R9 --summary-cache "$lint_cache" \
  _build/default/lib _build/default/bin _build/default/bench \
  _build/default/examples || {
  echo "FAIL: wall-clock read outside lib/obs/clock.ml (see R9 findings above)" >&2
  exit 1
}

step "serve smoke: daemon + loadgen --quick over a unix socket"
# Run the already-built binary directly (a backgrounded `dune exec`
# would contend for the build lock with the foreground loadgen).
cli=_build/default/bin/drqos_cli.exe
serve_sock="$tmpdir/verify-serve.sock"
"$cli" serve --socket "$serve_sock" --nodes 100 --seed 3 \
  > "$tmpdir/serve-daemon.log" 2>&1 &
serve_pid=$!
trap 'rm -rf "$tmpdir"; kill "$serve_pid" 2>/dev/null || true' EXIT
"$cli" loadgen --socket "$serve_sock" --quick --nodes 100 --jobs 4 \
  --fail-edges 8 --out "$tmpdir/serve-bench" --shutdown || {
  echo "FAIL: loadgen --quick against the serve daemon (log below)" >&2
  cat "$tmpdir/serve-daemon.log" >&2
  exit 1
}
wait "$serve_pid" || {
  echo "FAIL: serve daemon exited non-zero after shutdown" >&2
  cat "$tmpdir/serve-daemon.log" >&2
  exit 1
}
for key in experiment wall_s achieved_rps latency_s gc; do
  grep -q "\"$key\"" "$tmpdir/serve-bench/BENCH_serve.json" || {
    echo "FAIL: BENCH_serve.json is missing the \"$key\" field" >&2
    exit 1
  }
done
test -s "$tmpdir/serve-bench/serve.dat" || {
  echo "FAIL: loadgen wrote no serve.dat percentile table" >&2
  exit 1
}
# Self-comparison (record format sanity), then a generous wall-time gate
# against the committed 10^5-request baseline — the quick replay offers
# 2000 requests at 5000 rps and normally finishes in well under a
# second, so this only catches an event-loop collapse.
scripts/perf_diff.sh "$tmpdir/serve-bench/BENCH_serve.json" \
  "$tmpdir/serve-bench/BENCH_serve.json" --max-regress 1 >/dev/null || {
  echo "FAIL: perf_diff rejected the serve record compared against itself" >&2
  exit 1
}
scripts/perf_diff.sh bench/baselines/BENCH_serve.json \
  "$tmpdir/serve-bench/BENCH_serve.json" --max-regress 0 || {
  echo "FAIL: loadgen --quick wall time exceeded the 10^5-request baseline" >&2
  exit 1
}

step "serve tracing gate: stage anatomy joins, --check, tracing-on overhead"
# Same smoke, tracing on end to end: the daemon decomposes every
# request into stages (--trace) with an SLO tracker and slow-request
# flight dumps, the load generator stamps trace contexts and logs its
# client half, and `latency --check` must find the two streams
# consistent and joinable.  The perf_diff against the tracing-off
# record above enforces the <= 5% tracing-on overhead budget
# (DESIGN.md §15); both runs are paced by the same open-loop schedule,
# so wall time only moves if tracing leaks into the hot path.
trace_sock="$tmpdir/verify-trace.sock"
"$cli" serve --socket "$trace_sock" --nodes 100 --seed 3 \
  --slo 0.05 --trace "$tmpdir/server-trace.jsonl" \
  --slow-dir "$tmpdir/slow" > "$tmpdir/serve-trace.log" 2>&1 &
trace_pid=$!
trap 'rm -rf "$tmpdir"; kill "$serve_pid" "$trace_pid" 2>/dev/null || true' EXIT
"$cli" loadgen --socket "$trace_sock" --quick --nodes 100 --jobs 4 \
  --fail-edges 8 --trace "$tmpdir/client-trace.jsonl" --slo 0.05 \
  --out "$tmpdir/serve-trace-bench" --shutdown || {
  echo "FAIL: tracing-on loadgen --quick (log below)" >&2
  cat "$tmpdir/serve-trace.log" >&2
  exit 1
}
wait "$trace_pid" || {
  echo "FAIL: tracing-on serve daemon exited non-zero after shutdown" >&2
  cat "$tmpdir/serve-trace.log" >&2
  exit 1
}
dune exec bin/drqos_cli.exe -- latency "$tmpdir/server-trace.jsonl" \
  "$tmpdir/client-trace.jsonl" --check || {
  echo "FAIL: latency --check rejected the tracing-on serve run" >&2
  exit 1
}
grep -q '"stage_p99_s"' "$tmpdir/serve-trace-bench/BENCH_serve.json" || {
  echo "FAIL: tracing-on BENCH_serve.json carries no stage_p99_s record" >&2
  exit 1
}
scripts/perf_diff.sh "$tmpdir/serve-bench/BENCH_serve.json" \
  "$tmpdir/serve-trace-bench/BENCH_serve.json" --max-regress 5 || {
  echo "FAIL: tracing-on serve smoke exceeded the 5% overhead budget" >&2
  exit 1
}
# Per-stage p99 deltas vs the committed tracing-on baseline (printed by
# perfdiff; informational columns plus the generous wall gate).
scripts/perf_diff.sh bench/baselines/BENCH_serve.json \
  "$tmpdir/serve-trace-bench/BENCH_serve.json" --max-regress 0 || {
  echo "FAIL: tracing-on quick wall time exceeded the 10^5-request baseline" >&2
  exit 1
}

echo
echo "verify: OK"
