#!/bin/sh
# Extended local verification gate: build, tests, formatting (when the
# formatter is installed), and a quick bench smoke run that must produce
# a metrics manifest.  Tier-1 remains `dune build && dune runtest`
# (ROADMAP.md); this script is the fuller pre-push check.
set -eu

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "dune build"
dune build @all

step "dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  step "dune fmt (check only)"
  dune build @fmt
else
  step "fmt check skipped (ocamlformat not installed)"
fi

step "bench smoke: fig2 --quick"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bench/main.exe -- fig2 --quick --out "$tmpdir" >/dev/null
test -s "$tmpdir/fig2.metrics.json" || {
  echo "FAIL: fig2 --quick did not write a metrics manifest" >&2
  exit 1
}

step "bench determinism: fig2 --quick --jobs 2 vs --jobs 1"
dune exec bench/main.exe -- fig2 --quick --jobs 2 --out "$tmpdir/verify-bench-j2" >/dev/null
dune exec bench/main.exe -- fig2 --quick --jobs 1 --out "$tmpdir/verify-bench-j1" >/dev/null
diff "$tmpdir/verify-bench-j1/fig2.dat" "$tmpdir/verify-bench-j2/fig2.dat" || {
  echo "FAIL: parallel fig2 sweep diverged from the sequential run" >&2
  exit 1
}

step "fuzz: 2000 ops per topology family, fixed seed"
# The full invariant suite (link accounting, failed-edge unroutability,
# single-failure safety, counter prediction) is audited after every op;
# any violation prints a shrunk reproducer and fails the gate.
dune exec bin/drqos_cli.exe -- fuzz --seed 1 --ops 2000 || {
  echo "FAIL: fuzzer found an invariant violation (reproducer above)" >&2
  exit 1
}

step "CLI smoke: trace + metrics"
dune exec bin/drqos_cli.exe -- run --offered 100 --churn 100 --warmup 20 \
  --trace "$tmpdir/t.jsonl" --metrics "$tmpdir/m.json" >/dev/null
test -s "$tmpdir/t.jsonl" && test -s "$tmpdir/m.json" || {
  echo "FAIL: CLI run did not write trace/metrics files" >&2
  exit 1
}

echo
echo "verify: OK"
