(* Cross-module integration tests: run real (small) simulations and check
   that the measured parameters have the structure the paper's model
   assumes, and that ablation-level effects point the right way. *)

let paper_qos = Qos.paper_spec ~increment:100 (* 5 levels: cheap runs *)

(* A loaded service on a small calibrated network plus a churn driver
   feeding an estimator. *)
let churned_estimator ~seed ~offered ~events =
  let g = Waxman.generate (Prng.create seed) (Waxman.spec ~nodes:40 ~alpha:0.5 ~beta:0.25 ()) in
  let net = Net_state.create ~capacity:(Bandwidth.mbps 2) g in
  let service = Drcomm.create net in
  let rng = Prng.create (seed + 1) in
  for _ = 1 to offered do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
    ignore (Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:paper_qos)
  done;
  let est = Estimator.create ~levels:(Qos.levels paper_qos) in
  for i = 1 to events do
    if i mod 2 = 0 then begin
      match Drcomm.active_channels service with
      | [] -> ()
      | ids ->
        Estimator.observe_termination est
          (Drcomm.terminate service (Prng.pick_list rng ids))
    end
    else begin
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit service ~src ~dst ~qos:paper_qos with
      | Drcomm.Admitted (_, report) -> Estimator.observe_arrival est report
      | Drcomm.Rejected _ -> ()
    end
  done;
  (service, est)

let mass_below_diagonal m =
  let n = Matrix.rows m in
  let below = ref 0. and above = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j < i then below := !below +. Matrix.get m i j
      else if j > i then above := !above +. Matrix.get m i j
    done
  done;
  (!below, !above)

let test_a_matrix_is_downward () =
  (* Arrivals retreat sharing channels: the measured A matrix must be
     dominated by downward mass.  (A little upward mass is genuine: the
     retreat-and-refill reshuffle can leave a previously-squeezed channel
     better off; the paper's Fig. 1 idealises it away, and Model.build
     ignores those entries accordingly.) *)
  let _, est = churned_estimator ~seed:5 ~offered:400 ~events:400 in
  let below, above = mass_below_diagonal (Estimator.a_matrix est) in
  Alcotest.(check bool)
    (Printf.sprintf "downward %.2f >> upward %.2f" below above)
    true
    (below > 0. && above <= 0.2 *. below)

let test_t_matrix_is_upward () =
  let _, est = churned_estimator ~seed:5 ~offered:400 ~events:400 in
  let below, above = mass_below_diagonal (Estimator.t_matrix est) in
  Alcotest.(check bool)
    (Printf.sprintf "upward %.2f >> downward %.2f" above below)
    true
    (above > 0. && below <= 0.05 *. Float.max above 1e-9)

let test_b_matrix_is_upward () =
  let _, est = churned_estimator ~seed:5 ~offered:400 ~events:400 in
  let below, above = mass_below_diagonal (Estimator.b_matrix est) in
  Alcotest.(check bool)
    (Printf.sprintf "upward %.2f >= downward %.2f" above below)
    true (above >= below)

let test_pf_consistent_across_event_kinds () =
  (* In steady state the sharing probability seen by arrivals and by
     terminations must be close (both estimate the same P_f). *)
  let _, est = churned_estimator ~seed:7 ~offered:400 ~events:600 in
  let pf_a = Estimator.p_f est and pf_t = Estimator.p_f_termination est in
  Alcotest.(check bool)
    (Printf.sprintf "p_f arrivals %.4f vs terminations %.4f" pf_a pf_t)
    true
    (pf_a > 0. && pf_t > 0. && Float.abs (pf_a -. pf_t) < 0.5 *. pf_a)

let test_measured_chain_solves () =
  let service, est = churned_estimator ~seed:9 ~offered:400 ~events:400 in
  let p = Model.params_of_estimator ~lambda:0.001 ~mu:0.001 ~gamma:0. est in
  Model.validate p;
  let predicted = Model.average_bandwidth_regularized p ~qos:paper_qos in
  let simulated = Drcomm.average_bandwidth service in
  Alcotest.(check bool)
    (Printf.sprintf "model %.0f and sim %.0f both in range" predicted simulated)
    true
    (predicted >= 100. && predicted <= 500. && simulated >= 100.
   && simulated <= 500.)

let test_failure_matrix_downward () =
  let g = Waxman.generate (Prng.create 12) (Waxman.spec ~nodes:40 ~alpha:0.5 ~beta:0.25 ()) in
  let net = Net_state.create ~capacity:(Bandwidth.mbps 2) g in
  let service = Drcomm.create net in
  let rng = Prng.create 13 in
  for _ = 1 to 300 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
    ignore (Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:paper_qos)
  done;
  let est = Estimator.create ~levels:(Qos.levels paper_qos) in
  for _ = 1 to 60 do
    let e = Prng.int rng (Graph.edge_count g) in
    let r = Drcomm.fail_edge service e in
    Estimator.observe_failure est r.Drcomm.event;
    Drcomm.repair_edge service e
  done;
  Alcotest.(check int) "failures recorded" 60 (Estimator.failures est);
  let below, above = mass_below_diagonal (Estimator.f_matrix est) in
  Alcotest.(check bool)
    (Printf.sprintf "failure transitions downward (%.2f vs %.2f)" below above)
    true (below >= above);
  Drcomm.check_invariants service

let test_multiplexing_carries_more () =
  (* Ablation A as an invariant: with tight links, multiplexed pools admit
     at least as many DR-connections as dedicated pools. *)
  let carried multiplexing =
    let g = Waxman.generate (Prng.create 21) (Waxman.spec ~nodes:40 ~alpha:0.5 ~beta:0.25 ()) in
    let net = Net_state.create ~multiplexing ~capacity:(Bandwidth.kbps 800) g in
    let service = Drcomm.create net in
    let rng = Prng.create 22 in
    let ok = ref 0 in
    for _ = 1 to 400 do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:paper_qos with
      | Drcomm.Admitted _ -> incr ok
      | Drcomm.Rejected _ -> ()
    done;
    !ok
  in
  let muxed = carried true and dedicated = carried false in
  Alcotest.(check bool)
    (Printf.sprintf "multiplexed %d > dedicated %d" muxed dedicated)
    true (muxed > dedicated)

let test_heavier_failures_do_not_raise_average () =
  let base =
    {
      Scenario.default with
      Scenario.topology = Scenario.Waxman (Waxman.spec ~nodes:30 ~alpha:0.5 ~beta:0.3 ());
      capacity = Bandwidth.mbps 2;
      offered = 250;
      warmup_events = 50;
      churn_events = 250;
      seed = 31;
    }
  in
  let calm = Scenario.run { base with Scenario.gamma = 0. } in
  let stormy = Scenario.run { base with Scenario.gamma = 0.002 } in
  Alcotest.(check bool) "storm injected failures" true
    (stormy.Scenario.failures_injected > 0);
  Alcotest.(check bool)
    (Printf.sprintf "stormy %.0f <= calm %.0f + slack" stormy.Scenario.sim_avg_bandwidth
       calm.Scenario.sim_avg_bandwidth)
    true
    (stormy.Scenario.sim_avg_bandwidth
    <= calm.Scenario.sim_avg_bandwidth +. 25.)

let test_full_pipeline_with_policies () =
  (* The scenario runner must work under every policy. *)
  List.iter
    (fun policy ->
      let cfg =
        {
          Scenario.default with
          Scenario.topology =
            Scenario.Waxman (Waxman.spec ~nodes:25 ~alpha:0.5 ~beta:0.3 ());
          capacity = Bandwidth.mbps 2;
          policy;
          offered = 150;
          warmup_events = 30;
          churn_events = 120;
          seed = 41;
        }
      in
      let r = Scenario.run cfg in
      Alcotest.(check bool)
        (Format.asprintf "%a in range" Policy.pp policy)
        true
        (r.Scenario.sim_avg_bandwidth >= 100. -. 1e-6
        && r.Scenario.sim_avg_bandwidth <= 500. +. 1e-6))
    Policy.all

let test_regular_topology_pf_analytic () =
  (* §3.3: on a regular topology the chaining probability follows from
     the structure alone.  Measure P_f on a torus and compare with the
     uniform-usage closed form. *)
  let rows = 8 and cols = 8 in
  let g = Torus.generate ~rows ~cols in
  let net = Net_state.create ~capacity:(Bandwidth.mbps 10) g in
  let service = Drcomm.create net in
  let rng = Prng.create 17 in
  for _ = 1 to 300 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
    ignore (Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:paper_qos)
  done;
  let est = Estimator.create ~levels:(Qos.levels paper_qos) in
  for i = 1 to 600 do
    if i mod 2 = 0 then begin
      match Drcomm.active_channels service with
      | [] -> ()
      | ids ->
        Estimator.observe_termination est
          (Drcomm.terminate service (Prng.pick_list rng ids))
    end
    else begin
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit service ~src ~dst ~qos:paper_qos with
      | Drcomm.Admitted (_, report) -> Estimator.observe_arrival est report
      | Drcomm.Rejected _ -> ()
    end
  done;
  let measured = Estimator.p_f est in
  let predicted =
    Torus.estimate_p_f ~rows ~cols ~avg_hops:(Torus.average_hops ~rows ~cols)
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f within 2x of analytic %.4f" measured predicted)
    true
    (measured > predicted /. 2. && measured < predicted *. 2.)

let test_betweenness_pf_estimate () =
  (* Going beyond §3.3: on the irregular paper topology, the
     betweenness-based estimate must land within a factor of ~1.5 of the
     simulated P_f (paths in the service are min-hop with allowance
     tie-breaks, close to the all-shortest-paths average Brandes sees). *)
  let g = Waxman.generate (Prng.create 1) (Waxman.paper_spec ~nodes:100) in
  let predicted = Centrality.estimate_p_f g in
  let net = Net_state.create g in
  let service = Drcomm.create net in
  let rng = Prng.create 2 in
  let qos = Qos.paper_spec ~increment:100 in
  for _ = 1 to 500 do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
    ignore (Drcomm.admit ~want_indirect:false service ~src ~dst ~qos)
  done;
  let est = Estimator.create ~levels:(Qos.levels qos) in
  for i = 1 to 600 do
    if i mod 2 = 0 then begin
      match Drcomm.active_channels service with
      | [] -> ()
      | ids ->
        Estimator.observe_termination est
          (Drcomm.terminate service (Prng.pick_list rng ids))
    end
    else begin
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit service ~src ~dst ~qos with
      | Drcomm.Admitted (_, report) -> Estimator.observe_arrival est report
      | Drcomm.Rejected _ -> ()
    end
  done;
  let measured = Estimator.p_f est in
  Alcotest.(check bool)
    (Printf.sprintf "topology estimate %.4f vs simulated %.4f" predicted measured)
    true
    (measured > predicted /. 1.6 && measured < predicted *. 1.6)

let () =
  Alcotest.run "integration"
    [
      ( "measured-structure",
        [
          Alcotest.test_case "A is downward" `Quick test_a_matrix_is_downward;
          Alcotest.test_case "T is upward" `Quick test_t_matrix_is_upward;
          Alcotest.test_case "B is upward" `Quick test_b_matrix_is_upward;
          Alcotest.test_case "P_f consistent" `Quick test_pf_consistent_across_event_kinds;
          Alcotest.test_case "measured chain solves" `Quick test_measured_chain_solves;
          Alcotest.test_case "F is downward" `Quick test_failure_matrix_downward;
          Alcotest.test_case "regular-topology P_f analytic" `Quick
            test_regular_topology_pf_analytic;
          Alcotest.test_case "betweenness P_f estimate" `Quick
            test_betweenness_pf_estimate;
        ] );
      ( "effects",
        [
          Alcotest.test_case "multiplexing carries more" `Quick
            test_multiplexing_carries_more;
          Alcotest.test_case "failures don't help" `Quick
            test_heavier_failures_do_not_raise_average;
          Alcotest.test_case "all policies run" `Quick test_full_pipeline_with_policies;
        ] );
    ]
