(* Tests for the active-replication baselines (multiple-copy and
   dispersity routing). *)

(* Diamond with three link-disjoint 0->3 routes (2, 2 and 3 hops). *)
let diamond () =
  let g = Graph.create 6 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 0 4);
  ignore (Graph.add_edge g 4 5);
  ignore (Graph.add_edge g 5 3);
  g

let test_scheme_arithmetic () =
  let mc = Replication.Multiple_copy 3 in
  Alcotest.(check int) "routes" 3 (Replication.routes_needed mc);
  Alcotest.(check int) "per route" 300 (Replication.per_route_bandwidth mc 300);
  Alcotest.(check int) "total" 900 (Replication.total_bandwidth mc 300);
  let disp = Replication.Dispersity { split = 3; redundant = 1 } in
  Alcotest.(check int) "routes" 4 (Replication.routes_needed disp);
  Alcotest.(check int) "per route ceil(300/3)" 100 (Replication.per_route_bandwidth disp 300);
  Alcotest.(check int) "total" 400 (Replication.total_bandwidth disp 300);
  (* Uneven split rounds up. *)
  let disp2 = Replication.Dispersity { split = 4; redundant = 2 } in
  Alcotest.(check int) "ceil(300/4)" 75 (Replication.per_route_bandwidth disp2 300)

let test_scheme_validation () =
  let net = Net_state.create (diamond ()) in
  Alcotest.check_raises "1 copy"
    (Invalid_argument "Replication: multiple-copy needs >= 2 copies") (fun () ->
      ignore (Replication.create (Replication.Multiple_copy 1) net));
  Alcotest.check_raises "no redundancy"
    (Invalid_argument "Replication: dispersity needs split >= 1 and redundant >= 1")
    (fun () ->
      ignore
        (Replication.create (Replication.Dispersity { split = 2; redundant = 0 }) net))

let test_multiple_copy_reserves_disjoint_routes () =
  let net = Net_state.create ~capacity:1000 (diamond ()) in
  let t = Replication.create (Replication.Multiple_copy 2) net in
  match Replication.admit t ~src:0 ~dst:3 ~bandwidth:300 with
  | `Rejected -> Alcotest.fail "expected admission"
  | `Admitted id ->
    let routes = Replication.routes t id in
    Alcotest.(check int) "two routes" 2 (List.length routes);
    (* Disjoint: no undirected edge reused. *)
    let edges = List.concat_map (List.map Dirlink.edge) routes in
    Alcotest.(check int) "edge-disjoint" (List.length edges)
      (List.length (List.sort_uniq compare edges));
    (* Full copy bandwidth on every hop of both routes. *)
    List.iter
      (fun route ->
        List.iter
          (fun dl ->
            Alcotest.(check (option int)) "300 reserved" (Some 300)
              (Link_state.primary_reservation (Net_state.link net dl) ~channel:id))
          route)
      routes;
    Alcotest.(check int) "4 hops * 300" 1200 (Replication.total_reserved t)

let test_reject_when_not_enough_disjoint_routes () =
  let net = Net_state.create (diamond ()) in
  let t = Replication.create (Replication.Multiple_copy 4) net in
  (* Only 3 disjoint routes exist. *)
  Alcotest.(check bool) "rejected" true
    (Replication.admit t ~src:0 ~dst:3 ~bandwidth:100 = `Rejected);
  Alcotest.(check int) "nothing reserved" 0 (Replication.total_reserved t)

let test_reject_on_bandwidth_shortage () =
  let net = Net_state.create ~capacity:250 (diamond ()) in
  let t = Replication.create (Replication.Multiple_copy 3) net in
  Alcotest.(check bool) "too fat" true
    (Replication.admit t ~src:0 ~dst:3 ~bandwidth:300 = `Rejected);
  Alcotest.(check bool) "thin fits" true
    (Replication.admit t ~src:0 ~dst:3 ~bandwidth:200 <> `Rejected)

let test_terminate_releases_everything () =
  let net = Net_state.create ~capacity:1000 (diamond ()) in
  let t = Replication.create (Replication.Multiple_copy 2) net in
  (match Replication.admit t ~src:0 ~dst:3 ~bandwidth:400 with
  | `Admitted id ->
    Alcotest.(check int) "one" 1 (Replication.count t);
    Replication.terminate t id;
    Alcotest.(check int) "none" 0 (Replication.count t);
    Alcotest.(check int) "links clean" 0 (Net_state.total_primary_reserved net)
  | `Rejected -> Alcotest.fail "expected admission");
  Alcotest.check_raises "double terminate" Not_found (fun () ->
      Replication.terminate t 0)

let test_survivability () =
  let g = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let mc = Replication.create (Replication.Multiple_copy 2) net in
  let id =
    match Replication.admit mc ~src:0 ~dst:3 ~bandwidth:200 with
    | `Admitted id -> id
    | `Rejected -> Alcotest.fail "admission"
  in
  (* Any single edge failure leaves >= 1 route for multiple-copy. *)
  for e = 0 to Graph.edge_count g - 1 do
    Alcotest.(check bool) "survives" true (Replication.survives_failure mc id ~edge:e)
  done;
  (* Dispersity 2-of-3: needs 2 surviving routes; failing an edge on one
     of its routes leaves exactly 2 -> survives; but dispersity 3-of-3
     (no loss tolerance) would not, which validate_scheme forbids anyway. *)
  let net2 = Net_state.create ~capacity:1000 g in
  let disp = Replication.create (Replication.Dispersity { split = 2; redundant = 1 }) net2 in
  let id2 =
    match Replication.admit disp ~src:0 ~dst:3 ~bandwidth:200 with
    | `Admitted id -> id
    | `Rejected -> Alcotest.fail "admission"
  in
  for e = 0 to Graph.edge_count g - 1 do
    Alcotest.(check bool) "2-of-3 survives" true
      (Replication.survives_failure disp id2 ~edge:e)
  done

let test_standing_cost_vs_backup_scheme () =
  (* The paper's motivating comparison: active replication reserves its
     redundancy all the time; the passive backup reserves only floors and
     multiplexes.  On the diamond, compare standing reservations for one
     100 Kbps connection. *)
  let g = diamond () in
  let active_net = Net_state.create ~capacity:1000 g in
  let active = Replication.create (Replication.Multiple_copy 2) active_net in
  (match Replication.admit active ~src:0 ~dst:3 ~bandwidth:100 with
  | `Admitted _ -> ()
  | `Rejected -> Alcotest.fail "admission");
  let active_cost = Net_state.total_primary_reserved active_net in
  let passive_net = Net_state.create ~capacity:1000 g in
  let passive = Drcomm.create passive_net in
  (match Drcomm.admit passive ~src:0 ~dst:3 ~qos:(Qos.single_value 100) with
  | Drcomm.Admitted _ -> ()
  | Drcomm.Rejected _ -> Alcotest.fail "admission");
  let passive_cost =
    Net_state.total_primary_reserved passive_net + Net_state.total_backup_pool passive_net
  in
  (* Both happen to commit 100 on 2+2 hops here, but the passive backup's
     200 is multiplexable pool, not consumed bandwidth; with more
     connections the pool stays while active cost scales linearly.  At
     minimum, active must never be cheaper. *)
  Alcotest.(check bool)
    (Printf.sprintf "active %d >= passive %d" active_cost passive_cost)
    true (active_cost >= passive_cost)

let test_multiplexing_advantage_scales () =
  (* Four connections around a ring with mutually edge-disjoint primaries:
     their backups multiplex into per-link pools of one floor each, while
     active replication pays full freight per connection.  (Connections
     sharing a primary route cannot multiplex — a single failure would
     activate them together — which is why this test spreads them out.) *)
  let ring () =
    let g = Graph.create 4 in
    ignore (Graph.add_edge g 0 1);
    ignore (Graph.add_edge g 1 2);
    ignore (Graph.add_edge g 2 3);
    ignore (Graph.add_edge g 3 0);
    g
  in
  let active_net = Net_state.create ~capacity:10_000 (ring ()) in
  let active = Replication.create (Replication.Multiple_copy 2) active_net in
  let passive_net = Net_state.create ~capacity:10_000 (ring ()) in
  let passive = Drcomm.create passive_net in
  List.iter
    (fun (src, dst) ->
      (match Replication.admit active ~src ~dst ~bandwidth:100 with
      | `Admitted _ -> ()
      | `Rejected -> Alcotest.fail "active admission");
      match Drcomm.admit passive ~src ~dst ~qos:(Qos.single_value 100) with
      | Drcomm.Admitted _ -> ()
      | Drcomm.Rejected _ -> Alcotest.fail "passive admission")
    [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  let active_cost = Net_state.total_primary_reserved active_net in
  let passive_cost =
    Net_state.total_primary_reserved passive_net + Net_state.total_backup_pool passive_net
  in
  Alcotest.(check bool)
    (Printf.sprintf "passive %d strictly cheaper than active %d" passive_cost active_cost)
    true (passive_cost < active_cost)

let qcheck_admitted_routes_disjoint =
  QCheck.Test.make ~name:"admitted route sets are edge-disjoint" ~count:60
    QCheck.(triple small_int (int_range 8 25) (pair small_int small_int))
    (fun (seed, n, (a, b)) ->
      let g =
        Waxman.generate (Prng.create seed) (Waxman.spec ~nodes:n ~alpha:0.6 ~beta:0.4 ())
      in
      let src = a mod n and dst = b mod n in
      if src = dst then true
      else begin
        let net = Net_state.create ~capacity:1000 g in
        let t = Replication.create (Replication.Multiple_copy 2) net in
        match Replication.admit t ~src ~dst ~bandwidth:200 with
        | `Rejected -> true (* fewer than 2 disjoint routes can happen *)
        | `Admitted id ->
          let edges = List.concat_map (List.map Dirlink.edge) (Replication.routes t id) in
          List.length edges = List.length (List.sort_uniq compare edges)
      end)

let () =
  Alcotest.run "replication"
    [
      ( "schemes",
        [
          Alcotest.test_case "arithmetic" `Quick test_scheme_arithmetic;
          Alcotest.test_case "validation" `Quick test_scheme_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "multiple-copy reserves" `Quick
            test_multiple_copy_reserves_disjoint_routes;
          Alcotest.test_case "not enough routes" `Quick
            test_reject_when_not_enough_disjoint_routes;
          Alcotest.test_case "bandwidth shortage" `Quick test_reject_on_bandwidth_shortage;
          Alcotest.test_case "terminate releases" `Quick test_terminate_releases_everything;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "survivability" `Quick test_survivability;
          Alcotest.test_case "standing cost vs backups" `Quick
            test_standing_cost_vs_backup_scheme;
          Alcotest.test_case "multiplexing advantage" `Quick test_multiplexing_advantage_scales;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_admitted_routes_disjoint ]);
    ]
