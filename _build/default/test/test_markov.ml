(* Tests for CTMC/DTMC solvers against closed-form oracles. *)

let approx = Alcotest.float 1e-9
let loose = Alcotest.float 1e-6

let test_two_state_stationary () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:0 3.;
  let pi = Ctmc.stationary c in
  Alcotest.check approx "pi0" 0.75 pi.(0);
  Alcotest.check approx "pi1" 0.25 pi.(1)

let test_rates_accumulate () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:0 ~dst:1 2.;
  Alcotest.check approx "accumulated" 3. (Ctmc.rate c ~src:0 ~dst:1)

let test_self_rate_rejected () =
  let c = Ctmc.create 2 in
  Alcotest.check_raises "self" (Invalid_argument "Ctmc.add_rate: src = dst") (fun () ->
      Ctmc.add_rate c ~src:1 ~dst:1 1.)

let test_negative_rate_rejected () =
  let c = Ctmc.create 2 in
  Alcotest.check_raises "negative" (Invalid_argument "Ctmc.add_rate: negative rate")
    (fun () -> Ctmc.add_rate c ~src:0 ~dst:1 (-1.))

let test_generator_rows_sum_to_zero () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 2.;
  Ctmc.add_rate c ~src:1 ~dst:2 1.;
  Ctmc.add_rate c ~src:2 ~dst:0 4.;
  Ctmc.add_rate c ~src:0 ~dst:2 0.5;
  let sums = Matrix.row_sums (Ctmc.generator c) in
  Array.iter (fun s -> Alcotest.check approx "row sum" 0. s) sums

let test_reducible_raises () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  (* state 2 unreachable and absorbing-ish: chain reducible *)
  Alcotest.check_raises "reducible" Linsolve.Singular (fun () ->
      ignore (Ctmc.stationary c))

let test_mean_reward () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  Alcotest.check approx "mean of levels" 0.5
    (Ctmc.mean_reward c float_of_int);
  Alcotest.check approx "mean of bandwidths" 150.
    (Ctmc.mean_reward c (fun i -> if i = 0 then 100. else 200.))

let test_holding_time () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 2.;
  Ctmc.add_rate c ~src:0 ~dst:2 2.;
  Alcotest.check approx "1/(2+2)" 0.25 (Ctmc.holding_time c 0);
  Alcotest.(check bool) "absorbing" true (Ctmc.holding_time c 2 = infinity)

let test_embedded_dtmc () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:0 ~dst:2 3.;
  Ctmc.add_rate c ~src:1 ~dst:0 5.;
  let p = Ctmc.embedded_dtmc c in
  Alcotest.check approx "p01" 0.25 (Matrix.get p 0 1);
  Alcotest.check approx "p02" 0.75 (Matrix.get p 0 2);
  Alcotest.check approx "p10" 1. (Matrix.get p 1 0);
  Alcotest.check approx "absorbing self-loop" 1. (Matrix.get p 2 2)

let test_transient_converges_to_stationary () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:2 2.;
  Ctmc.add_rate c ~src:2 ~dst:0 3.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  let pi = Ctmc.stationary c in
  let pt = Ctmc.transient c ~p0:[| 1.; 0.; 0. |] ~horizon:200. () in
  Array.iteri (fun i p -> Alcotest.check loose "converged" pi.(i) p) pt

let test_transient_zero_horizon () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  let p = Ctmc.transient c ~p0:[| 0.3; 0.7 |] ~horizon:0. () in
  Alcotest.(check (array approx)) "unchanged" [| 0.3; 0.7 |] p

let test_transient_mass_conserved () =
  let c = Ctmc.create 4 in
  Ctmc.add_rate c ~src:0 ~dst:1 0.7;
  Ctmc.add_rate c ~src:1 ~dst:2 1.3;
  Ctmc.add_rate c ~src:2 ~dst:3 0.2;
  Ctmc.add_rate c ~src:3 ~dst:0 2.;
  let p = Ctmc.transient c ~p0:[| 1.; 0.; 0.; 0. |] ~horizon:5. () in
  Alcotest.check loose "sums to 1" 1. (Array.fold_left ( +. ) 0. p);
  Array.iter (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.)) p

(* --- First passage / hitting --- *)

let test_first_passage_two_state () =
  let c = Ctmc.create 2 in
  Ctmc.add_rate c ~src:0 ~dst:1 4.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  let h = Ctmc.mean_first_passage c ~targets:[ 1 ] in
  Alcotest.check approx "1/rate" 0.25 h.(0);
  Alcotest.check approx "target is 0" 0. h.(1)

let test_first_passage_birth_death () =
  (* Levels 0..2, up rate lambda = 1, down rate mu = 2.  Closed forms:
     h1 = (lambda + mu) / mu^2 = 3/4, h2 = 1/mu + h1 = 5/4. *)
  let c = Birth_death.to_ctmc ~birth:[| 1.; 1. |] ~death:[| 2.; 2. |] in
  let h = Ctmc.mean_first_passage c ~targets:[ 0 ] in
  Alcotest.check approx "h1" 0.75 h.(1);
  Alcotest.check approx "h2" 1.25 h.(2)

let test_first_passage_unreachable () =
  let c = Ctmc.create 3 in
  Ctmc.add_rate c ~src:0 ~dst:1 1.;
  Ctmc.add_rate c ~src:1 ~dst:0 1.;
  (* state 2 is isolated; target {2} unreachable from 0 and 1. *)
  Alcotest.check_raises "unreachable" Linsolve.Singular (fun () ->
      ignore (Ctmc.mean_first_passage c ~targets:[ 2 ]))

let test_first_passage_validation () =
  let c = Ctmc.create 2 in
  Alcotest.check_raises "empty" (Invalid_argument "Ctmc.mean_first_passage: empty state list")
    (fun () -> ignore (Ctmc.mean_first_passage c ~targets:[]))

let test_hitting_probability_symmetric_walk () =
  (* Symmetric walk on 0..2: from the middle, hitting 2 before 0 has
     probability 1/2. *)
  let c = Birth_death.to_ctmc ~birth:[| 1.; 1. |] ~death:[| 1.; 1. |] in
  let p = Ctmc.hitting_probability c ~targets:[ 2 ] ~avoid:[ 0 ] in
  Alcotest.check approx "middle" 0.5 p.(1);
  Alcotest.check approx "target" 1. p.(2);
  Alcotest.check approx "avoid" 0. p.(0)

let test_hitting_probability_biased () =
  (* Up rate 2, down rate 1 on 0..2: from 1, P(2 before 0) = 2/3. *)
  let c = Birth_death.to_ctmc ~birth:[| 2.; 2. |] ~death:[| 1.; 1. |] in
  let p = Ctmc.hitting_probability c ~targets:[ 2 ] ~avoid:[ 0 ] in
  Alcotest.check approx "biased" (2. /. 3.) p.(1)

let test_hitting_probability_overlap_rejected () =
  let c = Ctmc.create 3 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Ctmc.hitting_probability: targets and avoid overlap") (fun () ->
      ignore (Ctmc.hitting_probability c ~targets:[ 1 ] ~avoid:[ 1; 2 ]))

(* --- Birth-death oracles --- *)

let test_birth_death_matches_ctmc () =
  let birth = [| 1.; 2.; 0.5 |] and death = [| 3.; 1.; 2. |] in
  let closed = Birth_death.stationary ~birth ~death in
  let solved = Ctmc.stationary (Birth_death.to_ctmc ~birth ~death) in
  Array.iteri (fun i p -> Alcotest.check loose "same" p solved.(i)) closed

let test_mm1k_known () =
  (* M/M/1/2 with lambda = mu: uniform over 3 levels. *)
  let pi = Birth_death.mm1k ~lambda:1. ~mu:1. ~k:2 in
  Array.iter (fun p -> Alcotest.check approx "uniform" (1. /. 3.) p) pi

let test_mm1k_light_load () =
  (* rho = 0.1: pi_i proportional to rho^i. *)
  let pi = Birth_death.mm1k ~lambda:0.1 ~mu:1. ~k:2 in
  Alcotest.check loose "ratio 1" 0.1 (pi.(1) /. pi.(0));
  Alcotest.check loose "ratio 2" 0.1 (pi.(2) /. pi.(1))

let test_mean_level () =
  Alcotest.check approx "mean" 1. (Birth_death.mean_level [| 0.25; 0.5; 0.25 |])

let test_birth_death_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Birth_death.stationary: birth/death length mismatch") (fun () ->
      ignore (Birth_death.stationary ~birth:[| 1. |] ~death:[| 1.; 2. |]))

(* --- Erlang --- *)

let test_erlang_one_server () =
  (* B(1, a) = a / (1 + a). *)
  Alcotest.check approx "a=1" 0.5 (Erlang.erlang_b ~servers:1 ~offered_load:1.);
  Alcotest.check approx "a=3" 0.75 (Erlang.erlang_b ~servers:1 ~offered_load:3.)

let test_erlang_known () =
  (* B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2. *)
  Alcotest.check approx "B(2,1)" 0.2 (Erlang.erlang_b ~servers:2 ~offered_load:1.);
  Alcotest.check approx "no load" 0. (Erlang.erlang_b ~servers:3 ~offered_load:0.);
  Alcotest.check approx "no servers" 1. (Erlang.erlang_b ~servers:0 ~offered_load:2.)

let test_erlang_monotone () =
  let b c = Erlang.erlang_b ~servers:c ~offered_load:8. in
  Alcotest.(check bool) "more servers, less blocking" true (b 4 > b 8 && b 8 >
b 16);
  let load a = Erlang.erlang_b ~servers:8 ~offered_load:a in
  Alcotest.(check bool) "more load, more blocking" true (load 2. < load 8. && load 8. < load 20.)

let test_erlang_required () =
  let c = Erlang.required_servers ~offered_load:8. ~target_blocking:0.01 in
  Alcotest.(check bool) "meets target" true
    (Erlang.erlang_b ~servers:c ~offered_load:8. <= 0.01);
  Alcotest.(check bool) "tight" true
    (Erlang.erlang_b ~servers:(c - 1) ~offered_load:8. > 0.01)

let test_erlang_occupancy_matches_ctmc () =
  (* M/M/c/c as a birth-death chain: birth a*mu... with mean holding 1,
     birth rate = a, death rate at level k = k. *)
  let a = 2.5 and c = 5 in
  let birth = Array.make c a in
  let death = Array.init c (fun k -> float_of_int (k + 1)) in
  let solved = Ctmc.stationary (Birth_death.to_ctmc ~birth ~death) in
  let closed = Erlang.mmcc_occupancy ~servers:c ~offered_load:a in
  Array.iteri (fun i p -> Alcotest.check loose "occupancy" p solved.(i)) closed;
  (* Blocking = P(all busy). *)
  Alcotest.check loose "B = pi_c" closed.(c) (Erlang.erlang_b ~servers:c ~offered_load:a)

let test_erlang_carried () =
  Alcotest.check approx "carried" 0.8 (Erlang.carried_load ~servers:2 ~offered_load:1.)

(* --- DTMC --- *)

let test_dtmc_stationary () =
  let p = Matrix.of_arrays [| [| 0.9; 0.1 |]; [| 0.3; 0.7 |] |] in
  let pi = Dtmc.stationary p in
  Alcotest.check approx "pi0" 0.75 pi.(0);
  Alcotest.check approx "pi1" 0.25 pi.(1)

let test_dtmc_validate_rejects () =
  Alcotest.check_raises "bad row" (Invalid_argument "Dtmc.validate: row 0 sums to 0.8")
    (fun () -> Dtmc.validate (Matrix.of_arrays [| [| 0.8 |] |]))

let test_power_iteration_agrees () =
  let p =
    Matrix.of_arrays
      [| [| 0.5; 0.25; 0.25 |]; [| 0.2; 0.6; 0.2 |]; [| 0.1; 0.3; 0.6 |] |]
  in
  let direct = Dtmc.stationary p in
  let power = Dtmc.power_iteration ~iters:2000 p [| 1.; 0.; 0. |] in
  Array.iteri (fun i x -> Alcotest.check loose "agree" x power.(i)) direct

let test_expected_jump () =
  let p = Matrix.of_arrays [| [| 0.5; 0.5 |]; [| 0.; 1. |] |] in
  Alcotest.check approx "from 0" 0.5 (Dtmc.expected_jump p float_of_int 0);
  Alcotest.check approx "from 1" 1. (Dtmc.expected_jump p float_of_int 1)

(* Gillespie cross-check: simulate the chain's trajectory with the
   stochastic simulation algorithm (exponential holding times, jump by
   embedded probabilities) and compare the time-weighted state occupancy
   against the solved stationary vector — validates Ctmc, Prng and the
   statistics stack together. *)
let test_gillespie_matches_stationary () =
  let c = Ctmc.create 4 in
  Ctmc.add_rate c ~src:0 ~dst:1 2.;
  Ctmc.add_rate c ~src:1 ~dst:2 1.5;
  Ctmc.add_rate c ~src:2 ~dst:3 1.;
  Ctmc.add_rate c ~src:3 ~dst:0 2.5;
  Ctmc.add_rate c ~src:1 ~dst:0 0.5;
  Ctmc.add_rate c ~src:2 ~dst:0 0.25;
  let pi = Ctmc.stationary c in
  let rng = Prng.create 99 in
  let occupancy = Array.make 4 0. in
  let state = ref 0 in
  let total = ref 0. in
  for _ = 1 to 200_000 do
    let exit_rate =
      List.fold_left (fun acc j -> acc +. Ctmc.rate c ~src:!state ~dst:j) 0.
        (List.filter (fun j -> j <> !state) [ 0; 1; 2; 3 ])
    in
    let dwell = Prng.exponential rng exit_rate in
    occupancy.(!state) <- occupancy.(!state) +. dwell;
    total := !total +. dwell;
    (* Jump proportionally to the outgoing rates. *)
    let u = ref (Prng.float rng exit_rate) in
    let next = ref !state in
    List.iter
      (fun j ->
        if j <> !state && !next = !state then begin
          let r = Ctmc.rate c ~src:!state ~dst:j in
          if !u < r then next := j else u := !u -. r
        end)
      [ 0; 1; 2; 3 ];
    state := !next
  done;
  Array.iteri
    (fun i p ->
      let empirical = occupancy.(i) /. !total in
      Alcotest.(check bool)
        (Printf.sprintf "state %d: %.4f vs %.4f" i p empirical)
        true
        (Float.abs (p -. empirical) < 0.01))
    pi

(* Property: for random irreducible birth-death chains, the generic CTMC
   solver agrees with the closed form. *)
let qcheck_bd_oracle =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 7 in
      let* birth = array_size (return n) (float_range 0.1 5.) in
      let* death = array_size (return n) (float_range 0.1 5.) in
      return (birth, death))
  in
  QCheck.Test.make ~name:"ctmc solver matches birth-death closed form" ~count:200
    (QCheck.make gen)
    (fun (birth, death) ->
      let closed = Birth_death.stationary ~birth ~death in
      let solved = Ctmc.stationary (Birth_death.to_ctmc ~birth ~death) in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-8) closed solved)

(* Property: the stationary vector is invariant under the transient
   operator. *)
let qcheck_stationary_fixed_point =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 6 in
      let* rates = array_size (return (n * n)) (float_range 0.05 3.) in
      return (n, rates))
  in
  QCheck.Test.make ~name:"stationary is a fixed point of transient" ~count:100
    (QCheck.make gen)
    (fun (n, rates) ->
      let c = Ctmc.create n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then Ctmc.add_rate c ~src:i ~dst:j rates.((i * n) + j)
        done
      done;
      let pi = Ctmc.stationary c in
      let pt = Ctmc.transient c ~p0:pi ~horizon:3. () in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) pi pt)

let () =
  Alcotest.run "markov"
    [
      ( "ctmc",
        [
          Alcotest.test_case "two-state stationary" `Quick test_two_state_stationary;
          Alcotest.test_case "rates accumulate" `Quick test_rates_accumulate;
          Alcotest.test_case "self rate rejected" `Quick test_self_rate_rejected;
          Alcotest.test_case "negative rate rejected" `Quick test_negative_rate_rejected;
          Alcotest.test_case "generator rows" `Quick test_generator_rows_sum_to_zero;
          Alcotest.test_case "reducible raises" `Quick test_reducible_raises;
          Alcotest.test_case "mean reward" `Quick test_mean_reward;
          Alcotest.test_case "holding time" `Quick test_holding_time;
          Alcotest.test_case "embedded dtmc" `Quick test_embedded_dtmc;
        ] );
      ( "gillespie",
        [
          Alcotest.test_case "SSA matches stationary" `Quick
            test_gillespie_matches_stationary;
        ] );
      ( "transient",
        [
          Alcotest.test_case "converges to stationary" `Quick
            test_transient_converges_to_stationary;
          Alcotest.test_case "zero horizon" `Quick test_transient_zero_horizon;
          Alcotest.test_case "mass conserved" `Quick test_transient_mass_conserved;
        ] );
      ( "first-passage",
        [
          Alcotest.test_case "two-state" `Quick test_first_passage_two_state;
          Alcotest.test_case "birth-death closed form" `Quick
            test_first_passage_birth_death;
          Alcotest.test_case "unreachable" `Quick test_first_passage_unreachable;
          Alcotest.test_case "validation" `Quick test_first_passage_validation;
          Alcotest.test_case "symmetric walk hitting" `Quick
            test_hitting_probability_symmetric_walk;
          Alcotest.test_case "biased walk hitting" `Quick test_hitting_probability_biased;
          Alcotest.test_case "overlap rejected" `Quick
            test_hitting_probability_overlap_rejected;
        ] );
      ( "birth-death",
        [
          Alcotest.test_case "matches ctmc" `Quick test_birth_death_matches_ctmc;
          Alcotest.test_case "mm1k symmetric" `Quick test_mm1k_known;
          Alcotest.test_case "mm1k light load" `Quick test_mm1k_light_load;
          Alcotest.test_case "mean level" `Quick test_mean_level;
          Alcotest.test_case "validation" `Quick test_birth_death_validation;
        ] );
      ( "erlang",
        [
          Alcotest.test_case "one server" `Quick test_erlang_one_server;
          Alcotest.test_case "known values" `Quick test_erlang_known;
          Alcotest.test_case "monotone" `Quick test_erlang_monotone;
          Alcotest.test_case "required servers" `Quick test_erlang_required;
          Alcotest.test_case "occupancy oracle" `Quick test_erlang_occupancy_matches_ctmc;
          Alcotest.test_case "carried load" `Quick test_erlang_carried;
        ] );
      ( "dtmc",
        [
          Alcotest.test_case "stationary" `Quick test_dtmc_stationary;
          Alcotest.test_case "validation" `Quick test_dtmc_validate_rejects;
          Alcotest.test_case "power iteration" `Quick test_power_iteration_agrees;
          Alcotest.test_case "expected jump" `Quick test_expected_jump;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_bd_oracle; qcheck_stationary_fixed_point ] );
    ]
