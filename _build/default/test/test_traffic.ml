(* Tests for the packet-level traffic substrate: token buckets and
   multi-hop EDF forwarding. *)

let approx = Alcotest.float 1e-9
let ms = Alcotest.float 1e-6

(* --- Traffic_spec --- *)

let test_spec_validation () =
  Alcotest.check_raises "rate" (Invalid_argument "Traffic_spec.make: non-positive rate")
    (fun () -> ignore (Traffic_spec.make ~rate:0 ~packet_bits:100 ()));
  Alcotest.check_raises "bucket"
    (Invalid_argument "Traffic_spec.make: bucket shallower than one packet") (fun () ->
      ignore (Traffic_spec.make ~rate:100 ~burst_bits:50 ~packet_bits:100 ()))

let test_packet_period () =
  (* 100 Kbps, 1000-bit packets: one every 10 ms. *)
  let s = Traffic_spec.cbr ~rate:100 ~packet_bits:1000 in
  Alcotest.check approx "period" 0.01 (Traffic_spec.packet_period s)

let test_bucket_initial_burst () =
  let s = Traffic_spec.make ~rate:100 ~burst_bits:3000 ~packet_bits:1000 () in
  let b = Traffic_spec.Bucket.create s in
  (* Full bucket: three back-to-back packets conform, the fourth not. *)
  Alcotest.(check bool) "1" true (Traffic_spec.Bucket.try_consume b ~now:0.);
  Alcotest.(check bool) "2" true (Traffic_spec.Bucket.try_consume b ~now:0.);
  Alcotest.(check bool) "3" true (Traffic_spec.Bucket.try_consume b ~now:0.);
  Alcotest.(check bool) "4 blocked" false (Traffic_spec.Bucket.try_consume b ~now:0.)

let test_bucket_refill () =
  let s = Traffic_spec.cbr ~rate:100 ~packet_bits:1000 in
  let b = Traffic_spec.Bucket.create s in
  Alcotest.(check bool) "first" true (Traffic_spec.Bucket.try_consume b ~now:0.);
  Alcotest.(check bool) "too soon" false (Traffic_spec.Bucket.conforming b ~now:0.005);
  Alcotest.check ms "refill time" 0.01 (Traffic_spec.Bucket.next_conforming_time b ~now:0.005);
  Alcotest.(check bool) "after period" true (Traffic_spec.Bucket.try_consume b ~now:0.0101)

let test_bucket_caps_at_burst () =
  let s = Traffic_spec.make ~rate:100 ~burst_bits:2000 ~packet_bits:1000 () in
  let b = Traffic_spec.Bucket.create s in
  ignore (Traffic_spec.Bucket.try_consume b ~now:0.);
  ignore (Traffic_spec.Bucket.try_consume b ~now:0.);
  (* A long idle period refills to the cap (2 packets), not more. *)
  Alcotest.(check bool) "1 of 2" true (Traffic_spec.Bucket.try_consume b ~now:100.);
  Alcotest.(check bool) "2 of 2" true (Traffic_spec.Bucket.try_consume b ~now:100.);
  Alcotest.(check bool) "3 blocked" false (Traffic_spec.Bucket.try_consume b ~now:100.)

(* Conformance property: a source draining the bucket as fast as allowed
   never exceeds rate * t + burst bits over any prefix. *)
let qcheck_bucket_conformance =
  QCheck.Test.make ~name:"token bucket enforces (sigma, rho)" ~count:100
    QCheck.(pair (int_range 50 1000) (int_range 1 5))
    (fun (rate, burst_packets) ->
      let packet_bits = 500 in
      let s =
        Traffic_spec.make ~rate ~burst_bits:(burst_packets * packet_bits) ~packet_bits ()
      in
      let b = Traffic_spec.Bucket.create s in
      let sent_bits = ref 0 in
      let now = ref 0. in
      let ok = ref true in
      for _ = 1 to 200 do
        if Traffic_spec.Bucket.try_consume b ~now:!now then begin
          sent_bits := !sent_bits + packet_bits;
          let bound =
            (float_of_int rate *. 1000. *. !now)
            +. float_of_int (burst_packets * packet_bits)
          in
          if float_of_int !sent_bits > bound +. 1e-6 then ok := false
        end
        else now := Traffic_spec.Bucket.next_conforming_time b ~now:!now
      done;
      !ok)

(* --- Netsim --- *)

let line_links () =
  (* 0 - 1 - 2: a 2-hop unidirectional path 0 -> 2. *)
  let g = Graph.create 3 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  let path =
    [ Dirlink.of_edge g ~edge:e01 ~src:0; Dirlink.of_edge g ~edge:e12 ~src:1 ]
  in
  (g, path)

let mk_sim ?propagation_delay ?(rate = 1000) g =
  let engine = Engine.create () in
  (engine, Netsim.create ?propagation_delay engine g ~rate_of:(fun _ -> rate))

let test_single_packet_delay () =
  let g, path = line_links () in
  let engine, sim = mk_sim g in
  (* 1000 Kbps links, 1000-bit packets: 1 ms per hop, 2 ms end-to-end. *)
  let spec = Traffic_spec.cbr ~rate:1 ~packet_bits:1000 in
  let fid = Netsim.add_flow sim ~path ~spec ~deadline:0.01 ~stop:0.5 () in
  ignore (Engine.run ~until:1.5 engine);
  let st = Netsim.stats sim fid in
  Alcotest.(check bool) "sent some" true (st.Netsim.sent >= 1);
  Alcotest.(check int) "all delivered" st.Netsim.sent st.Netsim.delivered;
  Alcotest.(check int) "no miss" 0 st.Netsim.missed;
  Alcotest.check (Alcotest.float 1e-6) "2 ms e2e" 0.002
    (Stats.Welford.mean st.Netsim.delay)

let test_propagation_delay_added () =
  let g, path = line_links () in
  let engine, sim = mk_sim ~propagation_delay:0.003 g in
  let spec = Traffic_spec.cbr ~rate:1 ~packet_bits:1000 in
  let fid = Netsim.add_flow sim ~path ~spec ~deadline:0.1 ~stop:0.5 () in
  ignore (Engine.run ~until:2. engine);
  let st = Netsim.stats sim fid in
  (* 2 x 1 ms transmission + 2 x 3 ms propagation. *)
  Alcotest.check (Alcotest.float 1e-6) "8 ms e2e" 0.008
    (Stats.Welford.mean st.Netsim.delay)

let test_cbr_throughput () =
  let g, path = line_links () in
  let engine, sim = mk_sim g in
  (* 100 Kbps flow, 1000-bit packets, for 1 s: ~100 packets. *)
  let spec = Traffic_spec.cbr ~rate:100 ~packet_bits:1000 in
  let fid = Netsim.add_flow sim ~path ~spec ~deadline:0.05 ~stop:1.0 () in
  ignore (Engine.run ~until:2. engine);
  let st = Netsim.stats sim fid in
  Alcotest.(check bool)
    (Printf.sprintf "sent %d ~ 100" st.Netsim.sent)
    true
    (abs (st.Netsim.sent - 100) <= 2);
  Alcotest.(check int) "all delivered" st.Netsim.sent st.Netsim.delivered;
  Alcotest.(check int) "no misses" 0 st.Netsim.missed

let test_edf_prioritises_tight_deadline () =
  (* Two flows share one link; the one with the tighter deadline must not
     miss even though the other floods the queue. *)
  let g = Graph.create 2 in
  let e = Graph.add_edge g 0 1 in
  let path = [ Dirlink.of_edge g ~edge:e ~src:0 ] in
  let engine, sim = mk_sim ~rate:1000 g in
  let bulk =
    Traffic_spec.make ~rate:800 ~burst_bits:8000 ~packet_bits:4000 ()
  in
  let urgent = Traffic_spec.cbr ~rate:100 ~packet_bits:500 in
  let _bulk_id = Netsim.add_flow sim ~path ~spec:bulk ~deadline:0.5 ~stop:1.0 () in
  let urgent_id = Netsim.add_flow sim ~path ~spec:urgent ~deadline:0.01 ~stop:1.0 () in
  ignore (Engine.run ~until:3. engine);
  let st = Netsim.stats sim urgent_id in
  Alcotest.(check bool) "urgent flow ran" true (st.Netsim.delivered > 50);
  (* Non-preemptive blocking by one 4 ms bulk packet still fits the 10 ms
     deadline; EDF must not starve the urgent flow. *)
  Alcotest.(check int) "urgent misses" 0 st.Netsim.missed

let test_overload_misses () =
  let g = Graph.create 2 in
  let e = Graph.add_edge g 0 1 in
  let path = [ Dirlink.of_edge g ~edge:e ~src:0 ] in
  let engine, sim = mk_sim ~rate:100 g in
  (* Two 80 Kbps flows into a 100 Kbps link: overload -> growing queue ->
     misses. *)
  let spec = Traffic_spec.cbr ~rate:80 ~packet_bits:1000 in
  let f1 = Netsim.add_flow sim ~path ~spec ~deadline:0.05 ~stop:2.0 () in
  let f2 = Netsim.add_flow sim ~path ~spec ~deadline:0.05 ~stop:2.0 () in
  ignore (Engine.run ~until:4. engine);
  let m1 = (Netsim.stats sim f1).Netsim.missed in
  let m2 = (Netsim.stats sim f2).Netsim.missed in
  Alcotest.(check bool) (Printf.sprintf "misses %d + %d > 0" m1 m2) true (m1 + m2 > 0)

let test_link_utilisation_accounting () =
  let g = Graph.create 2 in
  let e = Graph.add_edge g 0 1 in
  let dl = Dirlink.of_edge g ~edge:e ~src:0 in
  let engine, sim = mk_sim ~rate:1000 g in
  let spec = Traffic_spec.cbr ~rate:100 ~packet_bits:1000 in
  let fid = Netsim.add_flow sim ~path:[ dl ] ~spec ~deadline:0.05 ~stop:1.0 () in
  ignore (Engine.run ~until:2. engine);
  let st = Netsim.stats sim fid in
  (* Each packet takes 1 ms on the wire. *)
  Alcotest.check (Alcotest.float 1e-6) "busy time"
    (float_of_int st.Netsim.delivered /. 1000.)
    (Netsim.link_busy_time sim dl);
  Alcotest.(check int) "total delivered" st.Netsim.delivered (Netsim.total_delivered sim)

let test_interval_skips_relieve_overload () =
  (* Overloaded link; the flow holds a 2-of-3 contract and may skip.
     Compared with the plain run (test_overload_misses), skipping must cut
     deadline misses while keeping the window contract. *)
  let g = Graph.create 2 in
  let e = Graph.add_edge g 0 1 in
  let path = [ Dirlink.of_edge g ~edge:e ~src:0 ] in
  (* 1.2x overload: the 2-of-3 contract may shed up to a third of the
     packets, comfortably covering the ~17% excess. *)
  let run ~interval =
    let engine = Engine.create () in
    let sim = Netsim.create engine g ~rate_of:(fun _ -> 100) in
    let spec = Traffic_spec.cbr ~rate:60 ~packet_bits:1000 in
    let f1 = Netsim.add_flow sim ~path ~spec ~deadline:0.05 ?interval ~skip_threshold:2 ~stop:2.0 () in
    let f2 = Netsim.add_flow sim ~path ~spec ~deadline:0.05 ?interval ~skip_threshold:2 ~stop:2.0 () in
    ignore (Engine.run ~until:4. engine);
    (Netsim.stats sim f1, Netsim.stats sim f2)
  in
  let p1, p2 = run ~interval:None in
  let s1, s2 = run ~interval:(Some (Interval_qos.spec ~k:2 ~m:3)) in
  let plain_misses = p1.Netsim.missed + p2.Netsim.missed in
  let skip_misses = s1.Netsim.missed + s2.Netsim.missed in
  Alcotest.(check bool)
    (Printf.sprintf "skips used (%d, %d)" s1.Netsim.skipped s2.Netsim.skipped)
    true
    (s1.Netsim.skipped + s2.Netsim.skipped > 0);
  Alcotest.(check bool)
    (Printf.sprintf "misses cut: %d -> %d" plain_misses skip_misses)
    true (skip_misses < plain_misses);
  Alcotest.(check (option int)) "no violations flow 1" (Some 0) s1.Netsim.contract_violations;
  Alcotest.(check (option int)) "plain flow reports no contract" None
    p1.Netsim.contract_violations

let test_interval_no_skip_when_uncongested () =
  let g = Graph.create 2 in
  let e = Graph.add_edge g 0 1 in
  let path = [ Dirlink.of_edge g ~edge:e ~src:0 ] in
  let engine = Engine.create () in
  let sim = Netsim.create engine g ~rate_of:(fun _ -> 1000) in
  let spec = Traffic_spec.cbr ~rate:100 ~packet_bits:1000 in
  let fid =
    Netsim.add_flow sim ~path ~spec ~deadline:0.05
      ~interval:(Interval_qos.spec ~k:2 ~m:3) ~stop:1.0 ()
  in
  ignore (Engine.run ~until:2. engine);
  let st = Netsim.stats sim fid in
  Alcotest.(check int) "no skips on a fast link" 0 st.Netsim.skipped;
  Alcotest.(check int) "no misses" 0 st.Netsim.missed

let test_flow_validation () =
  let g, _ = line_links () in
  let engine, sim = mk_sim g in
  ignore engine;
  Alcotest.check_raises "empty path" (Invalid_argument "Netsim.add_flow: empty path")
    (fun () ->
      ignore
        (Netsim.add_flow sim ~path:[] ~spec:(Traffic_spec.cbr ~rate:1 ~packet_bits:8)
           ~deadline:1. ~stop:1. ()))

(* Property: on a sufficiently fast link, a single conformant flow never
   misses and delivers everything sent before the horizon. *)
let qcheck_feasible_flow_never_misses =
  QCheck.Test.make ~name:"conformant flow on fast link never misses" ~count:50
    QCheck.(pair (int_range 10 200) (int_range 1 4))
    (fun (rate_kbps, hops) ->
      let g = Graph.create (hops + 1) in
      let path =
        List.init hops (fun i ->
            let e = Graph.add_edge g i (i + 1) in
            Dirlink.of_edge g ~edge:e ~src:i)
      in
      let engine = Engine.create () in
      let sim = Netsim.create engine g ~rate_of:(fun _ -> 10 * rate_kbps) in
      let spec = Traffic_spec.cbr ~rate:rate_kbps ~packet_bits:1000 in
      let fid = Netsim.add_flow sim ~path ~spec ~deadline:1. ~stop:1. () in
      ignore (Engine.run ~until:3. engine);
      let st = Netsim.stats sim fid in
      st.Netsim.missed = 0 && st.Netsim.in_flight = 0 && st.Netsim.delivered = st.Netsim.sent)

let () =
  Alcotest.run "traffic"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "packet period" `Quick test_packet_period;
          Alcotest.test_case "initial burst" `Quick test_bucket_initial_burst;
          Alcotest.test_case "refill" `Quick test_bucket_refill;
          Alcotest.test_case "burst cap" `Quick test_bucket_caps_at_burst;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "single packet delay" `Quick test_single_packet_delay;
          Alcotest.test_case "propagation delay" `Quick test_propagation_delay_added;
          Alcotest.test_case "cbr throughput" `Quick test_cbr_throughput;
          Alcotest.test_case "EDF priority" `Quick test_edf_prioritises_tight_deadline;
          Alcotest.test_case "overload misses" `Quick test_overload_misses;
          Alcotest.test_case "utilisation accounting" `Quick
            test_link_utilisation_accounting;
          Alcotest.test_case "validation" `Quick test_flow_validation;
          Alcotest.test_case "interval skips relieve overload" `Quick
            test_interval_skips_relieve_overload;
          Alcotest.test_case "no skips uncongested" `Quick
            test_interval_no_skip_when_uncongested;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_bucket_conformance; qcheck_feasible_flow_never_misses ] );
    ]
