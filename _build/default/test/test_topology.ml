(* Tests for graphs, path queries and topology generators. *)

(* A 5-node "bowtie-ish" fixture:
     0 - 1 - 2
      \  |  /
        3 - 4      edges: 0-1, 1-2, 0-3, 1-3, 2-3, 3-4 *)
let fixture () =
  let g = Graph.create 5 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  let e03 = Graph.add_edge g 0 3 in
  let e13 = Graph.add_edge g 1 3 in
  let e23 = Graph.add_edge g 2 3 in
  let e34 = Graph.add_edge g 3 4 in
  (g, (e01, e12, e03, e13, e23, e34))

let test_counts () =
  let g, _ = fixture () in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check int) "edges" 6 (Graph.edge_count g)

let test_endpoints () =
  let g, (e01, _, _, _, _, e34) = fixture () in
  Alcotest.(check (pair int int)) "e01" (0, 1) (Graph.endpoints g e01);
  Alcotest.(check (pair int int)) "e34" (3, 4) (Graph.endpoints g e34);
  Alcotest.(check int) "other endpoint" 4 (Graph.other_endpoint g e34 3);
  Alcotest.(check int) "other endpoint'" 3 (Graph.other_endpoint g e34 4)

let test_self_loop_rejected () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g 1 1))

let test_duplicate_rejected () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> ignore (Graph.add_edge g 1 0))

let test_find_edge () =
  let g, (e01, _, _, _, _, _) = fixture () in
  Alcotest.(check (option int)) "0-1 both ways" (Some e01) (Graph.find_edge g 1 0);
  Alcotest.(check (option int)) "0-4 absent" None (Graph.find_edge g 0 4)

let test_degree () =
  let g, _ = fixture () in
  Alcotest.(check int) "deg 3" 4 (Graph.degree g 3);
  Alcotest.(check int) "deg 4" 1 (Graph.degree g 4);
  let avg, dmin, dmax = Graph.degree_stats g in
  Alcotest.(check int) "min" 1 dmin;
  Alcotest.(check int) "max" 4 dmax;
  Alcotest.check (Alcotest.float 1e-9) "avg = 2E/N" 2.4 avg

let test_iter_edges_order () =
  let g, _ = fixture () in
  let ids = Graph.fold_edges (fun e _ _ acc -> e :: acc) g [] in
  Alcotest.(check (list int)) "id order" [ 5; 4; 3; 2; 1; 0 ] ids

let test_components () =
  let g = Graph.create 5 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 2 3);
  let comps = Graph.components g in
  Alcotest.(check int) "three components" 3 (List.length comps);
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 3 4);
  Alcotest.(check bool) "connected now" true (Graph.is_connected g)

let test_empty_graph_connected () =
  Alcotest.(check bool) "empty" true (Graph.is_connected (Graph.create 0));
  Alcotest.(check bool) "singleton" true (Graph.is_connected (Graph.create 1))

let test_copy_isolated () =
  let g, _ = fixture () in
  let g2 = Graph.copy g in
  ignore (Graph.add_edge g2 0 4);
  Alcotest.(check int) "copy grew" 7 (Graph.edge_count g2);
  Alcotest.(check int) "original intact" 6 (Graph.edge_count g)

(* --- Paths --- *)

let test_hops_from () =
  let g, _ = fixture () in
  let d = Paths.hops_from g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 1; 2 |] d

let test_hops_unreachable () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  let d = Paths.hops_from g 0 in
  Alcotest.(check int) "unreachable is -1" (-1) d.(2)

let test_shortest_path () =
  let g, _ = fixture () in
  match Paths.shortest_path g 0 4 with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    Alcotest.(check int) "two hops" 2 (Paths.hop_count p);
    Alcotest.(check (list int)) "via 3" [ 0; 3; 4 ] p.Paths.nodes;
    Alcotest.(check bool) "valid" true (Paths.is_valid g p)

let test_shortest_path_self () =
  let g, _ = fixture () in
  match Paths.shortest_path g 2 2 with
  | Some { Paths.nodes = [ 2 ]; edges = [] } -> ()
  | _ -> Alcotest.fail "expected trivial path"

let test_shortest_path_filtered () =
  let g, (_, _, e03, _, _, _) = fixture () in
  (* Block 0-3: the route to 4 must detour via 1. *)
  match Paths.shortest_path ~usable:(fun e -> e <> e03) g 0 4 with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    Alcotest.(check int) "three hops" 3 (Paths.hop_count p);
    Alcotest.(check bool) "avoids e03" true (not (List.mem e03 p.Paths.edges))

let test_path_validity_checks () =
  let g, (e01, e12, _, _, _, _) = fixture () in
  Alcotest.(check bool) "good" true
    (Paths.is_valid g { Paths.nodes = [ 0; 1; 2 ]; edges = [ e01; e12 ] });
  Alcotest.(check bool) "wrong edge" false
    (Paths.is_valid g { Paths.nodes = [ 0; 1; 2 ]; edges = [ e12; e01 ] });
  Alcotest.(check bool) "repeated node" false
    (Paths.is_valid g { Paths.nodes = [ 0; 1; 0 ]; edges = [ e01; e01 ] });
  Alcotest.(check bool) "length mismatch" false
    (Paths.is_valid g { Paths.nodes = [ 0; 1 ]; edges = [] })

let test_dijkstra_weighted () =
  let g, (e01, e12, e03, _, e23, _) = fixture () in
  (* Make the 0-3 shortcut expensive; cheapest 0->2 becomes 0-1-2. *)
  let weight e = if e = e03 || e = e23 then 10. else 1. in
  match Paths.dijkstra ~weight g 0 2 with
  | None -> Alcotest.fail "expected path"
  | Some (p, cost) ->
    Alcotest.check (Alcotest.float 1e-9) "cost" 2. cost;
    Alcotest.(check (list int)) "edges" [ e01; e12 ] p.Paths.edges

let test_dijkstra_matches_bfs_hops () =
  let rng = Prng.create 2 in
  let g = Waxman.generate rng (Waxman.spec ~nodes:40 ~alpha:0.4 ~beta:0.3 ()) in
  let weight _ = 1. in
  for src = 0 to 9 do
    let d = Paths.hops_from g src in
    for dst = 10 to 19 do
      match Paths.dijkstra ~weight g src dst with
      | Some (_, cost) ->
        Alcotest.(check int) "unit dijkstra = bfs" d.(dst) (int_of_float cost)
      | None -> Alcotest.(check int) "both unreachable" (-1) d.(dst)
    done
  done

let test_widest_path () =
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  let e13 = Graph.add_edge g 1 3 in
  let e02 = Graph.add_edge g 0 2 in
  let e23 = Graph.add_edge g 2 3 in
  let width e = if e = e01 || e = e13 then 5. else 8. in
  match Paths.widest_path ~width g 0 3 with
  | None -> Alcotest.fail "expected path"
  | Some (p, bottleneck) ->
    Alcotest.check (Alcotest.float 1e-9) "bottleneck" 8. bottleneck;
    Alcotest.(check (list int)) "wide route" [ e02; e23 ] p.Paths.edges

let test_widest_prefers_fewer_hops () =
  let g = Graph.create 4 in
  let e03 = Graph.add_edge g 0 3 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 3);
  match Paths.widest_path ~width:(fun _ -> 1.) g 0 3 with
  | Some (p, _) -> Alcotest.(check (list int)) "direct" [ e03 ] p.Paths.edges
  | None -> Alcotest.fail "expected path"

let test_diameter_and_avg () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 3);
  Alcotest.(check int) "line diameter" 3 (Paths.diameter g);
  Alcotest.(check int) "eccentricity of middle" 2 (Paths.eccentricity g 1);
  (* Average over ordered pairs of the 4-line: (6*1+4*2+2*3)/12 = 5/3. *)
  Alcotest.check (Alcotest.float 1e-9) "avg hops" (5. /. 3.) (Paths.average_hops g)

(* --- Waxman --- *)

let test_waxman_connected_and_sized () =
  List.iter
    (fun seed ->
      let g = Waxman.generate (Prng.create seed) (Waxman.paper_spec ~nodes:100) in
      Alcotest.(check bool) "connected" true (Graph.is_connected g);
      let e = Graph.edge_count g in
      Alcotest.(check bool)
        (Printf.sprintf "edge count %d within 15%% of 177" e)
        true
        (abs (e - 177) < 27))
    [ 1; 2; 3; 4; 5 ]

let test_waxman_deterministic () =
  let gen seed = Waxman.generate (Prng.create seed) (Waxman.paper_spec ~nodes:50) in
  let g1 = gen 9 and g2 = gen 9 in
  Alcotest.(check int) "same edges" (Graph.edge_count g1) (Graph.edge_count g2);
  Graph.iter_edges
    (fun e u v ->
      let u', v' = Graph.endpoints g2 e in
      Alcotest.(check (pair int int)) "same edge" (u, v) (u', v'))
    g1

let test_waxman_density_monotone_in_alpha () =
  let count alpha =
    Graph.edge_count
      (Waxman.generate (Prng.create 3) (Waxman.spec ~nodes:60 ~alpha ~beta:0.3 ()))
  in
  Alcotest.(check bool) "alpha grows edges" true (count 0.8 > count 0.1)

let test_waxman_spec_validation () =
  Alcotest.check_raises "alpha range" (Invalid_argument "Waxman.spec: alpha in (0, 1]")
    (fun () -> ignore (Waxman.spec ~nodes:10 ~alpha:0. ~beta:0.5 ()))

let test_waxman_calibration () =
  let rng = Prng.create 42 in
  let beta = Waxman.calibrate_beta rng ~nodes:100 ~alpha:0.33 ~target_edges:177 in
  let expected = Waxman.expected_edges (Prng.create 7) (Waxman.spec ~nodes:100 ~alpha:0.33 ~beta ()) in
  Alcotest.(check bool)
    (Printf.sprintf "calibrated expectation %.1f near 177" expected)
    true
    (Float.abs (expected -. 177.) < 20.)

let test_paper_instance_properties () =
  (* The calibrated instance must look like the paper's: ~354 directed
     links, diameter around 8, i.e. clearly not a 2-3 hop dense blob. *)
  let g = Waxman.generate (Prng.create 1) (Waxman.paper_spec ~nodes:100) in
  let diam = Paths.diameter g in
  Alcotest.(check bool) (Printf.sprintf "diameter %d in [6, 14]" diam) true
    (diam >= 6 && diam <= 14)

(* --- Transit-stub --- *)

let test_transit_stub_size () =
  let spec = Transit_stub.paper_spec in
  Alcotest.(check int) "100 nodes" 100 (Transit_stub.node_count spec);
  let info = Transit_stub.generate (Prng.create 4) spec in
  Alcotest.(check int) "graph nodes" 100 (Graph.node_count info.Transit_stub.graph);
  Alcotest.(check int) "4 transit nodes" 4 (List.length info.Transit_stub.transit_nodes)

let test_transit_stub_connected () =
  List.iter
    (fun seed ->
      let info = Transit_stub.generate (Prng.create seed) Transit_stub.paper_spec in
      Alcotest.(check bool) "connected" true (Graph.is_connected info.Transit_stub.graph))
    [ 1; 2; 3 ]

let test_transit_stub_hierarchy () =
  let info = Transit_stub.generate (Prng.create 5) Transit_stub.paper_spec in
  let g = info.Transit_stub.graph in
  let stub_of = info.Transit_stub.stub_of_node in
  (* Transit nodes carry stub -1; stubs are numbered. *)
  List.iter
    (fun t -> Alcotest.(check int) "transit marker" (-1) stub_of.(t))
    info.Transit_stub.transit_nodes;
  (* No edge may join two different stub domains directly: stub traffic
     must transit the core. *)
  Graph.iter_edges
    (fun _ u v ->
      if stub_of.(u) >= 0 && stub_of.(v) >= 0 then
        Alcotest.(check int) "no stub-stub shortcut" stub_of.(u) stub_of.(v))
    g

let test_transit_stub_multi_domain () =
  let spec =
    Transit_stub.spec ~transit_domains:3 ~transit_size:3 ~stubs_per_transit_node:2
      ~stub_size:4 ()
  in
  Alcotest.(check int) "node count" (9 + (9 * 2 * 4)) (Transit_stub.node_count spec);
  let info = Transit_stub.generate (Prng.create 6) spec in
  Alcotest.(check bool) "connected" true (Graph.is_connected info.Transit_stub.graph)

(* --- Torus --- *)

let test_torus_regular () =
  let g = Torus.generate ~rows:4 ~cols:5 in
  Alcotest.(check int) "nodes" 20 (Graph.node_count g);
  Alcotest.(check int) "edges" 40 (Graph.edge_count g);
  for u = 0 to 19 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g u)
  done;
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_torus_validation () =
  Alcotest.check_raises "too small" (Invalid_argument "Torus.generate: need rows, cols >= 3")
    (fun () -> ignore (Torus.generate ~rows:2 ~cols:5))

let test_torus_distances () =
  let g = Torus.generate ~rows:5 ~cols:5 in
  let d = Paths.hops_from g (Torus.node ~cols:5 0 0) in
  (* Manhattan with wrap: (2,2) is 4 away, (0,4) wraps to 1, (4,4) is 2. *)
  Alcotest.(check int) "(2,2)" 4 d.(Torus.node ~cols:5 2 2);
  Alcotest.(check int) "(0,4)" 1 d.(Torus.node ~cols:5 0 4);
  Alcotest.(check int) "(4,4)" 2 d.(Torus.node ~cols:5 4 4)

let test_torus_average_hops () =
  let rows = 5 and cols = 6 in
  let g = Torus.generate ~rows ~cols in
  Alcotest.check (Alcotest.float 1e-9) "closed form = BFS"
    (Paths.average_hops g)
    (Torus.average_hops ~rows ~cols)

let random_connected_graph seed nodes =
  Waxman.generate (Prng.create seed) (Waxman.spec ~nodes ~alpha:0.5 ~beta:0.3 ())

(* --- Centrality --- *)

(* Brute-force edge betweenness on small graphs: enumerate all shortest
   paths per pair by BFS DAG counting. *)
let brute_edge_betweenness g =
  let n = Graph.node_count g in
  let acc = Array.make (Graph.edge_count g) 0. in
  for s = 0 to n - 1 do
    (* sigma counts and BFS DAG. *)
    let dist = Paths.hops_from g s in
    let sigma = Array.make n 0. in
    sigma.(s) <- 1.;
    let by_dist = List.sort (fun a b -> compare dist.(a) dist.(b)) (List.init n Fun.id) in
    List.iter
      (fun v ->
        if v <> s && dist.(v) > 0 then
          List.iter
            (fun (u, _) -> if dist.(u) = dist.(v) - 1 then sigma.(v) <- sigma.(v) +. sigma.(u))
            (Graph.neighbors g v))
      by_dist;
    (* Dependencies backward. *)
    let delta = Array.make n 0. in
    List.iter
      (fun w ->
        if w <> s && dist.(w) > 0 then
          List.iter
            (fun (u, e) ->
              if dist.(u) = dist.(w) - 1 then begin
                let share = sigma.(u) /. sigma.(w) *. (1. +. delta.(w)) in
                acc.(e) <- acc.(e) +. share;
                delta.(u) <- delta.(u) +. share
              end)
            (Graph.neighbors g w))
      (List.rev by_dist)
  done;
  acc

let test_edge_betweenness_line () =
  (* Line 0-1-2-3: middle edge carries pairs {0,1}x{2,3} in both
     directions = 8 ordered-pair units; end edges carry 6. *)
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  let e23 = Graph.add_edge g 2 3 in
  let b = Centrality.edge_betweenness g in
  Alcotest.check (Alcotest.float 1e-9) "end edge" 6. b.(e01);
  Alcotest.check (Alcotest.float 1e-9) "middle edge" 8. b.(e12);
  Alcotest.check (Alcotest.float 1e-9) "other end" 6. b.(e23)

let test_edge_betweenness_splits_ties () =
  (* 4-cycle: every pair has either a unique 1-hop path or two 2-hop
     paths split evenly; by symmetry all edges equal. *)
  let g = Graph.create 4 in
  let es =
    [ Graph.add_edge g 0 1; Graph.add_edge g 1 2; Graph.add_edge g 2 3; Graph.add_edge g 3 0 ]
  in
  let b = Centrality.edge_betweenness g in
  List.iter
    (fun e -> Alcotest.check (Alcotest.float 1e-9) "symmetric" b.(List.hd es) b.(e))
    es;
  (* Total over edges = sum over ordered pairs of path length = 12 pairs
     avg... each ordered pair contributes its hop count: 8 pairs at 1 hop
     + 4 pairs at 2 hops = 16. *)
  Alcotest.check (Alcotest.float 1e-9) "mass conservation" 16.
    (Array.fold_left ( +. ) 0. b)

let test_node_betweenness_star () =
  (* Star with centre 0 and 4 leaves: centre lies on all 12 leaf-pair
     ordered paths. *)
  let g = Graph.create 5 in
  for leaf = 1 to 4 do
    ignore (Graph.add_edge g 0 leaf)
  done;
  let b = Centrality.node_betweenness g in
  Alcotest.check (Alcotest.float 1e-9) "centre" 12. b.(0);
  for leaf = 1 to 4 do
    Alcotest.check (Alcotest.float 1e-9) "leaf" 0. b.(leaf)
  done

let test_betweenness_matches_bruteforce () =
  List.iter
    (fun seed ->
      let g = random_connected_graph seed 18 in
      let fast = Centrality.edge_betweenness g in
      let slow = brute_edge_betweenness g in
      Array.iteri
        (fun e x -> Alcotest.check (Alcotest.float 1e-6) "edge value" slow.(e) x)
        fast)
    [ 1; 2; 3 ]

let test_edge_usage_sums_to_hops () =
  (* Sum of per-edge usage probabilities = expected path length. *)
  let g = random_connected_graph 4 25 in
  let p = Centrality.edge_usage_probability g in
  let total = Array.fold_left ( +. ) 0. p in
  Alcotest.check (Alcotest.float 1e-6) "sum = avg hops" (Paths.average_hops g) total

(* --- properties --- *)

let qcheck_shortest_paths_valid =
  QCheck.Test.make ~name:"BFS paths are valid simple paths" ~count:100
    QCheck.(triple small_int (int_range 5 40) (pair small_int small_int))
    (fun (seed, nodes, (a, b)) ->
      let g = random_connected_graph seed nodes in
      let src = a mod nodes and dst = b mod nodes in
      match Paths.shortest_path g src dst with
      | None -> false (* generator guarantees connectivity *)
      | Some p -> Paths.is_valid g p || src = dst)

let qcheck_bfs_symmetric =
  QCheck.Test.make ~name:"hop distance is symmetric" ~count:50
    QCheck.(pair small_int (int_range 5 30))
    (fun (seed, nodes) ->
      let g = random_connected_graph seed nodes in
      let ok = ref true in
      for u = 0 to min 4 (nodes - 1) do
        let du = Paths.hops_from g u in
        for v = 0 to nodes - 1 do
          let dv = Paths.hops_from g v in
          if du.(v) <> dv.(u) then ok := false
        done
      done;
      !ok)

let qcheck_triangle_inequality =
  QCheck.Test.make ~name:"hop distance triangle inequality" ~count:50
    QCheck.(pair small_int (int_range 5 25))
    (fun (seed, nodes) ->
      let g = random_connected_graph seed nodes in
      let d = Array.init nodes (fun u -> Paths.hops_from g u) in
      let ok = ref true in
      for u = 0 to nodes - 1 do
        for v = 0 to nodes - 1 do
          for w = 0 to nodes - 1 do
            if d.(u).(v) > d.(u).(w) + d.(w).(v) then ok := false
          done
        done
      done;
      !ok)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "self-loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "duplicate" `Quick test_duplicate_rejected;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "degree" `Quick test_degree;
          Alcotest.test_case "edge iteration order" `Quick test_iter_edges_order;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "trivial connectivity" `Quick test_empty_graph_connected;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
        ] );
      ( "paths",
        [
          Alcotest.test_case "hops_from" `Quick test_hops_from;
          Alcotest.test_case "unreachable" `Quick test_hops_unreachable;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "trivial path" `Quick test_shortest_path_self;
          Alcotest.test_case "filtered path" `Quick test_shortest_path_filtered;
          Alcotest.test_case "validity checks" `Quick test_path_validity_checks;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
            test_dijkstra_matches_bfs_hops;
          Alcotest.test_case "widest path" `Quick test_widest_path;
          Alcotest.test_case "widest ties to hops" `Quick test_widest_prefers_fewer_hops;
          Alcotest.test_case "diameter & average" `Quick test_diameter_and_avg;
        ] );
      ( "waxman",
        [
          Alcotest.test_case "connected & calibrated" `Quick test_waxman_connected_and_sized;
          Alcotest.test_case "deterministic" `Quick test_waxman_deterministic;
          Alcotest.test_case "alpha monotone" `Quick test_waxman_density_monotone_in_alpha;
          Alcotest.test_case "spec validation" `Quick test_waxman_spec_validation;
          Alcotest.test_case "calibration" `Quick test_waxman_calibration;
          Alcotest.test_case "paper instance shape" `Quick test_paper_instance_properties;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "size" `Quick test_transit_stub_size;
          Alcotest.test_case "connected" `Quick test_transit_stub_connected;
          Alcotest.test_case "hierarchy" `Quick test_transit_stub_hierarchy;
          Alcotest.test_case "multiple domains" `Quick test_transit_stub_multi_domain;
        ] );
      ( "centrality",
        [
          Alcotest.test_case "line edges" `Quick test_edge_betweenness_line;
          Alcotest.test_case "cycle tie splitting" `Quick test_edge_betweenness_splits_ties;
          Alcotest.test_case "star nodes" `Quick test_node_betweenness_star;
          Alcotest.test_case "matches brute force" `Quick test_betweenness_matches_bruteforce;
          Alcotest.test_case "usage sums to hops" `Quick test_edge_usage_sums_to_hops;
        ] );
      ( "torus",
        [
          Alcotest.test_case "regularity" `Quick test_torus_regular;
          Alcotest.test_case "size bounds" `Quick test_torus_validation;
          Alcotest.test_case "distances" `Quick test_torus_distances;
          Alcotest.test_case "average hops closed form" `Quick test_torus_average_hops;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_shortest_paths_valid; qcheck_bfs_symmetric; qcheck_triangle_inequality ]
      );
    ]
