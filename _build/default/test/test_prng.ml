(* Tests for the SplitMix64 generator. *)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_preserves_stream () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independence () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "split diverges from parent" true !differs

let test_split_deterministic () =
  let mk () =
    let a = Prng.create 99 in
    let b = Prng.split a in
    Prng.bits64 b
  in
  Alcotest.(check int64) "split is reproducible" (mk ()) (mk ())

let test_int_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "0 <= x < 17" true (x >= 0 && x < 17)
  done

let test_int_covers_all_values () =
  let rng = Prng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_int_rejects_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create 1) 0))

let test_float_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0. && x < 2.5)
  done

let test_float_mean () =
  let rng = Prng.create 13 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.float rng 1.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let rng = Prng.create 17 in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly balanced" true (Float.abs (frac -. 0.5) < 0.02)

let test_exponential_mean () =
  let rng = Prng.create 19 in
  let rate = 0.25 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential rng rate
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 4.) < 0.1)

let test_exponential_positive () =
  let rng = Prng.create 23 in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "positive" true (Prng.exponential rng 3. > 0.)
  done

let test_uniform_in () =
  let rng = Prng.create 29 in
  for _ = 1 to 1_000 do
    let x = Prng.uniform_in rng (-2.) 3. in
    Alcotest.(check bool) "in range" true (x >= -2. && x < 3.)
  done

let test_pick () =
  let rng = Prng.create 31 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Prng.pick rng arr in
    Alcotest.(check bool) "member" true (Array.mem x arr)
  done

let test_pick_empty () =
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick (Prng.create 1) [||]))

let test_shuffle_is_permutation () =
  let rng = Prng.create 37 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_shuffle_moves_something () =
  let rng = Prng.create 41 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 Fun.id)

let test_distinct_pair () =
  let rng = Prng.create 43 in
  for _ = 1 to 5_000 do
    let a, b = Prng.sample_distinct_pair rng 5 in
    Alcotest.(check bool) "distinct, in range" true
      (a <> b && a >= 0 && a < 5 && b >= 0 && b < 5)
  done

let test_distinct_pair_covers () =
  let rng = Prng.create 47 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 2_000 do
    Hashtbl.replace seen (Prng.sample_distinct_pair rng 3) ()
  done;
  Alcotest.(check int) "all 6 ordered pairs occur" 6 (Hashtbl.length seen)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"int stays in bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let qcheck_float_in_bounds =
  QCheck.Test.make ~name:"float stays in bounds" ~count:1000
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.float rng bound in
      x >= 0. && x < bound)

let qcheck_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 40) int))
    (fun (seed, l) ->
      let rng = Prng.create seed in
      let arr = Array.of_list l in
      Prng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let () =
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy preserves stream" `Quick test_copy_preserves_stream;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_all_values;
          Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "uniform_in range" `Quick test_uniform_in;
        ] );
      ( "collections",
        [
          Alcotest.test_case "pick membership" `Quick test_pick;
          Alcotest.test_case "pick empty" `Quick test_pick_empty;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
          Alcotest.test_case "distinct pair" `Quick test_distinct_pair;
          Alcotest.test_case "distinct pair coverage" `Quick test_distinct_pair_covers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_int_in_bounds; qcheck_float_in_bounds; qcheck_shuffle_permutes ] );
    ]
