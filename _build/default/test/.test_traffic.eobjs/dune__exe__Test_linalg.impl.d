test/test_linalg.ml: Alcotest Array Linsolve List Matrix QCheck QCheck_alcotest
