test/test_routing.ml: Alcotest Dirlink Disjoint Flooding Graph Link_state List Net_state Option Paths Prng QCheck QCheck_alcotest Sequential Waxman Yen
