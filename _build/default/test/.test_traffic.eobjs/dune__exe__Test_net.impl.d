test/test_net.ml: Alcotest Bandwidth Dirlink Edf Format Graph Hashtbl Interval_qos Link_state List Net_state Option Paths Policy Prng QCheck QCheck_alcotest Qos
