test/test_integration.ml: Alcotest Bandwidth Centrality Drcomm Estimator Float Format Graph List Matrix Model Net_state Policy Printf Prng Qos Scenario Torus Waxman
