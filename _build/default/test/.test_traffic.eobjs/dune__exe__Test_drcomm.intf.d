test/test_drcomm.mli:
