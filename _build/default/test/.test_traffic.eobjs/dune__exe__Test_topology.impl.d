test/test_topology.ml: Alcotest Array Centrality Float Fun Graph List Paths Printf Prng QCheck QCheck_alcotest Torus Transit_stub Waxman
