test/test_drcomm.ml: Alcotest Array Dirlink Drcomm Graph Link_state List Net_state Option Policy Printf Prng QCheck QCheck_alcotest Qos Waxman
