test/test_markov.ml: Alcotest Array Birth_death Ctmc Dtmc Erlang Float Linsolve List Matrix Printf Prng QCheck QCheck_alcotest
