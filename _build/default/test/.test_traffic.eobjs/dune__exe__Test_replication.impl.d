test/test_replication.ml: Alcotest Dirlink Drcomm Graph Link_state List Net_state Printf Prng QCheck QCheck_alcotest Qos Replication Waxman
