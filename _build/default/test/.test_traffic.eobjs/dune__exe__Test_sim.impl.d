test/test_sim.ml: Alcotest Engine Event_queue Float List Option Prng QCheck QCheck_alcotest Stats
