test/test_prng.ml: Alcotest Array Float Fun Gen Hashtbl List Prng QCheck QCheck_alcotest
