test/test_traffic.ml: Alcotest Dirlink Engine Graph Interval_qos List Netsim Printf QCheck QCheck_alcotest Stats Traffic_spec
