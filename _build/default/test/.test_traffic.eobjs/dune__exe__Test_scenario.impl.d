test/test_scenario.ml: Alcotest Array Bandwidth Float Graph Printf Prng Qos Scenario Transit_stub Waxman
