test/test_model.ml: Alcotest Array Ctmc Drcomm Dtmc Estimator Float Graph Ideal Linsolve Matrix Model Printf Prng QCheck QCheck_alcotest Qos
