(* Tests for bounded flooding, disjoint path sets and Yen's algorithm. *)

(* Diamond with a long detour:
     0 - 1 - 3        (short: 2 hops)
     0 - 2 - 3        (short: 2 hops)
     0 - 4 - 5 - 3    (long: 3 hops)                                    *)
let diamond () =
  let g = Graph.create 6 in
  let e01 = Graph.add_edge g 0 1 in
  let e13 = Graph.add_edge g 1 3 in
  let e02 = Graph.add_edge g 0 2 in
  let e23 = Graph.add_edge g 2 3 in
  let e04 = Graph.add_edge g 0 4 in
  let e45 = Graph.add_edge g 4 5 in
  let e53 = Graph.add_edge g 5 3 in
  (g, (e01, e13, e02, e23, e04, e45, e53))

let edges_of p = p.Paths.edges

let test_primary_route_min_hop () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  match Flooding.primary_route net req with
  | None -> Alcotest.fail "expected route"
  | Some p -> Alcotest.(check int) "two hops" 2 (Paths.hop_count p)

let test_primary_route_respects_capacity () =
  let g, (e01, e13, _, _, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  (* Fill the 0-1-3 route's floor space completely. *)
  List.iter
    (fun e ->
      let dl = Dirlink.of_edge g ~edge:e ~src:(fst (Graph.endpoints g e)) in
      Link_state.reserve_primary (Net_state.link net dl) ~channel:99 ~b_min:950)
    [ e01; e13 ];
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  match Flooding.primary_route net req with
  | None -> Alcotest.fail "expected route"
  | Some p ->
    Alcotest.(check bool) "avoids full links" true
      (not (List.mem e01 (edges_of p)) && not (List.mem e13 (edges_of p)))

let test_primary_route_allowance_tiebreak () =
  let g, (e01, e13, _, _, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  (* Both 2-hop routes admissible; load one partially so the other has the
     better allowance. *)
  let dl = Dirlink.of_edge g ~edge:e01 ~src:0 in
  Link_state.reserve_primary (Net_state.link net dl) ~channel:99 ~b_min:500;
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  match Flooding.primary_route net req with
  | None -> Alcotest.fail "expected route"
  | Some p ->
    Alcotest.(check bool) "prefers lighter route" true
      (not (List.mem e01 (edges_of p)) && not (List.mem e13 (edges_of p)))

let test_primary_route_hop_bound () =
  let g, (e01, e13, e02, e23, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  (* Saturate both 2-hop routes: only the 3-hop detour remains. *)
  List.iter
    (fun e ->
      List.iter
        (fun dl -> Link_state.reserve_primary (Net_state.link net dl) ~channel:99 ~b_min:950)
        [ 2 * e; (2 * e) + 1 ])
    [ e01; e13; e02; e23 ];
  let bounded = Flooding.request ~hop_bound:2 ~src:0 ~dst:3 ~floor:100 () in
  Alcotest.(check bool) "bounded fails" true (Flooding.primary_route net bounded = None);
  let unbounded = Flooding.request ~hop_bound:5 ~src:0 ~dst:3 ~floor:100 () in
  match Flooding.primary_route net unbounded with
  | Some p -> Alcotest.(check int) "detour" 3 (Paths.hop_count p)
  | None -> Alcotest.fail "detour expected"

let test_primary_route_avoids_failures () =
  let g, (e01, _, e02, _, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  Net_state.fail_edge net e01;
  Net_state.fail_edge net e02;
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  match Flooding.primary_route net req with
  | None -> Alcotest.fail "expected detour"
  | Some p -> Alcotest.(check int) "detour hops" 3 (Paths.hop_count p)

let test_primary_route_directional_capacity () =
  (* Fill only the 0->1 direction; the 1->0 direction must still admit. *)
  let g, (e01, _, _, _, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let fwd = Dirlink.of_edge g ~edge:e01 ~src:0 in
  Link_state.reserve_primary (Net_state.link net fwd) ~channel:99 ~b_min:950;
  let req_fwd = Flooding.request ~hop_bound:1 ~src:0 ~dst:1 ~floor:100 () in
  let req_bwd = Flooding.request ~hop_bound:1 ~src:1 ~dst:0 ~floor:100 () in
  Alcotest.(check bool) "forward full" true (Flooding.primary_route net req_fwd = None);
  Alcotest.(check bool) "reverse open" true (Flooding.primary_route net req_bwd <> None)

let test_backup_route_disjoint () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  let primary = Option.get (Flooding.primary_route net req) in
  match Flooding.backup_route net req ~primary_edges:(edges_of primary) with
  | None -> Alcotest.fail "expected backup"
  | Some b ->
    List.iter
      (fun e ->
        Alcotest.(check bool) "disjoint" true (not (List.mem e (edges_of primary))))
      (edges_of b)

let test_backup_route_maximally_disjoint_fallback () =
  (* A bridge graph: 0-1, 1-2 with an alternative 0-3-1 for the first
     half only; every 0->2 route must cross 1-2, so the backup shares
     exactly that bridge. *)
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  ignore (Graph.add_edge g 0 3);
  ignore (Graph.add_edge g 3 1);
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:2 ~floor:100 () in
  let primary = Option.get (Flooding.primary_route net req) in
  Alcotest.(check (list int)) "primary direct" [ e01; e12 ] (edges_of primary);
  match Flooding.backup_route net req ~primary_edges:(edges_of primary) with
  | None -> Alcotest.fail "expected maximally disjoint backup"
  | Some b ->
    let shared = List.filter (fun e -> List.mem e (edges_of primary)) (edges_of b) in
    Alcotest.(check (list int)) "shares only the bridge" [ e12 ] shared

let test_backup_route_multiplexing_aware () =
  (* With multiplexing, a second backup over the same link is free when
     the primaries are disjoint — the backup route search must see that. *)
  let g, (_, _, e02, e23, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  (* Saturate backup-capacity on the 0-2-3 route down to 100 headroom. *)
  List.iter
    (fun e ->
      List.iter
        (fun dl ->
          Link_state.reserve_primary (Net_state.link net dl) ~channel:99 ~b_min:900)
        [ 2 * e; (2 * e) + 1 ])
    [ e02; e23 ];
  (* Existing backup on 0-2-3 whose primary uses edges [100] (phantom ids
     are fine for the pool arithmetic). *)
  List.iter
    (fun e ->
      Link_state.register_backup
        (Net_state.link net (2 * e))
        ~channel:50 ~b_min:100 ~primary_edges:[ 100 ])
    [ e02; e23 ];
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  (* New primary on 0-1-3 (disjoint from the phantom), so its backup can
     multiplex with channel 50's pool on 0-2-3. *)
  let primary = Option.get (Flooding.primary_route net req) in
  match Flooding.backup_route net req ~primary_edges:(edges_of primary) with
  | None -> Alcotest.fail "multiplexing should admit the backup"
  | Some b ->
    Alcotest.(check (list int)) "rides the pooled route" [ e02; e23 ] (edges_of b)

let test_message_count () =
  let g, _ = diamond () in
  let req = Flooding.request ~hop_bound:1 ~src:0 ~dst:3 ~floor:100 () in
  (* Only node 0 is strictly inside the 1-hop region: it forwards over its
     3 links. *)
  Alcotest.(check int) "one-hop flood" 3 (Flooding.message_count g req);
  let req2 = Flooding.request ~hop_bound:16 ~src:0 ~dst:3 ~floor:100 () in
  (* Every node forwards over degree (src) or degree-1 (others):
     degrees: 0:3, 1:2, 2:2, 3:3, 4:2, 5:2 -> 3 + 1+1+2+1+1 = 9. *)
  Alcotest.(check int) "full flood" 9 (Flooding.message_count g req2)

let test_request_validation () =
  Alcotest.check_raises "src = dst" (Invalid_argument "Flooding.request: src = dst")
    (fun () -> ignore (Flooding.request ~src:1 ~dst:1 ~floor:10 ()))

(* --- Disjoint --- *)

let test_disjoint_paths () =
  let g, _ = diamond () in
  let paths = Disjoint.paths g ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "three disjoint" 3 (List.length paths);
  (* Pairwise edge-disjoint. *)
  let all_edges = List.concat_map edges_of paths in
  Alcotest.(check int) "no edge reused" (List.length all_edges)
    (List.length (List.sort_uniq compare all_edges));
  (* Sorted by hops. *)
  let hops = List.map Paths.hop_count paths in
  Alcotest.(check (list int)) "shortest first" [ 2; 2; 3 ] hops

let test_disjoint_exhaustion () =
  let g, _ = diamond () in
  let paths = Disjoint.paths g ~src:0 ~dst:3 ~k:10 in
  Alcotest.(check int) "only three exist" 3 (List.length paths);
  Alcotest.(check int) "estimate" 3 (Disjoint.max_disjoint_estimate g ~src:0 ~dst:3)

let test_disjoint_respects_filter () =
  let g, (e01, _, _, _, _, _, _) = diamond () in
  let paths = Disjoint.paths ~usable:(fun e -> e <> e01) g ~src:0 ~dst:3 ~k:10 in
  Alcotest.(check int) "two left" 2 (List.length paths)

(* --- Yen --- *)

let test_yen_ordering_and_distinctness () =
  let g, _ = diamond () in
  let paths = Yen.k_shortest g ~src:0 ~dst:3 ~k:10 in
  (* Simple paths from 0 to 3: two 2-hop, one 3-hop, plus longer combined
     ones through 4-5 after deviating — all must be distinct and sorted. *)
  Alcotest.(check bool) "at least 3" true (List.length paths >= 3);
  let hops = List.map Paths.hop_count paths in
  Alcotest.(check (list int)) "sorted" (List.sort compare hops) hops;
  let keys = List.map (fun p -> p.Paths.nodes) paths in
  Alcotest.(check int) "distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun p -> Alcotest.(check bool) "valid" true (Paths.is_valid g p))
    paths

let test_yen_k1_is_bfs () =
  let g, _ = diamond () in
  match (Yen.k_shortest g ~src:0 ~dst:3 ~k:1, Paths.shortest_path g 0 3) with
  | [ a ], Some b -> Alcotest.(check int) "same hops" (Paths.hop_count b) (Paths.hop_count a)
  | _ -> Alcotest.fail "expected single path"

let test_yen_disconnected () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 2 3);
  Alcotest.(check int) "none" 0 (List.length (Yen.k_shortest g ~src:0 ~dst:3 ~k:5))

let test_first_admissible () =
  let g, _ = diamond () in
  let candidates = Yen.k_shortest g ~src:0 ~dst:3 ~k:10 in
  let found =
    Yen.first_admissible ~candidates ~admissible:(fun p -> Paths.hop_count p >= 3)
  in
  match found with
  | Some p -> Alcotest.(check int) "first long one" 3 (Paths.hop_count p)
  | None -> Alcotest.fail "expected a candidate"

(* --- Sequential search --- *)

let test_sequential_matches_flooding_hops () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  let f = Option.get (Flooding.primary_route net req) in
  let s = Option.get (Sequential.primary_route net req ~candidates:8) in
  Alcotest.(check int) "same hop count" (Paths.hop_count f) (Paths.hop_count s)

let test_sequential_skips_inadmissible () =
  let g, (e01, e13, _, _, _, _, _) = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  List.iter
    (fun e ->
      List.iter
        (fun dl -> Link_state.reserve_primary (Net_state.link net dl) ~channel:99 ~b_min:950)
        [ 2 * e; (2 * e) + 1 ])
    [ e01; e13 ];
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  match Sequential.primary_route net req ~candidates:8 with
  | None -> Alcotest.fail "expected another candidate"
  | Some p ->
    Alcotest.(check bool) "avoids the full route" true
      (not (List.mem e01 (edges_of p)))

let test_sequential_exhausts_candidates () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:150 g in
  (* Floor 200 exceeds every link's capacity: no candidate admits. *)
  let req = Flooding.request ~src:0 ~dst:3 ~floor:200 () in
  Alcotest.(check bool) "none" true (Sequential.primary_route net req ~candidates:8 = None)

let test_sequential_backup_disjoint () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  let primary = Option.get (Sequential.primary_route net req ~candidates:8) in
  match Sequential.backup_route net req ~candidates:8 ~primary_edges:(edges_of primary) with
  | None -> Alcotest.fail "expected backup"
  | Some b ->
    List.iter
      (fun e -> Alcotest.(check bool) "disjoint" true (not (List.mem e (edges_of primary))))
      (edges_of b)

let test_sequential_backup_rejects_useless () =
  (* On a line there is only one route: a "backup" identical to the
     primary must be refused. *)
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:2 ~floor:100 () in
  let primary = Option.get (Sequential.primary_route net req ~candidates:8) in
  Alcotest.(check bool) "no useless backup" true
    (Sequential.backup_route net req ~candidates:8 ~primary_edges:(edges_of primary)
    = None)

let test_sequential_probe_count () =
  let g, _ = diamond () in
  let net = Net_state.create ~capacity:1000 g in
  let req = Flooding.request ~src:0 ~dst:3 ~floor:100 () in
  (* First candidate (2 hops) admits immediately: 2 probes. *)
  Alcotest.(check int) "2 probes" 2 (Sequential.probe_count net req ~candidates:8);
  (* Sequential probing costs far less than flooding on this graph. *)
  Alcotest.(check bool) "cheaper than flooding" true
    (Sequential.probe_count net req ~candidates:8 < Flooding.message_count g req)

(* Properties on random graphs. *)

let random_graph seed n = Waxman.generate (Prng.create seed) (Waxman.spec ~nodes:n ~alpha:0.5 ~beta:0.3 ())

let qcheck_disjoint_really_disjoint =
  QCheck.Test.make ~name:"disjoint paths share no edge" ~count:100
    QCheck.(triple small_int (int_range 6 30) (pair small_int small_int))
    (fun (seed, n, (a, b)) ->
      let g = random_graph seed n in
      let src = a mod n and dst = b mod n in
      if src = dst then true
      else begin
        let paths = Disjoint.paths g ~src ~dst ~k:4 in
        let edges = List.concat_map edges_of paths in
        List.length edges = List.length (List.sort_uniq compare edges)
        && List.for_all (Paths.is_valid g) paths
      end)

let qcheck_yen_sorted_distinct =
  QCheck.Test.make ~name:"yen paths sorted, distinct, valid" ~count:60
    QCheck.(triple small_int (int_range 6 20) (pair small_int small_int))
    (fun (seed, n, (a, b)) ->
      let g = random_graph seed n in
      let src = a mod n and dst = b mod n in
      if src = dst then true
      else begin
        let paths = Yen.k_shortest g ~src ~dst ~k:6 in
        let hops = List.map Paths.hop_count paths in
        let keys = List.map (fun p -> p.Paths.nodes) paths in
        hops = List.sort compare hops
        && List.length keys = List.length (List.sort_uniq compare keys)
        && List.for_all (Paths.is_valid g) paths
      end)

let qcheck_flooding_route_admissible =
  QCheck.Test.make ~name:"flooded route links all admit the floor" ~count:60
    QCheck.(triple small_int (int_range 6 25) (pair small_int small_int))
    (fun (seed, n, (a, b)) ->
      let g = random_graph seed n in
      let src = a mod n and dst = b mod n in
      if src = dst then true
      else begin
        let net = Net_state.create ~capacity:1000 g in
        let req = Flooding.request ~src ~dst ~floor:250 () in
        match Flooding.primary_route net req with
        | None -> false (* connected and empty: must route *)
        | Some p ->
          Paths.is_valid g p
          && List.for_all
               (fun dl ->
                 Link_state.admissible_primary (Net_state.link net dl) ~b_min:250)
               (Dirlink.of_path g p)
      end)

let () =
  Alcotest.run "routing"
    [
      ( "flooding",
        [
          Alcotest.test_case "min hop" `Quick test_primary_route_min_hop;
          Alcotest.test_case "capacity respected" `Quick test_primary_route_respects_capacity;
          Alcotest.test_case "allowance tiebreak" `Quick
            test_primary_route_allowance_tiebreak;
          Alcotest.test_case "hop bound" `Quick test_primary_route_hop_bound;
          Alcotest.test_case "failures avoided" `Quick test_primary_route_avoids_failures;
          Alcotest.test_case "directional capacity" `Quick
            test_primary_route_directional_capacity;
          Alcotest.test_case "backup disjoint" `Quick test_backup_route_disjoint;
          Alcotest.test_case "maximally disjoint fallback" `Quick
            test_backup_route_maximally_disjoint_fallback;
          Alcotest.test_case "multiplexing aware" `Quick test_backup_route_multiplexing_aware;
          Alcotest.test_case "message count" `Quick test_message_count;
          Alcotest.test_case "request validation" `Quick test_request_validation;
        ] );
      ( "disjoint",
        [
          Alcotest.test_case "three paths" `Quick test_disjoint_paths;
          Alcotest.test_case "exhaustion" `Quick test_disjoint_exhaustion;
          Alcotest.test_case "filter" `Quick test_disjoint_respects_filter;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "matches flooding hops" `Quick
            test_sequential_matches_flooding_hops;
          Alcotest.test_case "skips inadmissible" `Quick test_sequential_skips_inadmissible;
          Alcotest.test_case "exhausts candidates" `Quick test_sequential_exhausts_candidates;
          Alcotest.test_case "backup disjoint" `Quick test_sequential_backup_disjoint;
          Alcotest.test_case "rejects useless backup" `Quick
            test_sequential_backup_rejects_useless;
          Alcotest.test_case "probe count" `Quick test_sequential_probe_count;
        ] );
      ( "yen",
        [
          Alcotest.test_case "ordering & distinctness" `Quick
            test_yen_ordering_and_distinctness;
          Alcotest.test_case "k=1 is bfs" `Quick test_yen_k1_is_bfs;
          Alcotest.test_case "disconnected" `Quick test_yen_disconnected;
          Alcotest.test_case "first admissible" `Quick test_first_admissible;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_disjoint_really_disjoint;
            qcheck_yen_sorted_distinct;
            qcheck_flooding_route_admissible;
          ] );
    ]
