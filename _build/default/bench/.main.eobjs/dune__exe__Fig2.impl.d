bench/fig2.ml: Estimator Exp List Printf Scenario
