bench/ablation.ml: Bandwidth Drcomm Engine Exp Float Flooding Format Graph List Net_state Netsim Policy Printf Prng Qos Queue Replication Scenario Sequential Stats Traffic_spec Waxman
