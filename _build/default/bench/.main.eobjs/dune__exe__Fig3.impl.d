bench/fig3.ml: Exp Graph List Printf Scenario Waxman
