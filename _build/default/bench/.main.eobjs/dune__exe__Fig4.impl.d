bench/fig4.ml: Exp List Printf Scenario
