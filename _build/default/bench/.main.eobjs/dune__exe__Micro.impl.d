bench/micro.ml: Analyze Array Bechamel Benchmark Drcomm Exp Float Flooding Graph Hashtbl Instance Lazy List Matrix Measure Model Net_state Paths Printf Prng Qos Staged Test Time Toolkit Waxman
