bench/main.mli:
