bench/table1.ml: Estimator Exp List Printf Scenario Transit_stub
