bench/exp.ml: Filename List Option Printf Qos Scenario String Sys Unix
