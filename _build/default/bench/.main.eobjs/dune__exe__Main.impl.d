bench/main.ml: Ablation Array Exp Fig2 Fig3 Fig4 List Micro Printf Sys Table1 Unix
