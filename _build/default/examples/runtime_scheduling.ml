(* Run-time message scheduling on one link — the second phase of a
   real-time channel (§2.1.1) plus the interval (k-out-of-M) QoS model
   (§2.2).

   Three channels share a 1 Mbps link under EDF.  The link is then
   overloaded; the interval-QoS monitors decide which packets may be
   skipped (distance-based priority), so every channel keeps its
   k-out-of-M contract even though not every packet can be sent.

     dune exec examples/runtime_scheduling.exe *)

let printf = Printf.printf

let () =
  let rate = Bandwidth.mbps 1 in
  (* Admission first: three periodic flows, EDF-schedulable? *)
  let flows =
    [
      { Edf.period = 0.020; packet_bits = 8000; relative_deadline = 0.020 };
      { Edf.period = 0.020; packet_bits = 4000; relative_deadline = 0.020 };
      { Edf.period = 0.040; packet_bits = 6000; relative_deadline = 0.030 };
    ]
  in
  printf "link rate: %s\n" (Format.asprintf "%a" Bandwidth.pp rate);
  printf "utilisation of the three flows: %.2f -> schedulable: %b\n"
    (Edf.utilisation ~rate flows)
    (Edf.schedulable ~rate flows);

  (* Simulate 0.2 s of perfectly periodic traffic. *)
  let link = Edf.create ~rate in
  List.iteri
    (fun ch flow ->
      let t = ref 0. in
      while !t < 0.2 do
        Edf.submit link
          {
            Edf.channel = ch;
            release = !t;
            deadline = !t +. flow.Edf.relative_deadline;
            size_bits = flow.Edf.packet_bits;
          };
        t := !t +. flow.Edf.period
      done)
    flows;
  let completions = Edf.drain link in
  let missed = List.length (List.filter (fun c -> c.Edf.missed) completions) in
  printf "feasible load: %d packets transmitted, %d deadline misses\n\n"
    (List.length completions) missed;

  (* Now overload: a fourth aggressive flow joins.  Plain EDF misses
     deadlines for everyone; with interval QoS each channel accepts a
     2-out-of-3 contract and the scheduler skips the most skippable
     channel's packet under pressure. *)
  let spec = Interval_qos.spec ~k:2 ~m:3 in
  let monitors = Array.init 4 (fun _ -> Interval_qos.create spec) in
  let all_flows =
    flows @ [ { Edf.period = 0.008; packet_bits = 7000; relative_deadline = 0.012 } ]
  in
  printf "overload: utilisation with the 4th flow = %.2f (not schedulable)\n"
    (Edf.utilisation ~rate all_flows);
  printf "contract: deliver at least 2 of every 3 packets per channel\n";

  (* Per 4 ms slot, each due packet is either submitted or skipped; a
     packet is skipped only when its channel's window tolerates it
     (distance-to-failure >= 1) and the link is behind. *)
  let link = Edf.create ~rate in
  let backlog_bits = ref 0 in
  let sent = Array.make 4 0 and skipped = Array.make 4 0 in
  let t = ref 0. in
  let next_release = Array.make 4 0. in
  while !t < 0.5 do
    List.iteri
      (fun ch flow ->
        if next_release.(ch) <= !t then begin
          next_release.(ch) <- next_release.(ch) +. flow.Edf.period;
          let overloaded = !backlog_bits > 8000 in
          if overloaded && Interval_qos.can_skip monitors.(ch) then begin
            Interval_qos.record monitors.(ch) ~delivered:false;
            skipped.(ch) <- skipped.(ch) + 1
          end
          else begin
            Edf.submit link
              {
                Edf.channel = ch;
                release = !t;
                deadline = !t +. flow.Edf.relative_deadline;
                size_bits = flow.Edf.packet_bits;
              };
            backlog_bits := !backlog_bits + flow.Edf.packet_bits;
            Interval_qos.record monitors.(ch) ~delivered:true;
            sent.(ch) <- sent.(ch) + 1
          end
        end)
      all_flows;
    let finished = Edf.run link ~until:(!t +. 0.004) in
    List.iter (fun c -> backlog_bits := !backlog_bits - c.Edf.packet.Edf.size_bits) finished;
    t := !t +. 0.004
  done;
  printf "\n%8s %6s %8s %12s %10s\n" "channel" "sent" "skipped" "window ok?" "violations";
  Array.iteri
    (fun ch mon ->
      printf "%8d %6d %8d %12b %10d\n" ch sent.(ch) skipped.(ch)
        (Interval_qos.satisfied mon)
        (Interval_qos.violations mon))
    monitors;
  printf
    "\nthe skips bought back link time while every sliding window stayed within\n\
     its 2-of-3 contract — elastic QoS enforced at packet granularity.\n"
