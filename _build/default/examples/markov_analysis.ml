(* The analysis side of the paper as a standalone toolkit: build the
   N-state chain from measured parameters and interrogate it — stationary
   QoS mix, "how long until my stream is squeezed to the floor?"
   (first-passage), "will I reach HD before dropping to the floor?"
   (hitting probability), and what-if sensitivities for planning.

     dune exec examples/markov_analysis.exe *)

let printf = Printf.printf

let () =
  (* Measure parameters on a moderately loaded paper network. *)
  let qos = Qos.paper_spec ~increment:50 in
  let cfg =
    {
      Scenario.default with
      Scenario.offered = 2000;
      churn_events = 1200;
      warmup_events = 300;
      seed = 7;
    }
  in
  printf "measuring P_f, P_s, A, B, T on the 100-node network (2000 connections)...\n";
  let r = Scenario.run cfg in
  let est = r.Scenario.estimator in
  printf "  P_f = %.4f, P_s = %.4f over %d arrivals\n" (Estimator.p_f est)
    (Estimator.p_s est) (Estimator.arrivals est);

  let params =
    Model.params_of_estimator ~lambda:cfg.Scenario.lambda ~mu:cfg.Scenario.mu
      ~gamma:0. est
  in
  let chain = Model.build_regularized params in
  let pi = Ctmc.stationary chain in
  printf "\nstationary QoS mix of one DR-connection:\n";
  Array.iteri
    (fun i p ->
      if p > 0.005 then
        printf "  %3d Kbps  %5.1f%%  %s\n"
          (Qos.bandwidth_of_level qos i)
          (100. *. p)
          (String.make (int_of_float (60. *. p)) '#'))
    pi;
  printf "  average: %.0f Kbps (simulation said %.0f)\n"
    (Model.average_bandwidth_regularized params ~qos)
    r.Scenario.sim_avg_bandwidth;

  (* First passage: from the best level, how long until the stream is
     squeezed into the bottom band (<= 150 Kbps, barely-recognisable
     video)?  The exact floor state is almost never the post-retreat
     landing spot (redistribution lifts channels off it within the same
     event), so the bottom *band* is the meaningful target. *)
  let top = Qos.levels qos - 1 in
  let h = Ctmc.mean_first_passage chain ~targets:[ 0; 1 ] in
  printf "\nexpected time until squeezed to <= 150 Kbps:\n";
  List.iter
    (fun lvl ->
      printf "  from %3d Kbps: %8.0f time units (~%.1f connection lifetimes)\n"
        (Qos.bandwidth_of_level qos lvl) h.(lvl)
        (h.(lvl) *. cfg.Scenario.mu))
    [ top; top / 2; 2 ];

  (* Hitting probability: starting mid-range, reach the ceiling before
     the bottom band? *)
  let p_up = Ctmc.hitting_probability chain ~targets:[ top ] ~avoid:[ 0; 1 ] in
  printf "\nP(reach %d Kbps before dropping to <= 150 Kbps):\n"
    (Qos.bandwidth_of_level qos top);
  List.iter
    (fun lvl ->
      printf "  from %3d Kbps: %5.1f%%\n" (Qos.bandwidth_of_level qos lvl)
        (100. *. p_up.(lvl)))
    [ 2; top / 2; top - 1 ];

  (* Sensitivities: where should the provider spend effort?  Scale each
     derivative by a plausible actionable change in its knob. *)
  printf "\nwhat-if analysis (effect of a realistic change in each knob):\n";
  List.iter
    (fun (label, knob, delta) ->
      printf "  %-34s %+7.1f Kbps\n" label
        (Model.sensitivity params ~qos knob *. delta))
    [
      ("10% more arrivals", `Lambda, 0.1 *. cfg.Scenario.lambda);
      ("10% faster turnover (mu)", `Mu, 0.1 *. cfg.Scenario.mu);
      ("failures at gamma = lambda/10", `Gamma, cfg.Scenario.lambda /. 10.);
      ("P_f up by 0.01 (denser routes)", `P_f, 0.01);
      ("P_s up by 0.05 (more chaining)", `P_s, 0.05);
    ];
  printf
    "\nreading: route sharing (P_f) is the lever — a 0.01 increase costs more\n\
     than turning on a realistic failure process; the paper's Fig. 4 finding\n\
     (failures negligible at gamma << lambda) drops out of the same chain.\n"
