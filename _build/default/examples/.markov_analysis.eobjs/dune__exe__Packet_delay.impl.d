examples/packet_delay.ml: Bandwidth Drcomm Engine Graph List Net_state Netsim Printf Prng Qos Stats Traffic_spec Waxman
