examples/quickstart.mli:
