examples/markov_analysis.mli:
