examples/video_service.mli:
