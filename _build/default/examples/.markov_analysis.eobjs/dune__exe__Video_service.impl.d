examples/video_service.ml: Bandwidth Drcomm Estimator Format Graph List Model Net_state Policy Printf Prng Qos Waxman
