examples/failure_recovery.ml: Bandwidth Dirlink Drcomm Engine Graph List Net_state Printf Prng Qos Waxman
