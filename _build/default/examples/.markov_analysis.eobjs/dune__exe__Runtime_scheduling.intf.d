examples/runtime_scheduling.mli:
