examples/runtime_scheduling.ml: Array Bandwidth Edf Format Interval_qos List Printf
