examples/quickstart.ml: Bandwidth Dirlink Drcomm Format Graph List Net_state Printf Prng Qos Waxman
