examples/capacity_planning.ml: Erlang Format List Printf Scenario
