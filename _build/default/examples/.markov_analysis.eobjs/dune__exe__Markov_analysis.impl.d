examples/markov_analysis.ml: Array Ctmc Estimator List Model Printf Qos Scenario String
