examples/packet_delay.mli:
