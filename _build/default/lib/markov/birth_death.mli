(** Closed-form stationary distributions for birth–death chains.

    A birth–death chain moves only between adjacent levels; its stationary
    distribution has the classical product form
    [pi_i = pi_0 * prod_{k<i} birth_k / death_{k+1}].  We use these as
    exact oracles in the test suite (M/M/1/K and friends) to validate the
    generic {!Ctmc} solver, and as a quick first-cut approximation of the
    paper's chain when the measured A/B/T matrices are near-tridiagonal. *)

val stationary : birth:float array -> death:float array -> float array
(** [stationary ~birth ~death] for a chain with [n = length birth + 1]
    levels; [birth.(k)] is the rate [k -> k+1], [death.(k)] the rate
    [k+1 -> k].  All rates must be positive.  Result sums to 1. *)

val mm1k : lambda:float -> mu:float -> k:int -> float array
(** M/M/1/K queue-length distribution (levels [0..k]). *)

val mean_level : float array -> float
(** [sum_i i * pi_i]. *)

val to_ctmc : birth:float array -> death:float array -> Ctmc.t
(** The same chain as a {!Ctmc}, for oracle comparisons. *)
