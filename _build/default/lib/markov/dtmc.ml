let validate p =
  let n = Matrix.rows p in
  if Matrix.cols p <> n then invalid_arg "Dtmc.validate: matrix not square";
  for i = 0 to n - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      let x = Matrix.get p i j in
      if x < 0. || x > 1. +. 1e-9 then
        invalid_arg (Printf.sprintf "Dtmc.validate: entry (%d, %d) = %g" i j x);
      row_sum := !row_sum +. x
    done;
    if Float.abs (!row_sum -. 1.) > 1e-9 then
      invalid_arg (Printf.sprintf "Dtmc.validate: row %d sums to %g" i !row_sum)
  done

let stationary p =
  validate p;
  let n = Matrix.rows p in
  (* pi (P - I) = 0. *)
  let q = Matrix.sub p (Matrix.identity n) in
  Linsolve.solve_left_nullvector q

let power_iteration ?(iters = 1000) p p0 =
  validate p;
  if Array.length p0 <> Matrix.rows p then
    invalid_arg "Dtmc.power_iteration: vector size mismatch";
  let v = ref (Array.copy p0) in
  for _ = 1 to iters do
    v := Matrix.vec_mul !v p
  done;
  !v

let expected_jump p value i =
  let n = Matrix.cols p in
  let acc = ref 0. in
  for j = 0 to n - 1 do
    acc := !acc +. (Matrix.get p i j *. value j)
  done;
  !acc
