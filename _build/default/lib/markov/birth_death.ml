let check_rates name a =
  Array.iter
    (fun r -> if r <= 0. then invalid_arg ("Birth_death: non-positive " ^ name))
    a

let stationary ~birth ~death =
  let n = Array.length birth + 1 in
  if Array.length death <> Array.length birth then
    invalid_arg "Birth_death.stationary: birth/death length mismatch";
  check_rates "birth rate" birth;
  check_rates "death rate" death;
  let unnorm = Array.make n 1. in
  for i = 1 to n - 1 do
    unnorm.(i) <- unnorm.(i - 1) *. birth.(i - 1) /. death.(i - 1)
  done;
  let total = Array.fold_left ( +. ) 0. unnorm in
  Array.map (fun x -> x /. total) unnorm

let mm1k ~lambda ~mu ~k =
  if k < 1 then invalid_arg "Birth_death.mm1k: k >= 1";
  stationary ~birth:(Array.make k lambda) ~death:(Array.make k mu)

let mean_level pi =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (float_of_int i *. p)) pi;
  !acc

let to_ctmc ~birth ~death =
  let n = Array.length birth + 1 in
  if Array.length death <> Array.length birth then
    invalid_arg "Birth_death.to_ctmc: birth/death length mismatch";
  let c = Ctmc.create n in
  Array.iteri (fun k r -> Ctmc.add_rate c ~src:k ~dst:(k + 1) r) birth;
  Array.iteri (fun k r -> Ctmc.add_rate c ~src:(k + 1) ~dst:k r) death;
  c
