(** Discrete-time Markov chains, used as test oracles for {!Ctmc} and to
    analyse the level-transition matrices (A, B, T) measured from
    simulation. *)

val validate : Matrix.t -> unit
(** Checks the matrix is square, entries are in [0, 1] and rows sum to 1
    (tolerance 1e-9).  Raises [Invalid_argument] otherwise. *)

val stationary : Matrix.t -> float array
(** Stationary vector of an irreducible row-stochastic matrix, by direct
    solve of [pi (P - I) = 0, sum pi = 1].
    Raises {!Linsolve.Singular} when reducible. *)

val power_iteration : ?iters:int -> Matrix.t -> float array -> float array
(** [power_iteration p p0] multiplies [p0] through [p] [iters] times
    (default 1000) — an independent cross-check for {!stationary}. *)

val expected_jump : Matrix.t -> (int -> float) -> int -> float
(** [expected_jump p value i] is [sum_j p_ij * value j]: the expected
    post-transition value from state [i].  Used to sanity-check measured
    A/B/T matrices (e.g. arrivals must not increase the expected level). *)
