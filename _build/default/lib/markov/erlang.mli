(** Erlang loss formulas — the classical network-centric admission
    analysis (the paper's §3.2 names the "network-centric view": how many
    DR-connections can be accommodated; these are its textbook tools).

    A link that fits [servers] simultaneous floor-reservations, offered
    Poisson connection requests with load [offered_load] = arrival rate x
    mean holding time, blocks with the Erlang-B probability. *)

val erlang_b : servers:int -> offered_load:float -> float
(** Blocking probability of M/M/c/c.  Computed with the stable recursive
    form, so large server counts do not overflow.  [servers >= 0],
    [offered_load >= 0]; with 0 servers everything blocks. *)

val required_servers : offered_load:float -> target_blocking:float -> int
(** Least [c] with [erlang_b ~servers:c <= target_blocking].
    [0 < target_blocking < 1]. *)

val carried_load : servers:int -> offered_load:float -> float
(** [offered_load * (1 - blocking)]. *)

val mmcc_occupancy : servers:int -> offered_load:float -> float array
(** Stationary distribution of the number of busy servers (levels
    [0..servers]) — also an oracle for the generic CTMC solver. *)
