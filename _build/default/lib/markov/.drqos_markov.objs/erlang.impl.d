lib/markov/erlang.ml: Array
