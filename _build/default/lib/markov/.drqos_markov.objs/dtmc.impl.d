lib/markov/dtmc.ml: Array Float Linsolve Matrix Printf
