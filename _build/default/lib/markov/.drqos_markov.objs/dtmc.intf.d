lib/markov/dtmc.mli: Matrix
