lib/markov/ctmc.ml: Array Float Fun Hashtbl Linsolve List Matrix Printf
