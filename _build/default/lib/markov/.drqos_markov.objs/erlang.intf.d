lib/markov/erlang.mli:
