(** Continuous-time Markov chains on a finite state space.

    This module replaces the SHARPE tool the paper used: it builds the
    infinitesimal generator from a list of transition rates and solves for
    the stationary distribution directly (exact for the paper's N <= 9
    chains).  A uniformisation-based transient solver is included for
    validation and for studying convergence to steady state. *)

type t

val create : int -> t
(** [create n] is a chain on states [0 .. n-1] with no transitions yet. *)

val state_count : t -> int

val add_rate : t -> src:int -> dst:int -> float -> unit
(** Accumulates rate onto the [src -> dst] transition.  [src <> dst],
    rate >= 0 (zero is accepted and ignored). *)

val rate : t -> src:int -> dst:int -> float

val generator : t -> Matrix.t
(** The generator matrix [q]: off-diagonals are the accumulated rates,
    each diagonal entry is minus its row sum. *)

val stationary : t -> float array
(** Stationary probability vector [pi] ([pi q = 0], [sum pi = 1]).
    Raises {!Linsolve.Singular} when the chain is reducible. *)

val mean_reward : t -> (int -> float) -> float
(** [mean_reward c reward] is [sum_i pi_i * reward i] — e.g. the paper's
    average reserved bandwidth when [reward i = b_min + i * delta]. *)

val transient : t -> p0:float array -> horizon:float -> ?eps:float -> unit -> float array
(** State distribution at time [horizon] starting from [p0], computed by
    uniformisation (Jensen's method) with truncation error below [eps]
    (default 1e-10). *)

val holding_time : t -> int -> float
(** Mean sojourn time of a state: [1 / total exit rate]; [infinity] for an
    absorbing state. *)

val embedded_dtmc : t -> Matrix.t
(** Jump-chain transition matrix.  Absorbing states get a self-loop of 1. *)

val mean_first_passage : t -> targets:int list -> float array
(** [mean_first_passage c ~targets] gives, for every state, the expected
    time until the chain first enters any state of [targets] (0 for the
    targets themselves).  Solves the standard linear system
    [h_i = 1/q_i + sum_j p_ij h_j] over non-target states.  Raises
    {!Linsolve.Singular} when some state cannot reach the targets, and
    [Invalid_argument] on an empty or out-of-range target list.

    For the paper's chain this answers e.g. "starting from the best QoS
    level, how long until a channel is squeezed down to its floor?". *)

val hitting_probability : t -> targets:int list -> avoid:int list -> float array
(** [hitting_probability c ~targets ~avoid] gives, per state, the
    probability of reaching a target before entering any [avoid] state.
    Targets score 1, avoid-states 0.  The two sets must be disjoint and
    non-empty. *)
