(** Dense row-major matrices over [float].

    This is the small numeric substrate needed to solve the paper's Markov
    chains (N x N with N <= a few dozen); it favours clarity and exactness
    of the API over raw speed. *)

type t

val create : int -> int -> t
(** [create rows cols] is the all-zero matrix. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Copies its input.  All rows must have equal length; raises
    [Invalid_argument] otherwise. *)

val to_arrays : t -> float array array
(** Fresh copy of the contents. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] adds [x] to element [(i, j)]. *)

val copy : t -> t
val transpose : t -> t

val map : (float -> float) -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is [m v]. *)

val vec_mul : float array -> t -> float array
(** [vec_mul v m] is [v m] (row vector times matrix). *)

val row_sums : t -> float array

val max_abs : t -> float
(** Largest absolute element (infinity-like norm over entries). *)

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison with tolerance [eps] (default 1e-12). *)

val pp : Format.formatter -> t -> unit
