lib/linalg/linsolve.mli: Matrix
