lib/linalg/linsolve.ml: Array Float Matrix
