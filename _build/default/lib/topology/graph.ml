type t = {
  nodes : int;
  mutable n_edges : int;
  mutable ends : (int * int) array; (* edge id -> (min endpoint, max endpoint) *)
  adj : (int * int) list array; (* node -> (neighbor, edge id) list *)
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { nodes = n; n_edges = 0; ends = Array.make (max 16 n) (-1, -1); adj = Array.make n [] }

let node_count g = g.nodes
let edge_count g = g.n_edges

let check_node g u =
  if u < 0 || u >= g.nodes then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" u g.nodes)

let neighbors g u =
  check_node g u;
  g.adj.(u)

let find_edge g u v =
  check_node g u;
  check_node g v;
  let rec scan = function
    | [] -> None
    | (w, e) :: rest -> if w = v then Some e else scan rest
  in
  scan g.adj.(u)

let mem_edge g u v = find_edge g u v <> None

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge g u v then invalid_arg "Graph.add_edge: duplicate edge";
  let id = g.n_edges in
  if id >= Array.length g.ends then begin
    let bigger = Array.make (2 * Array.length g.ends) (-1, -1) in
    Array.blit g.ends 0 bigger 0 id;
    g.ends <- bigger
  end;
  g.ends.(id) <- (min u v, max u v);
  g.adj.(u) <- (v, id) :: g.adj.(u);
  g.adj.(v) <- (u, id) :: g.adj.(v);
  g.n_edges <- id + 1;
  id

let endpoints g e =
  if e < 0 || e >= g.n_edges then
    invalid_arg (Printf.sprintf "Graph.endpoints: edge %d out of range" e);
  g.ends.(e)

let other_endpoint g e u =
  let a, b = endpoints g e in
  if u = a then b
  else if u = b then a
  else invalid_arg "Graph.other_endpoint: node not on edge"

let degree g u = List.length (neighbors g u)

let iter_edges f g =
  for e = 0 to g.n_edges - 1 do
    let u, v = g.ends.(e) in
    f e u v
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun e u v -> acc := f e u v !acc) g;
  !acc

let degree_stats g =
  if g.nodes = 0 then (0., 0, 0)
  else begin
    let dmin = ref max_int and dmax = ref 0 and total = ref 0 in
    for u = 0 to g.nodes - 1 do
      let d = degree g u in
      total := !total + d;
      if d < !dmin then dmin := d;
      if d > !dmax then dmax := d
    done;
    (float_of_int !total /. float_of_int g.nodes, !dmin, !dmax)
  end

let components g =
  let seen = Array.make (max 1 g.nodes) false in
  let comps = ref [] in
  for start = 0 to g.nodes - 1 do
    if not seen.(start) then begin
      let comp = ref [] in
      let stack = ref [ start ] in
      seen.(start) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          comp := u :: !comp;
          List.iter
            (fun (v, _) ->
              if not seen.(v) then begin
                seen.(v) <- true;
                stack := v :: !stack
              end)
            g.adj.(u)
      done;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g = g.nodes <= 1 || List.length (components g) = 1

let copy g =
  {
    nodes = g.nodes;
    n_edges = g.n_edges;
    ends = Array.copy g.ends;
    adj = Array.copy g.adj;
  }

let pp ppf g =
  let avg, dmin, dmax = degree_stats g in
  Format.fprintf ppf "graph: %d nodes, %d edges, degree avg %.2f min %d max %d"
    g.nodes g.n_edges avg dmin dmax
