lib/topology/torus.ml: Graph
