lib/topology/paths.mli: Graph
