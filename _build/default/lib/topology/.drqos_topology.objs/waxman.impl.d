lib/topology/waxman.ml: Array Float Graph List Prng
