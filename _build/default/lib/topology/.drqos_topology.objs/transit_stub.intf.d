lib/topology/transit_stub.mli: Graph Prng
