lib/topology/transit_stub.ml: Array Graph List Prng
