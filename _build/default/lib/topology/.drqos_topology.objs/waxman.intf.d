lib/topology/waxman.mli: Graph Prng
