lib/topology/centrality.mli: Graph
