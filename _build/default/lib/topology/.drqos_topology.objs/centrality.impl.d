lib/topology/centrality.ml: Array Graph List
