lib/topology/torus.mli: Graph
