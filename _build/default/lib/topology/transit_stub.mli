(** GT-ITM-style transit–stub ("tiered") topologies (Zegura, Calvert &
    Bhattacharjee, INFOCOM 1996) — the "Tier" model of the paper's Table 1.

    The graph has a two-level hierarchy: a small core of {e transit}
    domains, densely interconnected, and many {e stub} domains, each hung
    off a single transit node.  Traffic between stubs must cross the core,
    which is why this model saturates much earlier than a flat random
    graph of the same size — exactly the effect Table 1 reports. *)

type spec = {
  transit_domains : int;
  transit_size : int;  (** nodes per transit domain. *)
  stubs_per_transit_node : int;
  stub_size : int;  (** nodes per stub domain. *)
  intra_edge_prob : float;
      (** probability of each extra intra-domain edge beyond the spanning
          tree that guarantees domain connectivity. *)
}

val spec :
  ?intra_edge_prob:float ->
  transit_domains:int ->
  transit_size:int ->
  stubs_per_transit_node:int ->
  stub_size:int ->
  unit ->
  spec

val node_count : spec -> int

type info = {
  graph : Graph.t;
  transit_nodes : int list;
  stub_of_node : int array;  (** stub domain index per node; -1 for transit nodes. *)
}

val generate : Prng.t -> spec -> info
(** Always returns a connected graph.  Transit domains are joined in a
    randomised cycle (two inter-domain links each for modest core
    redundancy when there are >= 3 domains). *)

val paper_spec : spec
(** ~100-node instance comparable to the paper's Table 1 "Tier" network:
    1 transit domain of 4 nodes, 3 stubs per transit node, 8 nodes per
    stub (= 4 + 96 = 100 nodes). *)
