(** 2-D torus (wrap-around mesh) — a regular topology.

    The paper notes (§3.3) that on a {e regular} network the chaining
    probabilities "depend solely on the network topology and the average
    number of hops of channels" and could be parameterised analytically,
    while irregular Internet-like graphs force measurement.  This module
    provides the regular case so that claim can be exercised: the test
    suite compares the measured [P_f] on a torus against the closed-form
    uniform-usage estimate {!estimate_p_f}. *)

val generate : rows:int -> cols:int -> Graph.t
(** Wrap-around grid: node [(r, c)] is [r * cols + c]; each node links to
    its right and down neighbours (modulo the dimensions), giving a
    4-regular graph with [2 * rows * cols] edges.  Requires
    [rows >= 3 && cols >= 3] (smaller wraps would create parallel
    edges). *)

val node : cols:int -> int -> int -> int
(** [node ~cols r c] is the id of grid position [(r, c)]. *)

val average_hops : rows:int -> cols:int -> float
(** Exact mean shortest-path distance between distinct nodes (closed
    form from the per-axis wrap distances). *)

val estimate_p_f : rows:int -> cols:int -> avg_hops:float -> float
(** Uniform-usage estimate of the probability that two independent
    channels of [avg_hops] directed links each share at least one
    directed link: [1 - (1 - h/L)^h] with [L = 4 * rows * cols].  On a
    node- and edge-transitive graph with shortest-path routing this is
    accurate to within the path-correlation error (tested to be within a
    small factor of the measured value). *)
