(** Waxman random graphs (Waxman, JSAC 1988) — the "Random" model of the
    paper, generated there with the GT-ITM package.

    Nodes are placed uniformly at random in a square; the edge [{u, v}]
    appears with probability [alpha * exp (-d(u,v) / (beta * l))] where [d]
    is Euclidean distance and [l] the maximum possible distance.  Larger
    [alpha] gives denser graphs; larger [beta] gives relatively more long
    edges. *)

type spec = {
  nodes : int;
  alpha : float;  (** density knob, in (0, 1]. *)
  beta : float;  (** locality knob, in (0, 1]. *)
  scale : float;  (** side of the placement square (default 100.). *)
}

val spec : ?scale:float -> nodes:int -> alpha:float -> beta:float -> unit -> spec

val generate : Prng.t -> spec -> Graph.t
(** Draws a graph and then, if it came out disconnected, links the
    components with extra edges between their closest node pairs (the
    standard GT-ITM-style connectivity fix), so the result is always
    connected for [nodes >= 1]. *)

val expected_edges : Prng.t -> spec -> float
(** Monte-Carlo expectation of the raw (pre-connectivity-fix) edge count
    for a fresh node placement drawn from the given generator. *)

val calibrate_beta :
  Prng.t -> nodes:int -> alpha:float -> target_edges:int -> float
(** [calibrate_beta rng ~nodes ~alpha ~target_edges] finds, by bisection,
    a [beta] whose expected edge count is close to [target_edges].  Used to
    pin our 100-node instance to the paper's 354 edges. *)

val paper_spec : nodes:int -> spec
(** The paper's Fig. 2 configuration: [alpha = 0.33] and [beta] calibrated
    once (at 100 nodes) so that the 100-node instance has ~177 undirected
    edges = 354 unidirectional links, matching the paper's "354 edges" /
    "average degree 3.48" / "diameter 8" triple.  The same [alpha]/[beta]
    are reused at other node counts, which makes the edge count grow
    superlinearly exactly as in the paper's Fig. 3. *)
