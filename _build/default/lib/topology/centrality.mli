(** Shortest-path betweenness centrality (Brandes' algorithm, 2001).

    The paper measures the chaining probability [P_f] by simulation
    because "it is almost impossible to parameterize these probabilities
    analytically" on irregular topologies (§3.3).  Betweenness gives a
    topology-only approximation: the probability that a uniformly random
    connection's shortest path crosses edge [e] is its (normalised) edge
    betweenness, and two independent channels share at least one edge
    with probability roughly [sum_e p_e^2] (first-order
    inclusion–exclusion).  The integration tests check this estimate
    against the simulated [P_f] on the paper's topology. *)

val edge_betweenness : Graph.t -> float array
(** Per edge id: the sum over ordered source–target pairs of the fraction
    of shortest s–t paths crossing the edge.  Unweighted (hop-count)
    shortest paths; all shortest paths counted with even splitting.
    O(V·E) time. *)

val node_betweenness : Graph.t -> float array
(** Classic node betweenness (endpoints excluded), same algorithm. *)

val edge_usage_probability : Graph.t -> float array
(** [edge_betweenness] normalised by the number of ordered node pairs:
    entry [e] is P(edge e lies on a uniformly random connection's
    shortest path). *)

val estimate_p_f : Graph.t -> float
(** First-order topology-only estimate of the paper's [P_f] under
    directed-link sharing: [sum_e p_e^2 / 2] over
    {!edge_usage_probability} (each connection uses one direction of an
    edge, splitting [p_e] between the two). *)
