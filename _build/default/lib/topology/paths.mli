(** Shortest-path queries over {!Graph}.

    A [path] records both the node sequence and the edge-id sequence; the
    network layer reserves bandwidth by edge id, so the edge list is the
    authoritative part. *)

type path = { nodes : int list; edges : int list }
(** [nodes] has one more element than [edges]; [List.nth nodes k] and
    [List.nth nodes (k+1)] are the endpoints of [List.nth edges k]. *)

val hop_count : path -> int
(** Number of edges. *)

val is_valid : Graph.t -> path -> bool
(** Structural check: consecutive nodes joined by the listed edges, no
    repeated node (simple path). *)

val hops_from : ?usable:(int -> bool) -> Graph.t -> int -> int array
(** [hops_from g src] gives BFS hop distances from [src]; [-1] marks
    unreachable nodes.  [usable] filters edges (default: all usable). *)

val shortest_path : ?usable:(int -> bool) -> Graph.t -> int -> int -> path option
(** Minimum-hop path from [src] to [dst] among edges satisfying [usable].
    [None] when disconnected.  [Some {nodes = [src]; edges = []}] when
    [src = dst]. *)

val dijkstra :
  weight:(int -> float) -> ?usable:(int -> bool) -> Graph.t -> int -> int ->
  (path * float) option
(** Least-total-weight path; [weight e] must be >= 0 for every edge. *)

val widest_path :
  width:(int -> float) -> Graph.t -> int -> int -> (path * float) option
(** Maximum-bottleneck path: maximises [min over edges of width e]; ties
    broken toward fewer hops.  Used to model the flooding variant that
    prefers the best bandwidth allowance. *)

val eccentricity : Graph.t -> int -> int
(** Greatest hop distance from a node to any reachable node. *)

val diameter : Graph.t -> int
(** Max eccentricity over nodes; 0 for empty/one-node graphs.  Only
    meaningful on connected graphs (unreachable pairs are ignored). *)

val average_hops : Graph.t -> float
(** Mean hop distance over all ordered connected pairs; 0 if none. *)
