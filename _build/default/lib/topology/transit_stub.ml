type spec = {
  transit_domains : int;
  transit_size : int;
  stubs_per_transit_node : int;
  stub_size : int;
  intra_edge_prob : float;
}

let spec ?(intra_edge_prob = 0.4) ~transit_domains ~transit_size
    ~stubs_per_transit_node ~stub_size () =
  if transit_domains < 1 then invalid_arg "Transit_stub.spec: transit_domains >= 1";
  if transit_size < 1 then invalid_arg "Transit_stub.spec: transit_size >= 1";
  if stubs_per_transit_node < 0 then
    invalid_arg "Transit_stub.spec: stubs_per_transit_node >= 0";
  if stub_size < 1 then invalid_arg "Transit_stub.spec: stub_size >= 1";
  if intra_edge_prob < 0. || intra_edge_prob > 1. then
    invalid_arg "Transit_stub.spec: intra_edge_prob in [0, 1]";
  { transit_domains; transit_size; stubs_per_transit_node; stub_size; intra_edge_prob }

let node_count s =
  let transit = s.transit_domains * s.transit_size in
  transit + (transit * s.stubs_per_transit_node * s.stub_size)

type info = {
  graph : Graph.t;
  transit_nodes : int list;
  stub_of_node : int array;
}

(* Connect [members] inside [g]: random spanning tree (each node links to a
   random earlier one), then extra edges with probability [p]. *)
let build_domain rng g members p =
  let members = Array.of_list members in
  let n = Array.length members in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    ignore (Graph.add_edge g members.(i) members.(j))
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not (Graph.mem_edge g members.(i) members.(j))) && Prng.float rng 1. < p
      then ignore (Graph.add_edge g members.(i) members.(j))
    done
  done

let generate rng s =
  let total = node_count s in
  let g = Graph.create total in
  let stub_of_node = Array.make total (-1) in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  (* Transit domains first so transit nodes get the low ids. *)
  let domains =
    Array.init s.transit_domains (fun _ ->
        List.init s.transit_size (fun _ -> fresh ()))
  in
  Array.iter (fun members -> build_domain rng g members s.intra_edge_prob) domains;
  (* Join transit domains in a randomised cycle: domain k links to domain
     k+1 through random representative nodes.  A cycle gives the core two
     disjoint inter-domain routes when there are >= 3 domains. *)
  let representatives d = Prng.pick_list rng domains.(d) in
  if s.transit_domains > 1 then
    for d = 0 to s.transit_domains - 1 do
      let d' = (d + 1) mod s.transit_domains in
      if d < d' || s.transit_domains > 2 then begin
        let u = representatives d and v = representatives d' in
        if not (Graph.mem_edge g u v) then ignore (Graph.add_edge g u v)
      end
    done;
  let transit_nodes = Array.to_list domains |> List.concat in
  (* Hang stub domains off every transit node. *)
  let stub_index = ref 0 in
  List.iter
    (fun t ->
      for _ = 1 to s.stubs_per_transit_node do
        let members = List.init s.stub_size (fun _ -> fresh ()) in
        List.iter (fun u -> stub_of_node.(u) <- !stub_index) members;
        incr stub_index;
        build_domain rng g members s.intra_edge_prob;
        let gateway = Prng.pick_list rng members in
        ignore (Graph.add_edge g t gateway)
      done)
    transit_nodes;
  assert (!next = total);
  { graph = g; transit_nodes; stub_of_node }

let paper_spec =
  spec ~transit_domains:1 ~transit_size:4 ~stubs_per_transit_node:3 ~stub_size:8 ()
