type spec = { nodes : int; alpha : float; beta : float; scale : float }

let spec ?(scale = 100.) ~nodes ~alpha ~beta () =
  if nodes < 1 then invalid_arg "Waxman.spec: need at least one node";
  if alpha <= 0. || alpha > 1. then invalid_arg "Waxman.spec: alpha in (0, 1]";
  if beta <= 0. || beta > 1. then invalid_arg "Waxman.spec: beta in (0, 1]";
  if scale <= 0. then invalid_arg "Waxman.spec: scale must be positive";
  { nodes; alpha; beta; scale }

let place rng s =
  Array.init s.nodes (fun _ -> (Prng.float rng s.scale, Prng.float rng s.scale))

let distance (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2)

let edge_probability s ~dist =
  let l = s.scale *. sqrt 2. in
  s.alpha *. exp (-.dist /. (s.beta *. l))

(* Join components by repeatedly adding the shortest missing edge between
   the first component and any other; mirrors GT-ITM's behaviour of keeping
   added connectivity edges short. *)
let connect_components g coords =
  let rec fix () =
    match Graph.components g with
    | [] | [ _ ] -> ()
    | main :: rest ->
      let best = ref None in
      List.iter
        (fun comp ->
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  let d = distance coords.(u) coords.(v) in
                  match !best with
                  | Some (_, _, d') when d' <= d -> ()
                  | _ -> best := Some (u, v, d))
                main)
            comp)
        rest;
      (match !best with
      | Some (u, v, _) -> ignore (Graph.add_edge g u v)
      | None -> assert false);
      fix ()
  in
  fix ()

let generate rng s =
  let coords = place rng s in
  let g = Graph.create s.nodes in
  for u = 0 to s.nodes - 1 do
    for v = u + 1 to s.nodes - 1 do
      let p = edge_probability s ~dist:(distance coords.(u) coords.(v)) in
      if Prng.float rng 1. < p then ignore (Graph.add_edge g u v)
    done
  done;
  connect_components g coords;
  g

let expected_edges rng s =
  let coords = place rng s in
  let total = ref 0. in
  for u = 0 to s.nodes - 1 do
    for v = u + 1 to s.nodes - 1 do
      total := !total +. edge_probability s ~dist:(distance coords.(u) coords.(v))
    done
  done;
  !total

let calibrate_beta rng ~nodes ~alpha ~target_edges =
  if target_edges < nodes - 1 then
    invalid_arg "Waxman.calibrate_beta: target below spanning-tree size";
  (* Average the expectation over a few placements so the calibration is
     about the model, not one layout. *)
  let expectation beta =
    let trials = 8 in
    let acc = ref 0. in
    for _ = 1 to trials do
      acc := !acc +. expected_edges rng (spec ~nodes ~alpha ~beta ())
    done;
    !acc /. float_of_int trials
  in
  let target = float_of_int target_edges in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if expectation mid < target then bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
  in
  bisect 1e-4 1. 40

(* Calibrated once (calibrate_beta, seed 42) against the paper's 100-node
   instance: 354 unidirectional links = 177 undirected edges.  The same
   instance then shows graph diameter ~8 and channel paths of ~3.9 hops,
   which reproduces the paper's reported diameter and its ideal-bandwidth
   curve.  Frozen here so every experiment uses the same model. *)
let paper_beta = 0.1176

let paper_spec ~nodes = spec ~nodes ~alpha:0.33 ~beta:paper_beta ()
