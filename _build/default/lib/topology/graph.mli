(** Undirected simple graphs with stable integer edge identifiers.

    Nodes are [0 .. node_count - 1].  Edges carry a dense id
    [0 .. edge_count - 1] assigned in insertion order; the network layer
    keys per-link state (reservations, failures) by edge id.  Self-loops
    and parallel edges are rejected — neither occurs in the paper's
    topologies. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. [n >= 0]. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> int -> int -> int
(** [add_edge g u v] inserts the undirected edge [{u, v}] and returns its
    id.  Raises [Invalid_argument] on self-loops, duplicate edges, or
    out-of-range nodes. *)

val endpoints : t -> int -> int * int
(** Endpoints of an edge id, with the smaller node first. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e u] is the endpoint of [e] that is not [u]. *)

val find_edge : t -> int -> int -> int option
(** Edge id joining two nodes, if present. *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> (int * int) list
(** [neighbors g u] lists [(v, edge_id)] pairs, most recently added first. *)

val degree : t -> int -> int

val iter_edges : (int -> int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f id u v] for every edge, in id order. *)

val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val degree_stats : t -> float * int * int
(** Average, minimum and maximum node degree. *)

val components : t -> int list list
(** Connected components as node lists. *)

val is_connected : t -> bool
(** [true] for the empty and one-node graphs. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Summary line: node/edge counts and degree statistics. *)
