let node ~cols r c = (r * cols) + c

let generate ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Torus.generate: need rows, cols >= 3";
  let g = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let u = node ~cols r c in
      ignore (Graph.add_edge g u (node ~cols r ((c + 1) mod cols)));
      ignore (Graph.add_edge g u (node ~cols ((r + 1) mod rows) c))
    done
  done;
  g

(* Mean wrap distance along one axis of size n, over all ordered offsets
   including 0, is sum_d min(d, n - d) / n. *)
let axis_mean n =
  let total = ref 0 in
  for d = 0 to n - 1 do
    total := !total + min d (n - d)
  done;
  float_of_int !total /. float_of_int n

let average_hops ~rows ~cols =
  (* Distances add across axes; exclude the self-pair from the average. *)
  let pairs = float_of_int (rows * cols) in
  (axis_mean rows +. axis_mean cols) *. pairs /. (pairs -. 1.)

let estimate_p_f ~rows ~cols ~avg_hops =
  if avg_hops <= 0. then invalid_arg "Torus.estimate_p_f: non-positive hops";
  let links = float_of_int (4 * rows * cols) in
  1. -. ((1. -. (avg_hops /. links)) ** avg_hops)
