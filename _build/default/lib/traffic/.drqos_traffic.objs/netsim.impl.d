lib/traffic/netsim.ml: Array Bandwidth Dirlink Engine Float Hashtbl Interval_qos List Option Stats Traffic_spec
