lib/traffic/traffic_spec.ml: Bandwidth Float Option
