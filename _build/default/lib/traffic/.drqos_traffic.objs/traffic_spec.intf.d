lib/traffic/traffic_spec.mli: Bandwidth
