lib/traffic/netsim.mli: Bandwidth Dirlink Engine Graph Interval_qos Stats Traffic_spec
