type t = { rate : Bandwidth.t; burst_bits : int; packet_bits : int }

let make ~rate ?burst_bits ~packet_bits () =
  if rate <= 0 then invalid_arg "Traffic_spec.make: non-positive rate";
  if packet_bits <= 0 then invalid_arg "Traffic_spec.make: non-positive packet size";
  let burst_bits = Option.value ~default:packet_bits burst_bits in
  if burst_bits < packet_bits then
    invalid_arg "Traffic_spec.make: bucket shallower than one packet";
  { rate; burst_bits; packet_bits }

let packet_period t = float_of_int t.packet_bits /. (float_of_int t.rate *. 1000.)

let cbr ~rate ~packet_bits = make ~rate ~packet_bits ()

module Bucket = struct
  type bucket = {
    spec : t;
    mutable tokens : float; (* bits *)
    mutable last_refill : float;
  }

  let create spec = { spec; tokens = float_of_int spec.burst_bits; last_refill = 0. }

  let refill b ~now =
    if now > b.last_refill then begin
      let gained = (now -. b.last_refill) *. float_of_int b.spec.rate *. 1000. in
      b.tokens <- Float.min (float_of_int b.spec.burst_bits) (b.tokens +. gained);
      b.last_refill <- now
    end

  let conforming b ~now =
    refill b ~now;
    b.tokens >= float_of_int b.spec.packet_bits

  let try_consume b ~now =
    refill b ~now;
    let need = float_of_int b.spec.packet_bits in
    if b.tokens >= need then begin
      b.tokens <- b.tokens -. need;
      true
    end
    else false

  let next_conforming_time b ~now =
    refill b ~now;
    let need = float_of_int b.spec.packet_bits -. b.tokens in
    if need <= 0. then now
    else now +. (need /. (float_of_int b.spec.rate *. 1000.))
end
