(** Client traffic-generation specifications.

    A real-time channel contract starts from the client's declared
    traffic behaviour (§2.1.1: "a client specifies his traffic-generation
    behavior and required QoS").  We use the classic (σ, ρ) token-bucket
    form: long-term rate [rate] with burst allowance [burst_bits], cut
    into packets of [packet_bits]. *)

type t = private {
  rate : Bandwidth.t;  (** sustained rate, Kbit/s. *)
  burst_bits : int;  (** bucket depth σ; >= packet_bits. *)
  packet_bits : int;
}

val make : rate:Bandwidth.t -> ?burst_bits:int -> packet_bits:int -> unit -> t
(** [burst_bits] defaults to one packet (pure periodic source).
    Raises [Invalid_argument] on non-positive fields or a bucket
    shallower than one packet. *)

val packet_period : t -> float
(** Seconds between packets of a source sending exactly at [rate]. *)

val cbr : rate:Bandwidth.t -> packet_bits:int -> t
(** Constant-bit-rate spec (burst of exactly one packet). *)

(** Token-bucket accounting, usable both to {e shape} a source and to
    {e police} an arrival stream. *)
module Bucket : sig
  type bucket

  val create : t -> bucket
  (** Starts full (a fresh contract allows an initial burst). *)

  val conforming : bucket -> now:float -> bool
  (** Whether one packet may be sent/accepted at [now]. *)

  val try_consume : bucket -> now:float -> bool
  (** Take one packet's worth of tokens if available; [false] (and no
      state change beyond refill) otherwise. *)

  val next_conforming_time : bucket -> now:float -> float
  (** Earliest time at which one packet would conform ([now] itself if it
      already does). *)
end
