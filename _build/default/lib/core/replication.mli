(** Active-replication baselines — §2.1.2 of the paper.

    The passive backup-channel scheme is motivated by comparison with two
    {e active} fault-tolerance schemes that spend redundant bandwidth all
    the time:

    - {b multiple-copy} (Ramanathan & Shin, TOCS 1992): every message is
      sent in full over [copies] mutually link-disjoint routes, so the
      connection reserves [copies * b] bandwidth in total;
    - {b dispersity routing} (Banerjea, SIGCOMM 1996): each message is
      split into [split] pieces plus [redundant] parity pieces, one piece
      per disjoint route at [ceil (b / split)] each; any [split] of the
      [split + redundant] routes reconstruct the message.

    Neither is elastic and neither needs activation on failure; both
    tolerate any single link failure by construction (when fully
    link-disjoint routes were found).  The bench compares their standing
    bandwidth cost and blocking against the backup-channel scheme. *)

type scheme =
  | Multiple_copy of int  (** number of copies, >= 2. *)
  | Dispersity of { split : int; redundant : int }
      (** [split >= 1], [redundant >= 1]. *)

val routes_needed : scheme -> int
val per_route_bandwidth : scheme -> Bandwidth.t -> Bandwidth.t
val total_bandwidth : scheme -> Bandwidth.t -> Bandwidth.t
(** Standing reservation across routes, per hop. *)

type t
type connection_id = int

val create : ?hop_bound:int -> scheme -> Net_state.t -> t

val admit :
  t -> src:int -> dst:int -> bandwidth:Bandwidth.t ->
  [ `Admitted of connection_id | `Rejected ]
(** Reserves [per_route_bandwidth] on each of [routes_needed] mutually
    link-disjoint admissible routes; rejects when fewer disjoint routes
    exist or any lacks bandwidth. *)

val terminate : t -> connection_id -> unit
(** Raises [Not_found] on unknown id. *)

val count : t -> int
val routes : t -> connection_id -> Dirlink.id list list

val survives_failure : t -> connection_id -> edge:int -> bool
(** Whether the connection still delivers full messages if [edge] fails:
    multiple-copy needs >= 1 surviving route, dispersity needs >= [split]
    surviving routes. *)

val total_reserved : t -> int
(** Sum over connections and routes and hops of reserved bandwidth
    (Kbps-links) — the resource-cost metric of the comparison bench. *)
