lib/core/replication.mli: Bandwidth Dirlink Net_state
