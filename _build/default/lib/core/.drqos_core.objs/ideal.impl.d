lib/core/ideal.ml: Bandwidth Float Graph Paths Qos
