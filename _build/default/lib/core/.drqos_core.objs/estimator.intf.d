lib/core/estimator.mli: Drcomm Format Matrix
