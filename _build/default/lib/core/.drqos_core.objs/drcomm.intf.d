lib/core/drcomm.mli: Bandwidth Dirlink Net_state Policy Qos
