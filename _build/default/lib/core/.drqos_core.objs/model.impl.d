lib/core/model.ml: Array Ctmc Dtmc Estimator Float Matrix Printf Qos
