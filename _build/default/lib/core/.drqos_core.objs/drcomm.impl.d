lib/core/drcomm.ml: Array Dirlink Flooding Graph Hashtbl Link_state List Net_state Option Paths Policy Printf Qos Sequential
