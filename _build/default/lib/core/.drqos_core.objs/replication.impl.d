lib/core/replication.ml: Bandwidth Dirlink Disjoint Hashtbl Link_state List Net_state Paths
