lib/core/ideal.mli: Bandwidth Graph Qos
