lib/core/scenario.mli: Bandwidth Estimator Format Graph Policy Qos Transit_stub Waxman
