lib/core/scenario.ml: Array Bandwidth Drcomm Engine Estimator Format Fun Graph Ideal List Model Net_state Paths Policy Prng Qos Stats Transit_stub Waxman
