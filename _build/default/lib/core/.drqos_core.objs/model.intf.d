lib/core/model.mli: Ctmc Estimator Matrix Qos
