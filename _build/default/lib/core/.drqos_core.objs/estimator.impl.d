lib/core/estimator.ml: Array Drcomm Format List Matrix
