let bandwidth ~link_bandwidth ~links ~channels ~avg_hops =
  if link_bandwidth <= 0 then invalid_arg "Ideal.bandwidth: non-positive capacity";
  if links <= 0 then invalid_arg "Ideal.bandwidth: non-positive link count";
  if channels <= 0 then invalid_arg "Ideal.bandwidth: non-positive channel count";
  if avg_hops <= 0. then invalid_arg "Ideal.bandwidth: non-positive hop count";
  float_of_int link_bandwidth *. float_of_int links
  /. (float_of_int channels *. avg_hops)

let bandwidth_capped ~qos ~link_bandwidth ~links ~channels ~avg_hops =
  let raw = bandwidth ~link_bandwidth ~links ~channels ~avg_hops in
  Float.max (float_of_int qos.Qos.b_min) (Float.min (float_of_int qos.Qos.b_max) raw)

let of_graph ?(link_bandwidth = Bandwidth.paper_link_capacity) g ~channels =
  bandwidth ~link_bandwidth ~links:(2 * Graph.edge_count g) ~channels
    ~avg_hops:(Paths.average_hops g)
