(** The paper's ideal-average-bandwidth reference line (§4, Fig. 2):

    {v avg = link_bandwidth * links / (channels * avg_hops) v}

    the bandwidth each channel would get if {e all} network resources
    were pooled and divided equally — an upper bound that ignores
    topology-induced fragmentation, floors/ceilings and backups.  [links]
    counts unidirectional links, i.e. twice the undirected edge count,
    matching the paper's "354 edges" on the 177-edge instance. *)

val bandwidth :
  link_bandwidth:Bandwidth.t -> links:int -> channels:int -> avg_hops:float -> float
(** Raw formula; raises [Invalid_argument] on non-positive inputs. *)

val bandwidth_capped :
  qos:Qos.t -> link_bandwidth:Bandwidth.t -> links:int -> channels:int ->
  avg_hops:float -> float
(** The formula clamped into the QoS range [b_min, b_max] — channels can
    never reserve beyond their ceiling, so the meaningful reference
    saturates at [b_max]. *)

val of_graph :
  ?link_bandwidth:Bandwidth.t -> Graph.t -> channels:int -> float
(** Convenience: [links = 2 * edge_count] and [avg_hops] from all-pairs
    BFS on the given topology. *)
