type scheme = Multiple_copy of int | Dispersity of { split : int; redundant : int }

let validate_scheme = function
  | Multiple_copy copies ->
    if copies < 2 then invalid_arg "Replication: multiple-copy needs >= 2 copies"
  | Dispersity { split; redundant } ->
    if split < 1 || redundant < 1 then
      invalid_arg "Replication: dispersity needs split >= 1 and redundant >= 1"

let routes_needed = function
  | Multiple_copy copies -> copies
  | Dispersity { split; redundant } -> split + redundant

let per_route_bandwidth scheme b =
  if b <= 0 then invalid_arg "Replication.per_route_bandwidth: non-positive bandwidth";
  match scheme with
  | Multiple_copy _ -> b
  | Dispersity { split; _ } -> (b + split - 1) / split

let total_bandwidth scheme b = routes_needed scheme * per_route_bandwidth scheme b

type connection_id = int

type connection = { routes : Dirlink.id list list; per_route : Bandwidth.t }

type t = {
  scheme : scheme;
  net : Net_state.t;
  hop_bound : int;
  table : (connection_id, connection) Hashtbl.t;
  mutable next_id : int;
}

let create ?(hop_bound = 16) scheme net =
  validate_scheme scheme;
  { scheme; net; hop_bound; table = Hashtbl.create 64; next_id = 0 }

let count t = Hashtbl.length t.table

let routes t id =
  match Hashtbl.find_opt t.table id with
  | Some c -> c.routes
  | None -> raise Not_found

(* An edge is usable for one more route if it is up and both directions
   can still admit the per-route bandwidth beside existing floors and
   pools (active routes are permanent primaries, so the strict admission
   test applies). *)
let edge_admissible t ~per_route e =
  Net_state.usable_edge t.net e
  && Link_state.admissible_primary (Net_state.link t.net (2 * e)) ~b_min:per_route
  && Link_state.admissible_primary (Net_state.link t.net ((2 * e) + 1)) ~b_min:per_route

let admit t ~src ~dst ~bandwidth =
  if bandwidth <= 0 then invalid_arg "Replication.admit: non-positive bandwidth";
  let per_route = per_route_bandwidth t.scheme bandwidth in
  let needed = routes_needed t.scheme in
  let usable = edge_admissible t ~per_route in
  let g = Net_state.graph t.net in
  let paths = Disjoint.paths ~usable g ~src ~dst ~k:needed in
  let within_bound = List.for_all (fun p -> Paths.hop_count p <= t.hop_bound) paths in
  if List.length paths < needed || not within_bound then `Rejected
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let link_routes = List.map (Dirlink.of_path g) paths in
    (* The per-direction admissibility test above is conservative enough
       that reservation cannot fail: routes are link-disjoint, so no link
       is asked twice. *)
    List.iter
      (fun route ->
        List.iter
          (fun dl ->
            Link_state.reserve_primary (Net_state.link t.net dl) ~channel:id
              ~b_min:per_route)
          route)
      link_routes;
    Hashtbl.replace t.table id { routes = link_routes; per_route };
    `Admitted id
  end

let terminate t id =
  match Hashtbl.find_opt t.table id with
  | None -> raise Not_found
  | Some c ->
    List.iter
      (fun route ->
        List.iter
          (fun dl -> Link_state.release_primary (Net_state.link t.net dl) ~channel:id)
          route)
      c.routes;
    Hashtbl.remove t.table id

let survives_failure t id ~edge =
  match Hashtbl.find_opt t.table id with
  | None -> raise Not_found
  | Some c ->
    let surviving =
      List.length
        (List.filter
           (fun route -> not (List.exists (fun dl -> Dirlink.edge dl = edge) route))
           c.routes)
    in
    (match t.scheme with
    | Multiple_copy _ -> surviving >= 1
    | Dispersity { split; _ } -> surviving >= split)

let total_reserved t =
  Hashtbl.fold
    (fun _ c acc ->
      acc
      + List.fold_left (fun a route -> a + (List.length route * c.per_route)) 0 c.routes)
    t.table 0
