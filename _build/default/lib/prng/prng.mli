(** Deterministic pseudo-random number generation for reproducible
    experiments.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, well-tested 64-bit generator whose state is a single integer.  Two
    properties matter here: every experiment can be replayed from a seed, and
    independent sub-streams can be {e split} off deterministically so that,
    e.g., the topology generator and the workload generator draw from
    unrelated streams even when the experiment runs them in a different
    order. *)

type t
(** A mutable generator.  Not thread-safe; use one per logical stream. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s future output.  Advances [t] by one draw. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound).  [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp([rate]); mean [1. /. rate].
    [rate] must be positive. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform on [lo, hi). Requires [lo < hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list (O(n)). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct_pair : t -> int -> int * int
(** [sample_distinct_pair t n] draws an ordered pair [(a, b)] with
    [a <> b], both uniform on [0, n-1].  Requires [n >= 2]. *)
