(** Earliest-deadline-first link scheduling — the run-time message
    scheduling phase of a real-time channel (§2.1.1; Kandlur, Shin &
    Ferrari, TPDS 1994).

    One instance models one output link: packets of admitted channels
    arrive with deadlines; the link transmits at its line rate, always
    picking the pending packet with the earliest deadline
    (non-preemptive).  The module both {e simulates} (producing per-packet
    completion times and deadline misses) and {e admission-tests}
    (classical EDF utilisation bound plus a worst-case blocking check for
    the non-preemptive case). *)

type packet = {
  channel : int;
  release : float;  (** arrival time at the link, seconds. *)
  deadline : float;  (** absolute deadline. *)
  size_bits : int;
}

type completion = {
  packet : packet;
  start : float;
  finish : float;
  missed : bool;  (** [finish > deadline]. *)
}

type t

val create : rate:Bandwidth.t -> t
(** [rate] in Kbit/s, so a [size_bits] packet takes
    [size_bits / (rate * 1000)] seconds. *)

val transmission_time : t -> int -> float

val submit : t -> packet -> unit
(** Queue a packet.  Raises [Invalid_argument] on non-positive size or
    [deadline < release]. *)

val pending : t -> int

val run : t -> until:float -> completion list
(** Simulate transmissions in EDF order (among released packets),
    reporting every completion that finishes by [until]; packets that
    would finish later stay queued (their transmission has not been
    committed). *)

val drain : t -> completion list
(** Run until every queued packet is transmitted. *)

(** {1 Admission tests for periodic channels} *)

type flow = {
  period : float;  (** seconds between packets. *)
  packet_bits : int;
  relative_deadline : float;  (** deadline offset from release. *)
}

val utilisation : rate:Bandwidth.t -> flow list -> float

val schedulable : rate:Bandwidth.t -> flow list -> bool
(** Sufficient test: utilisation <= 1 and, for every flow, the largest
    packet's non-preemptive blocking plus its own transmission fits in
    its relative deadline. *)
