(** Elastic (min–max range) QoS specifications — §2.2 of the paper.

    A connection asks for a bandwidth range [[b_min, b_max]] walked in
    steps of [increment]; the network admits it at [b_min] and upgrades it
    opportunistically.  [utility] weights a channel's claim on extra
    resources under the utility-aware redistribution policies.  A
    {e single-value} (inelastic) specification is the degenerate range
    [b_min = b_max] — the baseline the paper argues against. *)

type t = private {
  b_min : Bandwidth.t;  (** admission threshold; also the backup reservation. *)
  b_max : Bandwidth.t;
  increment : Bandwidth.t;  (** the paper's increment size Δ. *)
  utility : float;  (** relative reward for extra bandwidth; > 0. *)
}

val make :
  ?utility:float ->
  b_min:Bandwidth.t -> b_max:Bandwidth.t -> increment:Bandwidth.t -> unit -> t
(** Raises [Invalid_argument] unless [0 < b_min <= b_max],
    [increment > 0], and [b_max - b_min] is a multiple of [increment]
    (the paper assumes the range is an integral number of increments). *)

val single_value : ?utility:float -> Bandwidth.t -> t
(** Inelastic spec: [b_min = b_max = b], increment formally [b]. *)

val levels : t -> int
(** The paper's N = 1 + (b_max - b_min) / Δ. *)

val bandwidth_of_level : t -> int -> Bandwidth.t
(** [bandwidth_of_level q i] is [b_min + i * increment];
    requires [0 <= i < levels q]. *)

val level_of_bandwidth : t -> Bandwidth.t -> int
(** Inverse of {!bandwidth_of_level}; raises [Invalid_argument] for a
    bandwidth not on the level grid. *)

val is_elastic : t -> bool

val paper_spec : increment:Bandwidth.t -> t
(** The paper's evaluation spec: 100 Kbps minimum (recognisable video),
    500 Kbps maximum (high quality), equal utility 1.0.  [increment] is
    50 Kbps (9-state chain) or 100 Kbps (5-state chain). *)

val pp : Format.formatter -> t -> unit
