(** Interval (k-out-of-M) QoS — the run-time elastic-QoS model of §2.2,
    after skip-over scheduling (Koren & Shasha, RTSS 1995) and its
    exploitation for responsiveness (Caccamo & Buttazzo, RTSS 1997).

    The contract: of every [m] consecutive packets of a channel, at least
    [k] must be delivered on time.  The link manager may deliberately skip
    a packet whenever the contract still holds over the sliding window —
    freeing transmission time for other traffic — which is how elastic
    QoS is enforced at packet granularity once channel-level bandwidth has
    been set.  The {e distance-based priority} (DBP) of a channel is how
    many consecutive future losses the contract tolerates; channels at
    distance 0 are critical. *)

type spec = private { k : int; m : int }

val spec : k:int -> m:int -> spec
(** Requires [1 <= k <= m]. *)

type monitor
(** Sliding window over the last [m] packet outcomes of one channel. *)

val create : spec -> monitor
(** The window starts full of deliveries (a fresh contract is clean). *)

val spec_of : monitor -> spec

val record : monitor -> delivered:bool -> unit
(** Push the outcome of the next packet. *)

val delivered_in_window : monitor -> int

val satisfied : monitor -> bool
(** At least [k] of the last [m] outcomes were deliveries. *)

val distance_to_failure : monitor -> int
(** Number of consecutive future losses the window can absorb while
    staying satisfied — the DBP value.  0 means the next packet must be
    delivered; a violated window reports 0. *)

val can_skip : monitor -> bool
(** [distance_to_failure >= 1]: the next packet may be skipped without
    breaking the contract. *)

val violations : monitor -> int
(** Cumulative count of packets after which the window was unsatisfied. *)
