type t = {
  b_min : Bandwidth.t;
  b_max : Bandwidth.t;
  increment : Bandwidth.t;
  utility : float;
}

let make ?(utility = 1.) ~b_min ~b_max ~increment () =
  if b_min <= 0 then invalid_arg "Qos.make: b_min must be positive";
  if b_max < b_min then invalid_arg "Qos.make: b_max < b_min";
  if increment <= 0 then invalid_arg "Qos.make: increment must be positive";
  if (b_max - b_min) mod increment <> 0 then
    invalid_arg "Qos.make: range must be an integral number of increments";
  if utility <= 0. then invalid_arg "Qos.make: utility must be positive";
  { b_min; b_max; increment; utility }

let single_value ?utility b = make ?utility ~b_min:b ~b_max:b ~increment:b ()

let levels q = 1 + ((q.b_max - q.b_min) / q.increment)

let bandwidth_of_level q i =
  if i < 0 || i >= levels q then
    invalid_arg (Printf.sprintf "Qos.bandwidth_of_level: level %d of %d" i (levels q));
  q.b_min + (i * q.increment)

let level_of_bandwidth q b =
  if b < q.b_min || b > q.b_max || (b - q.b_min) mod q.increment <> 0 then
    invalid_arg (Printf.sprintf "Qos.level_of_bandwidth: %d not on grid" b);
  (b - q.b_min) / q.increment

let is_elastic q = q.b_max > q.b_min

let paper_spec ~increment =
  make ~b_min:(Bandwidth.kbps 100) ~b_max:(Bandwidth.kbps 500) ~increment ()

let pp ppf q =
  Format.fprintf ppf "[%a, %a] step %a utility %g" Bandwidth.pp q.b_min
    Bandwidth.pp q.b_max Bandwidth.pp q.increment q.utility
