type spec = { k : int; m : int }

let spec ~k ~m =
  if k < 1 || m < k then invalid_arg "Interval_qos.spec: need 1 <= k <= m";
  { k; m }

type monitor = {
  s : spec;
  window : bool array; (* circular buffer of the last m outcomes *)
  mutable head : int; (* next slot to overwrite *)
  mutable delivered : int; (* count of [true] in window *)
  mutable violations : int;
}

let create s =
  { s; window = Array.make s.m true; head = 0; delivered = s.m; violations = 0 }

let spec_of mon = mon.s

let delivered_in_window mon = mon.delivered

let satisfied mon = mon.delivered >= mon.s.k

let record mon ~delivered =
  let old = mon.window.(mon.head) in
  mon.window.(mon.head) <- delivered;
  mon.head <- (mon.head + 1) mod mon.s.m;
  if old && not delivered then mon.delivered <- mon.delivered - 1
  else if (not old) && delivered then mon.delivered <- mon.delivered + 1;
  if not (satisfied mon) then mon.violations <- mon.violations + 1

(* How many consecutive losses keep every future window satisfied?  After
   [d] losses, the window contains the last [m - d] old outcomes plus [d]
   losses; the binding window is each intermediate one.  Simulate on a
   copy — m is tiny (packet window), so O(m^2) is irrelevant. *)
let distance_to_failure mon =
  if not (satisfied mon) then 0
  else begin
    let copy =
      {
        s = mon.s;
        window = Array.copy mon.window;
        head = mon.head;
        delivered = mon.delivered;
        violations = 0;
      }
    in
    let d = ref 0 in
    let ok = ref true in
    while !ok && !d < mon.s.m do
      record copy ~delivered:false;
      if satisfied copy then incr d else ok := false
    done;
    !d
  end

let can_skip mon = distance_to_failure mon >= 1

let violations mon = mon.violations
