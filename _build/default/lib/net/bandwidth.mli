(** Bandwidth arithmetic.

    All bandwidth in this codebase is an [int] number of Kbit/s.  Integer
    units keep elastic-QoS levels exact: a reservation is always
    [b_min + i * increment] for an integer level [i], so state
    identification in the Markov model never suffers float drift. *)

type t = int
(** Kbit/s. *)

val kbps : int -> t
(** Identity with a positivity check (0 allowed). *)

val mbps : int -> t
(** [mbps x] is [x * 1000] Kbit/s. *)

val to_float_mbps : t -> float

val pp : Format.formatter -> t -> unit
(** Human form: ["350Kbps"], ["10Mbps"] when divisible. *)

val paper_link_capacity : t
(** 10 Mbps — every link of the paper's evaluation networks. *)
