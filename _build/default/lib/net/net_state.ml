type t = {
  graph : Graph.t;
  links : Link_state.t array;
  failed : bool array; (* by undirected edge *)
  multiplexing : bool;
}

let create_heterogeneous ?(multiplexing = true) ~capacity_of graph =
  let n = Dirlink.count graph in
  {
    graph;
    links =
      Array.init n (fun id ->
          Link_state.create ~multiplexing ~capacity:(capacity_of id) ());
    failed = Array.make (max 1 (Graph.edge_count graph)) false;
    multiplexing;
  }

let create ?multiplexing ?(capacity = Bandwidth.paper_link_capacity) graph =
  create_heterogeneous ?multiplexing ~capacity_of:(fun _ -> capacity) graph

let graph t = t.graph
let multiplexing t = t.multiplexing

let link t id =
  if id < 0 || id >= Array.length t.links then
    invalid_arg (Printf.sprintf "Net_state.link: id %d out of range" id);
  t.links.(id)

let link_count t = Array.length t.links

let check_edge t e =
  if e < 0 || e >= Graph.edge_count t.graph then
    invalid_arg (Printf.sprintf "Net_state: edge %d out of range" e)

let fail_edge t e =
  check_edge t e;
  t.failed.(e) <- true

let repair_edge t e =
  check_edge t e;
  t.failed.(e) <- false

let edge_failed t e =
  check_edge t e;
  t.failed.(e)

let failed_edges t =
  let acc = ref [] in
  Array.iteri (fun e f -> if f && e < Graph.edge_count t.graph then acc := e :: !acc) t.failed;
  List.rev !acc

let usable_edge t e = not (edge_failed t e)

let iter_links f t = Array.iteri f t.links

let total_primary_reserved t =
  Array.fold_left (fun acc l -> acc + Link_state.primary_total l) 0 t.links

let total_backup_pool t =
  Array.fold_left (fun acc l -> acc + Link_state.backup_pool l) 0 t.links

let utilisation t =
  let cap = Array.fold_left (fun acc l -> acc + Link_state.capacity l) 0 t.links in
  if cap = 0 then 0.
  else float_of_int (total_primary_reserved t + total_backup_pool t) /. float_of_int cap

let multiplexing_gain t =
  let dedicated =
    Array.fold_left (fun acc l -> acc + Link_state.backup_dedicated_demand l) 0 t.links
  in
  let pooled = total_backup_pool t in
  if pooled = 0 then 1. else float_of_int dedicated /. float_of_int pooled

let check_invariants t = Array.iter Link_state.check_invariant t.links
