type t = int

let kbps x =
  if x < 0 then invalid_arg "Bandwidth.kbps: negative";
  x

let mbps x = kbps (x * 1000)

let to_float_mbps x = float_of_int x /. 1000.

let pp ppf x =
  if x >= 1000 && x mod 1000 = 0 then Format.fprintf ppf "%dMbps" (x / 1000)
  else Format.fprintf ppf "%dKbps" x

let paper_link_capacity = mbps 10
