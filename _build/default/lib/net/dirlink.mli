(** Directed link identifiers.

    The paper counts links directionally (its 100-node network has "354
    edges" = twice the 177 undirected edges), and a real-time channel is a
    {e unidirectional} virtual circuit, so reservations live on directed
    links.  Each undirected edge [e] of the topology yields two directed
    links: id [2e] travelling from the smaller endpoint to the larger, and
    id [2e + 1] for the reverse. *)

type id = int

val count : Graph.t -> int
(** [2 * Graph.edge_count]. *)

val of_edge : Graph.t -> edge:int -> src:int -> id
(** The directed link over [edge] leaving node [src].  Raises
    [Invalid_argument] if [src] is not an endpoint of [edge]. *)

val edge : id -> int
(** The underlying undirected edge. *)

val reverse : id -> id

val endpoints : Graph.t -> id -> int * int
(** [(src, dst)] of the directed link. *)

val of_path : Graph.t -> Paths.path -> id list
(** Directed links traversed by a path, in order. *)

val shares_edge : id list -> id list -> bool
(** Whether two directed-link lists traverse a common {e undirected} edge
    (the paper's link-sharing notion is direction-insensitive: a failure
    takes out both directions). *)
