(** Extra-resource adaptation policies — §2.2 of the paper.

    When bandwidth beyond the floors is available, the network walks
    eligible channels and grants one increment at a time (water-filling);
    the policy decides {e who gets the next increment}.  The paper
    evaluates with equal utilities ("fair distribution"); the
    coefficient/proportional and max-utility schemes it describes are also
    provided, and compared in the ablation benches. *)

type t =
  | Equal_share
      (** round-robin by current extra allocation: lowest first.  With
          equal utilities this is the paper's fair distribution. *)
  | Proportional
      (** the coefficient scheme (Han, PhD 1998): extras in proportion to
          each channel's utility coefficient. *)
  | Max_utility
      (** the max-utility scheme: highest-utility channel takes all it
          can before anyone else — may monopolise, as the paper warns. *)

val pp : Format.formatter -> t -> unit
val of_string : string -> t option
val all : t list

type claim = { utility : float; extras_granted : int }
(** A channel's standing in the current water-filling round:
    [extras_granted] counts increments already granted above the floor. *)

val compare_claims : t -> claim -> claim -> int
(** Total preorder: negative when the first claim deserves the next
    increment more.  Deterministic tie-breaks are left to the caller
    (compare on channel id last). *)
