lib/net/link_state.mli: Bandwidth
