lib/net/net_state.ml: Array Bandwidth Dirlink Graph Link_state List Printf
