lib/net/net_state.mli: Bandwidth Dirlink Graph Link_state
