lib/net/edf.mli: Bandwidth
