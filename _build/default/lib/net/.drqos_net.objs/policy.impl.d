lib/net/policy.ml: Format
