lib/net/bandwidth.mli: Format
