lib/net/interval_qos.ml: Array
