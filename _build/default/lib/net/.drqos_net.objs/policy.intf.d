lib/net/policy.mli: Format
