lib/net/dirlink.ml: Graph List Paths
