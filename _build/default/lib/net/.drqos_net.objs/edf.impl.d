lib/net/edf.ml: Bandwidth Float List
