lib/net/bandwidth.ml: Format
