lib/net/interval_qos.mli:
