lib/net/dirlink.mli: Graph Paths
