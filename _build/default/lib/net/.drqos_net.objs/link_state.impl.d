lib/net/link_state.ml: Bandwidth Hashtbl List Option Printf
