lib/net/qos.mli: Bandwidth Format
