lib/net/qos.ml: Bandwidth Format Printf
