type id = int

let count g = 2 * Graph.edge_count g

let of_edge g ~edge ~src =
  let a, b = Graph.endpoints g edge in
  if src = a then 2 * edge
  else if src = b then (2 * edge) + 1
  else invalid_arg "Dirlink.of_edge: node not on edge"

let edge id = id / 2

let reverse id = id lxor 1

let endpoints g id =
  let a, b = Graph.endpoints g (edge id) in
  if id land 1 = 0 then (a, b) else (b, a)

let of_path g (p : Paths.path) =
  let rec walk nodes edges acc =
    match (nodes, edges) with
    | _ :: [], [] | [], [] -> List.rev acc
    | u :: (_ :: _ as rest), e :: edges' ->
      walk rest edges' (of_edge g ~edge:e ~src:u :: acc)
    | _ -> invalid_arg "Dirlink.of_path: malformed path"
  in
  walk p.nodes p.edges []

let shares_edge l1 l2 =
  let edges1 = List.map edge l1 in
  List.exists (fun d -> List.mem (edge d) edges1) l2
