(** Bounded-flooding route discovery — §3.1 of the paper, after Kweon &
    Shin (CSE-TR-388-99).

    A connection request floods outward from the source within a hop
    bound; each node forwards copies only over links that could still
    admit the connection, and each copy carries its path's {e bandwidth
    allowance} (the bottleneck of what the links could give).  The first
    copy to reach the destination — i.e. a minimum-hop admissible route,
    ties broken toward the best allowance — becomes the primary channel's
    route.  A later, link-disjoint copy becomes the backup's route.

    We model the {e outcome} of this protocol exactly (which route wins)
    rather than simulating individual request packets; the message-count
    cost model of flooding is exposed separately for the overhead bench. *)

type request = {
  src : int;
  dst : int;
  floor : Bandwidth.t;  (** the connection's B_min. *)
  hop_bound : int;  (** flooding boundary; copies beyond it are dropped. *)
}

val request : ?hop_bound:int -> src:int -> dst:int -> floor:Bandwidth.t -> unit -> request
(** [hop_bound] defaults to 16 (effectively unbounded on our graphs). *)

val primary_route : Net_state.t -> request -> Paths.path option
(** Minimum-hop route on which every directed link passes the primary
    admission test ({!Link_state.admissible_primary} — floors plus backup
    pool fit after reclaiming extras), avoiding failed edges.  Ties broken
    toward the largest reclaimable allowance.  [None] if no admissible
    route exists within the hop bound. *)

val backup_route :
  ?banned_edges:int list ->
  Net_state.t -> request -> primary_edges:int list -> Paths.path option
(** Route for the backup channel: every directed link must be able to
    register a backup of [floor] given the primary's (undirected) edges
    (multiplexing aware), avoiding failed edges.  Fully link-disjoint
    from the primary if one exists; otherwise {e maximally} disjoint
    (minimises shared edges, as the paper allows when no disjoint path
    exists).  [banned_edges] are excluded outright — used to keep
    multiple backups of one connection mutually disjoint.  [None] if
    even that fails. *)

val message_count : Graph.t -> request -> int
(** Number of request-copy transmissions bounded flooding would send:
    every usable directed link within [hop_bound] hops of the source
    forwards at most one copy.  Used by the flooding-overhead bench. *)
