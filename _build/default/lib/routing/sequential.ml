let candidates_of net (req : Flooding.request) ~candidates =
  let g = Net_state.graph net in
  let usable e = Net_state.usable_edge net e in
  Yen.k_shortest ~usable g ~src:req.Flooding.src ~dst:req.Flooding.dst ~k:candidates
  |> List.filter (fun p -> Paths.hop_count p <= req.Flooding.hop_bound)

let primary_admissible net (req : Flooding.request) path =
  let g = Net_state.graph net in
  List.for_all
    (fun dl ->
      Link_state.admissible_primary (Net_state.link net dl) ~b_min:req.Flooding.floor)
    (Dirlink.of_path g path)

let primary_route net req ~candidates =
  List.find_opt (primary_admissible net req) (candidates_of net req ~candidates)

let backup_admissible net (req : Flooding.request) ~primary_edges path =
  let g = Net_state.graph net in
  List.for_all
    (fun dl ->
      let l = Net_state.link net dl in
      let pool' =
        Link_state.backup_pool_with l ~b_min:req.Flooding.floor ~primary_edges
      in
      Link_state.primary_min_total l + pool' <= Link_state.capacity l)
    (Dirlink.of_path g path)

let shared_edges ~primary_edges path =
  List.length (List.filter (fun e -> List.mem e primary_edges) path.Paths.edges)

let backup_route ?(banned_edges = []) net req ~candidates ~primary_edges =
  let admissible =
    candidates_of net req ~candidates
    |> List.filter (fun p ->
           not (List.exists (fun e -> List.mem e banned_edges) p.Paths.edges))
    |> List.filter (backup_admissible net req ~primary_edges)
  in
  match List.find_opt (fun p -> shared_edges ~primary_edges p = 0) admissible with
  | Some _ as found -> found
  | None ->
    (* Maximally disjoint among the candidates — but a backup must still
       protect at least one primary edge. *)
    let protecting =
      List.filter
        (fun p -> shared_edges ~primary_edges p < List.length primary_edges)
        admissible
    in
    (match protecting with
    | [] -> None
    | _ :: _ ->
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | None -> Some p
            | Some q ->
              if shared_edges ~primary_edges p < shared_edges ~primary_edges q
              then Some p
              else acc)
          None protecting
      in
      best)

let probe_count net req ~candidates =
  let cands = candidates_of net req ~candidates in
  let rec scan acc = function
    | [] -> acc
    | p :: rest ->
      let acc = acc + Paths.hop_count p in
      if primary_admissible net req p then acc else scan acc rest
  in
  scan 0 cands
