(** Link-disjoint path sets, for the active-replication baselines
    (multiple-copy and dispersity routing, §2.1.2 of the paper).

    Greedy successive-shortest-paths: repeatedly take a minimum-hop path
    and delete its edges.  Greedy is not maximal in pathological graphs
    but matches what the cited schemes deploy and is exact for k = 2 on
    our topologies in practice; the test suite checks disjointness, not
    optimality. *)

val paths :
  ?usable:(int -> bool) -> Graph.t -> src:int -> dst:int -> k:int ->
  Paths.path list
(** Up to [k] mutually link-disjoint minimum-hop paths, in discovery
    order (shortest first).  May return fewer than [k]. *)

val max_disjoint_estimate : Graph.t -> src:int -> dst:int -> int
(** Greedy estimate of how many link-disjoint paths exist (capped at the
    smaller endpoint degree). *)
