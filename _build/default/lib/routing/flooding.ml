type request = { src : int; dst : int; floor : Bandwidth.t; hop_bound : int }

let request ?(hop_bound = 16) ~src ~dst ~floor () =
  if src = dst then invalid_arg "Flooding.request: src = dst";
  if floor <= 0 then invalid_arg "Flooding.request: floor must be positive";
  if hop_bound < 1 then invalid_arg "Flooding.request: hop_bound >= 1";
  { src; dst; floor; hop_bound }

(* Hop-bounded BFS over directed links.  [allowance dl] returns the
   bandwidth this directed link could still give the request, or a
   negative number when the link cannot admit it at all.  Among routes of
   equal (minimal) hop count the one with the larger bottleneck allowance
   wins — that is the copy the destination would have confirmed. *)
let search_best net req ~allowance =
  let g = Net_state.graph net in
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  let best_allow = Array.make n min_int in
  let via = Array.make n (-1, -1) in
  dist.(req.src) <- 0;
  best_allow.(req.src) <- max_int;
  let frontier = ref [ req.src ] in
  let depth = ref 0 in
  while !frontier <> [] && !depth < req.hop_bound && dist.(req.dst) = max_int do
    let next = ref [] in
    (* Relax the whole level before moving on so the same-depth
       allowance tie-break is order-independent. *)
    List.iter
      (fun u ->
        List.iter
          (fun (v, e) ->
            if Net_state.usable_edge net e && dist.(v) >= !depth + 1 then begin
              let dl = Dirlink.of_edge g ~edge:e ~src:u in
              let a = allowance dl in
              if a >= 0 then begin
                let bottleneck = min best_allow.(u) a in
                if
                  dist.(v) > !depth + 1
                  || (dist.(v) = !depth + 1 && bottleneck > best_allow.(v))
                then begin
                  if dist.(v) > !depth + 1 then next := v :: !next;
                  dist.(v) <- !depth + 1;
                  best_allow.(v) <- bottleneck;
                  via.(v) <- (u, e)
                end
              end
            end)
          (Graph.neighbors g u))
      !frontier;
    frontier := !next;
    incr depth
  done;
  if dist.(req.dst) = max_int then None
  else begin
    let rec rebuild v nodes edges =
      if v = req.src then { Paths.nodes = req.src :: nodes; edges }
      else
        let u, e = via.(v) in
        rebuild u (v :: nodes) (e :: edges)
    in
    Some (rebuild req.dst [] [])
  end

let primary_route net req =
  let allowance dl =
    let l = Net_state.link net dl in
    if Link_state.admissible_primary l ~b_min:req.floor then
      Link_state.reclaimable_headroom l
    else -1
  in
  search_best net req ~allowance

(* Backup admissibility on a directed link: the pool after adding this
   backup must fit beside the primary floors. *)
let backup_allowance net ~floor ~primary_edges dl =
  let l = Net_state.link net dl in
  let pool' = Link_state.backup_pool_with l ~b_min:floor ~primary_edges in
  let headroom = Link_state.capacity l - Link_state.primary_min_total l - pool' in
  if headroom >= 0 then headroom else -1

let backup_route ?(banned_edges = []) net req ~primary_edges =
  let base_allowance = backup_allowance net ~floor:req.floor ~primary_edges in
  let allowance dl =
    if List.mem (Dirlink.edge dl) banned_edges then -1 else base_allowance dl
  in
  (* First try: fully link-disjoint. *)
  let disjoint_allowance dl =
    if List.mem (Dirlink.edge dl) primary_edges then -1 else allowance dl
  in
  match search_best net req ~allowance:disjoint_allowance with
  | Some _ as found -> found
  | None ->
    (* Maximally disjoint: Dijkstra minimising (shared edges, hops) via a
       large per-shared-edge penalty, over links that pass the backup
       admission test. *)
    let g = Net_state.graph net in
    let penalty = float_of_int (Graph.node_count g * Graph.node_count g) in
    let weight e = if List.mem e primary_edges then penalty +. 1. else 1. in
    let usable e =
      Net_state.usable_edge net e
      && (not (List.mem e banned_edges))
      &&
      (* Both directions might be used by Dijkstra; the admission test is
         directional, so accept the edge only if at least one direction
         admits — the final path is re-checked by the caller via
         reservation, which raises on the bad direction.  To stay exact we
         conservatively require both directions to admit. *)
      allowance (2 * e) >= 0
      && allowance ((2 * e) + 1) >= 0
    in
    (match Paths.dijkstra ~weight ~usable g req.src req.dst with
    | None -> None
    | Some (path, _) ->
      (* A backup covering none of the primary's edges' failures is
         useless: if every primary edge also lies on the backup, any
         primary failure kills the backup too — report no backup. *)
      let protects =
        List.exists (fun e -> not (List.mem e path.Paths.edges)) primary_edges
      in
      if Paths.hop_count path > req.hop_bound || not protects then None
      else Some path)

let message_count g req =
  (* One transmission per directed link whose tail is strictly inside the
     flooding region (hop distance < hop_bound) — every such node forwards
     the request once over each outgoing link except back where it came
     from; we charge the full out-degree as an upper-bound model and
     subtract the return link. *)
  let dist = Paths.hops_from g req.src in
  let total = ref 0 in
  for u = 0 to Graph.node_count g - 1 do
    if dist.(u) >= 0 && dist.(u) < req.hop_bound then begin
      let d = Graph.degree g u in
      let forwards = if u = req.src then d else max 0 (d - 1) in
      total := !total + forwards
    end
  done;
  !total
