lib/routing/sequential.mli: Flooding Net_state Paths
