lib/routing/flooding.ml: Array Bandwidth Dirlink Graph Link_state List Net_state Paths
