lib/routing/yen.mli: Graph Paths
