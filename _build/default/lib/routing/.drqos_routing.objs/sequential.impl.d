lib/routing/sequential.ml: Dirlink Flooding Link_state List Net_state Paths Yen
