lib/routing/flooding.mli: Bandwidth Graph Net_state Paths
