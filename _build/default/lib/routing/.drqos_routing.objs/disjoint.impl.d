lib/routing/disjoint.ml: Graph Hashtbl List Paths
