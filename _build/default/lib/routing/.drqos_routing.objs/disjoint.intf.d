lib/routing/disjoint.mli: Graph Paths
