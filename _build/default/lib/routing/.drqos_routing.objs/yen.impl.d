lib/routing/yen.ml: Graph Hashtbl List Paths
