(** Sequential route search — the alternative to flooding in §2.1.1:
    "shortest routes are picked and checked first, sequentially one by
    one" until an admissible one is found or the candidates run out.

    Candidates come from Yen's loopless k-shortest paths; each is
    admission-tested with exactly the same per-directed-link tests as the
    flooding search, so the two strategies differ only in {e which}
    admissible route they find (and in message cost: sequential probing
    sends one probe per candidate route instead of flooding copies). *)

val primary_route :
  Net_state.t -> Flooding.request -> candidates:int -> Paths.path option
(** Scan up to [candidates] shortest routes; return the first whose every
    directed link admits the request's floor (avoiding failed edges,
    respecting the hop bound). *)

val backup_route :
  ?banned_edges:int list ->
  Net_state.t -> Flooding.request -> candidates:int -> primary_edges:int list ->
  Paths.path option
(** First candidate that is fully link-disjoint from the primary and
    backup-admissible on every directed link; if none of the [candidates]
    is disjoint, the best {e partially} disjoint admissible candidate
    (fewest shared edges, never all of them) is returned. *)

val probe_count : Net_state.t -> Flooding.request -> candidates:int -> int
(** Messages the sequential search would send: one probe per hop of each
    candidate inspected until success (all candidates on failure). *)
