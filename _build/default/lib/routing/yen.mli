(** Yen's algorithm for loopless k-shortest (minimum-hop) paths.

    Used by the sequential route-search variant (§2.1.1: "shortest routes
    are picked and checked first, sequentially one by one") and by tests
    as an oracle for the flooding search. *)

val k_shortest :
  ?usable:(int -> bool) -> Graph.t -> src:int -> dst:int -> k:int ->
  Paths.path list
(** At most [k] distinct simple paths in non-decreasing hop count.
    Deterministic: ties are resolved by the underlying BFS's neighbour
    order. *)

val first_admissible :
  candidates:Paths.path list -> admissible:(Paths.path -> bool) ->
  Paths.path option
(** The sequential search: scan candidates in order, return the first that
    passes the admission test. *)
