let paths ?(usable = fun _ -> true) g ~src ~dst ~k =
  if k < 0 then invalid_arg "Disjoint.paths: negative k";
  let removed = Hashtbl.create 32 in
  let filter e = usable e && not (Hashtbl.mem removed e) in
  let rec collect acc remaining =
    if remaining = 0 then List.rev acc
    else
      match Paths.shortest_path ~usable:filter g src dst with
      | None -> List.rev acc
      | Some p ->
        List.iter (fun e -> Hashtbl.replace removed e ()) p.Paths.edges;
        collect (p :: acc) (remaining - 1)
  in
  collect [] k

let max_disjoint_estimate g ~src ~dst =
  let cap = min (Graph.degree g src) (Graph.degree g dst) in
  List.length (paths g ~src ~dst ~k:cap)
