type handle = int

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array option; (* None means empty storage *)
  mutable size_heap : int;
  mutable next_seq : int;
  cancelled : (int, unit) Hashtbl.t;
  mutable live : int;
}

let create () =
  { heap = None; size_heap = 0; next_seq = 0; cancelled = Hashtbl.create 64; live = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity t dummy =
  match t.heap with
  | None -> t.heap <- Some (Array.make 64 dummy)
  | Some arr ->
    if t.size_heap = Array.length arr then begin
      let bigger = Array.make (2 * t.size_heap) dummy in
      Array.blit arr 0 bigger 0 t.size_heap;
      t.heap <- Some bigger
    end

let add t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_queue.add: non-finite time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t entry;
  let arr = Option.get t.heap in
  let i = ref t.size_heap in
  arr.(!i) <- entry;
  t.size_heap <- t.size_heap + 1;
  while !i > 0 && earlier arr.(!i) arr.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = arr.(!i) in
    arr.(!i) <- arr.(parent);
    arr.(parent) <- tmp;
    i := parent
  done;
  t.live <- t.live + 1;
  entry.seq

(* Invariant: a seq is in [cancelled] iff that event has fired (pop marks
   it) or was cancelled.  So membership alone decides "still pending". *)
let cancel t h =
  if h < 0 || h >= t.next_seq || Hashtbl.mem t.cancelled h then false
  else begin
    Hashtbl.replace t.cancelled h ();
    t.live <- t.live - 1;
    true
  end

let sift_down arr size =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && earlier arr.(l) arr.(!smallest) then smallest := l;
    if r < size && earlier arr.(r) arr.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!smallest);
      arr.(!smallest) <- tmp;
      i := !smallest
    end
  done

let rec pop t =
  if t.size_heap = 0 then None
  else begin
    let arr = Option.get t.heap in
    let top = arr.(0) in
    t.size_heap <- t.size_heap - 1;
    arr.(0) <- arr.(t.size_heap);
    sift_down arr t.size_heap;
    if Hashtbl.mem t.cancelled top.seq then pop t
    else begin
      t.live <- t.live - 1;
      (* Mark as fired so a late cancel returns false. *)
      Hashtbl.replace t.cancelled top.seq ();
      Some (top.time, top.payload)
    end
  end

let rec peek_time t =
  if t.size_heap = 0 then None
  else begin
    let arr = Option.get t.heap in
    let top = arr.(0) in
    if Hashtbl.mem t.cancelled top.seq then begin
      t.size_heap <- t.size_heap - 1;
      arr.(0) <- arr.(t.size_heap);
      sift_down arr t.size_heap;
      peek_time t
    end
    else Some top.time
  end

let size t = max 0 t.live

let is_empty t = peek_time t = None
