type t = { queue : (t -> unit) Event_queue.t; mutable clock : float }

type handle = Event_queue.handle

let create ?(start_time = 0.) () = { queue = Event_queue.create (); clock = start_time }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f t;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let handled = ref 0 in
  let continue = ref true in
  while !continue && !handled < max_events do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until ->
      t.clock <- until;
      continue := false
    | Some _ ->
      ignore (step t);
      incr handled
  done;
  (* Close the interval even if we drained the queue first. *)
  if Float.is_finite until && t.clock < until then t.clock <- until;
  !handled
