(* Figure 3: average bandwidth when the number of nodes varies (100-500)
   with 3000 offered DR-connections, Waxman parameters held fixed at the
   Fig. 2 calibration.

   Expected shape: with alpha/beta fixed, the edge count grows
   superlinearly in the node count (the paper's upper dotted line), so a
   fixed 3000-connection load becomes relatively lighter and the average
   bandwidth climbs back toward the 500 Kbps ceiling. *)

let node_points = function
  | Exp.Full -> [ 100; 200; 300; 400; 500 ]
  | Exp.Quick -> [ 60; 120 ]

let offered = function Exp.Full -> 3000 | Exp.Quick -> 600

let experiment scale =
  let nodes_points = node_points scale in
  {
    Exp.name = "fig3";
    points =
      List.map
        (fun nodes ->
          { (Exp.paper_config ~scale ~offered:(offered scale) ~increment:50 ~seed:1) with
            Scenario.topology = Scenario.Waxman (Waxman.paper_spec ~nodes) })
        nodes_points;
    render =
      (fun results ->
        Exp.section "Figure 3: average bandwidth vs number of nodes (3000 connections)";
        let rows =
          List.map2
            (fun nodes (r, _) ->
              [
                string_of_int nodes;
                string_of_int (Graph.edge_count r.Scenario.graph * 2);
                string_of_int r.Scenario.carried_initial;
                Exp.kbps r.Scenario.sim_avg_bandwidth;
                Exp.kbps r.Scenario.model_avg_bandwidth;
                Exp.kbps r.Scenario.ideal_avg_bandwidth;
              ])
            nodes_points results
        in
        Exp.table ~export:"fig3"
          ~header:[ "nodes"; "links"; "carried"; "sim Kbps"; "markov Kbps"; "ideal Kbps" ]
          ~rows ();
        Exp.note
          "paper shape: link count grows superlinearly with nodes; the fixed load";
        Exp.note "becomes lighter, so average bandwidth rises toward the ceiling.");
  }

let run scale = Exp.run_experiment scale (experiment scale)
