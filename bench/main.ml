(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Fig. 2, Table 1, Fig. 3, Fig. 4), the ablation studies from
   DESIGN.md, and a bechamel micro-benchmark suite.

     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- fig2         # one experiment
     dune exec bench/main.exe -- all --quick  # ~4x smaller sweeps
     dune exec bench/main.exe -- fig2 --jobs 4  # sweep on 4 domains

   All experiments are deterministic (fixed seeds): the tables and .dat
   exports are byte-identical whatever --jobs is. *)

let commands =
  [ "all"; "fig2"; "table1"; "fig3"; "fig4"; "ablations"; "micro"; "scale" ]

let usage ?error () =
  Option.iter (fun msg -> Printf.eprintf "error: %s\n" msg) error;
  Printf.eprintf "usage: main.exe [%s] [--quick] [--jobs N] [--out DIR]\n"
    (String.concat "|" commands);
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale, rest =
    match Exp.parse_args args with
    | Ok x -> x
    | Error msg -> usage ~error:msg ()
  in
  let which =
    match rest with
    | [] -> "all"
    | [ w ] when List.mem w commands -> w
    | [ w ] -> usage ~error:(Printf.sprintf "unknown sub-command %S" w) ()
    | _ -> usage ~error:"expected at most one sub-command" ()
  in
  let t0 = Clock.now () in
  Printf.printf
    "drqos reproduction benches — %s scale, %d jobs\n\
     paper: Kim & Shin, \"Performance Evaluation of Dependable Real-Time\n\
     Communication with Elastic QoS\", DSN 2001\n"
    (match scale with Exp.Full -> "full" | Exp.Quick -> "quick")
    !Exp.jobs;
  let run_fig2 () = Fig2.run scale in
  let run_table1 () = Table1.run scale in
  let run_fig3 () = Fig3.run scale in
  let run_fig4 () = Fig4.run scale in
  let run_ablations () = Ablation.run scale in
  let run_micro () = Micro.run scale in
  let run_scale () = Scale.run scale in
  (match which with
  | "all" ->
    run_fig2 ();
    run_table1 ();
    run_fig3 ();
    run_fig4 ();
    run_ablations ();
    run_micro ()
  | "fig2" -> run_fig2 ()
  | "table1" -> run_table1 ()
  | "fig3" -> run_fig3 ()
  | "fig4" -> run_fig4 ()
  | "ablations" -> run_ablations ()
  | "micro" -> run_micro ()
  | "scale" -> run_scale ()
  | _ -> usage ());
  Printf.printf "\ntotal bench time: %.0fs\n" (Clock.elapsed_since t0)
