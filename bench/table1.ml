(* Table 1: average bandwidth of the Markov chains with different numbers
   of states (5-state = 100 Kbps increment, 9-state = 50 Kbps increment),
   on the Random (Waxman) and Tier (transit-stub) networks.

   Expected shape, per the paper: the two increment sizes give nearly
   identical averages on each network; on the Tier network most offered
   connections are rejected (its thin core saturates), so the averages
   refer to far fewer carried connections.  The paper's prose also notes
   the flip side — "the scheme with a smaller increment size changes its
   bandwidth more frequently" — which the adaptation-cost footer
   quantifies. *)

let offered_points = function
  | Exp.Full -> [ 1000; 2000; 3000; 4000; 5000 ]
  | Exp.Quick -> [ 400; 1200 ]

let tier_topology = Scenario.Transit_stub Transit_stub.paper_spec

(* Four cells per table row: Random/Tier x 5-state/9-state. *)
let cells_per_row = 4

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let head, rest = take n [] l in
    head :: chunk n rest

let experiment scale =
  let offereds = offered_points scale in
  {
    Exp.name = "table1";
    points =
      List.concat_map
        (fun offered ->
          let random inc = Exp.paper_config ~scale ~offered ~increment:inc ~seed:1 in
          let tier inc =
            { (Exp.paper_config ~scale ~offered ~increment:inc ~seed:1) with
              Scenario.topology = tier_topology }
          in
          [ random 100; random 50; tier 100; tier 50 ])
        offereds;
    render =
      (fun results ->
        Exp.section "Table 1: average bandwidth, 5-state vs 9-state chains, Random vs Tier";
        let cell (r, _) =
          ( Exp.kbps r.Scenario.model_avg_bandwidth,
            Exp.kbps r.Scenario.sim_avg_bandwidth,
            r.Scenario.carried_initial,
            Estimator.adaptation_rate r.Scenario.estimator )
        in
        let adapt5 = ref 0. and adapt9 = ref 0. and points = ref 0 in
        let rows =
          List.map2
            (fun offered group ->
              match List.map cell group with
              | [ (r5, r5s, _, a5); (r9, r9s, _, a9); (t5, t5s, carried5, _);
                  (t9, t9s, _, _) ] ->
                adapt5 := !adapt5 +. a5;
                adapt9 := !adapt9 +. a9;
                incr points;
                [
                  string_of_int offered;
                  Printf.sprintf "%s (%s)" r5 r5s;
                  Printf.sprintf "%s (%s)" r9 r9s;
                  Printf.sprintf "%s (%s)" t5 t5s;
                  Printf.sprintf "%s (%s)" t9 t9s;
                  string_of_int carried5;
                ]
              | _ -> assert false)
            offereds (chunk cells_per_row results)
        in
        Exp.table ~export:"table1"
          ~header:
            [
              "offered";
              "Random 5-state";
              "Random 9-state";
              "Tier 5-state";
              "Tier 9-state";
              "Tier carried";
            ]
          ~rows ();
        Exp.note "cells: markov Kbps (simulation Kbps in parentheses)";
        Exp.note
          "paper shape: 5- and 9-state averages nearly equal; Tier carries far fewer";
        Exp.note "connections than offered (core saturation) yet shows the same agreement.";
        let pts = float_of_int (max 1 !points) in
        Exp.note "adaptation cost on the Random network (level changes per churn event):";
        Exp.note "  increment 100 Kbps (5-state): %.1f" (!adapt5 /. pts);
        Exp.note "  increment  50 Kbps (9-state): %.1f" (!adapt9 /. pts);
        Exp.note "— same average QoS, more re-adjustment traffic: the paper's trade-off.");
  }

let run scale = Exp.run_experiment scale (experiment scale)
