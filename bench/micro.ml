(* Bechamel micro-benchmarks of the operations each experiment leans on:
   route discovery, admission, the Markov solve, and topology
   generation. *)

open Bechamel
open Toolkit

let paper_graph = lazy (Waxman.generate (Prng.create 1) (Waxman.paper_spec ~nodes:100))

let bench_flooding () =
  let g = Lazy.force paper_graph in
  let net = Net_state.create g in
  let rng = Prng.create 3 in
  Staged.stage (fun () ->
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      ignore (Flooding.primary_route net (Flooding.request ~src ~dst ~floor:100 ())))

let bench_admission () =
  let g = Lazy.force paper_graph in
  let net = Net_state.create g in
  let service = Drcomm.create net in
  let rng = Prng.create 4 in
  let qos = Qos.paper_spec ~increment:50 in
  Staged.stage (fun () ->
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos with
      | Drcomm.Admitted (id, _) ->
        (* Keep the service near-empty so each run measures one admit +
           one terminate rather than an ever-growing network. *)
        ignore (Drcomm.terminate service id)
      | Drcomm.Rejected _ -> ())

let bench_markov_solve () =
  let rng = Prng.create 5 in
  let n = 9 in
  let random_stochastic () =
    let m = Matrix.create n n in
    for i = 0 to n - 1 do
      let row = Array.init n (fun _ -> Prng.float rng 1.) in
      let total = Array.fold_left ( +. ) 0. row in
      Array.iteri (fun j x -> Matrix.set m i j (x /. total)) row
    done;
    m
  in
  let p =
    {
      Model.lambda = 0.001;
      mu = 0.001;
      gamma = 0.;
      p_f = 0.04;
      p_s = 0.5;
      a = random_stochastic ();
      b = random_stochastic ();
      t_mat = random_stochastic ();
    }
  in
  let qos = Qos.paper_spec ~increment:50 in
  Staged.stage (fun () -> ignore (Model.average_bandwidth_regularized p ~qos))

let bench_waxman () =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      ignore (Waxman.generate (Prng.create !counter) (Waxman.paper_spec ~nodes:100)))

let bench_backup_route () =
  let g = Lazy.force paper_graph in
  let net = Net_state.create g in
  let rng = Prng.create 6 in
  Staged.stage (fun () ->
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      let req = Flooding.request ~src ~dst ~floor:100 () in
      match Flooding.primary_route net req with
      | None -> ()
      | Some p -> ignore (Flooding.backup_route net req ~primary_edges:p.Paths.edges))

let tests =
  [
    Test.make ~name:"flooding primary route (fig2-4 inner loop)" (bench_flooding ());
    Test.make ~name:"backup route search" (bench_backup_route ());
    Test.make ~name:"DR admission + termination" (bench_admission ());
    Test.make ~name:"9-state Markov solve (table1/fig2)" (bench_markov_solve ());
    Test.make ~name:"100-node Waxman generation" (bench_waxman ());
  ]

let run scale =
  Exp.with_manifest "micro" scale @@ fun () ->
  Exp.section "Micro-benchmarks (bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let time_ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> est
          | _ -> nan
        in
        (name, time_ns) :: acc)
      results []
    |> List.sort compare
    |> List.map (fun (name, ns) ->
           let pretty =
             if Float.is_nan ns then "n/a"
             else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; pretty ])
  in
  Exp.table ~export:"micro" ~header:[ "operation"; "time/run" ] ~rows ()
