(* Ablation benches for the design choices DESIGN.md calls out:
   backup multiplexing, elastic vs single-value QoS, the three
   redistribution policies, passive backups vs active replication, and
   bounded-flooding overhead. *)

let paper_graph seed = Waxman.generate (Prng.create seed) (Waxman.paper_spec ~nodes:100)

let offered_for = function Exp.Full -> 3000 | Exp.Quick -> 800

(* 1. Backup multiplexing on/off: how many DR-connections fit, and how
   much bandwidth the backup pools consume. *)
let multiplexing scale =
  {
    Exp.name = "ablation_a_multiplexing";
    points =
      List.map
        (fun multiplexing ->
          { (Exp.paper_config ~scale ~offered:(offered_for scale) ~increment:50 ~seed:1) with
            Scenario.multiplexing;
            capacity = Bandwidth.mbps 2 })
        [ true; false ];
    render =
      (fun results ->
        Exp.section "Ablation A: backup-channel multiplexing (overbooking) on/off";
        Exp.note "2 Mbps links so that backup pools contend with floors";
        let rows =
          List.map
            (fun (r, _) ->
              [
                (if r.Scenario.config.Scenario.multiplexing then "multiplexed"
                 else "dedicated");
                string_of_int r.Scenario.offered;
                string_of_int r.Scenario.carried_initial;
                string_of_int r.Scenario.rejected_load;
                Exp.kbps r.Scenario.sim_avg_bandwidth;
              ])
            results
        in
        Exp.table ~export:"ablation_a_multiplexing"
          ~header:[ "backup pools"; "offered"; "carried"; "rejected"; "sim Kbps" ]
          ~rows ();
        Exp.note
          "expected: dedicated (non-multiplexed) backup reservations crowd out floors,";
        Exp.note "admitting fewer DR-connections — the paper's overbooking argument.");
  }

(* 2. Elastic vs single-value QoS: the paper's introduction in one table.
   A single-value client asking for the maximum blocks the network; one
   asking for the minimum wastes idle capacity; elastic gets both. *)
let elasticity scale =
  let offered = offered_for scale in
  let variants =
    [
      ("single-value 500K", Qos.single_value 500);
      ("single-value 100K", Qos.single_value 100);
      ("elastic 100..500K", Qos.paper_spec ~increment:50);
    ]
  in
  {
    Exp.name = "ablation_b_elasticity";
    points =
      List.map
        (fun (_, qos) ->
          { (Exp.paper_config ~scale ~offered ~increment:50 ~seed:1) with Scenario.qos })
        variants;
    render =
      (fun results ->
        Exp.section "Ablation B: elastic QoS vs single-value QoS";
        let rows =
          List.map2
            (fun (label, _) (r, _) ->
              [
                label;
                string_of_int offered;
                string_of_int r.Scenario.carried_initial;
                Exp.kbps r.Scenario.sim_avg_bandwidth;
                (* Served volume: carried x average bandwidth, in Mbps. *)
                Printf.sprintf "%.0f"
                  (float_of_int r.Scenario.carried_initial
                  *. r.Scenario.sim_avg_bandwidth /. 1000.);
              ])
            variants results
        in
        Exp.table ~export:"ablation_b_elasticity"
          ~header:[ "QoS model"; "offered"; "carried"; "avg Kbps"; "served Mbps" ]
          ~rows ();
        Exp.note "expected: 500K single-value accepts fewest; 100K single-value accepts";
        Exp.note "many but serves each minimally; elastic accepts like 100K and serves";
        Exp.note "like 500K while capacity lasts — the paper's utilisation claim.");
  }

(* 3. Redistribution policies with mixed utilities: two client classes
   (utility 1 and 4) on the paper network; how does each policy share the
   extras? *)
let policies scale =
  Exp.section "Ablation C: adaptation policy vs per-class average bandwidth";
  let offered = match scale with Exp.Full -> 1500 | Exp.Quick -> 400 in
  let qos_low = Qos.make ~b_min:100 ~b_max:500 ~increment:50 ~utility:1. () in
  let qos_high = Qos.make ~b_min:100 ~b_max:500 ~increment:50 ~utility:4. () in
  Exp.note "2 Mbps links; two client classes (utility 1 and 4), alternating";
  let run_policy policy =
    let g = paper_graph 1 in
    let net = Net_state.create ~capacity:(Bandwidth.mbps 2) g in
    let cfg = Drcomm.Config.make ~policy () in
    let service = Drcomm.create ~config:cfg net in
    let rng = Prng.create 42 in
    let low = ref [] and high = ref [] in
    for i = 1 to offered do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      let qos = if i mod 2 = 0 then qos_high else qos_low in
      match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos with
      | Drcomm.Admitted (id, _) ->
        if i mod 2 = 0 then high := id :: !high else low := id :: !low
      | Drcomm.Rejected _ -> ()
    done;
    let avg ids =
      let ids = List.filter (Drcomm.mem service) ids in
      match ids with
      | [] -> 0.
      | _ ->
        float_of_int
          (List.fold_left (fun acc id -> acc + Drcomm.reserved_bandwidth service id) 0 ids)
        /. float_of_int (List.length ids)
    in
    (avg !low, avg !high)
  in
  let rows =
    List.map
      (fun policy ->
        let low, high = run_policy policy in
        [
          Format.asprintf "%a" Policy.pp policy;
          Exp.kbps low;
          Exp.kbps high;
          Printf.sprintf "%.2f" (if low > 0. then high /. low else 0.);
        ])
      Policy.all
  in
  Exp.table ~export:"ablation_c_policies"
    ~header:[ "policy"; "utility-1 avg Kbps"; "utility-4 avg Kbps"; "ratio" ]
    ~rows ();
  Exp.note "expected: equal-share ~1.0 ratio; proportional rewards utility in";
  Exp.note "proportion; max-utility lets high-utility channels monopolise extras."

(* 4. Passive backups vs active replication: standing resource cost and
   blocking as load grows. *)
let replication scale =
  Exp.section "Ablation D: passive backup channels vs active replication";
  let offered = match scale with Exp.Full -> 2000 | Exp.Quick -> 500 in
  let bandwidth = 100 in
  let g = paper_graph 1 in
  let run_backup () =
    let net = Net_state.create g in
    let service = Drcomm.create net in
    let rng = Prng.create 42 in
    let carried = ref 0 in
    for _ = 1 to offered do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match
        Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:(Qos.single_value bandwidth)
      with
      | Drcomm.Admitted _ -> incr carried
      | Drcomm.Rejected _ -> ()
    done;
    ( "backup channels",
      !carried,
      Net_state.total_primary_reserved net + Net_state.total_backup_pool net )
  in
  let run_active label scheme =
    let net = Net_state.create g in
    let service = Replication.create scheme net in
    let rng = Prng.create 42 in
    let carried = ref 0 in
    for _ = 1 to offered do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Replication.admit service ~src ~dst ~bandwidth with
      | `Admitted _ -> incr carried
      | `Rejected -> ()
    done;
    (label, !carried, Net_state.total_primary_reserved net)
  in
  let rows =
    List.map
      (fun (label, carried, cost) ->
        [
          label;
          string_of_int offered;
          string_of_int carried;
          string_of_int (cost / 1000);
          (if carried > 0 then string_of_int (cost / carried) else "-");
        ])
      [
        run_backup ();
        run_active "multiple-copy x2" (Replication.Multiple_copy 2);
        run_active "dispersity 2+1" (Replication.Dispersity { split = 2; redundant = 1 });
      ]
  in
  Exp.table ~export:"ablation_d_replication"
    ~header:[ "scheme"; "offered"; "carried"; "committed Mbps"; "Kbps/conn" ]
    ~rows ();
  Exp.note "expected: the passive scheme commits the least bandwidth per carried";
  Exp.note "connection (multiplexed pools); multiple-copy pays the most; dispersity";
  Exp.note "sits between — the paper's §2.1.2 ordering."

(* 5. Bounded flooding: request-copy overhead vs hop bound (the cost knob
   of the route discovery protocol, §3.1). *)
let flooding scale =
  Exp.section "Ablation E: bounded-flooding message overhead vs hop bound";
  let g = paper_graph 1 in
  let rng = Prng.create 7 in
  let pairs =
    List.init (match scale with Exp.Full -> 200 | Exp.Quick -> 50) (fun _ ->
        Prng.sample_distinct_pair rng (Graph.node_count g))
  in
  let net = Net_state.create g in
  let rows =
    List.map
      (fun hop_bound ->
        let total_msgs = ref 0 and found = ref 0 in
        List.iter
          (fun (src, dst) ->
            let req = Flooding.request ~hop_bound ~src ~dst ~floor:100 () in
            total_msgs := !total_msgs + Flooding.message_count g req;
            if Flooding.primary_route net req <> None then incr found)
          pairs;
        [
          string_of_int hop_bound;
          Printf.sprintf "%.0f" (float_of_int !total_msgs /. float_of_int (List.length pairs));
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int !found /. float_of_int (List.length pairs));
        ])
      [ 2; 4; 6; 8; 12; 16 ]
  in
  Exp.table ~export:"ablation_e_flooding" ~header:[ "hop bound"; "avg request copies"; "route found" ] ~rows ();
  Exp.note "expected: overhead saturates once the bound covers the diameter (~8);";
  Exp.note "tighter bounds trade discovery success for fewer request copies."

(* 6. Run-time phase: end-to-end packet delay over established channels
   as the data-plane load factor grows (fraction of each reservation the
   source actually uses; >1 = non-conforming). *)
let runtime_delay scale =
  Exp.section "Ablation F: end-to-end packet delay vs data-plane load factor";
  let g = paper_graph 1 in
  let capacity = Bandwidth.paper_link_capacity in
  let net = Net_state.create ~capacity g in
  let service = Drcomm.create net in
  let rng = Prng.create 42 in
  let qos = Qos.paper_spec ~increment:50 in
  let n_conn = match scale with Exp.Full -> 800 | Exp.Quick -> 200 in
  let ids = ref [] in
  for _ = 1 to n_conn do
    let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
    match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos with
    | Drcomm.Admitted (id, _) -> ids := id :: !ids
    | Drcomm.Rejected _ -> ()
  done;
  let sample = List.filteri (fun i _ -> i < 40) !ids in
  let horizon = match scale with Exp.Full -> 3.0 | Exp.Quick -> 1.0 in
  let rows =
    List.map
      (fun factor ->
        let engine = Engine.create () in
        let sim = Netsim.create ~propagation_delay:0.0005 engine g ~rate_of:(fun _ -> capacity) in
        let flows =
          List.map
            (fun id ->
              let rate =
                max 1 (int_of_float (factor *. float_of_int (Drcomm.reserved_bandwidth service id)))
              in
              Netsim.add_flow sim
                ~path:(Drcomm.primary_links service id)
                ~spec:(Traffic_spec.make ~rate ~burst_bits:4000 ~packet_bits:2000 ())
                ~deadline:0.05 ~stop:horizon ())
            sample
        in
        ignore (Engine.run ~until:(horizon +. 2.) engine);
        let delays = Stats.Welford.create () in
        let missed = ref 0 and delivered = ref 0 in
        let worst = ref 0. in
        List.iter
          (fun fid ->
            let st = Netsim.stats sim fid in
            missed := !missed + st.Netsim.missed;
            delivered := !delivered + st.Netsim.delivered;
            worst := Float.max !worst st.Netsim.worst_delay;
            if Stats.Welford.count st.Netsim.delay > 0 then
              Stats.Welford.add delays (Stats.Welford.mean st.Netsim.delay))
          flows;
        [
          Printf.sprintf "%.1f" factor;
          string_of_int !delivered;
          Printf.sprintf "%.2f" (1000. *. Stats.Welford.mean delays);
          Printf.sprintf "%.2f" (1000. *. !worst);
          Printf.sprintf "%.2f%%"
            (100. *. float_of_int !missed /. float_of_int (max 1 !delivered));
        ])
      [ 0.5; 0.8; 1.0 ]
  in
  Exp.table ~export:"ablation_f_runtime_delay"
    ~header:
      [ "load factor"; "delivered"; "mean delay ms"; "worst ms"; "miss rate" ]
    ~rows ();
  Exp.note "expected: conformant factors (<= 1.0) keep millisecond delays and";
  Exp.note "zero misses — the reservations bound the data plane end to end."

(* 7. Route discovery strategy: parallel bounded flooding vs sequential
   k-shortest probing (§2.1.1's two families). *)
let route_search scale =
  Exp.section "Ablation G: flooding vs sequential route discovery";
  let offered = match scale with Exp.Full -> 2000 | Exp.Quick -> 500 in
  let attempt strategy =
    let g = paper_graph 1 in
    let net = Net_state.create g in
    let cfg = Drcomm.Config.make ~route_search:strategy () in
    let service = Drcomm.create ~config:cfg net in
    let rng = Prng.create 42 in
    let carried = ref 0 and hops = ref 0 in
    for _ = 1 to offered do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:(Qos.paper_spec ~increment:50) with
      | Drcomm.Admitted (id, _) ->
        incr carried;
        hops := !hops + List.length (Drcomm.primary_links service id)
      | Drcomm.Rejected _ -> ()
    done;
    (!carried, float_of_int !hops /. float_of_int (max 1 !carried))
  in
  (* Message cost measured separately on the idle network. *)
  let message_cost () =
    let g = paper_graph 1 in
    let net = Net_state.create g in
    let rng = Prng.create 7 in
    let pairs = List.init 200 (fun _ -> Prng.sample_distinct_pair rng (Graph.node_count g)) in
    let flood = ref 0 and seq = ref 0 in
    List.iter
      (fun (src, dst) ->
        let req = Flooding.request ~src ~dst ~floor:100 () in
        flood := !flood + Flooding.message_count g req;
        seq := !seq + Sequential.probe_count net req ~candidates:8)
      pairs;
    (float_of_int !flood /. 200., float_of_int !seq /. 200.)
  in
  let f_carried, f_hops = attempt `Flooding in
  let s_carried, s_hops = attempt (`Sequential 8) in
  let f_msgs, s_msgs = message_cost () in
  Exp.table ~export:"ablation_g_route_search"
    ~header:[ "strategy"; "carried"; "avg hops"; "avg messages" ]
    ~rows:
      [
        [ "flooding"; string_of_int f_carried; Printf.sprintf "%.2f" f_hops;
          Printf.sprintf "%.0f" f_msgs ];
        [ "sequential (k=8)"; string_of_int s_carried; Printf.sprintf "%.2f" s_hops;
          Printf.sprintf "%.0f" s_msgs ];
      ]
    ();
  Exp.note "expected: both admit similar populations over min-hop routes; the";
  Exp.note "sequential probe costs far fewer messages at light load, while";
  Exp.note "flooding explores alternatives in one round trip (§2.1.1 trade-off)."

(* 8. Dependability depth: how many connections survive a failure storm
   as a function of backups-per-connection ("one or more backup channels"
   in the paper's framework). *)
let backup_depth scale =
  Exp.section "Ablation H: survivability vs backups per connection";
  let offered = match scale with Exp.Full -> 1000 | Exp.Quick -> 300 in
  let failures = match scale with Exp.Full -> 120 | Exp.Quick -> 40 in
  let rows =
    List.map
      (fun k ->
        let g = paper_graph 1 in
        let net = Net_state.create g in
        let cfg =
          Drcomm.Config.make ~with_backups:(k > 0) ~require_backup:(k > 0)
            ~backups_per_connection:(max k 1) ()
        in
        let service = Drcomm.create ~config:cfg net in
        let rng = Prng.create 42 in
        let carried = ref 0 in
        for _ = 1 to offered do
          let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
          match Drcomm.admit ~want_indirect:false service ~src ~dst ~qos:(Qos.paper_spec ~increment:50) with
          | Drcomm.Admitted _ -> incr carried
          | Drcomm.Rejected _ -> ()
        done;
        (* Storm: random failures, each repaired shortly after (at most 3
           edges down at once). *)
        let down = Queue.create () in
        for _ = 1 to failures do
          let e = Prng.int rng (Graph.edge_count g) in
          ignore (Drcomm.fail_edge service e);
          Queue.push e down;
          if Queue.length down > 3 then Drcomm.repair_edge service (Queue.pop down)
        done;
        let pool = Net_state.total_backup_pool net in
        [
          string_of_int k;
          string_of_int !carried;
          string_of_int (Drcomm.dropped_connections service);
          Printf.sprintf "%.1f%%"
            (100.
            *. float_of_int (Drcomm.dropped_connections service)
            /. float_of_int (max 1 !carried));
          string_of_int (pool / 1000);
        ])
      [ 0; 1; 2 ]
  in
  Exp.table ~export:"ablation_h_backup_depth"
    ~header:[ "backups/conn"; "carried"; "dropped"; "drop rate"; "pool Mbps" ]
    ~rows ();
  Exp.note "expected: drops fall sharply from 0 to 1 backup (the paper's core";
  Exp.note "dependability claim) and again from 1 to 2, at the cost of a larger";
  Exp.note "multiplexed pool.  (Note: pool for k=0 is 0 by construction.)"

(* 9. The paper's §1 motivation, quantified: proactive backup channels vs
   reactive restoration when the network is congested.  Restoration must
   find capacity *after* the failure — and fails exactly when the network
   is loaded; the backup's resources were reserved in advance.

   Run with single-value (inelastic) QoS so the floors genuinely saturate
   the links: under elastic QoS the reclaimable extras would hand
   restoration free headroom and mask the §1 effect.  (Restoration is
   also slower in reality — signalling plus re-routing per victim — which
   an instantaneous event model cannot price; this table isolates the
   success-rate argument only.) *)
let restoration scale =
  let heavy = match scale with Exp.Full -> 3000 | Exp.Quick -> 900 in
  let churn = match scale with Exp.Full -> 1500 | Exp.Quick -> 400 in
  let mode_cfg ~offered cfg_mod =
    cfg_mod
      {
        Scenario.default with
        Scenario.capacity = Bandwidth.mbps 2;
        qos = Qos.single_value 300;
        offered;
        gamma = 0.0005;
        churn_events = churn;
        warmup_events = churn / 4;
        seed = 1;
      }
  in
  let backup c = c in
  let restor c =
    {
      c with
      Scenario.with_backups = false;
      require_backup = false;
      restore_on_failure = true;
    }
  in
  let unprotected c =
    { c with Scenario.with_backups = false; require_backup = false }
  in
  let light = heavy / 3 in
  let modes =
    [
      ("backup channels", light, backup);
      ("backup channels", heavy, backup);
      ("reactive restoration", light, restor);
      ("reactive restoration", heavy, restor);
      ("no protection", heavy, unprotected);
    ]
  in
  {
    Exp.name = "ablation_i_restoration";
    points = List.map (fun (_, offered, cfg_mod) -> mode_cfg ~offered cfg_mod) modes;
    render =
      (fun results ->
        Exp.section
          "Ablation I: backup channels vs reactive restoration under congestion";
        Exp.note "single-value 300 Kbps QoS; 2 Mbps links (floors saturate)";
        let rows =
          List.map2
            (fun (label, offered, _) (r, _) ->
              let victims =
                r.Scenario.recovered_by_backup + r.Scenario.restored_from_scratch
                + r.Scenario.dropped
              in
              [
                label;
                string_of_int offered;
                string_of_int victims;
                string_of_int r.Scenario.recovered_by_backup;
                string_of_int r.Scenario.restored_from_scratch;
                string_of_int r.Scenario.dropped;
                Printf.sprintf "%.1f%%"
                  (100. *. float_of_int r.Scenario.dropped
                  /. float_of_int (max 1 victims));
              ])
            modes results
        in
        Exp.table ~export:"ablation_i_restoration"
          ~header:
            [
              "scheme"; "offered"; "victims"; "switched"; "restored"; "dropped";
              "loss rate";
            ]
          ~rows ();
        Exp.note "reading: backup losses are *structural* — connections whose only";
        Exp.note "backup shared an edge with the primary (leaf-adjacent endpoints on";
        Exp.note "this degree-3.5 topology) — and roughly load-independent, with the";
        Exp.note "switchover itself instantaneous and guaranteed by reservation.";
        Exp.note "Restoration's losses grow with load (no spare floors post-failure),";
        Exp.note "and every successful restoration still pays signalling + re-routing";
        Exp.note "latency that an instantaneous event model does not price — the two";
        Exp.note "halves of the paper's §1 argument.");
  }

(* Ablations A, B and I are plain scenario sweeps and go through the
   declarative driver (parallel across their points); C-H drive the
   service layer directly and stay imperative.  All share one metrics
   manifest. *)
let run scale =
  Exp.with_manifest "ablations" scale @@ fun () ->
  Exp.run_sweep (multiplexing scale);
  Exp.run_sweep (elasticity scale);
  policies scale;
  replication scale;
  flooding scale;
  runtime_delay scale;
  route_search scale;
  backup_depth scale;
  Exp.run_sweep (restoration scale)
