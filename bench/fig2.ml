(* Figure 2: average bandwidth of a DR-connection as the number of
   DR-connections grows (0-5000), on the paper's 100-node / 354-link
   calibrated Waxman network; lambda = mu = 0.001, gamma = 0; 9-state
   chain (increment 50 Kbps).

   Three series, as in the paper: detailed simulation, the Markov-model
   prediction from measured parameters, and the ideal-average formula.
   Expected shape: all start at the 500 Kbps ceiling under light load and
   decay toward the 100 Kbps floor; the ideal line upper-bounds the others
   until saturation, where the three converge. *)

let offered_points = function
  | Exp.Full -> [ 500; 1000; 1500; 2000; 2500; 3000; 3500; 4000; 4500; 5000 ]
  | Exp.Quick -> [ 200; 600; 1000; 1400 ]

let experiment scale =
  {
    Exp.name = "fig2";
    points =
      List.map
        (fun offered -> Exp.paper_config ~scale ~offered ~increment:50 ~seed:1)
        (offered_points scale);
    render =
      (fun results ->
        Exp.section "Figure 2: average bandwidth vs number of DR-connections";
        Exp.note
          "network: 100-node Waxman (alpha 0.33, beta calibrated to 354 links), 10 Mbps links";
        Exp.note "QoS: 100..500 Kbps, increment 50 (9-state chain); lambda = mu = 0.001";
        let rows =
          List.map
            (fun (r, _) ->
              [
                string_of_int r.Scenario.offered;
                string_of_int r.Scenario.carried_initial;
                Exp.kbps r.Scenario.sim_avg_bandwidth;
                Exp.kbps r.Scenario.model_avg_bandwidth;
                Exp.kbps r.Scenario.ideal_avg_bandwidth;
                Printf.sprintf "%.3f" (Estimator.p_f r.Scenario.estimator);
                Printf.sprintf "%.3f" (Estimator.p_s r.Scenario.estimator);
              ])
            results
        in
        Exp.table ~export:"fig2"
          ~header:
            [ "offered"; "carried"; "sim Kbps"; "markov Kbps"; "ideal Kbps"; "P_f"; "P_s" ]
          ~rows ();
        Exp.note
          "paper shape: ceiling at light load; decay toward the floor as load grows;";
        Exp.note
          "ideal line above both until saturation; analytic tracks simulation from below.");
  }

let run scale = Exp.run_experiment scale (experiment scale)
