(* Million-connection scale bench: the acceptance run for the indexed
   hot path (DESIGN.md §13).

   A 1056-node transit–stub topology (4 transit domains of 8, four
   8-node stubs per transit node) is loaded in plateaus of live
   DR-connections; at each plateau a batch of admit/terminate churn
   events runs through the simulation engine and is timed.  The claim
   under test is {e flat per-operation cost}: once the steady-state heap
   is established, ops/sec at 10^6 live connections stays within a small
   factor of the earlier plateaus (the very first plateau runs cheaper
   while links and allocator arenas are still cold).

   Load is stub-local (traffic engineering keeps most pairs inside a
   stub) and overwhelmingly inelastic — the million-connection regime is
   many small fixed-rate flows, with a sprinkling of elastic ones to
   keep the water-filling machinery honest.  Admission control stays
   fully on; auto-redistribution is deferred during bulk loading and
   flushed once per plateau (the batched-arrival pattern).

   Wall-clock figures go only to BENCH_scale.json (the perf_diff gate);
   scale.dat carries the deterministic columns. *)

let topo_spec =
  Transit_stub.spec ~transit_domains:4 ~transit_size:8 ~stubs_per_transit_node:4
    ~stub_size:8 ()

let plateaus = function
  | Exp.Full -> [ 250_000; 500_000; 750_000; 1_000_000 ]
  | Exp.Quick -> [ 50_000; 100_000 ]

let churn_ops = function Exp.Full -> 20_000 | Exp.Quick -> 4_000

(* Floors are small (10 Kbps flows) against 400 Mbps links so the
   topology holds a million reservations; 1 in 64 connections is elastic
   and competes for the leftovers. *)
let capacity = Bandwidth.mbps 400
let qos_inelastic = Qos.single_value 10
let qos_elastic = Qos.make ~b_min:10 ~b_max:50 ~increment:10 ()
let pick_qos rng = if Prng.int rng 64 = 0 then qos_elastic else qos_inelastic

(* Stub membership -> dense per-stub node arrays, for stub-local pairs. *)
let stub_table info =
  let stub_of = info.Transit_stub.stub_of_node in
  let n_stubs = 1 + Array.fold_left max (-1) stub_of in
  let members = Array.make n_stubs [] in
  for v = Array.length stub_of - 1 downto 0 do
    let s = stub_of.(v) in
    if s >= 0 then members.(s) <- v :: members.(s)
  done;
  Array.map Array.of_list members

let stub_pair rng stubs =
  let stub = stubs.(Prng.int rng (Array.length stubs)) in
  let i, j = Prng.sample_distinct_pair rng (Array.length stub) in
  (stub.(i), stub.(j))

type plateau_stats = {
  live_target : int;
  carried : int;
  rejected : int;
  total_reserved : int;
  ops : int;
  churn_rejected : int;
  churn_s : float;
}

let ops_per_sec p = if p.churn_s > 0. then float_of_int p.ops /. p.churn_s else 0.

let us_per_op p =
  if p.ops > 0 then p.churn_s *. 1e6 /. float_of_int p.ops else 0.

let sweep scale =
  Exp.section "Scale: churn throughput vs live DR-connections";
  let rng = Prng.create 7 in
  let info = Transit_stub.generate rng topo_spec in
  let g = info.Transit_stub.graph in
  let stubs = stub_table info in
  Exp.note "transit-stub: %d nodes, %d edges, %d stub domains"
    (Graph.node_count g) (Graph.edge_count g) (Array.length stubs);
  let net = Net_state.create ~capacity g in
  let config = Drcomm.Config.make ~hop_bound:6 ~require_backup:false () in
  let obs = Obs.default () in
  let service = Drcomm.create ~config ~obs net in
  let rejected = ref 0 in
  let load_to target =
    Drcomm.set_auto_redistribute service false;
    let attempts = ref 0 in
    let budget = 3 * target in
    while Drcomm.count service < target && !attempts < budget do
      incr attempts;
      let src, dst = stub_pair rng stubs in
      match
        Drcomm.admit ~want_indirect:false ~want_report:false service ~src ~dst
          ~qos:(pick_qos rng)
      with
      | Drcomm.Admitted _ -> ()
      | Drcomm.Rejected _ -> incr rejected
    done;
    Drcomm.redistribute_pending service;
    Drcomm.set_auto_redistribute service true;
    if Drcomm.count service < target then
      failwith
        (Printf.sprintf "scale: stuck at %d live connections loading to %d"
           (Drcomm.count service) target)
  in
  (* One timed batch of churn events at the current plateau, dispatched
     through the engine (capacity-hinted queue, batch scheduled up
     front).  Alternating admit/terminate holds the population. *)
  let churn ops =
    let engine = Engine.create ~capacity:(ops + 8) ~obs () in
    let churn_rejected = ref 0 in
    for i = 1 to ops do
      ignore
        (Engine.schedule_at engine ~time:(float_of_int i) (fun _ ->
             if i land 1 = 0 then begin
               let n = Drcomm.count service in
               if n > 0 then
                 ignore
                   (Drcomm.terminate ~report:false service
                      (Drcomm.nth_channel service (Prng.int rng n)))
             end
             else
               let src, dst = stub_pair rng stubs in
               match
                 Drcomm.admit ~want_indirect:false ~want_report:false service
                   ~src ~dst ~qos:(pick_qos rng)
               with
               | Drcomm.Admitted _ -> ()
               | Drcomm.Rejected _ -> incr churn_rejected))
    done;
    let t0 = Clock.now () in
    ignore (Engine.run engine);
    (Clock.elapsed_since t0, !churn_rejected)
  in
  (* A few failure/repair cycles (outside the timed window) exercise the
     indexed victim resolution at full population. *)
  let failure_cycle () =
    for _ = 1 to 2 do
      let e = Prng.int rng (Graph.edge_count g) in
      ignore (Drcomm.fail_edge service e);
      Drcomm.repair_edge service e
    done
  in
  let stats =
    List.map
      (fun target ->
        let before = !rejected in
        Obs.span obs "scale.load" (fun () -> load_to target);
        let ops = churn_ops scale in
        let churn_s, churn_rejected =
          Obs.span obs "scale.churn" (fun () -> churn ops)
        in
        Obs.span obs "scale.failures" failure_cycle;
        (* Incremental state vs full recomputation, at every plateau. *)
        Obs.span obs "scale.audit" (fun () -> Drcomm.check_invariants service);
        {
          live_target = target;
          carried = Drcomm.count service;
          rejected = !rejected - before;
          total_reserved = Drcomm.total_reserved service;
          ops;
          churn_rejected;
          churn_s;
        })
      (plateaus scale)
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.live_target;
          string_of_int p.carried;
          string_of_int p.rejected;
          Printf.sprintf "%.0f" (ops_per_sec p);
          Printf.sprintf "%.1f" (us_per_op p);
        ])
      stats
  in
  Exp.table
    ~header:[ "live"; "carried"; "rejected"; "churn ops/s"; "us/op" ]
    ~rows ();
  (* The .dat export must stay byte-identical across runs, so it carries
     no wall-clock columns. *)
  Exp.export_rows "scale"
    ~header:[ "live"; "carried"; "rejected"; "churn_rejected"; "total_reserved_kbps" ]
    ~rows:
      (List.map
         (fun p ->
           [
             string_of_int p.live_target;
             string_of_int p.carried;
             string_of_int p.rejected;
             string_of_int p.churn_rejected;
             string_of_int p.total_reserved;
           ])
         stats);
  Exp.note
    "expected: us/op flat (within ~2x) across the upper plateaus; the first \
     plateau runs cheaper while the heap and link sets are still small.";
  stats

let bench_extra stats =
  [
    ( "plateaus",
      Jsonx.List
        (List.map
           (fun p ->
             Jsonx.Obj
               [
                 ("live", Jsonx.Int p.carried);
                 ("ops", Jsonx.Int p.ops);
                 ("ops_per_sec", Jsonx.Float (ops_per_sec p));
                 ("us_per_op", Jsonx.Float (us_per_op p));
               ])
           stats) );
  ]

let run scale =
  let stats = ref [] in
  Exp.with_manifest ~extra:(fun () -> bench_extra !stats) "scale" scale
    (fun () -> stats := sweep scale)
