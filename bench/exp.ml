(* Shared infrastructure for the paper-reproduction benches. *)

(* Scale of the sweeps: [Full] runs the paper's exact points; [Quick]
   shrinks loads and measurement windows ~4x for smoke runs. *)
type scale = Full | Quick

let scale_of_args args = if List.mem "--quick" args then Quick else Full

let churn = function Full -> 2000 | Quick -> 500
let warmup = function Full -> 400 | Quick -> 100

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf (fmt ^^ "\n")

let hrule widths =
  List.iter (fun w -> Printf.printf "+%s" (String.make (w + 2) '-')) widths;
  Printf.printf "+\n"

let row widths cells =
  List.iter2 (fun w c -> Printf.printf "| %*s " w c) widths cells;
  Printf.printf "|\n"

(* Optional machine-readable export: every table also lands in
   <dir>/<export>.dat as tab-separated values with a '#' header line —
   ready for gnuplot / pandas. *)
let out_dir = ref None

let set_out_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  out_dir := Some dir

let export_rows name ~header ~rows =
  match !out_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".dat") in
    let oc = open_out path in
    Printf.fprintf oc "# %s\n" (String.concat "\t" header);
    List.iter (fun r -> Printf.fprintf oc "%s\n" (String.concat "\t" r)) rows;
    close_out oc;
    Printf.printf "(data written to %s)\n" path

let table ?export ~header ~rows () =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  hrule widths;
  row widths header;
  hrule widths;
  List.iter (row widths) rows;
  hrule widths;
  Option.iter (fun name -> export_rows name ~header ~rows) export

let kbps x = Printf.sprintf "%.0f" x

(* The paper's base configuration (Fig. 2): calibrated 100-node Waxman,
   10 Mbps links, 100-500 Kbps elastic QoS, lambda = mu = 0.001. *)
let paper_config ~scale ~offered ~increment ~seed =
  {
    Scenario.default with
    Scenario.qos = Qos.paper_spec ~increment;
    offered;
    churn_events = churn scale;
    warmup_events = warmup scale;
    seed;
  }

let run_timed cfg =
  let t0 = Unix.gettimeofday () in
  let r = Scenario.run cfg in
  (r, Unix.gettimeofday () -. t0)

(* Every experiment runs under a fresh metrics registry and leaves a
   machine-readable manifest — <name>.metrics.json in the --out directory
   (or the working directory) — recording scale, per-phase timings, and
   event counts.  These files anchor cross-PR performance trajectories:
   later optimisation work diffs them against earlier runs. *)
let with_manifest name scale f =
  let obs = Obs.create ~metrics:(Metrics.create ()) () in
  Obs.set_default obs;
  let t0 = Unix.gettimeofday () in
  let result = Fun.protect ~finally:(fun () -> Obs.set_default Obs.null) f in
  let wall_s = Unix.gettimeofday () -. t0 in
  let path =
    let file = name ^ ".metrics.json" in
    match !out_dir with Some dir -> Filename.concat dir file | None -> file
  in
  let doc =
    Jsonx.Obj
      [
        ("experiment", Jsonx.String name);
        ("scale", Jsonx.String (match scale with Full -> "full" | Quick -> "quick"));
        ("churn_events", Jsonx.Int (churn scale));
        ("warmup_events", Jsonx.Int (warmup scale));
        ("wall_s", Jsonx.Float wall_s);
        ("metrics", Obs.metrics_json obs);
      ]
  in
  let oc = open_out path in
  Jsonx.output oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "(metrics manifest written to %s)\n" path;
  result
