(* Shared infrastructure for the paper-reproduction benches: the
   declarative experiment API, its parallel driver, table rendering, and
   the common command-line options. *)

(* Scale of the sweeps: [Full] runs the paper's exact points; [Quick]
   shrinks loads and measurement windows ~4x for smoke runs. *)
type scale = Full | Quick

let churn = function Full -> 2000 | Quick -> 500
let warmup = function Full -> 400 | Quick -> 100

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf (fmt ^^ "\n")

let hrule widths =
  List.iter (fun w -> Printf.printf "+%s" (String.make (w + 2) '-')) widths;
  Printf.printf "+\n"

let row widths cells =
  List.iter2 (fun w c -> Printf.printf "| %*s " w c) widths cells;
  Printf.printf "|\n"

(* Optional machine-readable export: every table also lands in
   <dir>/<export>.dat as tab-separated values with a '#' header line —
   ready for gnuplot / pandas.  Exported rows carry no wall-clock
   columns, so a .dat file is byte-identical across runs and across
   --jobs settings (the determinism gate in scripts/verify.sh diffs
   them). *)
let out_dir = ref None

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "%s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* A concurrent creator is fine; anything else is not. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let set_out_dir dir =
  match mkdir_p dir with
  | () ->
    out_dir := Some dir;
    Ok ()
  | exception (Failure msg | Sys_error msg) -> Error msg

let in_out_dir file =
  match !out_dir with Some dir -> Filename.concat dir file | None -> file

let export_rows name ~header ~rows =
  match !out_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".dat") in
    let oc = open_out path in
    Printf.fprintf oc "# %s\n" (String.concat "\t" header);
    List.iter (fun r -> Printf.fprintf oc "%s\n" (String.concat "\t" r)) rows;
    close_out oc;
    Printf.printf "(data written to %s)\n" path

let table ?export ~header ~rows () =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  hrule widths;
  row widths header;
  hrule widths;
  List.iter (row widths) rows;
  hrule widths;
  Option.iter (fun name -> export_rows name ~header ~rows) export

let kbps x = Printf.sprintf "%.0f" x

(* ------------------------------------------------------------------ *)
(* Common command-line options                                         *)

(* Worker-pool width for every sweep; set once by [parse_args]. *)
let jobs = ref (Sweep.recommended_jobs ())

let parse_jobs v =
  match int_of_string_opt v with
  | Some j when j >= 1 ->
    jobs := j;
    Ok ()
  | Some _ | None ->
    Error (Printf.sprintf "--jobs expects a count >= 1, got %S" v)

(* Live telemetry: --heartbeat attaches a snapshot emitter (one tick
   every [hb_sim_every] simulation time units) to every sweep point and
   concatenates the streams in point order into <name>.heartbeat.jsonl,
   then replays the file into an ops/sim-time series (<name>.hb.dat).
   Snapshot contents are purely sim-derived, so like the .dat exports
   the stream is byte-identical across --jobs (verify.sh diffs it). *)
let heartbeat = ref false
let hb_sim_every = 5000.

(* The flag table every bench driver shares, as a {!Cliopt} spec —
   unknown arguments pass through to the caller (sub-command
   selection). *)
let common_flags scale =
  [
    ("--quick", Cliopt.Unit (fun () -> scale := Quick));
    ("--heartbeat", Cliopt.Unit (fun () -> heartbeat := true));
    ("--out", Cliopt.Value set_out_dir);
    ("--jobs", Cliopt.Value parse_jobs);
  ]

let parse_args args =
  let scale = ref Full in
  match Cliopt.parse ~specs:(common_flags scale) args with
  | Ok rest -> Ok (!scale, rest)
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* The experiment API                                                  *)

(* An experiment declares its scenario points and how to render the
   results; the shared driver below owns execution — it fans the points
   out over the worker pool, times them, and (via [run_experiment])
   writes the metrics manifest.  [render] receives one (result, seconds)
   pair per point, in point order. *)
type experiment = {
  name : string;
  points : Scenario.config list;
  render : (Scenario.result * float) list -> unit;
}

let run_points ~name points =
  let obs = Obs.default () in
  (* One buffer per point: each index is written by exactly one worker,
     so the buffers need no locking, and concatenating them in index
     order reproduces the sequential stream whatever --jobs is. *)
  let bufs =
    if !heartbeat then
      Some (Array.init (List.length points) (fun _ -> Buffer.create 256))
    else None
  in
  let results =
    Sweep.map ~jobs:!jobs ~obs
      (fun obs (i, cfg) ->
        let snapshot =
          Option.map
            (fun bufs ->
              let buf = bufs.(i) in
              Snapshot.create ~sim_every:hb_sim_every
                ~sink:(fun line ->
                  Buffer.add_string buf line;
                  Buffer.add_char buf '\n')
                ())
            bufs
        in
        let t0 = Clock.now () in
        let r = Scenario.run ~obs ?snapshot cfg in
        (r, Clock.elapsed_since t0))
      (List.mapi (fun i cfg -> (i, cfg)) points)
  in
  Option.iter
    (fun bufs ->
      let path = in_out_dir (name ^ ".heartbeat.jsonl") in
      let oc = open_out path in
      Array.iter (Buffer.output_buffer oc) bufs;
      close_out oc;
      let a = Analysis.of_file path in
      let series = Analysis.ops_series a in
      let dat = in_out_dir (name ^ ".hb.dat") in
      let oc = open_out dat in
      Printf.fprintf oc "# t\tevents_per_simt\n";
      List.iter (fun (t, r) -> Printf.fprintf oc "%g\t%g\n" t r) series;
      close_out oc;
      note "(%d telemetry snapshots written to %s; ops series to %s)"
        (List.length (Analysis.snapshots a))
        path dat)
    bufs;
  results

(* Run one experiment's sweep and render it (no manifest — used for
   sub-experiments sharing a manifest, e.g. the ablations). *)
let run_sweep e =
  let t0 = Clock.now () in
  let results = run_points ~name:e.name e.points in
  let wall = Clock.elapsed_since t0 in
  e.render results;
  note "(%d points in %.1fs, %d jobs)" (List.length e.points) wall !jobs

(* The paper's base configuration (Fig. 2): calibrated 100-node Waxman,
   10 Mbps links, 100-500 Kbps elastic QoS, lambda = mu = 0.001. *)
let paper_config ~scale ~offered ~increment ~seed =
  {
    Scenario.default with
    Scenario.qos = Qos.paper_spec ~increment;
    offered;
    churn_events = churn scale;
    warmup_events = warmup scale;
    seed;
  }

(* Every experiment runs under a fresh metrics registry and span
   profiler and leaves two machine-readable files in the --out directory
   (or the working directory):

   - <name>.metrics.json — scale, jobs, per-phase timings (with
     p50/p95/p99), event counts, and span aggregates;
   - BENCH_<name>.json — the compact perf record `perfdiff` compares:
     wall time, main-domain GC deltas, and the span aggregates.

   These files anchor cross-PR performance trajectories: later
   optimisation work diffs them against earlier runs
   (scripts/perf_diff.sh).  Worker-domain spans reach the profiler
   through Sweep's fork/absorb; the GC deltas are main-domain only
   (Gc.quick_stat is per-domain), so allocation inside workers shows up
   in the span aggregates, not under "gc". *)
let write_json path doc =
  let oc = open_out path in
  Jsonx.output oc doc;
  output_char oc '\n';
  close_out oc

(* [extra] (evaluated after [f]) appends experiment-specific fields to
   the BENCH_<name>.json record — e.g. the scale bench's ops/sec-vs-live
   curve.  `perfdiff` ignores fields it does not know. *)
let with_manifest ?(extra = fun () -> []) name scale f =
  let obs =
    Obs.create ~metrics:(Metrics.create ()) ~spans:(Span.create ())
      ~heavy:(Heavy.create ()) ()
  in
  Obs.set_default obs;
  let g0 = Gc.quick_stat () in
  let t0 = Clock.now () in
  let result = Fun.protect ~finally:(fun () -> Obs.set_default Obs.null) f in
  let wall_s = Clock.elapsed_since t0 in
  let g1 = Gc.quick_stat () in
  let scale_str = match scale with Full -> "full" | Quick -> "quick" in
  let spans_json = Span.to_json (Obs.spans obs) in
  let path = in_out_dir (name ^ ".metrics.json") in
  write_json path
    (Jsonx.Obj
       [
         ("experiment", Jsonx.String name);
         ("scale", Jsonx.String scale_str);
         ("churn_events", Jsonx.Int (churn scale));
         ("warmup_events", Jsonx.Int (warmup scale));
         ("jobs", Jsonx.Int !jobs);
         ("wall_s", Jsonx.Float wall_s);
         ("metrics", Obs.metrics_json obs);
         ("spans", spans_json);
       ]);
  Printf.printf "(metrics manifest written to %s)\n" path;
  let bench_path = in_out_dir ("BENCH_" ^ name ^ ".json") in
  write_json bench_path
    (Jsonx.Obj
       ([
          ("experiment", Jsonx.String name);
          ("scale", Jsonx.String scale_str);
          ("jobs", Jsonx.Int !jobs);
          ("wall_s", Jsonx.Float wall_s);
          ( "gc",
            Jsonx.Obj
              [
                ( "minor_words",
                  Jsonx.Float (g1.Gc.minor_words -. g0.Gc.minor_words) );
                ( "promoted_words",
                  Jsonx.Float (g1.Gc.promoted_words -. g0.Gc.promoted_words) );
                ( "major_words",
                  Jsonx.Float (g1.Gc.major_words -. g0.Gc.major_words) );
                ( "minor_collections",
                  Jsonx.Int (g1.Gc.minor_collections - g0.Gc.minor_collections) );
                ( "major_collections",
                  Jsonx.Int (g1.Gc.major_collections - g0.Gc.major_collections) );
              ] );
          ("spans", spans_json);
        ]
       @ extra ()));
  Printf.printf "(perf record written to %s)\n" bench_path;
  result

let run_experiment scale e = with_manifest e.name scale (fun () -> run_sweep e)
