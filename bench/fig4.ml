(* Figure 4: effect of the link failure rate on average bandwidth, for
   2000 and 3000 DR-connections on the Fig. 2 network; failure rate swept
   1e-7 .. 1e-2 against lambda = mu = 1e-3.

   Expected shape: a flat line — failures are too rare relative to
   arrivals/terminations to move the average — with a visible dip only
   once gamma reaches the same order as lambda (the right edge). *)

let gammas = function
  | Exp.Full -> [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2 ]
  | Exp.Quick -> [ 1e-6; 1e-3 ]

let loads = function Exp.Full -> [ 2000; 3000 ] | Exp.Quick -> [ 600 ]

let experiment scale =
  let grid =
    List.concat_map
      (fun gamma -> List.map (fun offered -> (gamma, offered)) (loads scale))
      (gammas scale)
  in
  {
    Exp.name = "fig4";
    points =
      List.map
        (fun (gamma, offered) ->
          { (Exp.paper_config ~scale ~offered ~increment:50 ~seed:1) with
            Scenario.gamma })
        grid;
    render =
      (fun results ->
        Exp.section "Figure 4: average bandwidth vs link failure rate";
        Exp.note "lambda = mu = 0.001; repairs at rate 0.01 per failed edge";
        let rows =
          List.map2
            (fun (gamma, offered) (r, _) ->
              [
                Printf.sprintf "%.0e" gamma;
                string_of_int offered;
                Exp.kbps r.Scenario.sim_avg_bandwidth;
                Exp.kbps r.Scenario.model_avg_bandwidth;
                string_of_int r.Scenario.failures_injected;
                string_of_int r.Scenario.dropped;
              ])
            grid results
        in
        Exp.table ~export:"fig4"
          ~header:[ "gamma"; "channels"; "sim Kbps"; "markov Kbps"; "failures"; "dropped" ]
          ~rows ();
        Exp.note
          "paper shape: flat across gamma << lambda; the backup scheme absorbs the";
        Exp.note "rare failures (dropped stays near zero until gamma approaches lambda).");
  }

let run scale = Exp.run_experiment scale (experiment scale)
