(* Tests for the DR-connection service: admission, retreat, elastic
   redistribution, backup management, failure recovery. *)

(* Ring 0-1-2-3-0: every pair of nodes has exactly two link-disjoint
   routes, so backups always exist while the ring is intact. *)
let ring ?(capacity = 1000) ?config () =
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  let e23 = Graph.add_edge g 2 3 in
  let e30 = Graph.add_edge g 3 0 in
  let net = Net_state.create ~capacity g in
  (Drcomm.create ?config net, g, (e01, e12, e23, e30))

(* Line 0-1-2-3: no cycles, so no link-disjoint backups exist. *)
let line ?(capacity = 600) ?config () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 3);
  let net = Net_state.create ~capacity g in
  (Drcomm.create ?config net, g)

let qos5 = Qos.paper_spec ~increment:100 (* 100..500, 5 levels *)
let channel_id = Alcotest.testable Drcomm.Channel_id.pp Drcomm.Channel_id.equal
let no_backups = Drcomm.Config.make ~with_backups:false ~require_backup:false ()

let admit_ok t ~src ~dst ~qos =
  match Drcomm.admit t ~src ~dst ~qos with
  | Drcomm.Admitted (id, report) -> (id, report)
  | Drcomm.Rejected _ -> Alcotest.fail "expected admission"

let test_single_connection_maxes_out () =
  let t, _, _ = ring () in
  let id, report = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  Alcotest.(check int) "no one existed" 0 report.Drcomm.existing;
  Alcotest.(check int) "one channel" 1 (Drcomm.count t);
  (* Alone in the network, the channel is water-filled to its ceiling. *)
  Alcotest.(check int) "level 4" 4 (Drcomm.level t id);
  Alcotest.(check int) "500 Kbps" 500 (Drcomm.reserved_bandwidth t id);
  Alcotest.(check int) "1-hop primary" 1 (List.length (Drcomm.primary_links t id));
  (match Drcomm.backup_links t id with
  | Some blinks -> Alcotest.(check int) "3-hop backup" 3 (List.length blinks)
  | None -> Alcotest.fail "expected backup");
  Drcomm.check_invariants t

let test_no_backup_in_tree_rejected () =
  let t, _ = line () in
  (match Drcomm.admit t ~src:0 ~dst:3 ~qos:qos5 with
  | Drcomm.Rejected Drcomm.No_backup_route -> ()
  | _ -> Alcotest.fail "expected No_backup_route");
  Alcotest.(check int) "nothing admitted" 0 (Drcomm.count t);
  Drcomm.check_invariants t

let test_no_backup_accepted_when_optional () =
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t, _ = line ~config:cfg () in
  let id, _ = admit_ok t ~src:0 ~dst:3 ~qos:qos5 in
  Alcotest.(check bool) "no backup" false (Drcomm.has_backup t id);
  Alcotest.(check int) "admitted" 1 (Drcomm.count t)

let test_floor_exhaustion_rejects () =
  let t, _ = line ~capacity:250 ~config:no_backups () in
  (* Floors of 100: two fit beside each other on a 250 link, a third
     cannot. *)
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  (match Drcomm.admit t ~src:0 ~dst:1 ~qos:qos5 with
  | Drcomm.Rejected Drcomm.No_primary_route -> ()
  | _ -> Alcotest.fail "expected No_primary_route");
  Drcomm.check_invariants t

let test_arrival_retreats_sharing_channel () =
  let t, _, _ = ring ~capacity:600 () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  Alcotest.(check int) "alone at ceiling" 4 (Drcomm.level t id1);
  let id2, report = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  (* id1 shares the direct 0->1 link: it retreated, then both were
     water-filled evenly: 600 biased by... floors 200, spare 400 split
     two ways -> 300/300, i.e. level 2 each. *)
  Alcotest.(check int) "direct count" 1 report.Drcomm.direct_count;
  (match report.Drcomm.transitions with
  | [ tr ] ->
    Alcotest.check channel_id "channel" id1 tr.Drcomm.channel;
    Alcotest.(check int) "before" 4 tr.Drcomm.before;
    Alcotest.(check int) "after" 2 tr.Drcomm.after;
    Alcotest.(check bool) "direct" true (tr.Drcomm.chained = `Direct)
  | _ -> Alcotest.fail "expected exactly one transition");
  Alcotest.(check int) "id1 at 300" 300 (Drcomm.reserved_bandwidth t id1);
  Alcotest.(check int) "id2 at 300" 300 (Drcomm.reserved_bandwidth t id2);
  Drcomm.check_invariants t

let test_termination_releases_and_upgrades () =
  let t, _, _ = ring ~capacity:600 () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let id2, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let report = Drcomm.terminate t id2 in
  Alcotest.(check int) "one left" 1 (Drcomm.count t);
  Alcotest.(check int) "sharing seen" 1 report.Drcomm.direct_count;
  (match report.Drcomm.transitions with
  | [ tr ] ->
    Alcotest.(check int) "upgraded from 2" 2 tr.Drcomm.before;
    Alcotest.(check int) "back to ceiling" 4 tr.Drcomm.after
  | _ -> Alcotest.fail "expected one transition");
  Alcotest.(check int) "id1 regained 500" 500 (Drcomm.reserved_bandwidth t id1);
  Drcomm.check_invariants t

let test_terminate_dead_handle_raises () =
  let t, _, _ = ring () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  ignore (Drcomm.terminate t id);
  Alcotest.(check bool) "handle outlives the channel" false (Drcomm.mem t id);
  Alcotest.check_raises "dead handle" Not_found (fun () ->
      ignore (Drcomm.terminate t id))

let test_admit_validation () =
  let t, _, _ = ring () in
  Alcotest.check_raises "src = dst" (Invalid_argument "Drcomm.admit: src = dst")
    (fun () -> ignore (Drcomm.admit t ~src:1 ~dst:1 ~qos:qos5));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Drcomm.admit: endpoint out of range") (fun () ->
      ignore (Drcomm.admit t ~src:0 ~dst:7 ~qos:qos5))

let test_indirect_chaining_classified () =
  (* Line 0-1-2-3, no backups.  ch_a: 0->2, ch_b: 1->3 (they share link
     1->2).  A new channel 0->1 is directly chained to ch_a only; ch_b is
     indirectly chained via ch_a. *)
  let t, _ = line ~capacity:600 ~config:no_backups () in
  let ch_a, _ = admit_ok t ~src:0 ~dst:2 ~qos:qos5 in
  let ch_b, _ = admit_ok t ~src:1 ~dst:3 ~qos:qos5 in
  let _, report = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  Alcotest.(check int) "one direct" 1 report.Drcomm.direct_count;
  Alcotest.(check int) "one indirect" 1 report.Drcomm.indirect_count;
  let direct_tr =
    List.find (fun tr -> tr.Drcomm.chained = `Direct) report.Drcomm.transitions
  in
  let indirect_tr =
    List.find (fun tr -> tr.Drcomm.chained = `Indirect) report.Drcomm.transitions
  in
  Alcotest.check channel_id "direct is ch_a" ch_a direct_tr.Drcomm.channel;
  Alcotest.check channel_id "indirect is ch_b" ch_b indirect_tr.Drcomm.channel;
  Drcomm.check_invariants t

let test_indirect_channel_gains () =
  (* Same layout; verify ch_b actually benefits from ch_a's retreat. *)
  let t, _ = line ~capacity:600 ~config:no_backups () in
  let _ = admit_ok t ~src:0 ~dst:2 ~qos:qos5 in
  let ch_b, _ = admit_ok t ~src:1 ~dst:3 ~qos:qos5 in
  let before = Drcomm.reserved_bandwidth t ch_b in
  let _, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let after = Drcomm.reserved_bandwidth t ch_b in
  Alcotest.(check bool)
    (Printf.sprintf "ch_b %d -> %d must not lose" before after)
    true (after >= before);
  Drcomm.check_invariants t

let test_equal_share_fairness () =
  let t, _ = line ~capacity:1000 ~config:no_backups () in
  (* Four identical channels on one link: 1000/4 = 250 each is off-grid;
     equal share gives levels within one increment of each other. *)
  let ids = List.init 4 (fun _ -> fst (admit_ok t ~src:0 ~dst:1 ~qos:qos5)) in
  let levels = List.map (Drcomm.level t) ids in
  let lo = List.fold_left min 9 levels and hi = List.fold_left max 0 levels in
  Alcotest.(check bool) "within one increment" true (hi - lo <= 1);
  Alcotest.(check int) "all bandwidth used up to grid" 1000
    (Drcomm.total_reserved t + (1000 - Drcomm.total_reserved t));
  Alcotest.(check bool) "no spare left for another increment" true
    (1000 - Drcomm.total_reserved t < 100);
  Drcomm.check_invariants t

let test_max_utility_monopolises () =
  let cfg =
    Drcomm.Config.make ~with_backups:false ~require_backup:false
      ~policy:Policy.max_utility ()
  in
  let t, _ = line ~capacity:700 ~config:cfg () in
  let cheap = Qos.make ~b_min:100 ~b_max:500 ~increment:100 ~utility:1. () in
  let dear = Qos.make ~b_min:100 ~b_max:500 ~increment:100 ~utility:5. () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:cheap in
  let id2, _ = admit_ok t ~src:0 ~dst:1 ~qos:dear in
  (* 700 capacity, floors 200: the high-utility channel takes all 400
     extra it can (to 500), the other gets the rest (100 -> 200). *)
  Alcotest.(check int) "dear at ceiling" 500 (Drcomm.reserved_bandwidth t id2);
  Alcotest.(check int) "cheap gets leftovers" 200 (Drcomm.reserved_bandwidth t id1)

let test_proportional_split () =
  let cfg =
    Drcomm.Config.make ~with_backups:false ~require_backup:false
      ~policy:Policy.proportional ()
  in
  let t, _ = line ~capacity:600 ~config:cfg () in
  let cheap = Qos.make ~b_min:100 ~b_max:500 ~increment:100 ~utility:1. () in
  let dear = Qos.make ~b_min:100 ~b_max:500 ~increment:100 ~utility:3. () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:cheap in
  let id2, _ = admit_ok t ~src:0 ~dst:1 ~qos:dear in
  (* 400 extra split 1:3 -> +100 / +300. *)
  Alcotest.(check int) "cheap" 200 (Drcomm.reserved_bandwidth t id1);
  Alcotest.(check int) "dear" 400 (Drcomm.reserved_bandwidth t id2)

let test_single_value_qos_never_upgrades () =
  let t, _ = line ~capacity:1000 ~config:no_backups () in
  let sv = Qos.single_value 100 in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:sv in
  Alcotest.(check int) "stays at floor" 100 (Drcomm.reserved_bandwidth t id);
  Alcotest.(check int) "level 0" 0 (Drcomm.level t id)

let test_elastic_beats_single_value_admission () =
  (* The paper's motivation: inelastic high-QoS requests block the
     network early; elastic requests are all admitted at their floor. *)
  let t_sv, _ = line ~capacity:1000 ~config:no_backups () in
  let t_el, _ = line ~capacity:1000 ~config:no_backups () in
  let admitted service qos =
    let ok = ref 0 in
    for _ = 1 to 10 do
      match Drcomm.admit service ~src:0 ~dst:1 ~qos with
      | Drcomm.Admitted _ -> incr ok
      | Drcomm.Rejected _ -> ()
    done;
    !ok
  in
  let sv_count = admitted t_sv (Qos.single_value 500) in
  let el_count = admitted t_el qos5 in
  Alcotest.(check int) "single-value fits 2" 2 sv_count;
  Alcotest.(check int) "elastic fits 10" 10 el_count

let test_backup_multiplexing_saves_capacity () =
  (* Two connections with edge-disjoint primaries route their backups over
     shared links; the pool must stay at one floor, not two. *)
  let t, g, (_, _, _, _) = ring ~capacity:1000 () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let id2, _ = admit_ok t ~src:2 ~dst:3 ~qos:qos5 in
  let b1 = Option.get (Drcomm.backup_links t id1) in
  let b2 = Option.get (Drcomm.backup_links t id2) in
  (* On the ring the two backups traverse overlapping links. *)
  Alcotest.(check bool) "backups overlap" true (Dirlink.shares_edge b1 b2);
  let total_pool = ref 0 in
  Net_state.iter_links (fun _ l -> total_pool := !total_pool + Link_state.backup_pool l)
    (Drcomm.net t);
  (* Without multiplexing the overlapping links would hold 200 each; with
     it every link pools at most 100 (primaries are edge-disjoint). *)
  Net_state.iter_links
    (fun _ l ->
      Alcotest.(check bool) "per-link pool <= 100" true (Link_state.backup_pool l <= 100))
    (Drcomm.net t);
  ignore g;
  Drcomm.check_invariants t

let test_failure_activates_backup () =
  let t, _, (e01, _, _, _) = ring ~capacity:1000 () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let primary_before = Drcomm.primary_links t id in
  let backup_before = Option.get (Drcomm.backup_links t id) in
  let freport = Drcomm.fail_edge t e01 in
  (match freport.Drcomm.recoveries with
  | [ { Drcomm.victim; outcome = `Switched_to_backup fresh } ] ->
    Alcotest.check channel_id "victim" id victim;
    (* The ring minus one edge is a tree: no new backup possible. *)
    Alcotest.(check bool) "no fresh backup" false fresh
  | _ -> Alcotest.fail "expected a switch");
  Alcotest.(check int) "still alive" 1 (Drcomm.count t);
  Alcotest.(check int) "no drops" 0 (Drcomm.dropped_connections t);
  Alcotest.(check (list int)) "primary is the old backup" backup_before
    (Drcomm.primary_links t id);
  Alcotest.(check bool) "backup gone" false (Drcomm.has_backup t id);
  Alcotest.(check bool) "old primary released" true
    (primary_before <> Drcomm.primary_links t id);
  (* Redistribution after activation climbs the survivor back up. *)
  Alcotest.(check int) "water-filled" 500 (Drcomm.reserved_bandwidth t id);
  Drcomm.check_invariants t

let test_failure_drops_when_backup_also_hit () =
  let t, _, (e01, e12, _, _) = ring ~capacity:1000 () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  (* First failure takes the backup path's middle edge. *)
  let r1 = Drcomm.fail_edge t e12 in
  (match r1.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Backup_lost false; victim } ] ->
    Alcotest.check channel_id "victim" id victim
  | _ -> Alcotest.fail "expected backup loss without replacement");
  Alcotest.(check bool) "runs unprotected" false (Drcomm.has_backup t id);
  (* Second failure kills the primary: nothing to switch to. *)
  let r2 = Drcomm.fail_edge t e01 in
  (match r2.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Dropped; _ } ] -> ()
  | _ -> Alcotest.fail "expected drop");
  Alcotest.(check int) "gone" 0 (Drcomm.count t);
  Alcotest.(check int) "counted" 1 (Drcomm.dropped_connections t);
  Drcomm.check_invariants t

let test_failure_retreats_channels_on_backup_links () =
  (* A bystander using the backup path's links must release its extras
     when the backup activates (§3.1). *)
  let t, _, (e01, _, _, _) = ring ~capacity:600 () in
  let victim, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let bystander, _ = admit_ok t ~src:1 ~dst:2 ~qos:qos5 in
  (* bystander's primary 1->2 lies on victim's backup route 0-3-2-1
     reversed?  The backup of 0->1 is 0-3-2-1, using directed links
     0->3, 3->2, 2->1 — the bystander uses 1->2, the reverse direction,
     so to make it share we route it 2->1 instead. *)
  Drcomm.(ignore (terminate t bystander));
  let bystander, _ = admit_ok t ~src:2 ~dst:1 ~qos:qos5 in
  let level_before = Drcomm.level t bystander in
  let freport = Drcomm.fail_edge t e01 in
  Alcotest.(check bool) "victim switched" true
    (List.exists
       (fun r ->
         Drcomm.Channel_id.equal r.Drcomm.victim victim
         && r.Drcomm.outcome = `Switched_to_backup false)
       freport.Drcomm.recoveries);
  (* The bystander appears in the event transitions (it held extras on an
     activated link). *)
  Alcotest.(check bool) "bystander retreated and refilled" true
    (List.exists
       (fun tr ->
         Drcomm.Channel_id.equal tr.Drcomm.channel bystander
         && tr.Drcomm.before = level_before)
       freport.Drcomm.event.Drcomm.transitions);
  Drcomm.check_invariants t

let test_restoration_baseline () =
  (* Reactive restoration without backups (the scheme the paper's
     backup-channel approach is designed to beat): on a ring, a failed
     primary is re-established over the surviving arc. *)
  let cfg =
    Drcomm.Config.make ~with_backups:false ~require_backup:false
      ~restore_on_failure:true ()
  in
  let t, _, (e01, _, _, _) = ring ~config:cfg () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  Alcotest.(check int) "direct route" 1 (List.length (Drcomm.primary_links t id));
  let r = Drcomm.fail_edge t e01 in
  (match r.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Restored false; _ } ] -> ()
  | _ -> Alcotest.fail "expected restoration without backup");
  Alcotest.(check int) "alive" 1 (Drcomm.count t);
  Alcotest.(check int) "no drops" 0 (Drcomm.dropped_connections t);
  (* The restored connection lives under a fresh id on the long arc. *)
  (match Drcomm.active_channels t with
  | [ nid ] ->
    Alcotest.(check int) "detour route" 3 (List.length (Drcomm.primary_links t nid))
  | _ -> Alcotest.fail "expected one channel");
  Drcomm.check_invariants t

let test_restoration_fails_under_partition () =
  (* When the failure disconnects the pair, restoration cannot help and
     the connection drops. *)
  let cfg =
    Drcomm.Config.make ~with_backups:false ~require_backup:false
      ~restore_on_failure:true ()
  in
  let t, _ = line ~config:cfg () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  ignore id;
  let r = Drcomm.fail_edge t 0 in
  (match r.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Dropped; _ } ] -> ()
  | _ -> Alcotest.fail "expected drop");
  Alcotest.(check int) "dropped" 1 (Drcomm.dropped_connections t)

let test_fail_edge_idempotent () =
  let t, _, (e01, _, _, _) = ring () in
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  ignore (Drcomm.fail_edge t e01);
  let again = Drcomm.fail_edge t e01 in
  Alcotest.(check int) "no recoveries" 0 (List.length again.Drcomm.recoveries)

let test_repair_restores_routability () =
  (* Backups optional here: the ring minus a failed edge is a tree, where
     the detour admission would otherwise be vetoed for lack of backup. *)
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t, _, (e01, _, _, _) = ring ~config:cfg () in
  ignore (Drcomm.fail_edge t e01);
  (match Drcomm.admit t ~src:0 ~dst:1 ~qos:qos5 with
  | Drcomm.Admitted (id, _) ->
    (* Route must avoid the failed edge: 3 hops. *)
    Alcotest.(check int) "detour" 3 (List.length (Drcomm.primary_links t id));
    ignore (Drcomm.terminate t id)
  | Drcomm.Rejected _ -> Alcotest.fail "detour should admit");
  Drcomm.repair_edge t e01;
  match Drcomm.admit t ~src:0 ~dst:1 ~qos:qos5 with
  | Drcomm.Admitted (id, _) ->
    Alcotest.(check int) "direct again" 1 (List.length (Drcomm.primary_links t id))
  | Drcomm.Rejected _ -> Alcotest.fail "repaired edge should admit"

let test_level_histogram () =
  let t, _ = line ~capacity:1000 ~config:no_backups () in
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  ignore (admit_ok t ~src:2 ~dst:3 ~qos:qos5);
  let h = Drcomm.level_histogram t ~max_levels:5 in
  Alcotest.(check int) "both at ceiling" 2 h.(4);
  Alcotest.(check int) "total" 2 (Array.fold_left ( + ) 0 h)

let test_average_bandwidth () =
  let t, _ = line ~capacity:1000 ~config:no_backups () in
  Alcotest.check (Alcotest.float 1e-9) "empty" 0. (Drcomm.average_bandwidth t);
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  ignore (admit_ok t ~src:2 ~dst:3 ~qos:qos5);
  Alcotest.check (Alcotest.float 1e-9) "both 500" 500. (Drcomm.average_bandwidth t);
  Alcotest.(check int) "total" 1000 (Drcomm.total_reserved t)

let test_bulk_redistribution_equivalent () =
  (* Loading with deferred redistribution then one global pass must give
     every channel a valid level and leave invariants intact. *)
  let t, _ = line ~capacity:1000 ~config:no_backups () in
  Drcomm.set_auto_redistribute t false;
  let ids = List.init 3 (fun _ -> fst (admit_ok t ~src:0 ~dst:3 ~qos:qos5)) in
  List.iter
    (fun id -> Alcotest.(check int) "still at floor" 0 (Drcomm.level t id))
    ids;
  Drcomm.redistribute_all t;
  Drcomm.set_auto_redistribute t true;
  (* 1000 capacity/link, 3 channels: 300/300/400 or similar — all at least
     level 2, sum within one increment of capacity. *)
  List.iter
    (fun id -> Alcotest.(check bool) "filled" true (Drcomm.level t id >= 2))
    ids;
  Alcotest.(check bool) "nearly full" true (1000 - Drcomm.total_reserved t < 100);
  Drcomm.check_invariants t

(* --- QoS renegotiation --- *)

let test_change_qos_upgrade_range () =
  (* Lift the ceiling of a live connection: same routes, wider range,
     immediately re-water-filled. *)
  let t, _, _ = ring ~capacity:1000 () in
  let small = Qos.make ~b_min:100 ~b_max:200 ~increment:100 () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:small in
  Alcotest.(check int) "capped at 200" 200 (Drcomm.reserved_bandwidth t id);
  let primary_before = Drcomm.primary_links t id in
  Alcotest.(check bool) "accepted" true (Drcomm.change_qos t id qos5 = `Changed);
  Alcotest.(check int) "now reaches 500" 500 (Drcomm.reserved_bandwidth t id);
  Alcotest.(check (list int)) "same route" primary_before (Drcomm.primary_links t id);
  Alcotest.(check bool) "backup kept" true (Drcomm.has_backup t id);
  Drcomm.check_invariants t

let test_change_qos_floor_increase_checked () =
  (* On a full link the floor cannot grow. *)
  let t, _ = line ~capacity:300 ~config:no_backups () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  ignore (admit_ok t ~src:0 ~dst:1 ~qos:qos5);
  (* Floors 100 + 100 on a 300 link: raising one floor to 300 needs 400. *)
  let fat = Qos.make ~b_min:300 ~b_max:500 ~increment:100 () in
  Alcotest.(check bool) "rejected" true (Drcomm.change_qos t id fat = `Rejected);
  (* Old contract intact. *)
  Alcotest.(check int) "old floor back" 100 (Qos.(
    (Drcomm.qos_of t id).b_min));
  Drcomm.check_invariants t;
  (* A floor that fits is accepted and updates the backup pool too. *)
  let t2, _, _ = ring ~capacity:1000 () in
  let id2, _ = admit_ok t2 ~src:0 ~dst:1 ~qos:qos5 in
  let fat2 = Qos.make ~b_min:300 ~b_max:500 ~increment:100 () in
  Alcotest.(check bool) "accepted" true (Drcomm.change_qos t2 id2 fat2 = `Changed);
  let backup = Option.get (Drcomm.backup_links t2 id2) in
  List.iter
    (fun dl ->
      Alcotest.(check int) "pool tracks new floor" 300
        (Link_state.backup_pool (Net_state.link (Drcomm.net t2) dl)))
    backup;
  Drcomm.check_invariants t2

let test_change_qos_retreats_neighbours () =
  (* Raising a floor reclaims neighbours' extras, like an arrival. *)
  let t, _ = line ~capacity:600 ~config:no_backups () in
  let id1, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let id2, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  Alcotest.(check int) "balanced" 300 (Drcomm.reserved_bandwidth t id1);
  let fat = Qos.make ~b_min:400 ~b_max:500 ~increment:100 () in
  Alcotest.(check bool) "accepted" true (Drcomm.change_qos t id1 fat = `Changed);
  Alcotest.(check bool) "id1 at >= 400" true (Drcomm.reserved_bandwidth t id1 >= 400);
  Alcotest.(check bool) "id2 squeezed but >= floor" true
    (Drcomm.reserved_bandwidth t id2 >= 100);
  Drcomm.check_invariants t

let test_change_qos_dead_handle () =
  let t, _, _ = ring () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  ignore (Drcomm.terminate t id);
  Alcotest.check_raises "dead handle" Not_found (fun () ->
      ignore (Drcomm.change_qos t id qos5))

(* --- multiple backups per connection --- *)

(* Diamond with three disjoint 0->3 routes. *)
let diamond6 ?(capacity = 1000) ?config () =
  let g = Graph.create 6 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 0 4);
  ignore (Graph.add_edge g 4 5);
  ignore (Graph.add_edge g 5 3);
  (Drcomm.create ?config (Net_state.create ~capacity g), g)

let test_two_backups_established () =
  let cfg = Drcomm.Config.make ~backups_per_connection:2 () in
  let t, _ = diamond6 ~config:cfg () in
  let id, _ = admit_ok t ~src:0 ~dst:3 ~qos:qos5 in
  let backups = Drcomm.all_backup_links t id in
  Alcotest.(check int) "two backups" 2 (List.length backups);
  (* Mutually disjoint and disjoint from the primary. *)
  let edges_of links = List.map Dirlink.edge links in
  let primary = edges_of (Drcomm.primary_links t id) in
  let all = List.concat_map edges_of backups in
  Alcotest.(check int) "backups mutually disjoint" (List.length all)
    (List.length (List.sort_uniq compare all));
  List.iter
    (fun e -> Alcotest.(check bool) "disjoint from primary" true (not (List.mem e primary)))
    all;
  Drcomm.check_invariants t

let test_two_backups_survive_two_failures () =
  let cfg = Drcomm.Config.make ~backups_per_connection:2 () in
  let t, _ = diamond6 ~config:cfg () in
  let id, _ = admit_ok t ~src:0 ~dst:3 ~qos:qos5 in
  (* First failure: switch to backup 1; no new backup can be found (all
     three routes committed), so one backup remains. *)
  let e1 = Dirlink.edge (List.hd (Drcomm.primary_links t id)) in
  let r1 = Drcomm.fail_edge t e1 in
  (match r1.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Switched_to_backup true; _ } ] -> ()
  | _ -> Alcotest.fail "first switch should keep a backup");
  Alcotest.(check int) "one backup left" 1 (List.length (Drcomm.all_backup_links t id));
  (* Second failure: switch again. *)
  let e2 = Dirlink.edge (List.hd (Drcomm.primary_links t id)) in
  let r2 = Drcomm.fail_edge t e2 in
  (match r2.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Switched_to_backup false; _ } ] -> ()
  | _ -> Alcotest.fail "second switch expected");
  Alcotest.(check int) "still alive after two failures" 1 (Drcomm.count t);
  Alcotest.(check int) "no drops" 0 (Drcomm.dropped_connections t);
  Drcomm.check_invariants t

let test_single_backup_drops_on_second_failure () =
  (* Same scenario with the default single backup: the second failure
     kills the connection (its only backup was consumed and the third
     route was grabbed as the replacement backup... which then activates;
     a third failure finishes it).  Compare drop counts with k = 1 vs 2
     under the same three-failure storm. *)
  let storm k =
    let cfg = Drcomm.Config.make ~backups_per_connection:k () in
    let t, _ = diamond6 ~config:cfg () in
    let id, _ = admit_ok t ~src:0 ~dst:3 ~qos:qos5 in
    for _ = 1 to 3 do
      if Drcomm.mem t id then
        ignore (Drcomm.fail_edge t (Dirlink.edge (List.hd (Drcomm.primary_links t id))))
    done;
    Drcomm.dropped_connections t
  in
  (* Both eventually die after 3 failures on a 3-route graph; but with
     2 backups the connection survives strictly longer under 2 failures. *)
  let survive_two k =
    let cfg = Drcomm.Config.make ~backups_per_connection:k () in
    let t, _ = diamond6 ~config:cfg () in
    let id, _ = admit_ok t ~src:0 ~dst:3 ~qos:qos5 in
    for _ = 1 to 2 do
      if Drcomm.mem t id then
        ignore (Drcomm.fail_edge t (Dirlink.edge (List.hd (Drcomm.primary_links t id))))
    done;
    Drcomm.mem t id
  in
  Alcotest.(check bool) "k=2 survives two failures" true (survive_two 2);
  Alcotest.(check bool) "k=1 also survives (re-establishes)" true (survive_two 1);
  Alcotest.(check bool) "three failures exhaust the diamond" true
    (storm 2 = 1 && storm 1 = 1)

let test_backups_validation () =
  (* Validation lives in the smart constructor: a Config.t is well-formed
     by construction, so an ill-formed one cannot even reach the service. *)
  Alcotest.check_raises "zero backups with with_backups"
    (Invalid_argument
       "Drcomm.Config.make: with_backups needs backups_per_connection >= 1")
    (fun () -> ignore (Drcomm.Config.make ~backups_per_connection:0 ()));
  Alcotest.check_raises "hop bound"
    (Invalid_argument "Drcomm.Config.make: hop_bound >= 1") (fun () ->
      ignore (Drcomm.Config.make ~hop_bound:0 ()))

(* Random operation soak: invariants must survive arbitrary interleavings
   of admit / terminate / fail / repair on a real topology. *)
let soak ?(backups = 1) seed ops =
  let rng = Prng.create seed in
  let g = Waxman.generate rng (Waxman.spec ~nodes:20 ~alpha:0.5 ~beta:0.3 ()) in
  let cfg =
    Drcomm.Config.make ~require_backup:false ~backups_per_connection:backups ()
  in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:2000 g) in
  let random_qos rng =
    let b_min = 100 * (1 + Prng.int rng 3) in
    let span = 100 * Prng.int rng 3 in
    Qos.make ~b_min ~b_max:(b_min + span) ~increment:100
      ~utility:(0.5 +. Prng.float rng 4.) ()
  in
  for _ = 1 to ops do
    let dice = Prng.int rng 100 in
    (if dice < 40 then begin
       let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
       ignore (Drcomm.admit t ~src ~dst ~qos:qos5)
     end
     else if dice < 70 then begin
       match Drcomm.active_channels t with
       | [] -> ()
       | ids -> ignore (Drcomm.terminate t (Prng.pick_list rng ids))
     end
     else if dice < 82 then begin
       let e = Prng.int rng (Graph.edge_count g) in
       ignore (Drcomm.fail_edge t e)
     end
     else if dice < 92 then begin
       match Net_state.failed_edges (Drcomm.net t) with
       | [] -> ()
       | es -> Drcomm.repair_edge t (Prng.pick_list rng es)
     end
     else begin
       (* Renegotiate a random live connection to a random contract. *)
       match Drcomm.active_channels t with
       | [] -> ()
       | ids ->
         ignore (Drcomm.change_qos t (Prng.pick_list rng ids) (random_qos rng))
     end);
    Drcomm.check_invariants t;
    List.iter
      (fun id ->
        let lvl = Drcomm.level t id in
        if lvl < 0 || lvl >= Qos.levels (Drcomm.qos_of t id) then
          Alcotest.fail "level out of range")
      (Drcomm.active_channels t)
  done

(* --- Regressions for bugs found by the lib/check fuzzer. ----------- *)

(* Fuzzer bug: [repair_edge] incremented [drcomm.link_repairs] (and
   emitted a trace event) even when the edge was healthy, so counters
   diverged from reality on the very first redundant repair. *)
let test_repair_idempotent_metrics () =
  let metrics = Metrics.create ~enabled:true () in
  let obs = Obs.create ~metrics () in
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 3 0);
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t = Drcomm.create ~config:cfg ~obs (Net_state.create ~capacity:1000 g) in
  let repairs () = Metrics.count (Metrics.counter metrics "drcomm.link_repairs") in
  (* Repairing a healthy edge is a no-op, not a repair. *)
  Drcomm.repair_edge t e12;
  Alcotest.(check int) "healthy repair uncounted" 0 (repairs ());
  ignore (Drcomm.fail_edge t e01);
  Drcomm.repair_edge t e01;
  Drcomm.repair_edge t e01;
  Drcomm.repair_edge t e12;
  Alcotest.(check int) "one real repair" 1 (repairs ());
  Alcotest.(check int) "one real failure" 1
    (Metrics.count (Metrics.counter metrics "drcomm.link_failures"))

(* Double failure of the same edge, then repair: the second [fail_edge]
   must be a pure no-op and the repaired edge must carry traffic again
   with the full invariant suite intact. *)
let test_double_fail_repair_invariants () =
  let t, _, (e01, _, _, _) = ring ~capacity:1000 () in
  let id, _ = admit_ok t ~src:0 ~dst:1 ~qos:qos5 in
  let r1 = Drcomm.fail_edge t e01 in
  Alcotest.(check int) "first failure recovers" 1 (List.length r1.Drcomm.recoveries);
  let reserved_after_first = Drcomm.reserved_bandwidth t id in
  let again = Drcomm.fail_edge t e01 in
  Alcotest.(check int) "double fail: no recoveries" 0
    (List.length again.Drcomm.recoveries);
  Alcotest.(check int) "double fail: allocation untouched" reserved_after_first
    (Drcomm.reserved_bandwidth t id);
  Invariants.check_all ~deep:true t;
  Drcomm.repair_edge t e01;
  Invariants.check_all ~deep:true t;
  (* The repaired edge is routable again: a fresh connection takes the
     1-hop route. *)
  (match Drcomm.admit t ~src:0 ~dst:1 ~qos:qos5 with
  | Drcomm.Admitted (nid, _) ->
    Alcotest.(check int) "direct route back" 1
      (List.length (Drcomm.primary_links t nid))
  | Drcomm.Rejected _ -> Alcotest.fail "repaired ring should admit");
  Invariants.check_all ~deep:true t

(* Fuzzer bug: when a backup activated, the victim's *other* backups
   were re-registered without checking that they avoid the just-failed
   edge, leaving a phantom registration whose pool demand pinned real
   capacity and violated failed-edge unroutability.  Fixture: primary
   0-1-2 with a disjoint backup 0-3-5-2 and a best-effort second backup
   0-4-1-2 that crosses the primary's edge 1-2; failing 1-2 activates
   the first backup and must discard the second. *)
let test_stale_backup_discarded_on_activation () =
  let g = Graph.create 6 in
  ignore (Graph.add_edge g 0 1);
  let e12 = Graph.add_edge g 1 2 in
  ignore (Graph.add_edge g 0 3);
  ignore (Graph.add_edge g 3 5);
  ignore (Graph.add_edge g 5 2);
  ignore (Graph.add_edge g 0 4);
  ignore (Graph.add_edge g 4 1);
  let cfg = Drcomm.Config.make ~backups_per_connection:2 () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:1000 g) in
  let id, _ = admit_ok t ~src:0 ~dst:2 ~qos:qos5 in
  (* Precondition: the second backup really does cross edge 1-2 (it is
     only best-effort disjoint) — otherwise this test checks nothing. *)
  (match Drcomm.all_backup_links t id with
  | [ _; b2 ] ->
    Alcotest.(check bool) "fixture: 2nd backup crosses e12" true
      (List.exists (fun dl -> Dirlink.edge dl = e12) b2)
  | _ -> Alcotest.fail "fixture: expected two backups");
  let r = Drcomm.fail_edge t e12 in
  (match r.Drcomm.recoveries with
  | [ { Drcomm.outcome = `Switched_to_backup false; _ } ] -> ()
  | _ -> Alcotest.fail "expected switch without replacement");
  (* The stale second backup must be gone, not silently re-registered
     over the failed edge. *)
  Alcotest.(check (list (list int))) "no backups survive" []
    (List.map (List.map Dirlink.edge) (Drcomm.all_backup_links t id));
  Alcotest.(check bool) "has_backup agrees" false (Drcomm.has_backup t id);
  Invariants.check_failed_edge_unroutability t;
  Invariants.check_all ~deep:true t

(* Fuzzer bug: [change_qos]'s all-or-nothing rollback re-admitted the
   channel's own floor through the regular admission test.  On a link
   whose guarantee was transiently broken by a forced backup activation
   (a multi-failure corner) that test rejects the restore, so the
   rollback raised and corrupted state.  Fixture: hub edge 0-1 carries
   channel A plus two force-activated backups (300/300 committed) while
   a third backup still registers pool demand — guarantee broken — then
   A renegotiates to a bigger floor and must be cleanly rejected. *)
let test_change_qos_rollback_under_broken_guarantee () =
  let g = Graph.create 8 in
  let e01 = Graph.add_edge g 0 1 in
  let e23 = Graph.add_edge g 2 3 in
  let e45 = Graph.add_edge g 4 5 in
  ignore (Graph.add_edge g 6 7);
  ignore (Graph.add_edge g 2 0);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 4 0);
  ignore (Graph.add_edge g 1 5);
  ignore (Graph.add_edge g 6 0);
  ignore (Graph.add_edge g 1 7);
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:300 g) in
  let q100 = Qos.single_value 100 in
  let a, _ = admit_ok t ~src:0 ~dst:1 ~qos:q100 in
  let _b, _ = admit_ok t ~src:2 ~dst:3 ~qos:q100 in
  let _c, _ = admit_ok t ~src:4 ~dst:5 ~qos:q100 in
  let _d, _ = admit_ok t ~src:6 ~dst:7 ~qos:q100 in
  (* Two failures force-activate B's and C's hub backups onto 0-1. *)
  ignore (Drcomm.fail_edge t e23);
  ignore (Drcomm.fail_edge t e45);
  let l01 = Net_state.link (Drcomm.net t) e01 in
  Alcotest.(check bool) "fixture: guarantee broken on the hub" false
    (Link_state.guarantee_holds l01);
  Alcotest.(check int) "fixture: hub floors saturated" 300
    (Link_state.primary_min_total l01);
  (* The renegotiation cannot fit; the rollback must restore A exactly
     (the old code raised Invalid_argument out of change_qos here). *)
  (match Drcomm.change_qos t a (Qos.single_value 150) with
  | `Rejected -> ()
  | `Changed -> Alcotest.fail "150 floor cannot fit on a saturated hub");
  Alcotest.(check bool) "A survives" true (Drcomm.mem t a);
  Alcotest.(check int) "A's contract intact" 100 (Drcomm.reserved_bandwidth t a);
  Invariants.check_all ~deep:true t

(* Fuzzer bug: [fail_edge] water-filled the victims' and activated
   links but not the full paths of bystanders that retreated during
   activation, leaving spare capacity unclaimed.  Fixture: failing d-b
   moves V onto a-d, a-b; Z (a-b-c) retreats for it, freeing room on
   b-c that W (b-c alone) must immediately claim. *)
let test_fail_edge_redistributes_bystander_paths () =
  let g = Graph.create 4 in
  (* 0 = a, 1 = b, 2 = c, 3 = d *)
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 0 3);
  let db = Graph.add_edge g 3 1 in
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:600 g) in
  let z, _ =
    admit_ok t ~src:0 ~dst:2 ~qos:(Qos.make ~b_min:100 ~b_max:300 ~increment:100 ())
  in
  let w, _ = admit_ok t ~src:1 ~dst:2 ~qos:qos5 in
  let v, _ = admit_ok t ~src:3 ~dst:1 ~qos:(Qos.single_value 400) in
  Alcotest.(check int) "fixture: Z at 300" 300 (Drcomm.reserved_bandwidth t z);
  Alcotest.(check int) "fixture: W at 300" 300 (Drcomm.reserved_bandwidth t w);
  let r = Drcomm.fail_edge t db in
  (* Z's backup also crossed d-b, so the report holds two recoveries:
     V switches, Z merely loses its backup. *)
  Alcotest.(check bool) "V switched" true
    (List.exists
       (fun rc ->
         rc.Drcomm.victim = v
         && match rc.Drcomm.outcome with `Switched_to_backup _ -> true | _ -> false)
       r.Drcomm.recoveries);
  (* V's activation onto a-b squeezes Z down one level; the level Z
     frees on b-c belongs to W, which shares no link with V — only the
     bystander-path propagation reaches it. *)
  Alcotest.(check int) "Z retreated" 200 (Drcomm.reserved_bandwidth t z);
  Alcotest.(check int) "W claimed the freed level" 400 (Drcomm.reserved_bandwidth t w);
  Invariants.check_redistribution_complete t;
  Invariants.check_all ~deep:true t

(* --- incremental vs full recomputation (the dirty-link machinery) --- *)

(* After any interleaving of operations, the incremental water-filling
   must sit at the global fixed point: a full [redistribute_all] pass
   over the live state changes no reservation. *)
let test_incremental_matches_full_recompute () =
  let rng = Prng.create 17 in
  let g = Waxman.generate rng (Waxman.spec ~nodes:20 ~alpha:0.5 ~beta:0.3 ()) in
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:2000 g) in
  for _ = 1 to 200 do
    (match Prng.int rng 100 with
    | d when d < 45 ->
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      ignore (Drcomm.admit t ~src ~dst ~qos:qos5)
    | d when d < 70 -> (
      match Drcomm.active_channels t with
      | [] -> ()
      | ids -> ignore (Drcomm.terminate t (Prng.pick_list rng ids)))
    | d when d < 85 ->
      ignore (Drcomm.fail_edge t (Prng.int rng (Graph.edge_count g)))
    | _ -> (
      match Net_state.failed_edges (Drcomm.net t) with
      | [] -> ()
      | es -> Drcomm.repair_edge t (Prng.pick_list rng es)));
    Invariants.check_incremental_equivalence t
  done;
  Invariants.check_all ~deep:true t

(* The PR 3 bug class, incremental edition: a failure's backup activation
   retreats a bystander, and the dirty set must cover the bystander's
   FULL path — W below shares no link with the victim, so only the
   path-wide dirtying reaches it.  A global pass afterwards must find
   nothing left to grant. *)
let test_dirty_set_covers_retreated_paths () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 0 3);
  let db = Graph.add_edge g 3 1 in
  let cfg = Drcomm.Config.make ~require_backup:false () in
  let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:600 g) in
  let _z, _ =
    admit_ok t ~src:0 ~dst:2 ~qos:(Qos.make ~b_min:100 ~b_max:300 ~increment:100 ())
  in
  let w, _ = admit_ok t ~src:1 ~dst:2 ~qos:qos5 in
  let _v, _ = admit_ok t ~src:3 ~dst:1 ~qos:(Qos.single_value 400) in
  ignore (Drcomm.fail_edge t db);
  Alcotest.(check int) "W refilled incrementally" 400 (Drcomm.reserved_bandwidth t w);
  Invariants.check_incremental_equivalence t;
  Invariants.check_all ~deep:true t

(* Batched arrivals: flushing the accumulated dirty set must produce
   exactly the allocation a global pass computes from the same loaded
   state — the candidate sets differ (dirty links vs all live), but the
   policy's sorted grant order makes the outcome identical. *)
let test_batched_flush_matches_global_pass () =
  let build () =
    let rng = Prng.create 29 in
    let g = Waxman.generate rng (Waxman.spec ~nodes:15 ~alpha:0.5 ~beta:0.3 ()) in
    let cfg = Drcomm.Config.make ~require_backup:false () in
    let t = Drcomm.create ~config:cfg (Net_state.create ~capacity:1500 g) in
    Drcomm.set_auto_redistribute t false;
    for _ = 1 to 60 do
      let src, dst = Prng.sample_distinct_pair rng (Graph.node_count g) in
      ignore (Drcomm.admit ~want_report:false t ~src ~dst ~qos:qos5)
    done;
    t
  in
  let a = build () in
  let b = build () in
  Drcomm.redistribute_all a;
  Drcomm.redistribute_pending b;
  Drcomm.set_auto_redistribute a true;
  Drcomm.set_auto_redistribute b true;
  let allocation t =
    List.map
      (fun id -> (Drcomm.Channel_id.to_int id, Drcomm.reserved_bandwidth t id))
      (List.sort Drcomm.Channel_id.compare (Drcomm.active_channels t))
  in
  Alcotest.(check (list (pair int int)))
    "dirty-set flush = global pass" (allocation a) (allocation b);
  Invariants.check_incremental_equivalence b;
  Drcomm.check_invariants a;
  Drcomm.check_invariants b

let test_soak_short () = soak 11 150
let test_soak_other_seed () = soak 23 150
let test_soak_two_backups () = soak ~backups:2 31 150

let qcheck_soak =
  QCheck.Test.make ~name:"random operations keep invariants" ~count:15
    QCheck.(small_int)
    (fun seed ->
      soak seed 60;
      true)

let () =
  Alcotest.run "drcomm"
    [
      ( "admission",
        [
          Alcotest.test_case "single connection maxes out" `Quick
            test_single_connection_maxes_out;
          Alcotest.test_case "tree rejects (no backup)" `Quick test_no_backup_in_tree_rejected;
          Alcotest.test_case "backup optional" `Quick test_no_backup_accepted_when_optional;
          Alcotest.test_case "floor exhaustion" `Quick test_floor_exhaustion_rejects;
          Alcotest.test_case "validation" `Quick test_admit_validation;
        ] );
      ( "elasticity",
        [
          Alcotest.test_case "arrival retreats sharing" `Quick
            test_arrival_retreats_sharing_channel;
          Alcotest.test_case "termination upgrades" `Quick
            test_termination_releases_and_upgrades;
          Alcotest.test_case "terminate dead handle" `Quick
            test_terminate_dead_handle_raises;
          Alcotest.test_case "indirect classified" `Quick test_indirect_chaining_classified;
          Alcotest.test_case "indirect gains" `Quick test_indirect_channel_gains;
          Alcotest.test_case "equal share fair" `Quick test_equal_share_fairness;
          Alcotest.test_case "max utility monopolises" `Quick test_max_utility_monopolises;
          Alcotest.test_case "proportional split" `Quick test_proportional_split;
          Alcotest.test_case "single-value never upgrades" `Quick
            test_single_value_qos_never_upgrades;
          Alcotest.test_case "elastic beats single-value" `Quick
            test_elastic_beats_single_value_admission;
          Alcotest.test_case "bulk redistribution" `Quick test_bulk_redistribution_equivalent;
        ] );
      ( "dependability",
        [
          Alcotest.test_case "multiplexing saves capacity" `Quick
            test_backup_multiplexing_saves_capacity;
          Alcotest.test_case "failure activates backup" `Quick test_failure_activates_backup;
          Alcotest.test_case "drop when backup hit" `Quick
            test_failure_drops_when_backup_also_hit;
          Alcotest.test_case "bystanders retreat on activation" `Quick
            test_failure_retreats_channels_on_backup_links;
          Alcotest.test_case "restoration baseline" `Quick test_restoration_baseline;
          Alcotest.test_case "restoration under partition" `Quick
            test_restoration_fails_under_partition;
          Alcotest.test_case "fail idempotent" `Quick test_fail_edge_idempotent;
          Alcotest.test_case "repair restores routes" `Quick test_repair_restores_routability;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "level histogram" `Quick test_level_histogram;
          Alcotest.test_case "average bandwidth" `Quick test_average_bandwidth;
        ] );
      ( "renegotiation",
        [
          Alcotest.test_case "upgrade range" `Quick test_change_qos_upgrade_range;
          Alcotest.test_case "floor increase checked" `Quick
            test_change_qos_floor_increase_checked;
          Alcotest.test_case "retreats neighbours" `Quick test_change_qos_retreats_neighbours;
          Alcotest.test_case "dead handle" `Quick test_change_qos_dead_handle;
        ] );
      ( "multi-backup",
        [
          Alcotest.test_case "two backups established" `Quick test_two_backups_established;
          Alcotest.test_case "two backups, two failures" `Quick
            test_two_backups_survive_two_failures;
          Alcotest.test_case "k=1 vs k=2 under storm" `Quick
            test_single_backup_drops_on_second_failure;
          Alcotest.test_case "validation" `Quick test_backups_validation;
        ] );
      ( "fuzzer-regressions",
        [
          Alcotest.test_case "repair idempotent in metrics" `Quick
            test_repair_idempotent_metrics;
          Alcotest.test_case "double fail then repair" `Quick
            test_double_fail_repair_invariants;
          Alcotest.test_case "stale backup discarded" `Quick
            test_stale_backup_discarded_on_activation;
          Alcotest.test_case "chqos rollback, broken guarantee" `Quick
            test_change_qos_rollback_under_broken_guarantee;
          Alcotest.test_case "bystander paths refilled" `Quick
            test_fail_edge_redistributes_bystander_paths;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches full recompute" `Quick
            test_incremental_matches_full_recompute;
          Alcotest.test_case "dirty set covers retreated paths" `Quick
            test_dirty_set_covers_retreated_paths;
          Alcotest.test_case "batched flush = global pass" `Quick
            test_batched_flush_matches_global_pass;
        ] );
      ( "soak",
        [
          Alcotest.test_case "soak seed 11" `Quick test_soak_short;
          Alcotest.test_case "soak seed 23" `Quick test_soak_other_seed;
          Alcotest.test_case "soak with two backups" `Quick test_soak_two_backups;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_soak ]);
    ]
