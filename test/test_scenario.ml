(* End-to-end tests of the experiment runner.  Configurations are kept
   small so the whole file runs in seconds; the paper-scale sweeps live in
   bench/. *)

(* Small topology with 2 Mbps links so that a few hundred connections
   already contend (20 floors per link). *)
let tiny ?(offered = 120) ?(nodes = 30) ?(gamma = 0.) ?(seed = 3) () =
  {
    Scenario.default with
    Scenario.topology = Scenario.Waxman (Waxman.spec ~nodes ~alpha:0.5 ~beta:0.3 ());
    capacity = Bandwidth.mbps 2;
    offered;
    gamma;
    warmup_events = 50;
    churn_events = 200;
    seed;
  }

let in_qos_range x = x >= 100. -. 1e-6 && x <= 500. +. 1e-6

let test_runs_and_is_sane () =
  let r = Scenario.run (tiny ()) in
  Alcotest.(check bool) "carried within offered" true
    (r.Scenario.carried_initial <= r.Scenario.offered);
  Alcotest.(check bool) "sim avg within QoS range" true
    (in_qos_range r.Scenario.sim_avg_bandwidth);
  Alcotest.(check bool) "model avg within QoS range" true
    (in_qos_range r.Scenario.model_avg_bandwidth);
  Alcotest.(check bool) "ideal positive" true (r.Scenario.ideal_avg_bandwidth > 0.);
  Alcotest.(check bool) "hops positive" true (r.Scenario.avg_hops > 0.);
  let dist_total = Array.fold_left ( +. ) 0. r.Scenario.channel_bandwidth_dist in
  Alcotest.check (Alcotest.float 1e-6) "distribution normalised" 1. dist_total;
  Alcotest.(check int) "9 levels" 9 (Array.length r.Scenario.channel_bandwidth_dist)

let test_deterministic_in_seed () =
  let r1 = Scenario.run (tiny ()) in
  let r2 = Scenario.run (tiny ()) in
  Alcotest.(check int) "same carried" r1.Scenario.carried_initial
    r2.Scenario.carried_initial;
  Alcotest.check (Alcotest.float 1e-12) "same sim average" r1.Scenario.sim_avg_bandwidth
    r2.Scenario.sim_avg_bandwidth;
  Alcotest.check (Alcotest.float 1e-12) "same model average"
    r1.Scenario.model_avg_bandwidth r2.Scenario.model_avg_bandwidth

let test_seed_changes_result () =
  let r1 = Scenario.run (tiny ~seed:3 ()) in
  let r2 = Scenario.run (tiny ~seed:4 ()) in
  Alcotest.(check bool) "different topology or trajectory" true
    (r1.Scenario.sim_avg_bandwidth <> r2.Scenario.sim_avg_bandwidth)

let test_load_monotonicity () =
  (* More offered connections -> lower average bandwidth (Fig. 2's core
     shape). *)
  let light = Scenario.run (tiny ~offered:40 ()) in
  let heavy = Scenario.run (tiny ~offered:400 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "light %.0f > heavy %.0f" light.Scenario.sim_avg_bandwidth
       heavy.Scenario.sim_avg_bandwidth)
    true
    (light.Scenario.sim_avg_bandwidth > heavy.Scenario.sim_avg_bandwidth);
  (* And the analytic model must agree on the direction. *)
  Alcotest.(check bool) "model agrees" true
    (light.Scenario.model_avg_bandwidth > heavy.Scenario.model_avg_bandwidth)

let test_light_load_sits_at_ceiling () =
  let r = Scenario.run (tiny ~offered:10 ()) in
  Alcotest.(check bool) "sim at ceiling" true (r.Scenario.sim_avg_bandwidth > 480.);
  Alcotest.(check bool) "model at ceiling" true (r.Scenario.model_avg_bandwidth > 480.)

let test_failures_injected_and_survived () =
  let r = Scenario.run (tiny ~gamma:0.0005 ()) in
  Alcotest.(check bool) "some failures happened" true (r.Scenario.failures_injected > 0);
  (* The service must keep running and the measurement stay in range. *)
  Alcotest.(check bool) "avg still sane" true (in_qos_range r.Scenario.sim_avg_bandwidth)

let test_transit_stub_topology_runs () =
  let cfg =
    {
      (tiny ~offered:150 ()) with
      Scenario.topology = Scenario.Transit_stub Transit_stub.paper_spec;
    }
  in
  let r = Scenario.run cfg in
  (* The tiered core saturates early: rejections are the expected
     signature (Table 1's "Tier" column). *)
  Alcotest.(check bool) "ran" true (r.Scenario.carried_initial > 0);
  Alcotest.(check int) "offered preserved" 150 r.Scenario.offered

let test_fixed_topology () =
  let g = Waxman.generate (Prng.create 77) (Waxman.spec ~nodes:20 ~alpha:0.5 ~beta:0.3 ()) in
  let cfg = { (tiny ~offered:30 ()) with Scenario.topology = Scenario.Fixed g } in
  let r = Scenario.run cfg in
  Alcotest.(check int) "same graph" (Graph.edge_count g)
    (Graph.edge_count r.Scenario.graph)

let test_increment_size_insensitivity () =
  (* Table 1's claim: 5-state and 9-state chains give nearly the same
     average. *)
  let base = tiny ~offered:200 () in
  let r50 = Scenario.run { base with Scenario.qos = Qos.paper_spec ~increment:50 } in
  let r100 = Scenario.run { base with Scenario.qos = Qos.paper_spec ~increment:100 } in
  let gap = Float.abs (r50.Scenario.sim_avg_bandwidth -. r100.Scenario.sim_avg_bandwidth) in
  Alcotest.(check bool)
    (Printf.sprintf "within 12%% (gap %.1f)" gap)
    true
    (gap < 0.12 *. r50.Scenario.sim_avg_bandwidth)

let test_multi_backup_scenario () =
  let cfg = { (tiny ~offered:100 ~gamma:0.0005 ()) with Scenario.backups_per_connection = 2 } in
  let r = Scenario.run cfg in
  Alcotest.(check bool) "ran with failures" true (r.Scenario.failures_injected > 0);
  Alcotest.(check bool) "in range" true (in_qos_range r.Scenario.sim_avg_bandwidth)

let test_restoration_scenario () =
  let cfg =
    {
      (tiny ~offered:150 ~gamma:0.001 ()) with
      Scenario.with_backups = false;
      require_backup = false;
      restore_on_failure = true;
    }
  in
  let r = Scenario.run cfg in
  Alcotest.(check bool) "restorations happened" true (r.Scenario.restored_from_scratch > 0);
  Alcotest.(check int) "no backup switches" 0 r.Scenario.recovered_by_backup

let test_sequential_route_search_scenario () =
  let flood = Scenario.run (tiny ~offered:150 ()) in
  let seq =
    Scenario.run { (tiny ~offered:150 ()) with Scenario.route_search = `Sequential 8 }
  in
  (* Both strategies must carry comparable populations at light load. *)
  Alcotest.(check bool)
    (Printf.sprintf "flooding %d vs sequential %d" flood.Scenario.carried_initial
       seq.Scenario.carried_initial)
    true
    (abs (flood.Scenario.carried_initial - seq.Scenario.carried_initial) < 15)

let test_pf_estimators_agree () =
  (* Property (fuzzer satellite): the two P_f estimators — the
     event-triggered one and the per-termination one — measure the same
     quantity and must agree closely when arrivals and departures are
     balanced (lambda = mu).  Measured gap over seeds 1..8 is < 5e-4;
     0.005 leaves an order of magnitude of slack without admitting a
     real divergence. *)
  List.iter
    (fun seed ->
      let cfg =
        {
          (tiny ~offered:200 ~seed ()) with
          Scenario.lambda = 0.001;
          mu = 0.001;
          warmup_events = 100;
          churn_events = 1500;
        }
      in
      let r = Scenario.run cfg in
      let e = r.Scenario.estimator in
      let pf = Estimator.p_f e and pft = Estimator.p_f_termination e in
      Alcotest.(check bool) (Printf.sprintf "seed %d: non-vacuous (p_f %.4f)" seed pf)
        true (pf > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: p_f %.4f vs p_f_termination %.4f" seed pf pft)
        true
        (Float.abs (pf -. pft) < 0.005))
    [ 1; 2; 3 ]

let test_rate_validation () =
  Alcotest.check_raises "bad lambda"
    (Invalid_argument "Scenario.run: lambda and mu must be positive") (fun () ->
      ignore (Scenario.run { (tiny ()) with Scenario.lambda = 0. }))

let test_single_value_qos_scenario () =
  (* The inelastic baseline: channels never leave their floor, so the
     simulated average equals b_min when floors are all that is granted. *)
  let cfg = { (tiny ~offered:150 ()) with Scenario.qos = Qos.single_value 100 } in
  let r = Scenario.run cfg in
  Alcotest.check (Alcotest.float 1e-6) "pinned to floor" 100.
    r.Scenario.sim_avg_bandwidth

let test_replications_summary () =
  let cfg = { (tiny ~offered:80 ()) with Scenario.churn_events = 80; warmup_events = 20 } in
  let results, s = Scenario.run_replications ~seeds:[ 1; 2; 3 ] cfg in
  Alcotest.(check int) "runs" 3 s.Scenario.runs;
  Alcotest.(check int) "one result per seed" 3 (List.length results);
  Alcotest.(check (list int)) "results in seed order" [ 1; 2; 3 ]
    (List.map (fun r -> r.Scenario.config.Scenario.seed) results);
  let lo, hi = s.Scenario.sim_ci in
  Alcotest.(check bool) "ci contains mean" true
    (lo <= s.Scenario.sim_mean && s.Scenario.sim_mean <= hi);
  Alcotest.(check bool) "mean in range" true
    (s.Scenario.sim_mean >= 100. -. 1e-6 && s.Scenario.sim_mean <= 500. +. 1e-6);
  Alcotest.(check bool) "carried positive" true (s.Scenario.carried_mean > 0.);
  (* The summary is the fold of the returned per-seed results. *)
  let mean =
    List.fold_left (fun acc r -> acc +. r.Scenario.sim_avg_bandwidth) 0. results /. 3.
  in
  Alcotest.check (Alcotest.float 1e-9) "summary folds the results" mean
    s.Scenario.sim_mean;
  (* Deterministic given the same seed list, sequential or parallel. *)
  let _, s' = Scenario.run_replications ~seeds:[ 1; 2; 3 ] ~jobs:1 cfg in
  Alcotest.check (Alcotest.float 1e-12) "deterministic" s.Scenario.sim_mean
    s'.Scenario.sim_mean;
  let _, s2 = Scenario.run_replications ~seeds:[ 1; 2; 3 ] ~jobs:3 cfg in
  Alcotest.check (Alcotest.float 1e-12) "parallel equals sequential"
    s.Scenario.sim_mean s2.Scenario.sim_mean

let test_replications_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Scenario.run_replications: no seeds")
    (fun () -> ignore (Scenario.run_replications ~seeds:[] (tiny ())))

let () =
  Alcotest.run "scenario"
    [
      ( "pipeline",
        [
          Alcotest.test_case "runs and is sane" `Quick test_runs_and_is_sane;
          Alcotest.test_case "deterministic" `Quick test_deterministic_in_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_result;
          Alcotest.test_case "rate validation" `Quick test_rate_validation;
        ] );
      ( "paper-shapes",
        [
          Alcotest.test_case "load monotonicity" `Quick test_load_monotonicity;
          Alcotest.test_case "light load at ceiling" `Quick test_light_load_sits_at_ceiling;
          Alcotest.test_case "failures survived" `Quick test_failures_injected_and_survived;
          Alcotest.test_case "increment insensitivity" `Quick
            test_increment_size_insensitivity;
          Alcotest.test_case "single-value baseline" `Quick test_single_value_qos_scenario;
          Alcotest.test_case "p_f estimators agree" `Quick test_pf_estimators_agree;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "multi-backup" `Quick test_multi_backup_scenario;
          Alcotest.test_case "restoration" `Quick test_restoration_scenario;
          Alcotest.test_case "sequential search" `Quick
            test_sequential_route_search_scenario;
        ] );
      ( "replications",
        [
          Alcotest.test_case "summary aggregates" `Quick test_replications_summary;
          Alcotest.test_case "empty seeds" `Quick test_replications_validation;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "transit-stub" `Quick test_transit_stub_topology_runs;
          Alcotest.test_case "fixed graph" `Quick test_fixed_topology;
        ] );
    ]
