(* Tests for the observability layer: JSON documents, the metrics
   registry, trace sinks, and the Stats edge cases the registry leans
   on. *)

let approx = Alcotest.float 1e-9

let get_exn = function Some x -> x | None -> Alcotest.fail "missing JSON member"

let member_exn key json = get_exn (Jsonx.member key json)

(* --- Jsonx --- *)

let test_jsonx_roundtrip () =
  let doc =
    Jsonx.Obj
      [
        ("name", Jsonx.String "line\n\"quoted\"\tand\\slashed");
        ("count", Jsonx.Int (-42));
        ("ratio", Jsonx.Float 0.125);
        ("flags", Jsonx.List [ Jsonx.Bool true; Jsonx.Bool false; Jsonx.Null ]);
        ("nested", Jsonx.Obj [ ("k", Jsonx.Int 7) ]);
      ]
  in
  let back = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "identical after round-trip" true (back = doc)

let test_jsonx_special_floats () =
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Float nan));
  let inf = Jsonx.of_string (Jsonx.to_string (Jsonx.Float infinity)) in
  Alcotest.(check bool) "infinity survives" true (Jsonx.to_float inf = Some infinity)

let test_jsonx_rejects_garbage () =
  let bad s =
    match Jsonx.of_string s with
    | exception Jsonx.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "qos")

(* --- Metrics registry --- *)

let test_metrics_counters_and_snapshot () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "events" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "counter value" 42 (Metrics.count c);
  Alcotest.(check bool) "interned by name" true (Metrics.counter reg "events" == c);
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.;
  Metrics.set g 10.;
  Metrics.set g 2.;
  let tm = Metrics.timer reg "solve" in
  Metrics.observe tm 0.5;
  Metrics.observe tm 1.5;
  let snap = Metrics.snapshot reg in
  (* The snapshot must survive a JSON round-trip and expose the values. *)
  let snap = Jsonx.of_string (Jsonx.to_string snap) in
  let counters = member_exn "counters" snap in
  Alcotest.(check int) "snapshot counter" 42
    (get_exn (Jsonx.to_int (member_exn "events" counters)));
  let depth = member_exn "depth" (member_exn "gauges" snap) in
  Alcotest.check approx "gauge last" 2.
    (get_exn (Jsonx.to_float (member_exn "value" depth)));
  Alcotest.check approx "gauge peak" 10.
    (get_exn (Jsonx.to_float (member_exn "peak" depth)));
  let solve = member_exn "solve" (member_exn "timers" snap) in
  Alcotest.(check int) "timer count" 2
    (get_exn (Jsonx.to_int (member_exn "count" solve)));
  Alcotest.check approx "timer total" 2.
    (get_exn (Jsonx.to_float (member_exn "total_s" solve)));
  Alcotest.check approx "timer mean" 1.
    (get_exn (Jsonx.to_float (member_exn "mean_s" solve)))

let test_metrics_disabled_is_noop () =
  let c = Metrics.counter Metrics.disabled "never" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.count c);
  let g = Metrics.gauge Metrics.disabled "never_g" in
  Metrics.set g 5.;
  Alcotest.check approx "disabled gauge stays 0" 0. (Metrics.value g);
  let tm = Metrics.timer Metrics.disabled "never_t" in
  let ran = Metrics.time tm (fun () -> 123) in
  Alcotest.(check int) "thunk still runs" 123 ran;
  Alcotest.(check int) "disabled timer records nothing" 0 (Metrics.timer_count tm);
  Alcotest.(check bool) "cannot enable the shared registry" true
    (match Metrics.set_enabled Metrics.disabled true with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_metrics_toggle () =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter reg "toggled" in
  Metrics.incr c;
  Metrics.set_enabled reg true;
  Metrics.incr c;
  Alcotest.(check int) "only counted while enabled" 1 (Metrics.count c)

(* --- Trace sinks --- *)

let events_fixture =
  [
    (0., Trace.Admit { channel = 0; direct = 2; indirect = 5 });
    (1.5, Trace.Reject { reason = "no_backup_route" });
    (2.25, Trace.Retreat { channel = 0; from_level = 8; to_level = 0 });
    (2.25, Trace.Upgrade { channel = 3; from_level = 0; to_level = 1 });
    (3., Trace.Link_fail { edge = 17 });
    (3., Trace.Backup_activate { channel = 0; reprotected = true });
    (4., Trace.Solve { what = "ctmc.stationary"; states = 9; seconds = 0.001 });
  ]

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "drqos_trace" ".jsonl" in
  let tracer = Trace.create (Trace.jsonl_sink (open_out path)) in
  List.iter (fun (time, ev) -> Trace.emit tracer ~time ev) events_fixture;
  Trace.close tracer;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check int) "one line per event" (List.length events_fixture)
    (List.length lines);
  List.iter2
    (fun (time, ev) line ->
      let json = Jsonx.of_string line in
      Alcotest.(check string) "kind" (Trace.kind ev)
        (get_exn (Jsonx.to_str (member_exn "ev" json)));
      Alcotest.check approx "timestamp" time
        (get_exn (Jsonx.to_float (member_exn "t" json)));
      (* The parsed line must equal the direct serialisation. *)
      Alcotest.(check bool) "document round-trips" true
        (json = Jsonx.of_string (Jsonx.to_string (Trace.to_json ~time ev))))
    events_fixture lines;
  (* Spot-check one payload field survived the file round-trip. *)
  let activate = Jsonx.of_string (List.nth lines 5) in
  Alcotest.(check bool) "reprotected flag" true
    (Jsonx.member "reprotected" activate = Some (Jsonx.Bool true))

let test_disabled_tracer_emits_nothing () =
  let hit = ref 0 in
  let sink = { Trace.emit = (fun _ _ -> incr hit); close = (fun () -> ()) } in
  ignore sink.Trace.emit;
  Trace.emit Trace.disabled ~time:1. (Trace.Drop { channel = 1 });
  Alcotest.(check int) "no emission" 0 !hit

(* --- Obs context --- *)

let test_obs_span_and_clock () =
  let events = ref [] in
  let sink =
    { Trace.emit = (fun time ev -> events := (time, ev) :: !events);
      close = (fun () -> ()) }
  in
  let obs = Obs.create ~metrics:(Metrics.create ()) ~trace:(Trace.create sink) () in
  Obs.set_clock obs (fun () -> 42.);
  let result = Obs.span obs "work" (fun () -> 7) in
  Alcotest.(check int) "span returns the thunk's value" 7 result;
  (match List.rev !events with
  | [ (t1, Trace.Phase_begin { name = n1 }); (t2, Trace.Phase_end { name = n2; _ }) ] ->
    Alcotest.(check string) "begin name" "work" n1;
    Alcotest.(check string) "end name" "work" n2;
    Alcotest.check approx "begin at clock" 42. t1;
    Alcotest.check approx "end at clock" 42. t2
  | evs -> Alcotest.failf "expected begin/end pair, got %d events" (List.length evs));
  let timers = Jsonx.member "timers" (Obs.metrics_json obs) in
  Alcotest.(check bool) "phase timer recorded" true
    (match timers with
    | Some (Jsonx.Obj fields) -> List.mem_assoc "phase.work" fields
    | _ -> false)

let test_obs_null_ignores_clock () =
  Obs.set_clock Obs.null (fun () -> 99.);
  Alcotest.check approx "null clock pinned at 0" 0. (Obs.now Obs.null)

(* --- Stats edge cases (satellite coverage) --- *)

let test_quantile_empty () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Stats.Histogram.quantile h 0.5))

let test_quantile_bounds_q () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  Stats.Histogram.add h 1.;
  Alcotest.(check bool) "q < 0 rejected" true
    (match Stats.Histogram.quantile h (-0.1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "q > 1 rejected" true
    (match Stats.Histogram.quantile h 1.1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_quantile_extremes () =
  (* Data only in the second and fourth of four [0,10) buckets. *)
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  List.iter (Stats.Histogram.add h) [ 3.; 3.; 9.; 9.; 9. ];
  Alcotest.check approx "q=0 hits the first populated bucket" 3.75
    (Stats.Histogram.quantile h 0.);
  Alcotest.check approx "q=1 hits the last populated bucket" 8.75
    (Stats.Histogram.quantile h 1.)

let test_quantile_outlier_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:4 in
  (* Outliers clamp into the edge buckets. *)
  Stats.Histogram.add h (-100.);
  Stats.Histogram.add h 1e9;
  Alcotest.(check int) "both counted" 2 (Stats.Histogram.count h);
  Alcotest.check approx "low outlier in bucket 0" 1.25
    (Stats.Histogram.quantile h 0.);
  Alcotest.check approx "high outlier in last bucket" 8.75
    (Stats.Histogram.quantile h 1.)

let test_timed_average_empty_window () =
  let t = Stats.Timed_average.create ~start:3. ~value:17. in
  Alcotest.check approx "zero-span average is the current value" 17.
    (Stats.Timed_average.average t ~upto:3.)

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "special floats" `Quick test_jsonx_special_floats;
          Alcotest.test_case "rejects garbage" `Quick test_jsonx_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and snapshot" `Quick
            test_metrics_counters_and_snapshot;
          Alcotest.test_case "disabled is no-op" `Quick test_metrics_disabled_is_noop;
          Alcotest.test_case "toggle" `Quick test_metrics_toggle;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "disabled tracer" `Quick
            test_disabled_tracer_emits_nothing;
        ] );
      ( "obs",
        [
          Alcotest.test_case "span and clock" `Quick test_obs_span_and_clock;
          Alcotest.test_case "null ignores clock" `Quick test_obs_null_ignores_clock;
        ] );
      ( "stats-edges",
        [
          Alcotest.test_case "quantile empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile q bounds" `Quick test_quantile_bounds_q;
          Alcotest.test_case "quantile extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "quantile outliers" `Quick test_quantile_outlier_buckets;
          Alcotest.test_case "timed average empty window" `Quick
            test_timed_average_empty_window;
        ] );
    ]
